"""Tests for countermeasure 2: the hardened UpdateKey."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attack import GrinchAttack
from repro.core.config import AttackConfig
from repro.core.errors import KeyVerificationFailed
from repro.countermeasures.evaluation import evaluate_hardened_schedule
from repro.countermeasures.hardened_schedule import (
    HardenedKeyScheduleGift64,
    hardened_round_keys,
    whiten_word,
)
from repro.gift.cipher import Gift64
from repro.gift.keyschedule import round_keys

keys = st.integers(min_value=0, max_value=(1 << 128) - 1)
words = st.integers(min_value=0, max_value=0xFFFF)


class TestWhitening:
    @given(words, words)
    def test_whitening_is_invertible_in_the_word(self, word, tweak):
        # XOR structure: whiten(whiten(w, t) , t) == w.
        assert whiten_word(whiten_word(word, tweak), tweak) == word

    @given(words)
    def test_zero_tweak_still_whitens(self, word):
        # S(0) = 1 per nibble, so even a zero tweak changes the word —
        # there is no weak "identity" tweak.
        assert whiten_word(word, 0) == word ^ 0x1111

    def test_rejects_oversized_inputs(self):
        with pytest.raises(ValueError):
            whiten_word(1 << 16, 0)


class TestHardenedSchedule:
    @given(keys)
    @settings(max_examples=20)
    def test_first_four_round_keys_differ_from_standard(self, key):
        standard = round_keys(key, 4, width=64)
        hardened = hardened_round_keys(key, 4)
        for (su, sv), (hu, hv) in zip(standard, hardened):
            assert (su, sv) != (hu, hv)

    @given(keys)
    @settings(max_examples=10)
    def test_later_rounds_keep_the_standard_schedule(self, key):
        standard = round_keys(key, 8, width=64)
        hardened = hardened_round_keys(key, 8)
        assert standard[4:] == hardened[4:]

    def test_tweaks_use_not_yet_consumed_words(self):
        """Round r <= 4 must be whitened with words the standard
        schedule has not consumed by round r — "bits that were not used
        yet"."""
        # Round 1 consumes words k0/k1; its tweaks are k5/k4 (diagonal),
        # which the standard schedule first consumes in round 3.
        key = 0x7777_6666_5555_4444_3333_2222_1111_0000
        standard_u1, standard_v1 = round_keys(key, 1, width=64)[0]
        hardened_u1, hardened_v1 = hardened_round_keys(key, 1)[0]
        assert hardened_u1 == whiten_word(standard_u1, 0x5555)
        assert hardened_v1 == whiten_word(standard_v1, 0x4444)


class TestHardenedVictim:
    @settings(max_examples=10)
    @given(keys, st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_encrypt_decrypt_roundtrip(self, key, plaintext):
        victim = HardenedKeyScheduleGift64(key)
        assert victim.decrypt(victim.encrypt(plaintext)) == plaintext

    def test_not_standard_gift(self):
        key = random.Random(3).getrandbits(128)
        assert HardenedKeyScheduleGift64(key).encrypt(0) != \
            Gift64(key).encrypt(0)


class TestAttackDefeat:
    def test_grinch_fails_key_verification(self, random_key):
        """The channel still leaks the *effective* round keys, but they
        no longer concatenate into the master key — the attack's final
        verification must fail."""
        victim = HardenedKeyScheduleGift64(random_key)
        attack = GrinchAttack(victim, AttackConfig(seed=8))
        with pytest.raises(KeyVerificationFailed):
            attack.recover_master_key()

    def test_leak_persists_but_attack_is_defeated(self, random_key):
        report = evaluate_hardened_schedule(random_key, seed=8,
                                            encryptions=100)
        assert report.attack_defeated
        assert report.protected_leakage.leaks  # channel NOT removed
        assert report.failure_mode == "KeyVerificationFailed"

    def test_grinch_still_recovers_effective_round_one_key(self,
                                                           random_key):
        """Honesty check mirroring the paper's caveat: the countermeasure
        protects the *master key reconstruction*, not the access
        channel.  The effective (whitened) round-1 key is still fully
        recoverable."""
        victim = HardenedKeyScheduleGift64(random_key)
        attack = GrinchAttack(victim, AttackConfig(seed=9))
        outcome = attack.attack_first_round()
        assert outcome.recovered_bits == 32
        recovered = outcome.outcome.estimate.as_round_key()
        assert recovered == hardened_round_keys(random_key, 1)[0]
