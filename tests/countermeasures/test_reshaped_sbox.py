"""Tests for countermeasure 1: the reshaped 8x8-bit S-box table."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry
from repro.countermeasures.evaluation import (
    evaluate_reshaped_sbox,
    profile_leakage,
)
from repro.countermeasures.reshaped_sbox import (
    RECOMMENDED_GEOMETRY,
    RESHAPED_ROWS,
    RESHAPED_SBOX_ROWS,
    ReshapedSboxGift64,
    reshaped_lookup,
)
from repro.gift.cipher import Gift64
from repro.gift.sbox import GIFT_SBOX

keys = st.integers(min_value=0, max_value=(1 << 128) - 1)


class TestPackedTable:
    def test_eight_rows(self):
        assert len(RESHAPED_SBOX_ROWS) == RESHAPED_ROWS == 8

    def test_rows_pack_two_entries(self):
        for row in range(8):
            packed = RESHAPED_SBOX_ROWS[row]
            assert packed & 0xF == GIFT_SBOX[2 * row]
            assert packed >> 4 == GIFT_SBOX[2 * row + 1]

    @pytest.mark.parametrize("index", range(16))
    def test_lookup_decodes_correctly(self, index):
        assert reshaped_lookup(index) == GIFT_SBOX[index]

    def test_lookup_bounds(self):
        with pytest.raises(ValueError):
            reshaped_lookup(16)


class TestFunctionalEquivalence:
    @settings(max_examples=15)
    @given(keys, st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_ciphertexts_unchanged(self, key, plaintext):
        """The countermeasure only changes the memory layout, never the
        cipher output."""
        assert ReshapedSboxGift64(key).encrypt(plaintext) == \
            Gift64(key).encrypt(plaintext)


class TestAddressFootprint:
    def test_all_accesses_within_eight_bytes(self):
        victim = ReshapedSboxGift64(random.Random(1).getrandbits(128))
        trace = victim.encrypt_traced(0x1234567890ABCDEF, max_rounds=4)
        sbox_addresses = {
            a.address for a in trace if a.table == "sbox"
        }
        base = victim.layout.sbox_base
        assert sbox_addresses <= set(range(base, base + 8))

    def test_single_line_under_recommended_geometry(self):
        assert RECOMMENDED_GEOMETRY.line_words == 8
        victim = ReshapedSboxGift64(0)
        lines = {
            RECOMMENDED_GEOMETRY.line_of(a)
            for a in victim.table_addresses()
        }
        assert len(lines) == 1

    def test_low_index_bit_never_reaches_the_address(self):
        victim = ReshapedSboxGift64(0)
        assert victim.sbox_row_address(6) == victim.sbox_row_address(7)
        assert victim.sbox_row_address(6) != victim.sbox_row_address(8)


class TestChannelElimination:
    def test_no_varying_lines_under_recommended_geometry(self, random_key):
        summary = profile_leakage(
            ReshapedSboxGift64(random_key), RECOMMENDED_GEOMETRY,
            encryptions=100, seed=4,
        )
        assert summary.monitored_lines == 1
        assert not summary.leaks
        assert summary.distinct_observations == 1

    def test_unprotected_baseline_does_leak(self, random_key):
        from repro.gift.lut import TracedGift64
        summary = profile_leakage(
            TracedGift64(random_key), CacheGeometry(),
            encryptions=100, seed=4,
        )
        assert summary.leaks

    def test_full_evaluation_defeats_the_attack(self, random_key):
        report = evaluate_reshaped_sbox(random_key, seed=3,
                                        encryptions=100)
        assert report.attack_defeated
        assert not report.recovered_key_matches
        assert report.baseline_leakage.leaks
        assert not report.protected_leakage.leaks
        assert report.failure_mode is not None
