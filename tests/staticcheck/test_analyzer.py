"""Analyzer unit tests: one canonical fixture per sink kind, plus the
propagation and suppression paths."""

from repro.cache.geometry import CacheGeometry
from repro.staticcheck import SinkKind, analyze_module_source

from . import fixtures


def kinds(findings):
    return sorted(f.kind for f in findings)


class TestTableLookupSink:
    def test_secret_indexed_lookup_is_flagged(self):
        findings = analyze_module_source(fixtures.LEAKY_TABLE_LOOKUP)
        lookups = [f for f in findings if f.kind is SinkKind.TABLE_LOOKUP]
        assert len(lookups) == 1
        finding = lookups[0]
        assert finding.expression == "SBOX[index]"
        assert finding.table_bytes == 16
        assert finding.leak_bits == 4.0  # 16 lines of 1 byte
        assert finding.function == "sub_cells"

    def test_public_index_is_clean(self):
        assert analyze_module_source(fixtures.SAFE_PUBLIC_INDEX) == []

    def test_secret_value_public_index_is_clean(self):
        assert analyze_module_source(
            fixtures.SAFE_SECRET_VALUE_PUBLIC_INDEX) == []

    def test_loop_carried_taint_reaches_later_iterations(self):
        # Round 1 reads SBOX[plaintext] (public); the key only mixes in
        # afterwards.  The fixpoint must still flag the lookup, because
        # from round 2 on the same expression is secret-indexed.
        findings = analyze_module_source(fixtures.LEAKY_THROUGH_LOOP_CARRY)
        assert SinkKind.TABLE_LOOKUP in kinds(findings)

    def test_taint_through_annotated_helper(self):
        findings = analyze_module_source(fixtures.LEAKY_VIA_HELPER_ANNOTATION)
        lookups = [f for f in findings if f.kind is SinkKind.TABLE_LOOKUP]
        assert len(lookups) == 1
        assert lookups[0].function == "helper"

    def test_secret_attributes_class_decorator(self):
        findings = analyze_module_source(fixtures.SECRET_ATTRIBUTE_CLASS)
        lookups = [f for f in findings if f.kind is SinkKind.TABLE_LOOKUP]
        assert [f.function for f in lookups] == ["KeyState.leak"]


class TestBranchSink:
    def test_secret_branch_is_flagged(self):
        findings = analyze_module_source(fixtures.LEAKY_BRANCH)
        assert kinds(findings) == [SinkKind.BRANCH]
        assert findings[0].expression == "master_key & 1"

    def test_declassified_condition_is_clean(self):
        assert analyze_module_source(fixtures.SAFE_DECLASSIFIED) == []


class TestLoopBoundSink:
    def test_secret_while_condition_is_flagged(self):
        findings = analyze_module_source(fixtures.LEAKY_WHILE_LOOP)
        assert SinkKind.LOOP_BOUND in kinds(findings)

    def test_secret_range_bound_is_flagged(self):
        findings = analyze_module_source(fixtures.LEAKY_FOR_RANGE)
        assert SinkKind.LOOP_BOUND in kinds(findings)


class TestMemoryAccessSink:
    def test_secret_address_argument_is_flagged(self):
        findings = analyze_module_source(fixtures.LEAKY_MEMORY_ACCESS)
        assert SinkKind.MEMORY_ADDRESS in kinds(findings)
        address = [f for f in findings
                   if f.kind is SinkKind.MEMORY_ADDRESS][0]
        assert address.function == "load"


class TestSuppression:
    def test_inline_pragmas_silence_findings(self):
        assert analyze_module_source(fixtures.SUPPRESSED_INLINE) == []

    def test_pragma_kind_filter_only_silences_listed_kinds(self):
        source = fixtures.LEAKY_BRANCH.replace(
            "if master_key & 1:",
            "if master_key & 1:  # staticcheck: ignore[table-lookup]",
        )
        findings = analyze_module_source(source)
        assert kinds(findings) == [SinkKind.BRANCH]


class TestGeometryAwareSeverity:
    def test_packed_table_is_info_under_wide_lines(self):
        wide = CacheGeometry(line_words=8)
        findings = analyze_module_source(fixtures.RESHAPED_STYLE_TABLE,
                                         geometry=wide)
        lookups = [f for f in findings if f.kind is SinkKind.TABLE_LOOKUP]
        assert len(lookups) == 1
        assert lookups[0].leak_bits == 0.0
        assert lookups[0].severity.value == "info"

    def test_same_table_leaks_under_narrow_lines(self):
        findings = analyze_module_source(fixtures.RESHAPED_STYLE_TABLE)
        lookups = [f for f in findings if f.kind is SinkKind.TABLE_LOOKUP]
        assert lookups[0].leak_bits == 3.0  # 8 one-byte lines
        assert lookups[0].severity.value == "high"


class TestFingerprints:
    def test_fingerprint_is_line_independent(self):
        original = analyze_module_source(fixtures.LEAKY_BRANCH)
        shifted = analyze_module_source("# a new comment line\n"
                                        + fixtures.LEAKY_BRANCH)
        assert [f.fingerprint for f in original] == \
            [f.fingerprint for f in shifted]
        assert original[0].line != shifted[0].line
