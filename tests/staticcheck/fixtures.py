"""Known-leaky and known-safe source snippets for the analyzer tests.

Each fixture is a self-contained module source string; the tests feed
them to :func:`repro.staticcheck.analyze_module_source` and assert on
the findings.  Keeping them here (rather than inline) makes each sink
kind's canonical example easy to eyeball.
"""

LEAKY_TABLE_LOOKUP = '''
SBOX = (0x1, 0xA, 0x4, 0xC, 0x6, 0xF, 0x3, 0x9,
        0x2, 0xD, 0xB, 0x7, 0x5, 0x0, 0x8, 0xE)

def sub_cells(state, master_key):
    index = (state ^ master_key) & 0xF
    return SBOX[index]
'''

LEAKY_BRANCH = '''
def check(master_key):
    if master_key & 1:
        return 1
    return 0
'''

LEAKY_WHILE_LOOP = '''
def count_bits(master_key):
    total = 0
    while master_key:
        total += master_key & 1
        master_key >>= 1
    return total
'''

LEAKY_FOR_RANGE = '''
def burn(master_key):
    total = 0
    for _ in range(master_key & 0xFF):
        total += 1
    return total
'''

LEAKY_MEMORY_ACCESS = '''
class MemoryAccess:
    def __init__(self, address, round_index=0, segment=0,
                 table="sbox", index=0):
        self.address = address

def load(master_key):
    return MemoryAccess(address=0x1000 + (master_key & 0xF))
'''

LEAKY_VIA_HELPER_ANNOTATION = '''
from repro.staticcheck.secrets import secret_params

SBOX = tuple(range(16))

@secret_params("value")
def helper(value):
    return SBOX[value & 0xF]

def outer(data):
    return helper(data)
'''

LEAKY_THROUGH_LOOP_CARRY = '''
SBOX = tuple(range(16))

def rounds(plaintext, master_key):
    state = plaintext
    for _ in range(4):
        out = SBOX[state & 0xF]
        state = out ^ master_key
    return state
'''

SAFE_PUBLIC_INDEX = '''
SBOX = tuple(range(16))

def sub_cells(state):
    return SBOX[state & 0xF]
'''

SAFE_DECLASSIFIED = '''
from repro.staticcheck.secrets import declassify

SBOX = tuple(range(16))

def self_test(master_key):
    ok = declassify(master_key != 0)
    if ok:
        return SBOX[3]
    return 0
'''

SAFE_SECRET_VALUE_PUBLIC_INDEX = '''
def read(master_key, table_of_secrets):
    # Reading secret *data* at a public address is not an access leak.
    return table_of_secrets[3] ^ master_key
'''

SUPPRESSED_INLINE = '''
SBOX = tuple(range(16))

def sub_cells(master_key):
    if master_key & 1:  # staticcheck: ignore[branch]
        pass
    return SBOX[master_key & 0xF]  # staticcheck: ignore
'''

RESHAPED_STYLE_TABLE = '''
PACKED = tuple(range(8))

def lookup(master_key):
    row = PACKED[(master_key & 0xF) >> 1]
    return row & 0xF
'''

SECRET_ATTRIBUTE_CLASS = '''
from repro.staticcheck.secrets import secret_attributes

SBOX = tuple(range(16))

@secret_attributes("register")
class KeyState:
    def __init__(self, register):
        self.register = register

    def leak(self):
        return SBOX[self.register & 0xF]
'''
