"""CLI, JSON schema, and baseline round-trip tests."""

import json

import pytest

from repro.staticcheck.cli import main

from . import fixtures

REQUIRED_FINDING_KEYS = {
    "path", "line", "column", "function", "kind", "expression", "message",
    "table", "table_bytes", "leak_bits", "severity", "secret_sources",
    "fingerprint",
}


def write_fixture(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(source)
    return path


class TestExitCodes:
    def test_clean_module_exits_zero(self, tmp_path, capsys):
        path = write_fixture(tmp_path, "safe.py", fixtures.SAFE_PUBLIC_INDEX)
        assert main([str(path)]) == 0

    def test_leaky_module_exits_nonzero(self, tmp_path, capsys):
        path = write_fixture(tmp_path, "leaky.py",
                             fixtures.LEAKY_TABLE_LOOKUP)
        assert main([str(path)]) == 1

    def test_fail_on_high_ignores_medium_branches(self, tmp_path, capsys):
        path = write_fixture(tmp_path, "branchy.py", fixtures.LEAKY_BRANCH)
        assert main([str(path)]) == 1
        assert main([str(path), "--fail-on", "high"]) == 0

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["definitely/not/a/file.txt"]) == 2


class TestJsonReport:
    def test_schema(self, tmp_path, capsys):
        path = write_fixture(tmp_path, "leaky.py",
                             fixtures.LEAKY_TABLE_LOOKUP)
        main([str(path), "--json"])
        report = json.loads(capsys.readouterr().out)
        assert report["version"] == 1
        assert report["tool"] == "repro.staticcheck"
        assert set(report["geometry"]) == {
            "total_lines", "ways", "line_words", "word_bytes", "line_bytes",
            "preset",
        }
        assert report["findings"], "expected at least one finding"
        for finding in report["findings"]:
            assert REQUIRED_FINDING_KEYS <= set(finding)
        summary = report["summary"]
        assert summary["findings"] == len(report["findings"])
        assert summary["worst_severity"] in ("info", "medium", "high")

    def test_geometry_flag_changes_leak_bits(self, tmp_path, capsys):
        path = write_fixture(tmp_path, "packed.py",
                             fixtures.RESHAPED_STYLE_TABLE)
        main([str(path), "--json", "--fail-on", "high"])
        narrow = json.loads(capsys.readouterr().out)
        main([str(path), "--json", "--line-words", "8", "--fail-on", "high"])
        wide = json.loads(capsys.readouterr().out)
        lookup_bits = [f["leak_bits"] for f in narrow["findings"]
                       if f["kind"] == "table-lookup"]
        assert lookup_bits == [3.0]
        lookup_bits = [f["leak_bits"] for f in wide["findings"]
                       if f["kind"] == "table-lookup"]
        assert lookup_bits == [0.0]

    def test_named_preset_is_recorded_and_applied(self, tmp_path, capsys):
        path = write_fixture(tmp_path, "packed.py",
                             fixtures.RESHAPED_STYLE_TABLE)
        main([str(path), "--json", "--geometry", "paper-8word",
              "--fail-on", "high"])
        report = json.loads(capsys.readouterr().out)
        assert report["geometry"]["preset"] == "paper-8word"
        assert report["geometry"]["line_bytes"] == 8
        main([str(path), "--json", "--geometry", "arm",
              "--fail-on", "high"])
        arm = json.loads(capsys.readouterr().out)
        assert arm["geometry"]["preset"] == "arm"
        assert arm["geometry"]["line_bytes"] == 64

    def test_preset_and_line_words_are_mutually_exclusive(self, tmp_path,
                                                          capsys):
        path = write_fixture(tmp_path, "packed.py",
                             fixtures.RESHAPED_STYLE_TABLE)
        with pytest.raises(SystemExit) as excinfo:
            main([str(path), "--geometry", "arm", "--line-words", "8"])
        assert excinfo.value.code == 2


class TestBaselineRoundTrip:
    def test_write_then_suppress(self, tmp_path, capsys):
        source = write_fixture(tmp_path, "leaky.py",
                               fixtures.LEAKY_TABLE_LOOKUP)
        baseline = tmp_path / "baseline.json"
        assert main([str(source), "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()

        # With the baseline applied, the same findings are suppressed.
        assert main([str(source), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

        # The baseline file is itself a valid JSON report.
        report = json.loads(baseline.read_text())
        assert report["tool"] == "repro.staticcheck"
        assert all("fingerprint" in f for f in report["findings"])

    def test_new_leak_still_fails_against_old_baseline(self, tmp_path,
                                                       capsys):
        source = write_fixture(tmp_path, "leaky.py",
                               fixtures.LEAKY_TABLE_LOOKUP)
        baseline = tmp_path / "baseline.json"
        main([str(source), "--write-baseline", str(baseline)])
        capsys.readouterr()
        source.write_text(source.read_text() + fixtures.LEAKY_BRANCH)
        assert main([str(source), "--baseline", str(baseline)]) == 1

    def test_missing_baseline_is_usage_error(self, tmp_path, capsys):
        source = write_fixture(tmp_path, "leaky.py",
                               fixtures.LEAKY_TABLE_LOOKUP)
        assert main([str(source), "--baseline",
                     str(tmp_path / "absent.json")]) == 2

    def test_rewrite_keeps_suppressed_entries(self, tmp_path, capsys):
        source = write_fixture(tmp_path, "leaky.py",
                               fixtures.LEAKY_TABLE_LOOKUP)
        baseline = tmp_path / "baseline.json"
        main([str(source), "--write-baseline", str(baseline)])
        first = json.loads(baseline.read_text())["findings"]
        # Regenerating against the existing baseline must not drop the
        # already-suppressed findings from the new file.
        main([str(source), "--baseline", str(baseline),
              "--write-baseline", str(baseline)])
        second = json.loads(baseline.read_text())["findings"]
        assert {f["fingerprint"] for f in first} == \
            {f["fingerprint"] for f in second}
