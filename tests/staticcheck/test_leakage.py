"""Quantitative leakage analyzer: exact per-site figures, the committed
budget gate, and the analytic-vs-measured cross-validation."""

import ast
import json
from pathlib import Path

import pytest

from repro.cache.geometry import geometry_preset
from repro.staticcheck.leakage import (
    PINNED_SEED0_ENCRYPTIONS,
    VALIDATION_SLACK,
    analyze_leakage,
    build_layout_index,
    check_budget,
    collect_layout_declarations,
    compute_budget,
    load_budget,
    main,
    predicted_full_key_encryptions,
    write_budget,
)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SRC = REPO_ROOT / "src" / "repro"

#: A packed table with an explicit layout declaration: 16 secret values,
#: two per byte, so the low index bit never reaches the address bus.
DECLARED_PACKED = '''
from repro.staticcheck.equivalence import declare_table_layout

PACKED = (0x01, 0x23, 0x45, 0x67, 0x89, 0xAB, 0xCD, 0xEF)
declare_table_layout("PACKED", module=__name__, domain=16,
                     entry_bytes=1, values_per_entry=2)

def lookup(master_key):
    index = master_key & 0xF
    row = PACKED[index >> 1]
    return row & 0xF
'''

#: The same module with the packing declaration dropped to one value per
#: entry: the 16-value domain now spans 16 bytes and leaks one bit even
#: under 8-byte lines.
DECLARED_UNPACKED = DECLARED_PACKED.replace("values_per_entry=2",
                                            "values_per_entry=1")

PAPER = geometry_preset("paper")
EIGHT_BYTE_LINES = geometry_preset("paper-8word")


def write_module(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(source)
    return path


class TestLayoutDiscovery:
    def test_declaration_is_statically_discoverable(self):
        tree = ast.parse(DECLARED_PACKED)
        layouts = collect_layout_declarations(tree, "fixturemod")
        assert set(layouts) == {"fixturemod.PACKED"}
        layout = layouts["fixturemod.PACKED"]
        assert (layout.domain, layout.values_per_entry) == (16, 2)

    def test_module_name_dunder_resolves_to_scanned_module(self, tmp_path):
        path = write_module(tmp_path, "packedmod.py", DECLARED_PACKED)
        index = build_layout_index([path])
        assert "packedmod.PACKED" in index

    def test_undeclared_tables_fall_back_to_inferred_shape(self, tmp_path):
        path = write_module(tmp_path, "plain.py",
                            "SBOX = tuple(range(16))\n")
        index = build_layout_index([path])
        layout = index["plain.SBOX"]
        assert (layout.domain, layout.values_per_entry) == (16, 1)

    def test_victim_sbox_declarations_are_discovered(self):
        index = build_layout_index([SRC / "gift" / "sbox.py"])
        assert "repro.gift.sbox.GIFT_SBOX" in index


class TestAnalyzeLeakage:
    def site_for(self, report, table_suffix):
        sites = [s for s in report.sites
                 if s.finding.table and s.finding.table.endswith(table_suffix)]
        assert sites, f"no site for table *{table_suffix}"
        return sites[0]

    def test_gift_sbox_computes_exactly_four_bits(self):
        report = analyze_leakage([str(SRC / "gift")], PAPER)
        site = self.site_for(report, "GIFT_SBOX")
        assert site.bits_exact == 4.0
        assert site.bits_bound == 4.0
        assert (site.class_count, site.domain) == (16, 16)

    def test_reshaped_sbox_computes_exactly_zero_bits(self):
        report = analyze_leakage(
            [str(SRC / "countermeasures" / "reshaped_sbox.py")],
            EIGHT_BYTE_LINES,
        )
        site = self.site_for(report, "RESHAPED_SBOX_ROWS")
        assert site.bits_exact == 0.0
        assert site.bits_bound == 0.0
        assert site.class_count == 1

    def test_declared_packing_beats_byte_footprint_heuristic(self, tmp_path):
        path = write_module(tmp_path, "packedmod.py", DECLARED_PACKED)
        report = analyze_leakage([str(path)], PAPER)
        site = self.site_for(report, "PACKED")
        # The declaration carries the 16-value domain; the fallback
        # would have seen only the 8 physical entries.
        assert site.domain == 16
        assert site.bits_exact == 3.0

    def test_branch_sites_carry_one_bit_bound(self, tmp_path):
        path = write_module(tmp_path, "branchy.py",
                            "def f(master_key):\n"
                            "    return 1 if master_key & 1 else 0\n")
        report = analyze_leakage([str(path)], PAPER)
        branch = [s for s in report.sites
                  if s.finding.kind.value == "branch"]
        assert branch and branch[0].bits_bound == 1.0
        assert branch[0].bits_exact is None

    def test_unquantified_sites_counted_not_zeroed(self, tmp_path):
        path = write_module(tmp_path, "opaque.py",
                            "def f(master_key, mystery):\n"
                            "    return mystery[master_key & 0xF]\n")
        report = analyze_leakage([str(path)], PAPER)
        assert report.unquantified_sites == 1
        assert report.quantified_bound_bits == 0.0

    def test_report_serialises_with_preset(self, tmp_path):
        path = write_module(tmp_path, "packedmod.py", DECLARED_PACKED)
        report = analyze_leakage([str(path)], EIGHT_BYTE_LINES,
                                 preset="paper-8word")
        data = report.to_dict()
        assert data["geometry"]["preset"] == "paper-8word"
        assert data["summary"]["sites"] == len(data["sites"])


class TestBudgetGate:
    PRESETS = ("paper", "paper-8word")

    def test_budget_round_trips_and_passes_clean(self, tmp_path):
        path = write_module(tmp_path, "packedmod.py", DECLARED_PACKED)
        budget = compute_budget([str(path)], presets=self.PRESETS)
        target = tmp_path / "budget.json"
        write_budget(budget, target)
        assert check_budget(compute_budget([str(path)],
                                           presets=self.PRESETS),
                            load_budget(target)) == []

    def test_raised_bound_is_a_regression(self, tmp_path):
        path = write_module(tmp_path, "packedmod.py", DECLARED_PACKED)
        committed = compute_budget([str(path)], presets=self.PRESETS)
        # Unpacking the table raises the paper-8word bound 0.0 -> 1.0.
        path.write_text(DECLARED_UNPACKED)
        violations = check_budget(
            compute_budget([str(path)], presets=self.PRESETS), committed
        )
        assert any(v.startswith("REGRESSION[paper-8word]")
                   for v in violations)

    def test_new_site_is_a_regression(self, tmp_path):
        path = write_module(tmp_path, "packedmod.py", DECLARED_PACKED)
        committed = compute_budget([str(path)], presets=self.PRESETS)
        path.write_text(DECLARED_PACKED +
                        "\ndef extra(master_key):\n"
                        "    return PACKED[(master_key >> 4) & 0x7]\n")
        violations = check_budget(
            compute_budget([str(path)], presets=self.PRESETS), committed
        )
        assert any("new leakage site" in v for v in violations)

    def test_improvement_is_stale_not_silent(self, tmp_path):
        path = write_module(tmp_path, "packedmod.py", DECLARED_UNPACKED)
        committed = compute_budget([str(path)], presets=self.PRESETS)
        path.write_text(DECLARED_PACKED)
        violations = check_budget(
            compute_budget([str(path)], presets=self.PRESETS), committed
        )
        assert violations, "a lowered bound must demand regeneration"
        assert all(v.startswith("STALE") for v in violations)

    def test_missing_preset_is_stale(self, tmp_path):
        path = write_module(tmp_path, "packedmod.py", DECLARED_PACKED)
        committed = compute_budget([str(path)], presets=self.PRESETS)
        current = compute_budget([str(path)], presets=("paper",))
        assert any("paper-8word" in v for v in check_budget(current,
                                                            committed))

    def test_committed_repo_budget_matches_recomputation(self):
        committed_path = REPO_ROOT / "leakage-budget.json"
        if not committed_path.exists():
            pytest.skip("repo leakage budget not present")
        committed = load_budget(committed_path)
        current = compute_budget([str(SRC)],
                                 presets=tuple(committed["presets"]))
        assert check_budget(current, committed) == []


class TestCli:
    def test_default_run_reports_sites(self, tmp_path, capsys):
        path = write_module(tmp_path, "packedmod.py", DECLARED_PACKED)
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "exact=3" in out

    def test_geometry_preset_flag(self, tmp_path, capsys):
        path = write_module(tmp_path, "packedmod.py", DECLARED_PACKED)
        assert main([str(path), "--geometry", "paper-8word", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["geometry"]["preset"] == "paper-8word"
        packed = [s for s in report["sites"]
                  if s["table"] and s["table"].endswith("PACKED")]
        assert packed[0]["bits_exact"] == 0.0

    def test_write_then_check_budget(self, tmp_path, capsys):
        path = write_module(tmp_path, "packedmod.py", DECLARED_PACKED)
        budget = tmp_path / "budget.json"
        assert main([str(path), "--write-budget", str(budget)]) == 0
        assert main([str(path), "--check-budget", str(budget)]) == 0
        path.write_text(DECLARED_UNPACKED)
        assert main([str(path), "--check-budget", str(budget)]) == 1

    def test_missing_budget_is_usage_error(self, tmp_path, capsys):
        path = write_module(tmp_path, "packedmod.py", DECLARED_PACKED)
        assert main([str(path), "--check-budget",
                     str(tmp_path / "absent.json")]) == 2

    def test_staticcheck_cli_dispatches_leakage(self, tmp_path, capsys):
        from repro.staticcheck.cli import main as staticcheck_main

        path = write_module(tmp_path, "packedmod.py", DECLARED_PACKED)
        assert staticcheck_main(["leakage", str(path)]) == 0
        assert "exact=3" in capsys.readouterr().out


class TestCrossValidation:
    def test_class_count_prediction_matches_pinned_recovery(self):
        predicted = predicted_full_key_encryptions(16)
        ratio = PINNED_SEED0_ENCRYPTIONS / predicted
        assert 1.0 / VALIDATION_SLACK <= ratio <= VALIDATION_SLACK

    def test_zero_class_channel_would_predict_unbounded_effort(self):
        # One equivalence class = nothing to eliminate: the model
        # degenerates (no elimination events), guarding against reading
        # a 0-bit channel as "cheap to attack".
        assert predicted_full_key_encryptions(1) == 0.0

    def test_validate_against_measured_end_to_end(self):
        from repro.staticcheck.leakage import validate_against_measured

        result = validate_against_measured(runs=2)
        assert result.failures == ()
        assert result.pinned_encryptions == PINNED_SEED0_ENCRYPTIONS
        assert result.class_count == 16
        assert result.measured_bits_per_encryption <= \
            result.bits_bound_per_observation
