"""Observation-equivalence enumeration: partitions, layouts, bounds."""

import math

import pytest

from repro.cache.geometry import (
    GEOMETRY_PRESETS,
    CacheGeometry,
    geometry_preset,
    preset_name_of,
)
from repro.staticcheck.equivalence import (
    TABLE_LAYOUTS,
    ObservationPartition,
    TableAccessLayout,
    composed_rounds_bound,
    declare_table_layout,
    declared_layout,
    partition_by_observation,
    refine,
)

PAPER = geometry_preset("paper")
EIGHT_BYTE_LINES = geometry_preset("paper-8word")


class TestPartition:
    def test_identity_observation_gives_singletons(self):
        partition = partition_by_observation(16, lambda v: v)
        assert partition.class_count == 16
        assert partition.min_entropy_bits == 4.0
        assert partition.shannon_bits == 4.0
        assert partition.is_uniform

    def test_constant_observation_gives_one_class(self):
        partition = partition_by_observation(16, lambda v: 0)
        assert partition.class_count == 1
        assert partition.min_entropy_bits == 0.0
        assert partition.shannon_bits == 0.0

    def test_pairing_observation_gives_three_bits(self):
        partition = partition_by_observation(16, lambda v: v >> 1)
        assert partition.class_count == 8
        assert partition.shannon_bits == 3.0

    def test_nonuniform_shannon_below_min_entropy(self):
        # 3 classes of sizes 1/1/14: capacity log2(3), Shannon lower.
        partition = partition_by_observation(16, lambda v: min(v, 2))
        assert partition.class_count == 3
        assert not partition.is_uniform
        assert partition.shannon_bits < partition.min_entropy_bits
        assert partition.min_entropy_bits == pytest.approx(math.log2(3))

    def test_class_of_maps_every_value(self):
        partition = partition_by_observation(16, lambda v: v % 3)
        for value in range(16):
            assert value in partition.class_of(value)

    def test_channel_matrix_rows_are_deterministic(self):
        partition = partition_by_observation(8, lambda v: v // 4)
        matrix = partition.channel_matrix()
        assert len(matrix) == 8
        for value, row in enumerate(matrix):
            assert sum(row) == pytest.approx(1.0)
            column = partition.classes.index(partition.class_of(value))
            assert row[column] == 1.0

    def test_partition_must_cover_domain(self):
        with pytest.raises(ValueError):
            ObservationPartition(classes=((0, 1),), domain=4)


class TestRefine:
    def test_refining_with_constant_is_identity(self):
        first = partition_by_observation(16, lambda v: v >> 2)
        joint = refine(first, partition_by_observation(16, lambda v: 0))
        assert joint.classes == first.classes

    def test_two_coarse_views_can_identify_the_secret(self):
        high = partition_by_observation(16, lambda v: v >> 2)
        low = partition_by_observation(16, lambda v: v & 0x3)
        joint = refine(high, low)
        assert joint.class_count == 16
        assert joint.min_entropy_bits == 4.0

    def test_domain_mismatch_rejected(self):
        with pytest.raises(ValueError):
            refine(partition_by_observation(8, lambda v: v),
                   partition_by_observation(16, lambda v: v))


class TestComposedRoundsBound:
    def test_caps_at_secret_size(self):
        assert composed_rounds_bound(4.0, observations=100,
                                     secret_bits=128) == 128.0

    def test_linear_below_the_cap(self):
        assert composed_rounds_bound(4.0, observations=3,
                                     secret_bits=128) == 12.0

    def test_zero_bit_channel_composes_to_zero(self):
        assert composed_rounds_bound(0.0, observations=10 ** 6,
                                     secret_bits=128) == 0.0


class TestTableAccessLayout:
    def test_gift_sbox_under_paper_geometry_is_four_bits(self):
        layout = TableAccessLayout(domain=16, entry_bytes=1)
        partition = layout.partition(PAPER)
        assert partition.class_count == 16
        assert layout.leaked_bits(PAPER) == 4.0

    def test_reshaped_sbox_under_8byte_lines_is_zero_bits(self):
        layout = TableAccessLayout(domain=16, entry_bytes=1,
                                   values_per_entry=2)
        assert layout.leaked_bits(EIGHT_BYTE_LINES) == 0.0
        assert layout.partition(EIGHT_BYTE_LINES).class_count == 1

    def test_reshaped_sbox_under_paper_geometry_is_three_bits(self):
        layout = TableAccessLayout(domain=16, entry_bytes=1,
                                   values_per_entry=2)
        assert layout.leaked_bits(PAPER) == 3.0

    def test_wide_entries_span_more_lines(self):
        # 4-byte entries under 4-byte lines: one line per entry.
        layout = TableAccessLayout(domain=16, entry_bytes=4)
        assert layout.leaked_bits(geometry_preset("paper-4word")) == 4.0

    def test_base_offset_can_split_classes(self):
        aligned = TableAccessLayout(domain=16, entry_bytes=1)
        shifted = TableAccessLayout(domain=16, entry_bytes=1, base_offset=4)
        geometry = CacheGeometry(line_words=8)
        # 16 aligned bytes fill two 8-byte lines; shifting by 4 makes
        # the table straddle three.
        assert aligned.partition(geometry).class_count == 2
        assert shifted.partition(geometry).class_count == 3

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            TableAccessLayout(domain=0)
        with pytest.raises(ValueError):
            TableAccessLayout(domain=16, values_per_entry=0)


class TestDeclarationRegistry:
    def test_declare_registers_qualified_name(self):
        layout = declare_table_layout(
            "TEST_TABLE", module="tests.fake.module", domain=16,
            entry_bytes=1, values_per_entry=2,
        )
        try:
            assert declared_layout("tests.fake.module.TEST_TABLE") is layout
        finally:
            TABLE_LAYOUTS.pop("tests.fake.module.TEST_TABLE", None)

    def test_victim_modules_register_their_layouts(self):
        import repro.countermeasures.reshaped_sbox  # noqa: F401
        import repro.gift.sbox  # noqa: F401

        sbox = declared_layout("repro.gift.sbox.GIFT_SBOX")
        assert sbox is not None and sbox.leaked_bits(PAPER) == 4.0
        packed = declared_layout(
            "repro.countermeasures.reshaped_sbox.RESHAPED_SBOX_ROWS"
        )
        assert packed is not None
        assert packed.leaked_bits(EIGHT_BYTE_LINES) == 0.0


class TestGeometryPresets:
    def test_paper_preset_is_the_default_geometry(self):
        assert geometry_preset("paper") == CacheGeometry()

    def test_preset_names_round_trip(self):
        for name in GEOMETRY_PRESETS:
            assert preset_name_of(geometry_preset(name)) == name

    def test_unknown_preset_raises_with_known_names(self):
        with pytest.raises(KeyError, match="paper"):
            geometry_preset("xeon")
