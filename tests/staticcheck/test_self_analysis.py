"""Self-analysis acceptance tests: the analyzer's verdicts on this
repository's own victim implementations must match the paper.

* ``gift/lut.py``'s SubCells S-box load is flagged as a 4-bit leak
  under the paper's 1-byte-line L1 (Section III: the observed address
  reveals the full S-box input).
* ``countermeasures/reshaped_sbox.py``'s packed-table lookup reports
  **zero** line-granularity leak bits under ``RECOMMENDED_GEOMETRY``
  (Section IV-C: the 8-byte table fills exactly one 8-byte line).
* The committed repo baseline covers every finding in ``src/repro``.
"""

from pathlib import Path

import pytest

from repro.countermeasures.reshaped_sbox import RECOMMENDED_GEOMETRY
from repro.staticcheck import SinkKind, analyze_paths
from repro.staticcheck.baseline import (
    apply_baseline,
    load_baseline_fingerprints,
)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SRC = REPO_ROOT / "src" / "repro"


def findings_for(path, **kwargs):
    findings, _ = analyze_paths([str(path)], **kwargs)
    return findings


class TestGiftLut:
    def test_sbox_lookup_is_flagged(self):
        findings = findings_for(SRC / "gift")
        sbox_lookups = [
            f for f in findings
            if f.kind is SinkKind.TABLE_LOOKUP
            and f.table == "repro.gift.sbox.GIFT_SBOX"
            and f.path.endswith("gift/lut.py")
        ]
        assert sbox_lookups, "the GRINCH channel must be detected"
        assert all(f.leak_bits == 4.0 for f in sbox_lookups), \
            "16-byte S-box under 1-byte lines leaks the full 4-bit index"

    def test_traced_address_stream_is_flagged(self):
        findings = findings_for(SRC / "gift" / "lut.py")
        assert any(f.kind is SinkKind.MEMORY_ADDRESS for f in findings)


class TestReshapedSboxCountermeasure:
    def test_zero_leak_bits_under_recommended_geometry(self):
        findings = findings_for(SRC / "countermeasures" / "reshaped_sbox.py",
                                geometry=RECOMMENDED_GEOMETRY)
        lookups = [f for f in findings if f.kind is SinkKind.TABLE_LOOKUP]
        assert lookups, "the protected lookup should still be visible"
        assert all(f.leak_bits == 0.0 for f in lookups)
        # Branch sinks keep their 1-bit-per-predicate bound even under
        # the recommended geometry; only the table channel closes.
        assert sum(f.leak_bits or 0.0 for f in findings
                   if f.kind is SinkKind.TABLE_LOOKUP) == 0.0

    def test_still_leaks_under_paper_default_geometry(self):
        # Without the prescribed 8-byte line the countermeasure is
        # incomplete: 8 rows over 1-byte lines still expose 3 bits.
        findings = findings_for(SRC / "countermeasures" / "reshaped_sbox.py")
        reshaped = [
            f for f in findings
            if f.table and f.table.endswith("RESHAPED_SBOX_ROWS")
        ]
        assert reshaped and reshaped[0].leak_bits == 3.0


class TestPresent:
    def test_present_sbox_layer_is_flagged(self):
        findings = findings_for(SRC / "present" / "cipher.py")
        assert any(
            f.kind is SinkKind.TABLE_LOOKUP
            and f.table == "repro.present.cipher.PRESENT_SBOX"
            for f in findings
        )


class TestBitslicedBackends:
    """The batch fabric's whole point: S-boxes as boolean networks
    mean no secret-indexed loads, so the analyzer must find zero
    table-lookup sinks in either bitsliced module."""

    @pytest.mark.parametrize("module", ["gift", "present"])
    def test_no_table_lookup_sinks(self, module):
        findings = findings_for(SRC / module / "bitsliced.py")
        lookups = [f for f in findings if f.kind is SinkKind.TABLE_LOOKUP]
        assert lookups == [], [f.expression for f in lookups]

    @pytest.mark.parametrize("module", ["gift", "present"])
    def test_no_secret_address_sinks(self, module):
        findings = findings_for(SRC / module / "bitsliced.py")
        assert not any(f.kind is SinkKind.MEMORY_ADDRESS for f in findings)


class TestRepoBaseline:
    @pytest.fixture
    def baseline_path(self):
        path = REPO_ROOT / "staticcheck-baseline.json"
        if not path.exists():
            pytest.skip("repo baseline not present")
        return path

    def test_src_tree_is_fully_baselined(self, baseline_path):
        findings, _ = analyze_paths([str(SRC)])
        kept, suppressed = apply_baseline(
            findings, load_baseline_fingerprints(baseline_path)
        )
        assert kept == [], (
            "new unbaselined leak findings:\n"
            + "\n".join(f"  {f.path}:{f.line} {f.kind.value} {f.expression}"
                        for f in kept)
        )
        assert suppressed, "baseline should cover the known victim leaks"
