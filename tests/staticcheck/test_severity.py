"""Severity-model tests: the leak-bits formula against cache geometry."""

import pytest

from repro.cache.geometry import CacheGeometry, PAPER_DEFAULT_GEOMETRY
from repro.staticcheck import leak_bits_for_table


class TestLinesSpanned:
    def test_exact_multiples(self):
        geometry = CacheGeometry(line_words=8)
        assert geometry.lines_spanned(8) == 1
        assert geometry.lines_spanned(16) == 2

    def test_rounds_up(self):
        geometry = CacheGeometry(line_words=8)
        assert geometry.lines_spanned(1) == 1
        assert geometry.lines_spanned(9) == 2

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            PAPER_DEFAULT_GEOMETRY.lines_spanned(0)


class TestLeakBits:
    def test_paper_default_sbox(self):
        # 16-byte S-box, 1-byte lines: the full 4-bit index is visible.
        assert leak_bits_for_table(16, PAPER_DEFAULT_GEOMETRY) == 4.0

    @pytest.mark.parametrize("line_words,expected", [
        (1, 4.0), (2, 3.0), (4, 2.0), (8, 1.0),
    ])
    def test_table1_line_sweep(self, line_words, expected):
        # Table I's sweep: each doubling of the line hides one index bit.
        geometry = CacheGeometry(line_words=line_words)
        assert leak_bits_for_table(16, geometry) == expected

    def test_reshaped_table_vanishes_at_recommended_line(self):
        # Section IV-C: 8-byte packed table + 8-byte line = one line.
        assert leak_bits_for_table(8, CacheGeometry(line_words=8)) == 0.0

    def test_rejects_empty_table(self):
        with pytest.raises(ValueError):
            leak_bits_for_table(0, PAPER_DEFAULT_GEOMETRY)


class TestRuntimeMarkers:
    def test_secret_params_is_runtime_noop(self):
        from repro.staticcheck.secrets import secret_params

        @secret_params("x")
        def f(x):
            return x + 1

        assert f(1) == 2
        assert f.__staticcheck_secret_params__ == frozenset({"x"})

    def test_declassify_is_identity(self):
        from repro.staticcheck.secrets import declassify

        assert declassify(41) == 41
