"""The import-layering checker as a library: the real channel package
must be clean, and each rule must fire on a synthetic violator."""

from repro.staticcheck.layering import (
    BANNED_MODULES,
    CHANNEL_LAYERS,
    CIPHER_PACKAGES,
    FORBIDDEN_PREFIXES,
    TARGETS_FORBIDDEN,
    check_channel_layering,
    check_package_layering,
    main,
)


def make_channel(tmp_path, modules):
    channel = tmp_path / "channel"
    channel.mkdir()
    for name, source in modules.items():
        (channel / f"{name}.py").write_text(source)
    return channel


CLEAN_STACK = {
    "monitor": "STATE = {}\n",
    "primitive": "from repro.channel.monitor import STATE\n",
    "transport": "from repro.channel.primitive import STATE\n",
    "degradation": "from repro.channel.transport import STATE\n",
    "defender": "from repro.channel.degradation import STATE\n",
    "observer": "from repro.channel.defender import STATE\n",
    "__init__": "from repro.channel.observer import STATE\n",
}


class TestRealPackage:
    def test_shipped_channel_package_is_compliant(self):
        assert check_channel_layering() == []

    def test_layer_table_is_acyclic_l1_to_l4(self):
        # Strictly increasing indices over the documented stack order
        # guarantee "import strictly downward" admits no cycle.
        order = ["monitor", "primitive", "transport", "degradation",
                 "defender", "observer", "__init__"]
        assert sorted(CHANNEL_LAYERS, key=CHANNEL_LAYERS.get) == order
        assert len(set(CHANNEL_LAYERS.values())) == len(CHANNEL_LAYERS)

    def test_consumer_packages_are_forbidden(self):
        assert "repro.core" in FORBIDDEN_PREFIXES
        assert "repro.engine" in FORBIDDEN_PREFIXES


class TestSyntheticViolations:
    def test_clean_synthetic_stack_passes(self, tmp_path):
        channel = make_channel(tmp_path, CLEAN_STACK)
        assert check_channel_layering(channel) == []

    def test_upward_import_is_flagged(self, tmp_path):
        modules = dict(CLEAN_STACK)
        modules["primitive"] = "import repro.channel.transport\n"
        channel = make_channel(tmp_path, modules)
        violations = check_channel_layering(channel)
        assert len(violations) == 1
        assert "strictly downward" in violations[0]
        assert "repro.channel.primitive" in violations[0]

    def test_same_layer_import_is_flagged(self, tmp_path):
        # "Strictly lower" also forbids sideways imports of yourself's
        # layer — here observer importing observer via the package.
        modules = dict(CLEAN_STACK)
        modules["degradation"] = \
            "from repro.channel import degradation as me\n"
        channel = make_channel(tmp_path, modules)
        assert any("strictly downward" in v
                   for v in check_channel_layering(channel))

    def test_relative_upward_import_is_resolved(self, tmp_path):
        modules = dict(CLEAN_STACK)
        modules["transport"] = "from . import observer\n"
        channel = make_channel(tmp_path, modules)
        violations = check_channel_layering(channel)
        assert any("repro.channel.observer" in v for v in violations)

    def test_forbidden_core_import_is_flagged(self, tmp_path):
        modules = dict(CLEAN_STACK)
        modules["observer"] = ("from repro.channel.degradation import STATE\n"
                               "from repro.core.attack import GrinchAttack\n")
        channel = make_channel(tmp_path, modules)
        violations = check_channel_layering(channel)
        assert len(violations) == 1
        assert "must not import its consumers" in violations[0]

    def test_forbidden_engine_import_is_flagged(self, tmp_path):
        modules = dict(CLEAN_STACK)
        modules["monitor"] = "import repro.engine\n"
        channel = make_channel(tmp_path, modules)
        assert any("repro.engine" in v
                   for v in check_channel_layering(channel))

    def test_unassigned_module_is_flagged(self, tmp_path):
        modules = dict(CLEAN_STACK)
        modules["rogue"] = "x = 1\n"
        channel = make_channel(tmp_path, modules)
        violations = check_channel_layering(channel)
        assert any("no assigned layer" in v for v in violations)

    def test_missing_package_reports_rather_than_crashes(self, tmp_path):
        violations = check_channel_layering(tmp_path / "nonexistent")
        assert violations and "not found" in violations[0]


def make_src(tmp_path, files):
    """Lay out a synthetic src/repro tree; keys are repro-relative
    paths like ``core/attack.py``."""
    src = tmp_path / "src"
    for rel, source in files.items():
        path = src / "repro" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return src


class TestPackageLayering:
    def test_shipped_tree_is_compliant(self):
        assert check_package_layering() == []

    def test_rule_tables_cover_the_refactor(self):
        assert set(CIPHER_PACKAGES) == {"repro.gift", "repro.present"}
        assert "repro.core" in TARGETS_FORBIDDEN
        assert "repro.channel" in TARGETS_FORBIDDEN
        assert "repro.core.runner" in BANNED_MODULES
        assert "repro.variants.observations" in BANNED_MODULES

    def test_gift_import_outside_targets_is_flagged(self, tmp_path):
        src = make_src(tmp_path, {
            "core/attack.py": "from ..gift.lut import TracedGift64\n",
        })
        violations = check_package_layering(src)
        assert len(violations) == 1
        assert "go through repro.targets" in violations[0]

    def test_targets_may_import_ciphers(self, tmp_path):
        src = make_src(tmp_path, {
            "targets/gift.py": "from ..gift.cipher import Gift64\n",
            "targets/present.py": "import repro.present.cipher\n",
            "gift/__init__.py": "from .lut import TracedGift64\n",
        })
        assert check_package_layering(src) == []

    def test_targets_importing_the_pipeline_is_flagged(self, tmp_path):
        src = make_src(tmp_path, {
            "targets/rogue.py": "from ..core.attack import GrinchAttack\n",
        })
        violations = check_package_layering(src)
        assert len(violations) == 1
        assert "must not import the pipeline" in violations[0]

    def test_core_may_import_targets(self, tmp_path):
        src = make_src(tmp_path, {
            "core/attack.py": "from ..targets.registry import get_target\n",
        })
        assert check_package_layering(src) == []

    def test_deleted_shim_import_is_flagged(self, tmp_path):
        src = make_src(tmp_path, {
            "engine/thing.py": "from repro.core.runner import Runner\n",
        })
        violations = check_package_layering(src)
        assert any("deprecation shim" in v for v in violations)

    def test_from_import_of_a_shim_submodule_is_flagged(self, tmp_path):
        src = make_src(tmp_path, {
            "engine/thing.py": "from repro.variants import observations\n",
        })
        violations = check_package_layering(src)
        assert any("repro.variants.observations" in v for v in violations)

    def test_missing_tree_reports_rather_than_crashes(self, tmp_path):
        violations = check_package_layering(tmp_path / "nowhere")
        assert violations and "not found" in violations[0]


class TestCliExitCodes:
    def test_clean_package_exits_zero(self, tmp_path, capsys):
        channel = make_channel(tmp_path, CLEAN_STACK)
        assert main([str(channel)]) == 0
        assert "layering OK" in capsys.readouterr().out

    def test_violating_package_exits_one(self, tmp_path, capsys):
        modules = dict(CLEAN_STACK)
        modules["primitive"] = "import repro.channel.observer\n"
        channel = make_channel(tmp_path, modules)
        assert main([str(channel)]) == 1
        assert "violation" in capsys.readouterr().err
