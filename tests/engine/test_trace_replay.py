"""E18 — the trace-replay experiment over the golden corpus."""

from pathlib import Path

import pytest

from repro.engine import get as get_experiment, run_experiment
from repro.engine.replay import DEFAULT_TRACES, _replay_plan

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


class TestRegistration:
    def test_resolvable_by_name_id_and_alias(self):
        for key in ("trace_replay", "E18", "trace-replay", "replay",
                    "e18"):
            assert get_experiment(key).name == "trace_replay"

    def test_default_traces_exist(self):
        for path_text in DEFAULT_TRACES:
            assert (REPO_ROOT / path_text).is_file(), path_text


class TestPlan:
    def test_cells_carry_content_digests(self):
        plans = _replay_plan({"traces": ",".join(DEFAULT_TRACES)})
        assert len(plans) == len(DEFAULT_TRACES)
        for plan in plans:
            assert len(plan.cell["sha256"]) == 64
            assert plan.cell["scope"] in ("full-key", "first-round")
            assert plan.trials == 1

    def test_empty_traces_rejected(self):
        with pytest.raises(ValueError):
            _replay_plan({"traces": " , "})


class TestRun:
    def test_full_corpus_replays_and_matches(self):
        record = run_experiment("trace_replay", use_cache=False)
        assert record["summary"]["traces"] == len(DEFAULT_TRACES)
        assert record["summary"]["all_recovered"] is True
        assert record["summary"]["all_match_recording"] is True
        for cell in record["cells"]:
            assert cell["matches_recording"] is True
            assert cell["windows_left"] == 0

    def test_single_trace_subset(self):
        record = run_experiment(
            "trace_replay",
            {"traces": "tests/corpus/gift64-seed0-full.grtr"},
            use_cache=False,
        )
        assert len(record["cells"]) == 1
        cell = record["cells"][0]
        assert cell["encryptions"] == 464
        assert cell["recovered"] is True
