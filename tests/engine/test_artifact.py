"""The JSON result-artifact schema and its validator."""

import copy

import pytest

from repro.engine import run_experiment
from repro.engine.artifact import (
    SCHEMA_ID,
    ArtifactSchemaError,
    trial_summary,
    validate_record,
)


@pytest.fixture(scope="module")
def record():
    """A real (small) engine record to mutate in the schema tests."""
    return run_experiment("table2", {"frequencies_mhz": (25,)},
                          use_cache=False)


class TestValidateRecord:
    def test_real_record_validates(self, record):
        validate_record(record)

    def test_schema_id_is_versioned(self, record):
        assert record["schema"] == SCHEMA_ID == "repro.engine/result/v1"

    @pytest.mark.parametrize("field", [
        "schema", "experiment", "experiment_id", "title",
        "params", "cells", "summary", "telemetry",
    ])
    def test_missing_top_level_field_rejected(self, record, field):
        broken = copy.deepcopy(record)
        del broken[field]
        with pytest.raises(ArtifactSchemaError):
            validate_record(broken)

    def test_wrong_schema_id_rejected(self, record):
        broken = copy.deepcopy(record)
        broken["schema"] = "repro.engine/result/v0"
        with pytest.raises(ArtifactSchemaError):
            validate_record(broken)

    def test_cell_without_coordinates_rejected(self, record):
        broken = copy.deepcopy(record)
        del broken["cells"][0]["cell"]
        with pytest.raises(ArtifactSchemaError):
            validate_record(broken)

    def test_bad_cache_state_rejected(self, record):
        broken = copy.deepcopy(record)
        broken["telemetry"]["cache"] = "stale"
        with pytest.raises(ArtifactSchemaError):
            validate_record(broken)

    @pytest.mark.parametrize("field", [
        "workers", "trials_total", "wall_time_s", "trials_per_s",
        "cache_key", "code_fingerprint",
    ])
    def test_missing_telemetry_field_rejected(self, record, field):
        broken = copy.deepcopy(record)
        del broken["telemetry"][field]
        with pytest.raises(ArtifactSchemaError):
            validate_record(broken)

    def test_record_is_json_round_trippable(self, record):
        import json

        validate_record(json.loads(json.dumps(record)))


class TestTrialSummary:
    def test_empty_is_none(self):
        assert trial_summary([]) is None

    def test_stats(self):
        summary = trial_summary([1, 2, 3])
        assert summary == {"mean": 2.0, "min": 1.0, "max": 3.0, "n": 3}
