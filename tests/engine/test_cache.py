"""The content-addressed result cache."""

import json

from repro.engine import run_experiment
from repro.engine.cache import ResultCache, cache_key, results_dir


class TestCacheKey:
    def test_stable_for_identical_inputs(self):
        params = {"runs": 2, "seed": 0}
        assert (cache_key("figure3", params, "f" * 64)
                == cache_key("figure3", params, "f" * 64))

    def test_param_order_is_irrelevant(self):
        assert (cache_key("t", {"a": 1, "b": 2}, "f" * 64)
                == cache_key("t", {"b": 2, "a": 1}, "f" * 64))

    def test_changes_with_params(self):
        assert (cache_key("t", {"seed": 0}, "f" * 64)
                != cache_key("t", {"seed": 1}, "f" * 64))

    def test_changes_with_code_fingerprint(self):
        assert (cache_key("t", {"seed": 0}, "a" * 64)
                != cache_key("t", {"seed": 0}, "b" * 64))

    def test_changes_with_experiment(self):
        assert (cache_key("figure3", {}, "f" * 64)
                != cache_key("table1", {}, "f" * 64))


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        record = {"schema": "x", "cells": [1, 2, 3]}
        path = cache.store("exp", "k" * 64, record)
        assert path.exists()
        assert cache.lookup("exp", "k" * 64) == record

    def test_miss(self, tmp_path):
        assert ResultCache(tmp_path).lookup("exp", "0" * 64) is None

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.path_for("exp", "c" * 64)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.lookup("exp", "c" * 64) is None


class TestResultsDir:
    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert results_dir() == tmp_path

    def test_default_is_benchmarks_results(self, monkeypatch):
        monkeypatch.delenv("REPRO_RESULTS_DIR", raising=False)
        path = results_dir()
        assert path.parts[-2:] == ("benchmarks", "results")


class TestEngineCacheIntegration:
    PARAMS = {"frequencies_mhz": (25,)}

    def test_miss_then_hit(self, tmp_path):
        first = run_experiment("table2", self.PARAMS, cache_root=tmp_path)
        assert first["telemetry"]["cache"] == "miss"
        second = run_experiment("table2", self.PARAMS, cache_root=tmp_path)
        assert second["telemetry"]["cache"] == "hit"
        assert second["cells"] == first["cells"]

    def test_param_change_misses(self, tmp_path):
        run_experiment("table2", self.PARAMS, cache_root=tmp_path)
        other = run_experiment(
            "table2", {"frequencies_mhz": (50,)}, cache_root=tmp_path
        )
        assert other["telemetry"]["cache"] == "miss"

    def test_code_change_misses(self, tmp_path, monkeypatch):
        run_experiment("table2", self.PARAMS, cache_root=tmp_path)
        monkeypatch.setattr("repro.engine.engine.code_fingerprint",
                            lambda: "0" * 64)
        stale = run_experiment("table2", self.PARAMS, cache_root=tmp_path)
        assert stale["telemetry"]["cache"] == "miss"

    def test_disabled_cache_reports_disabled(self, tmp_path):
        record = run_experiment("table2", self.PARAMS, use_cache=False,
                                cache_root=tmp_path)
        assert record["telemetry"]["cache"] == "disabled"
        assert not list(tmp_path.rglob("*.json"))

    def test_artifact_written(self, tmp_path):
        run_experiment("table2", self.PARAMS, use_cache=False,
                       artifact_dir=tmp_path)
        artifact = json.loads((tmp_path / "table2.json").read_text())
        assert artifact["experiment"] == "table2"
