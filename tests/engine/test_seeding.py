"""The one seed-derivation rule everything else builds on."""

import pytest

from repro.seeding import (
    canonical,
    derive_key,
    derive_rng,
    derive_seed,
    trial_seed,
)


class TestCanonical:
    def test_dict_order_is_irrelevant(self):
        assert canonical({"a": 1, "b": 2}) == canonical({"b": 2, "a": 1})

    def test_tuples_and_lists_coincide(self):
        assert canonical((1, 2, 3)) == canonical([1, 2, 3])

    def test_nested_structures(self):
        assert (canonical({"cases": ((1, 2), (3, 4))})
                == canonical({"cases": [[1, 2], [3, 4]]}))


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed("x", 1) == derive_seed("x", 1)

    def test_scope_separates_streams(self):
        assert derive_seed("runner-noise", 0) != derive_seed("trial", 0)

    def test_none_is_a_valid_reproducible_seed(self):
        assert derive_seed("s", None) == derive_seed("s", None)
        assert derive_seed("s", None) != derive_seed("s", 0)

    def test_fits_a_63_bit_int(self):
        for part in range(64):
            assert 0 <= derive_seed("range", part) < 1 << 63


class TestDeriveRng:
    def test_same_parts_same_stream(self):
        a, b = derive_rng("t", 5), derive_rng("t", 5)
        assert [a.random() for _ in range(4)] == \
            [b.random() for _ in range(4)]

    def test_different_parts_different_stream(self):
        assert derive_rng("t", 5).random() != derive_rng("t", 6).random()


class TestDeriveKey:
    @pytest.mark.parametrize("bits", [64, 80, 128])
    def test_width(self, bits):
        key = derive_key(bits, "victim", 0)
        assert 0 <= key < 1 << bits

    def test_deterministic(self):
        assert derive_key(128, "victim", 3) == derive_key(128, "victim", 3)

    def test_keys_differ_across_scopes(self):
        assert derive_key(128, "a", 0) != derive_key(128, "b", 0)


class TestTrialSeed:
    def test_independent_of_param_ordering(self):
        cell = {"probing_round": 1, "use_flush": True}
        assert (trial_seed("figure3", {"runs": 2, "seed": 0}, cell, 0)
                == trial_seed("figure3", {"seed": 0, "runs": 2}, cell, 0))

    def test_varies_with_trial_index(self):
        cell = {"probing_round": 1}
        seeds = {trial_seed("figure3", {}, cell, i) for i in range(16)}
        assert len(seeds) == 16

    def test_varies_with_experiment_and_cell(self):
        params = {"seed": 0}
        assert (trial_seed("figure3", params, {"c": 1}, 0)
                != trial_seed("table1", params, {"c": 1}, 0))
        assert (trial_seed("figure3", params, {"c": 1}, 0)
                != trial_seed("figure3", params, {"c": 2}, 0))
