"""E20 (stealth vs effort) engine integration: registration, worker
determinism, the detectability ordering, and the hierarchy
countermeasure row."""

import pytest

from repro.engine import run_experiment, validate_record
from repro.engine.registry import get

#: A fast E20 slice: same-core frontier only, both flush primitives.
SMALL_RUN = {
    "runs": 2,
    "scope": "first_round",
    "primitives": "flush_reload,flush_flush",
    "scenarios": "same_core",
}

#: The mobile-SoC rows alone (Flush+Reload over the random-replacement
#: hierarchy, inclusive vs exclusive).
MOBILE_RUN = {
    "runs": 1,
    "scope": "first_round",
    "primitives": "flush_reload",
    "scenarios": "mobile_soc_inclusive,mobile_soc_exclusive",
}


class TestRegistration:
    def test_resolvable_by_name_id_and_alias(self):
        assert get("stealth_vs_effort").experiment_id == "E20"
        assert get("E20").name == "stealth_vs_effort"
        assert get("stealth-vs-effort").name == "stealth_vs_effort"
        assert get("e20").name == "stealth_vs_effort"

    def test_unknown_primitive_rejected(self):
        with pytest.raises(ValueError, match="unknown primitive"):
            run_experiment("stealth_vs_effort",
                           {**SMALL_RUN, "primitives": "evict_reload"},
                           workers=1, use_cache=False)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_experiment("stealth_vs_effort",
                           {**SMALL_RUN, "scenarios": "smartwatch"},
                           workers=1, use_cache=False)


class TestWorkerDeterminism:
    def test_parallel_equals_serial(self):
        serial = run_experiment("stealth_vs_effort", SMALL_RUN,
                                workers=1, use_cache=False)
        parallel = run_experiment("stealth_vs_effort", SMALL_RUN,
                                  workers=2, use_cache=False)
        assert serial["cells"] == parallel["cells"]
        assert serial["summary"] == parallel["summary"]
        assert parallel["telemetry"]["workers"] == 2


class TestFrontier:
    def test_record_shape_and_stealth_ordering(self):
        record = run_experiment("stealth_vs_effort", SMALL_RUN,
                                workers=1, use_cache=False)
        validate_record(record)
        flush_reload, flush_flush = record["cells"]
        assert flush_reload["cell"]["primitive"] == "flush_reload"
        assert flush_reload["success_rate"] == 1.0
        assert flush_flush["success_rate"] == 1.0

        # Every trial carries the defender's verdict.
        for cell in record["cells"]:
            for trial in cell["trials"]:
                assert trial["defender"]["windows"] == \
                    trial["encryptions"]

        summary = record["summary"]
        # The acceptance bar: Flush+Flush is *strictly* stealthier at
        # <= 2x the effort.
        assert summary["flush_flush_stealthier"]
        assert summary["flush_flush_effort_ratio"] <= 2.0
        assert flush_flush["detectability"] == 0.0
        assert flush_flush["detection_rate"] == 0.0
        assert flush_reload["detectability"] > 0.0

    def test_prime_probe_is_the_loudest(self):
        record = run_experiment(
            "stealth_vs_effort",
            {**SMALL_RUN, "runs": 1,
             "primitives": "flush_reload,prime_probe,flush_flush"},
            workers=1, use_cache=False,
        )
        summary = record["summary"]
        assert summary["prime_probe_most_detectable"]
        frontier = summary["frontier"]
        assert frontier["prime_probe"]["detection_rate"] == 1.0
        assert frontier["prime_probe"]["detectability"] > \
            frontier["flush_reload"]["detectability"]

    def test_render_lists_every_row(self):
        experiment = get("stealth_vs_effort")
        record = run_experiment("stealth_vs_effort", SMALL_RUN,
                                workers=1, use_cache=False)
        table = experiment.render(record)
        assert "E20" in table
        assert "flush_reload" in table and "flush_flush" in table
        assert "Detectability" in table


class TestMobileSoc:
    def test_exclusive_hierarchy_is_a_countermeasure(self):
        record = run_experiment("stealth_vs_effort", MOBILE_RUN,
                                workers=1, use_cache=False)
        validate_record(record)
        summary = record["summary"]
        assert summary["hierarchy_countermeasure_holds"]
        frontier = summary["frontier"]
        assert frontier["mobile_soc_inclusive"]["success_rate"] == 1.0
        assert frontier["mobile_soc_exclusive"]["success_rate"] == 0.0
        # Mobile rows are priced in NoC wall-clock.
        for cell in record["cells"]:
            assert cell["estimated_attack_seconds"] > 0.0


class TestDefenderTransparency:
    def test_watched_seed0_recovery_still_takes_464_encryptions(self):
        """The RNG-transparency pin at engine level: running the
        seed-0 full-key attack under the defender leaves the effort
        bit-identical to the unwatched channel (tests/channel pins the
        unwatched number to 464)."""
        from repro.channel import DefenderObserver, ObservationChannel
        from repro.core.attack import GrinchAttack
        from repro.core.config import AttackConfig
        from repro.seeding import derive_key
        from repro.targets.gift import TracedGift64

        key = derive_key(128, 0)
        victim = TracedGift64(key)
        defender = DefenderObserver()
        config = AttackConfig(seed=0)
        result = GrinchAttack(
            victim, config,
            runner=ObservationChannel(victim, config, defender=defender),
        ).recover_master_key()
        assert result.master_key == key
        assert result.total_encryptions == 464
        assert defender.report().windows == 464
