"""E14 (noise robustness) engine integration: determinism and caching."""

import pytest

from repro.engine import run_experiment, validate_record
from repro.engine.params import Param, spec
from repro.engine.registry import get

#: A deliberately small E14 sweep: two cells, two trials each.
SMALL_SWEEP = {
    "runs": 2,
    "miss_probabilities": [0.0, 0.2],
    "eviction_rates": [0.0],
}


class TestRegistration:
    def test_resolvable_by_name_id_and_alias(self):
        assert get("noise_robustness").experiment_id == "E14"
        assert get("E14").name == "noise_robustness"
        assert get("noise-robustness").name == "noise_robustness"

    def test_float_list_params_parse_cli_strings(self):
        experiment = get("noise_robustness")
        param = experiment.spec.get("miss_probabilities")
        assert param.parse("0.0,0.25") == (0.0, 0.25)
        assert experiment.spec.get("eviction_rates").parse("0.5") == (0.5,)

    def test_float_list_rejects_non_numbers(self):
        with pytest.raises((TypeError, ValueError)):
            spec(Param("xs", "float_list", (0.0,), "test")).resolve(
                {"xs": ("a", "b")}
            )


class TestWorkerDeterminism:
    def test_parallel_equals_serial(self):
        serial = run_experiment("noise_robustness", SMALL_SWEEP,
                                workers=1, use_cache=False)
        parallel = run_experiment("noise_robustness", SMALL_SWEEP,
                                  workers=2, use_cache=False)
        assert serial["cells"] == parallel["cells"]
        assert serial["summary"] == parallel["summary"]
        assert parallel["telemetry"]["workers"] == 2


class TestRecord:
    def test_record_is_schema_valid_with_confidence(self):
        record = run_experiment("noise_robustness", SMALL_SWEEP,
                                workers=1, use_cache=False)
        validate_record(record)
        lossless, lossy = record["cells"]
        assert lossless["success_rate"] == 1.0
        # Lossless voting telemetry pins full confidence; the lossy
        # cell reports the (lower) minimum over its trials.
        assert lossless["confidence"]["min"] == 1.0
        if lossy["confidence"] is not None:
            assert lossy["confidence"]["min"] <= 1.0
        assert record["summary"]["budget"] == lossless["budget"]

    def test_second_run_is_a_cache_hit(self, tmp_path):
        first = run_experiment("noise_robustness", SMALL_SWEEP,
                               workers=1, cache_root=tmp_path)
        assert first["telemetry"]["cache"] == "miss"
        second = run_experiment("noise_robustness", SMALL_SWEEP,
                                workers=2, cache_root=tmp_path)
        assert second["telemetry"]["cache"] == "hit"
        assert second["cells"] == first["cells"]

    def test_render_mentions_budget(self):
        experiment = get("noise_robustness")
        record = run_experiment("noise_robustness", SMALL_SWEEP,
                                workers=1, use_cache=False)
        table = experiment.render(record)
        assert "E14" in table
        assert "1,906" in table
