"""Parallel trial execution: determinism at any worker count."""

import os
import time

import pytest

from repro.engine import run_experiment
from repro.engine.budget import FULL_EFFORT, QUICK_EFFORT, full_mode
from repro.engine.executor import ExecutionStats, build_tasks
from repro.engine.registry import get
from repro.seeding import trial_seed

#: A deliberately small Fig. 3 sweep — a few hundred encryptions total.
SMALL_SWEEP = {"probing_rounds": (1, 2), "runs": 2}


class TestBuildTasks:
    def test_seeds_are_position_independent(self):
        experiment = get("figure3")
        params = experiment.spec.resolve(SMALL_SWEEP)
        plan = experiment.plan(params)
        tasks = build_tasks(experiment, params, plan)
        # Every task's seed is re-derivable from its own coordinates
        # alone — nothing about the task list's length or order enters.
        for cell_index, (name, task_params, cell, trial_index, seed) in tasks:
            assert seed == trial_seed(name, task_params, cell, trial_index)
            assert plan[cell_index].cell == cell

    def test_trial_counts_follow_the_plan(self):
        experiment = get("figure3")
        params = experiment.spec.resolve(SMALL_SWEEP)
        plan = experiment.plan(params)
        tasks = build_tasks(experiment, params, plan)
        assert len(tasks) == sum(cell_plan.trials for cell_plan in plan)


class TestWorkerDeterminism:
    def test_parallel_equals_serial(self):
        serial = run_experiment("figure3", SMALL_SWEEP, workers=1,
                                use_cache=False)
        parallel = run_experiment("figure3", SMALL_SWEEP, workers=2,
                                  use_cache=False)
        assert serial["cells"] == parallel["cells"]
        assert serial["summary"] == parallel["summary"]
        assert parallel["telemetry"]["workers"] == 2

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            run_experiment("figure3", SMALL_SWEEP, workers=0,
                           use_cache=False)


@pytest.mark.slow
@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="speedup needs >= 4 physical cores")
def test_four_workers_halve_the_wall_clock():
    """ISSUE acceptance: >= 2x speedup at 4 workers on a quick sweep."""
    sweep = {"runs": 4}

    def timed(workers):
        started = time.perf_counter()
        run_experiment("table1", sweep, workers=workers, use_cache=False)
        return time.perf_counter() - started

    serial, parallel = timed(1), timed(4)
    assert parallel < serial / 2.0


class TestExecutionStats:
    def test_trials_per_s(self):
        assert ExecutionStats(trials=10, workers=1,
                              wall_time_s=2.0).trials_per_s == 5.0

    def test_zero_wall_time(self):
        assert ExecutionStats(trials=10, workers=1,
                              wall_time_s=0.0).trials_per_s == 0.0


class TestBudget:
    def test_quick_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert not full_mode()

    def test_repro_full_selects_the_drop_out_budget(self, monkeypatch):
        from repro.engine.budget import simulated_effort_budget

        monkeypatch.setenv("REPRO_FULL", "1")
        assert full_mode()
        assert simulated_effort_budget() == FULL_EFFORT
        monkeypatch.setenv("REPRO_FULL", "0")
        assert simulated_effort_budget() == QUICK_EFFORT
