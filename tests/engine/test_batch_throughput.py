"""E19 — the batch-throughput experiment over the execution fabric."""

import pytest

from repro.engine import get as get_experiment, run_experiment
from repro.engine.batchperf import DEFAULT_TARGETS, _plan
from repro.gift.bitsliced import numpy_available

SMALL = {"blocks": 48, "batch_size": 16, "traced_blocks": 8}


class TestRegistration:
    def test_resolvable_by_name_id_and_alias(self):
        for key in ("batch_throughput", "E19", "batch-throughput",
                    "batchperf", "e19"):
            assert get_experiment(key).name == "batch_throughput"

    def test_default_targets_are_the_bitsliced_ones(self):
        assert DEFAULT_TARGETS == ("gift64", "gift128", "present80")


class TestPlan:
    def test_one_cell_per_target(self):
        plans = _plan({"targets": "gift64,present80", "blocks": 16,
                       "batch_size": 4})
        assert [plan.cell["target"] for plan in plans] \
            == ["gift64", "present80"]
        assert all(plan.trials == 1 for plan in plans)

    def test_empty_targets_rejected(self):
        with pytest.raises(ValueError):
            _plan({"targets": " , ", "blocks": 16, "batch_size": 4})

    def test_bad_counts_rejected(self):
        with pytest.raises(ValueError):
            _plan({"targets": "gift64", "blocks": 0, "batch_size": 4})
        with pytest.raises(ValueError):
            _plan({"targets": "gift64", "blocks": 16, "batch_size": 0})


class TestRun:
    def test_equivalence_asserted_for_all_targets(self):
        record = run_experiment("batch_throughput", SMALL,
                                use_cache=False)
        assert record["summary"]["targets"] == len(DEFAULT_TARGETS)
        assert record["summary"]["all_equivalent"] is True
        expected_vectorized = (len(DEFAULT_TARGETS) if numpy_available()
                               else 0)
        assert record["summary"]["vectorized_targets"] \
            == expected_vectorized
        for cell in record["cells"]:
            assert cell["equivalent"] is True
            assert cell["traced_equivalent"] is True
            assert cell["blocks"] == SMALL["blocks"]
            assert len(cell["checksum"]) == 16

    def test_scalar_fallback_target_passes_too(self):
        record = run_experiment(
            "batch_throughput", {**SMALL, "targets": "giftcofb"},
            use_cache=False,
        )
        cell = record["cells"][0]
        assert cell["vectorized"] is False
        assert cell["equivalent"] is True

    def test_deterministic_at_any_worker_count(self):
        # Per-trial seeds fold in only experiment/params/cell/index, so
        # the whole record's cells are bit-identical however the fan-out
        # is scheduled.
        solo = run_experiment("batch_throughput", SMALL, use_cache=False)
        fanned = run_experiment("batch_throughput", SMALL, workers=2,
                                use_cache=False)
        assert solo["cells"] == fanned["cells"]
        assert solo["summary"] == fanned["summary"]

    def test_untimed_runs_record_no_clock_fields(self):
        record = run_experiment("batch_throughput",
                                {**SMALL, "targets": "gift64"},
                                use_cache=False)
        cell = record["cells"][0]
        assert "batch_blocks_per_s" not in cell
        assert "speedup" not in cell

    def test_timed_opt_in_records_throughput(self):
        record = run_experiment(
            "batch_throughput",
            {**SMALL, "targets": "gift64", "timed": True},
            use_cache=False,
        )
        cell = record["cells"][0]
        assert cell["batch_blocks_per_s"] > 0
        assert cell["scalar_blocks_per_s"] > 0
        assert cell["speedup"] > 0
