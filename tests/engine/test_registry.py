"""The declarative experiment registry (tentpole: one index for E1-E14)."""

import pytest

from repro.engine import experiment_ids, get, names, register
from repro.engine.params import Param, spec
from repro.engine.registry import CellPlan, Experiment

#: Every experiment DESIGN.md names, by its index ID.
DESIGN_IDS = [f"E{i}" for i in range(1, 21)]


class TestBuiltinRegistry:
    @pytest.mark.parametrize("experiment_id", DESIGN_IDS)
    def test_every_design_id_resolves(self, experiment_id):
        experiment = get(experiment_id)
        assert experiment.experiment_id == experiment_id

    def test_names_cover_the_design_index(self):
        assert set(experiment_ids()) == set(DESIGN_IDS)

    def test_lookup_by_name_and_id_agree(self):
        assert get("figure3") is get("E1")
        assert get("table1") is get("E2")

    def test_aliases(self):
        assert get("fig3") is get("figure3")

    def test_unknown_name_lists_the_known_ones(self):
        with pytest.raises(KeyError) as excinfo:
            get("figure99")
        assert "figure3" in str(excinfo.value)

    def test_every_experiment_has_a_plan_and_spec(self):
        for name in names():
            experiment = get(name)
            params = experiment.spec.resolve({})
            plan = experiment.plan(params)
            assert plan, f"{name} plans no cells"
            assert all(isinstance(c, CellPlan) for c in plan)

    def test_param_specs_reject_unknown_overrides(self):
        with pytest.raises(ValueError):
            get("figure3").spec.resolve({"no_such_param": 1})


class TestRegister:
    def test_colliding_key_is_rejected(self):
        experiment = Experiment(
            name="dup_test",
            experiment_id="E1",  # collides with the builtin figure3
            title="duplicate",
            spec=spec(Param("seed", "int", 0, "seed")),
            plan=lambda params: [CellPlan(cell={}, trials=1)],
            trial=lambda params, cell, index, seed: 0,
            finalize=lambda params, cell, trials: {"cell": cell},
        )
        with pytest.raises(ValueError):
            register(experiment)
