"""E15 (primitive comparison) engine integration: determinism, caching,
and the Flush+Flush <= 2x Flush+Reload acceptance bound."""

import pytest

from repro.engine import run_experiment, validate_record
from repro.engine.registry import get

#: A fast E15 slice: round-1 scope, the two fast-path primitives.
SMALL_RUN = {
    "runs": 2,
    "scope": "first_round",
    "primitives": "flush_reload,flush_flush",
}


class TestRegistration:
    def test_resolvable_by_name_id_and_alias(self):
        assert get("primitive_comparison").experiment_id == "E15"
        assert get("E15").name == "primitive_comparison"
        assert get("primitive-comparison").name == "primitive_comparison"
        assert get("e15").name == "primitive_comparison"

    def test_unknown_primitive_rejected(self):
        with pytest.raises(ValueError, match="unknown primitive"):
            run_experiment("primitive_comparison",
                           {**SMALL_RUN, "primitives": "evict_reload"},
                           workers=1, use_cache=False)

    def test_empty_primitive_list_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            run_experiment("primitive_comparison",
                           {**SMALL_RUN, "primitives": " , "},
                           workers=1, use_cache=False)


class TestWorkerDeterminism:
    def test_parallel_equals_serial(self):
        serial = run_experiment("primitive_comparison", SMALL_RUN,
                                workers=1, use_cache=False)
        parallel = run_experiment("primitive_comparison", SMALL_RUN,
                                  workers=2, use_cache=False)
        assert serial["cells"] == parallel["cells"]
        assert serial["summary"] == parallel["summary"]
        assert parallel["telemetry"]["workers"] == 2


class TestRecord:
    def test_record_shape_and_effort_ratio(self):
        record = run_experiment("primitive_comparison", SMALL_RUN,
                                workers=1, use_cache=False)
        validate_record(record)
        flush_reload, flush_flush = record["cells"]
        assert flush_reload["cell"]["primitive"] == "flush_reload"
        assert flush_reload["success_rate"] == 1.0
        assert flush_reload["signal_reliability"] == 1.0
        assert flush_flush["success_rate"] == 1.0
        assert flush_flush["signal_reliability"] < 1.0
        ratios = record["summary"]["effort_vs_flush_reload"]
        assert ratios["flush_reload"] == 1.0
        # The acceptance bar: Flush+Flush's unreliable readout costs at
        # most 2x the Flush+Reload effort on the seeded run.
        assert ratios["flush_flush"] <= 2.0

    def test_second_run_is_a_cache_hit(self, tmp_path):
        first = run_experiment("primitive_comparison", SMALL_RUN,
                               workers=1, cache_root=tmp_path)
        assert first["telemetry"]["cache"] == "miss"
        second = run_experiment("primitive_comparison", SMALL_RUN,
                                workers=2, cache_root=tmp_path)
        assert second["telemetry"]["cache"] == "hit"
        assert second["cells"] == first["cells"]

    def test_render_lists_every_primitive(self):
        experiment = get("primitive_comparison")
        record = run_experiment("primitive_comparison", SMALL_RUN,
                                workers=1, use_cache=False)
        table = experiment.render(record)
        assert "E15" in table
        assert "flush_reload" in table and "flush_flush" in table


@pytest.mark.slow
class TestFullKeyComparison:
    def test_flush_flush_full_key_within_2x(self):
        """The tentpole acceptance criterion at full-key scope: the
        seeded Flush+Flush recovery lands within 2x the Flush+Reload
        effort (measured 1.7x at the default miss profile)."""
        record = run_experiment(
            "primitive_comparison",
            {"runs": 2, "scope": "full_key",
             "primitives": "flush_reload,flush_flush"},
            workers=2, use_cache=False,
        )
        assert record["summary"]["all_recovered"]
        assert record["summary"]["effort_vs_flush_reload"]["flush_flush"] \
            <= 2.0

    def test_prime_probe_full_key_recovers_within_budget(self):
        record = run_experiment(
            "primitive_comparison",
            {"runs": 1, "scope": "full_key", "primitives": "prime_probe"},
            workers=1, use_cache=False,
        )
        (cell,) = record["cells"]
        assert cell["outcomes"] == {"recovered": 1}
