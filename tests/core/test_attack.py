"""End-to-end tests of the GRINCH attack (the paper's core claims)."""

import random

import pytest

from repro.cache.geometry import CacheGeometry
from repro.core.attack import FULL_KEY_ROUNDS, GrinchAttack, recover_full_key
from repro.core.config import AttackConfig
from repro.core.errors import BudgetExceeded
from repro.channel import NoiseModel
from repro.gift.keyschedule import round_keys
from repro.gift.lut import TableLayout, TracedGift64


class TestFullKeyRecovery:
    @pytest.mark.parametrize("key_seed", [1, 2, 3])
    def test_recovers_random_keys_exactly(self, key_seed):
        """The headline claim: the full 128-bit key is recovered."""
        key = random.Random(key_seed).getrandbits(128)
        victim = TracedGift64(key)
        result = GrinchAttack(victim, AttackConfig(seed=key_seed)) \
            .recover_master_key()
        assert result.master_key == key
        assert result.verified

    def test_effort_is_hundreds_of_encryptions(self):
        """"the full key could be recovered with less than 400
        encryptions" — our accounting lands in the same few-hundred
        regime (see EXPERIMENTS.md for the exact comparison)."""
        key = random.Random(42).getrandbits(128)
        result = recover_full_key(TracedGift64(key), AttackConfig(seed=7))
        assert 200 <= result.total_encryptions <= 1000

    def test_each_round_contributes_32_bits(self):
        key = random.Random(5).getrandbits(128)
        result = recover_full_key(TracedGift64(key), AttackConfig(seed=5))
        assert len(result.rounds) == FULL_KEY_ROUNDS
        for outcome in result.rounds:
            assert outcome.estimate.resolved
            assert len(outcome.segments) == 16

    def test_recovered_round_keys_match_schedule(self):
        key = random.Random(6).getrandbits(128)
        victim = TracedGift64(key)
        attack = GrinchAttack(victim, AttackConfig(seed=6))
        result = attack.recover_master_key()
        expected = round_keys(key, 4, width=64)
        for outcome, (u, v) in zip(result.rounds, expected):
            assert outcome.estimate.as_round_key() == (u, v)

    def test_zero_key_edge_case(self):
        result = recover_full_key(TracedGift64(0), AttackConfig(seed=1))
        assert result.master_key == 0

    def test_all_ones_key_edge_case(self):
        key = (1 << 128) - 1
        result = recover_full_key(TracedGift64(key), AttackConfig(seed=2))
        assert result.master_key == key


class TestFirstRoundAttack:
    def test_recovers_first_32_bits(self):
        key = random.Random(11).getrandbits(128)
        victim = TracedGift64(key)
        attack = GrinchAttack(victim, AttackConfig(seed=11))
        result = attack.attack_first_round()
        assert result.recovered_bits == 32
        u, v = result.outcome.estimate.as_round_key()
        assert (u, v) == round_keys(key, 1, width=64)[0]

    def test_effort_roughly_matches_paper_figure3_round1(self):
        """Paper: ~100 encryptions for the 32-bit first-round attack at
        probing round 1."""
        key = random.Random(12).getrandbits(128)
        attack = GrinchAttack(TracedGift64(key), AttackConfig(seed=12))
        result = attack.attack_first_round()
        assert 50 <= result.encryptions <= 400

    def test_later_probing_round_needs_more_encryptions(self):
        key = random.Random(13).getrandbits(128)
        efforts = []
        for probing_round in (1, 3):
            attack = GrinchAttack(
                TracedGift64(key),
                AttackConfig(seed=13, probing_round=probing_round),
            )
            efforts.append(attack.attack_first_round().encryptions)
        assert efforts[1] > efforts[0]

    def test_no_flush_needs_more_encryptions(self):
        key = random.Random(14).getrandbits(128)
        efforts = []
        for use_flush in (True, False):
            attack = GrinchAttack(
                TracedGift64(key),
                AttackConfig(seed=14, use_flush=use_flush),
            )
            efforts.append(attack.attack_first_round().encryptions)
        assert efforts[1] > efforts[0]


class TestWideCacheLines:
    def test_two_word_lines_leave_two_candidates_per_segment(self):
        key = random.Random(21).getrandbits(128)
        attack = GrinchAttack(
            TracedGift64(key),
            AttackConfig(seed=21, geometry=CacheGeometry(line_words=2)),
        )
        result = attack.attack_first_round()
        for candidates in result.outcome.estimate.pair_candidates:
            assert len(candidates) == 2
        assert result.recovered_bits == 16

    def test_full_recovery_with_two_word_lines(self):
        """Section III-D: ambiguity from wide lines is resolved by
        carrying candidates into the next rounds."""
        key = random.Random(22).getrandbits(128)
        config = AttackConfig(
            seed=22, geometry=CacheGeometry(line_words=2),
            max_total_encryptions=None,
        )
        result = recover_full_key(TracedGift64(key), config)
        assert result.master_key == key
        # The verification stage had to run (round-4 ambiguity).
        assert result.verification_encryptions > 0

    @pytest.mark.slow
    def test_full_recovery_with_four_word_lines(self):
        key = random.Random(23).getrandbits(128)
        config = AttackConfig(
            seed=23, geometry=CacheGeometry(line_words=4),
            max_total_encryptions=None,
            max_encryptions_per_segment=2_000_000,
        )
        result = recover_full_key(TracedGift64(key), config)
        assert result.master_key == key


class TestProbeStrategies:
    @pytest.mark.slow
    def test_prime_probe_also_recovers_the_key(self):
        """Prime+Probe works too (Section III-C offers both), but needs
        stall acceptance: the PermBits table keeps two monitored sets
        permanently hot, so its eliminations never fully converge — one
        of the paper's reasons to prefer Flush+Reload."""
        key = random.Random(31).getrandbits(128)
        config = AttackConfig(seed=31, probe_strategy="prime_probe",
                              stall_window=200,
                              max_total_encryptions=None)
        result = recover_full_key(TracedGift64(key), config)
        assert result.master_key == key

    def test_prime_probe_without_stall_acceptance_exhausts_budget(self):
        key = random.Random(32).getrandbits(128)
        config = AttackConfig(seed=32, probe_strategy="prime_probe",
                              max_encryptions_per_segment=2_000,
                              max_total_encryptions=None)
        attack = GrinchAttack(TracedGift64(key), config)
        with pytest.raises(BudgetExceeded):
            attack.attack_first_round()


class TestNoiseRobustness:
    def test_recovery_survives_probe_noise(self):
        key = random.Random(41).getrandbits(128)
        config = AttackConfig(
            seed=41,
            noise=NoiseModel(touch_probability=0.3, monitored_touches=2),
            max_total_encryptions=None,
        )
        result = recover_full_key(TracedGift64(key), config)
        assert result.master_key == key

    def test_noise_increases_effort(self):
        key = random.Random(42).getrandbits(128)
        quiet = recover_full_key(
            TracedGift64(key), AttackConfig(seed=42)
        ).total_encryptions
        noisy = recover_full_key(
            TracedGift64(key),
            AttackConfig(seed=42, noise=NoiseModel(0.5, 3),
                         max_total_encryptions=None),
        ).total_encryptions
        assert noisy > quiet


class TestBudgets:
    def test_total_budget_raises_budget_exceeded(self):
        key = random.Random(51).getrandbits(128)
        config = AttackConfig(seed=51, max_total_encryptions=20)
        with pytest.raises(BudgetExceeded) as excinfo:
            recover_full_key(TracedGift64(key), config)
        assert excinfo.value.encryptions == 20

    def test_per_segment_budget_raises(self):
        key = random.Random(52).getrandbits(128)
        config = AttackConfig(seed=52, probing_round=4,
                              max_encryptions_per_segment=3,
                              max_total_encryptions=None)
        attack = GrinchAttack(TracedGift64(key), config)
        with pytest.raises(BudgetExceeded):
            attack.attack_first_round()


class TestInterfaceContracts:
    def test_layout_mismatch_rejected(self):
        victim = TracedGift64(0, layout=TableLayout(sbox_base=0x8000))
        with pytest.raises(ValueError):
            GrinchAttack(victim, AttackConfig())

    def test_prior_checks(self):
        attack = GrinchAttack(TracedGift64(0), AttackConfig(seed=1))
        with pytest.raises(ValueError):
            attack.attack_round(2, [], None)
        with pytest.raises(ValueError):
            attack.attack_round(1, [(0, 0)], None)

    def test_attack_never_reads_victim_key(self, monkeypatch):
        """Paranoia check: hide the key attribute after construction and
        make sure the attack still works (it only uses the channel)."""
        key = random.Random(61).getrandbits(128)
        victim = TracedGift64(key)
        attack = GrinchAttack(victim, AttackConfig(seed=61))
        monkeypatch.setattr(victim, "master_key", None)
        result = attack.recover_master_key()
        assert result.master_key == key
