"""Tests for the cross-core (shared-L2) attack — the paper's future work."""

import random

import pytest

from repro.cache.multilevel import InclusionPolicy, TwoLevelHierarchy
from repro.core.attack import GrinchAttack
from repro.core.config import AttackConfig
from repro.core.crosscore import CrossCoreRunner, make_cross_core_runner
from repro.core.errors import AttackError
from repro.gift.lut import TracedGift64


@pytest.fixture
def planted():
    key = random.Random(0xCAFE).getrandbits(128)
    return TracedGift64(key), key


class TestInclusiveHierarchy:
    def test_full_recovery_through_shared_l2(self, planted):
        """With an inclusive LLC the hierarchy does not protect GIFT:
        the cross-core attacker recovers the full key."""
        victim, key = planted
        config = AttackConfig(seed=3, max_total_encryptions=None)
        runner = make_cross_core_runner(
            victim, config, InclusionPolicy.INCLUSIVE
        )
        result = GrinchAttack(victim, config, runner=runner) \
            .recover_master_key()
        assert result.master_key == key

    def test_effort_comparable_to_single_level(self, planted):
        """The clflush reset makes the cross-core channel as clean as
        the same-core one."""
        victim, _ = planted
        config = AttackConfig(seed=4, max_total_encryptions=None)
        runner = make_cross_core_runner(
            victim, config, InclusionPolicy.INCLUSIVE
        )
        cross = GrinchAttack(victim, config, runner=runner) \
            .attack_first_round().encryptions
        same = GrinchAttack(victim, config).attack_first_round().encryptions
        assert cross < 4 * same

    def test_observation_matches_l2_contents(self, planted):
        victim, _ = planted
        config = AttackConfig(seed=5)
        runner = make_cross_core_runner(
            victim, config, InclusionPolicy.INCLUSIVE
        )
        observed = runner.observe_encryption(0x123456789ABCDEF0, 1)
        # Exactly the round-2 lines (flush removed round 1).
        round2 = victim.sbox_indices_by_round(0x123456789ABCDEF0, 2)[1]
        expected = {runner.monitor.line_for_index(i) for i in round2}
        assert observed == expected


class TestExclusiveHierarchy:
    def test_blinds_the_attack(self, planted):
        """With an exclusive LLC the S-box never leaves the victim's
        private L1, so the shared level carries (almost) nothing — the
        hierarchy acts as a countermeasure."""
        victim, _ = planted
        config = AttackConfig(seed=6, max_encryptions_per_segment=500,
                              max_total_encryptions=None)
        runner = make_cross_core_runner(
            victim, config, InclusionPolicy.EXCLUSIVE
        )
        attack = GrinchAttack(victim, config, runner=runner)
        with pytest.raises(AttackError):
            attack.recover_master_key()

    def test_only_eviction_spills_surface(self, planted):
        """An exclusive L2 sees a line only when L1 pressure (here: the
        PermBits table) evicts it — a trickle compared to the inclusive
        hierarchy's full footprint, and crucially not guaranteed to
        include the pinned target line, which is what breaks the
        intersection."""
        victim, _ = planted
        rng = random.Random(1)
        plaintexts = [rng.getrandbits(64) for _ in range(30)]
        totals = {}
        for inclusion in (InclusionPolicy.EXCLUSIVE,
                          InclusionPolicy.INCLUSIVE):
            runner = make_cross_core_runner(
                victim, AttackConfig(seed=7), inclusion
            )
            totals[inclusion] = sum(
                len(runner.observe_encryption(p, 1)) for p in plaintexts
            )
        assert totals[InclusionPolicy.EXCLUSIVE] * 4 < \
            totals[InclusionPolicy.INCLUSIVE]


class TestRunnerContracts:
    def test_rejects_prime_probe(self, planted):
        victim, _ = planted
        with pytest.raises(ValueError):
            CrossCoreRunner(
                victim, AttackConfig(probe_strategy="prime_probe")
            )

    def test_rejects_single_core_hierarchy(self, planted):
        victim, _ = planted
        with pytest.raises(ValueError):
            CrossCoreRunner(
                victim, AttackConfig(),
                hierarchy=TwoLevelHierarchy(cores=1),
            )

    def test_rejects_line_size_mismatch(self, planted):
        victim, _ = planted
        from repro.cache.geometry import CacheGeometry
        with pytest.raises(ValueError):
            CrossCoreRunner(
                victim,
                AttackConfig(geometry=CacheGeometry(line_words=8)),
                hierarchy=TwoLevelHierarchy(),  # 1-byte lines
            )

    def test_known_pair_channel(self, planted):
        victim, _ = planted
        config = AttackConfig(seed=8)
        runner = make_cross_core_runner(
            victim, config, InclusionPolicy.INCLUSIVE
        )
        assert runner.known_pair(0x42) == victim.encrypt(0x42)
