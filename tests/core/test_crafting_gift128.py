"""Crafting soundness for GIFT-128 targets.

Mirrors the GIFT-64 crafting tests: a crafted plaintext, encrypted
under the true key, must make the monitored access hit exactly the
predicted index — with the 128-bit layout (key bits on nibble offsets
1/2, 32 segments).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.crafting import PlaintextCrafter
from repro.core.recover import expected_index
from repro.core.target_bits import set_target_bits
from repro.gift.cipher import Gift128
from repro.gift.keyschedule import round_keys

keys = st.integers(min_value=0, max_value=(1 << 128) - 1)


def _target_index(key, plaintext, spec):
    states = Gift128(key).round_states(plaintext, rounds=spec.round_index)
    round_output = states[spec.round_index - 1].after_add_round_key
    return (round_output >> (4 * spec.segment)) & 0xF


class TestRoundOneCrafting128:
    @settings(max_examples=8)
    @given(keys, st.integers(min_value=0, max_value=31))
    def test_pins_the_target_index(self, key, segment):
        spec = set_target_bits(1, segment, width=128)
        crafter = PlaintextCrafter(spec, [], random.Random(1))
        u1, v1 = round_keys(key, 1, width=128)[0]
        v_bit = (v1 >> segment) & 1
        u_bit = (u1 >> segment) & 1
        expected = expected_index(spec, v_bit, u_bit)
        for plaintext in crafter.craft_many(4):
            assert _target_index(key, plaintext, spec) == expected

    def test_expected_index_places_keys_on_offsets_1_and_2(self):
        spec = set_target_bits(1, 0, width=128)
        index = expected_index(spec, v_bit=0, u_bit=1)
        assert (index >> 1) & 1 == 1  # 1 XOR v(=0)
        assert (index >> 2) & 1 == 0  # 1 XOR u(=1)


class TestRoundTwoCrafting128:
    @settings(max_examples=6)
    @given(keys, st.integers(min_value=0, max_value=31))
    def test_pins_round_two_targets(self, key, segment):
        spec = set_target_bits(2, segment, width=128)
        prior = round_keys(key, 1, width=128)
        crafter = PlaintextCrafter(spec, prior, random.Random(2))
        u2, v2 = round_keys(key, 2, width=128)[1]
        expected = expected_index(
            spec, (v2 >> segment) & 1, (u2 >> segment) & 1
        )
        for plaintext in crafter.craft_many(3):
            assert _target_index(key, plaintext, spec) == expected

    def test_wrong_prior_guess_breaks_the_pin(self):
        key = random.Random(3).getrandbits(128)
        spec = set_target_bits(2, 9, width=128)
        u1, v1 = round_keys(key, 1, width=128)[0]
        wrong_segment = spec.source_segments[0]
        wrong_prior = [(u1, v1 ^ (1 << wrong_segment))]
        crafter = PlaintextCrafter(spec, wrong_prior, random.Random(4))
        indices = {
            _target_index(key, plaintext, spec)
            for plaintext in crafter.craft_many(60)
        }
        assert len(indices) > 1
