"""Property-based end-to-end invariants of the GRINCH attack."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.attack import GrinchAttack
from repro.core.config import AttackConfig
from repro.gift.keyschedule import round_keys
from repro.gift.lut import TracedGift64

keys = st.integers(min_value=0, max_value=(1 << 128) - 1)


class TestRecoveryInvariants:
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(keys, st.integers(min_value=0, max_value=1 << 30))
    def test_any_key_any_seed_recovers_exactly(self, key, seed):
        """The headline property: for arbitrary keys and attacker
        randomness, recovery is bit-exact."""
        victim = TracedGift64(key)
        config = AttackConfig(seed=seed, max_total_encryptions=None)
        result = GrinchAttack(victim, config).recover_master_key()
        assert result.master_key == key

    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(keys)
    def test_first_round_estimate_matches_schedule(self, key):
        victim = TracedGift64(key)
        config = AttackConfig(seed=1, max_total_encryptions=None)
        outcome = GrinchAttack(victim, config).attack_first_round()
        assert outcome.outcome.estimate.as_round_key() == \
            round_keys(key, 1, width=64)[0]

    def test_determinism_for_fixed_seed(self):
        """Same victim + same seed => identical effort and transcript."""
        key = random.Random(99).getrandbits(128)
        counts = []
        for _ in range(2):
            victim = TracedGift64(key)
            result = GrinchAttack(
                victim, AttackConfig(seed=77)
            ).recover_master_key()
            counts.append(result.total_encryptions)
        assert counts[0] == counts[1]

    def test_different_seeds_vary_effort_not_result(self):
        key = random.Random(98).getrandbits(128)
        efforts = set()
        for seed in range(4):
            victim = TracedGift64(key)
            result = GrinchAttack(
                victim, AttackConfig(seed=seed)
            ).recover_master_key()
            assert result.master_key == key
            efforts.add(result.total_encryptions)
        assert len(efforts) > 1  # effort is stochastic

    def test_structured_keys_are_no_easier_or_harder_to_get_right(self):
        """Degenerate key patterns (repeated words, single bit) must
        not break any bookkeeping edge case."""
        patterns = [
            0x0000_0000_0000_0000_0000_0000_0000_0001,
            0x8000_0000_0000_0000_0000_0000_0000_0000,
            0xAAAA_AAAA_AAAA_AAAA_AAAA_AAAA_AAAA_AAAA,
            0x0123_0123_0123_0123_0123_0123_0123_0123,
            0xFFFF_0000_FFFF_0000_FFFF_0000_FFFF_0000,
        ]
        for key in patterns:
            victim = TracedGift64(key)
            result = GrinchAttack(
                victim, AttackConfig(seed=5)
            ).recover_master_key()
            assert result.master_key == key

    def test_encryption_accounting_is_consistent(self):
        """Total = sum of per-round efforts + verification stage."""
        key = random.Random(97).getrandbits(128)
        victim = TracedGift64(key)
        result = GrinchAttack(
            victim, AttackConfig(seed=6)
        ).recover_master_key()
        per_round = sum(o.encryptions for o in result.rounds)
        assert result.total_encryptions == \
            per_round + result.verification_encryptions

    def test_runner_and_attack_counters_agree(self):
        key = random.Random(96).getrandbits(128)
        victim = TracedGift64(key)
        attack = GrinchAttack(victim, AttackConfig(seed=7))
        result = attack.recover_master_key()
        # known_pair() does not count as a probing encryption.
        assert attack.runner.encryptions_run == result.total_encryptions
