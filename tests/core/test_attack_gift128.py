"""End-to-end GRINCH against GIFT-128 (the NIST-LWC-relevant variant).

The paper develops the attack for GIFT-64; this extension exercises the
structural differences: 32 segments, key bits on nibble offsets 1/2,
64 recovered bits per round, only two attacked rounds, and round 3 as
the verification round.
"""

import random

import pytest

from repro.cache.geometry import CacheGeometry
from repro.core.attack import GrinchAttack, recover_full_key
from repro.core.config import AttackConfig
from repro.gift.keyschedule import round_keys
from repro.gift.lut import TracedGift128


class TestFullRecovery:
    @pytest.mark.parametrize("key_seed", [1, 2])
    def test_recovers_random_keys_exactly(self, key_seed):
        key = random.Random(key_seed).getrandbits(128)
        victim = TracedGift128(key)
        result = GrinchAttack(victim, AttackConfig(seed=key_seed)) \
            .recover_master_key()
        assert result.master_key == key
        assert result.verified

    def test_needs_only_two_rounds(self):
        """GIFT-128 round keys are 64-bit, so two rounds cover the key."""
        key = random.Random(3).getrandbits(128)
        result = recover_full_key(TracedGift128(key), AttackConfig(seed=3))
        assert len(result.rounds) == 2
        expected = round_keys(key, 2, width=128)
        for outcome, (u, v) in zip(result.rounds, expected):
            assert outcome.estimate.as_round_key() == (u, v)

    def test_effort_scales_with_segment_count(self):
        """~2x the per-round effort of GIFT-64 (32 targets vs 16), but
        only 2 rounds: total lands in the same ~1-2k regime."""
        key = random.Random(4).getrandbits(128)
        result = recover_full_key(TracedGift128(key), AttackConfig(seed=4))
        assert 600 <= result.total_encryptions <= 4_000


class TestFirstRound:
    def test_recovers_64_bits(self):
        key = random.Random(5).getrandbits(128)
        attack = GrinchAttack(TracedGift128(key), AttackConfig(seed=5))
        outcome = attack.attack_first_round()
        assert outcome.recovered_bits == 64
        assert outcome.outcome.estimate.as_round_key() == \
            round_keys(key, 1, width=128)[0]


class TestLineWidthInteraction:
    def test_two_word_lines_hide_only_a_free_bit(self):
        """A structural difference from GIFT-64: with 2-word lines the
        hidden index bit 0 is key-FREE for GIFT-128 (keys sit on bits
        1/2), so the first-round attack still recovers all 64 bits."""
        key = random.Random(6).getrandbits(128)
        config = AttackConfig(
            seed=6, geometry=CacheGeometry(line_words=2),
            max_total_encryptions=None,
        )
        attack = GrinchAttack(TracedGift128(key), config)
        outcome = attack.attack_first_round()
        assert outcome.recovered_bits == 64

    @pytest.mark.slow
    def test_four_word_lines_leave_v_ambiguity(self):
        key = random.Random(7).getrandbits(128)
        config = AttackConfig(
            seed=7, geometry=CacheGeometry(line_words=4),
            max_total_encryptions=None,
        )
        attack = GrinchAttack(TracedGift128(key), config)
        outcome = attack.attack_first_round()
        # Index bits 0 (free) and 1 (= V key bit) are hidden: 2
        # candidates per segment, 32 bits recovered outright.
        assert outcome.recovered_bits == 32
        for candidates in outcome.outcome.estimate.pair_candidates:
            assert len(candidates) == 2

    @pytest.mark.slow
    def test_full_recovery_with_four_word_lines(self):
        key = random.Random(8).getrandbits(128)
        config = AttackConfig(
            seed=8, geometry=CacheGeometry(line_words=4),
            max_total_encryptions=None,
            max_encryptions_per_segment=2_000_000,
        )
        result = recover_full_key(TracedGift128(key), config)
        assert result.master_key == key
