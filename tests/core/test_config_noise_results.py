"""Tests for attack configuration, noise models and result records."""

import random

import pytest

from repro.core.config import AttackConfig
from repro.channel import NO_NOISE, NoiseModel
from repro.core.results import (
    RoundKeyEstimate,
    SegmentOutcome,
)


class TestAttackConfig:
    def test_defaults_match_paper_setup(self):
        config = AttackConfig()
        assert config.probing_round == 1
        assert config.use_flush
        assert config.probe_strategy == "flush_reload"
        assert config.max_total_encryptions == 1_000_000

    def test_fast_path_applicability(self):
        assert AttackConfig().fast_path_applicable
        assert not AttackConfig(
            probe_strategy="prime_probe"
        ).fast_path_applicable
        assert not AttackConfig(use_fast_path=False).fast_path_applicable

    @pytest.mark.parametrize("kwargs", [
        {"probing_round": 0},
        {"probe_strategy": "guess"},
        {"max_encryptions_per_segment": 0},
        {"max_total_encryptions": 0},
        {"confirmation_margin": -1},
        {"confirmation_factor": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            AttackConfig(**kwargs)

    def test_frozen(self):
        with pytest.raises(Exception):
            AttackConfig().probing_round = 5


class TestNoiseModel:
    def test_silent_by_default(self):
        assert NO_NOISE.is_silent
        assert NO_NOISE.sample([1, 2, 3], random.Random(0)) == []

    def test_certain_noise_samples_requested_count(self):
        model = NoiseModel(touch_probability=1.0, monitored_touches=5)
        samples = model.sample([10, 20, 30], random.Random(1))
        assert len(samples) == 5
        assert all(s in (10, 20, 30) for s in samples)

    def test_probability_gates_whole_windows(self):
        model = NoiseModel(touch_probability=0.5, monitored_touches=1)
        rng = random.Random(2)
        outcomes = [bool(model.sample([1], rng)) for _ in range(200)]
        assert 40 < sum(outcomes) < 160

    def test_empty_address_space(self):
        model = NoiseModel(touch_probability=1.0, monitored_touches=3)
        assert model.sample([], random.Random(0)) == []

    @pytest.mark.parametrize("kwargs", [
        {"touch_probability": -0.1},
        {"touch_probability": 1.5},
        {"monitored_touches": -1},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            NoiseModel(**kwargs)


class TestRoundKeyEstimate:
    def _estimate(self, candidates_per_segment=1):
        base = tuple(
            (v, u) for v in (0, 1) for u in (0, 1)
        )[:candidates_per_segment]
        return RoundKeyEstimate(
            round_index=1,
            pair_candidates=[base for _ in range(16)],
        )

    def test_resolved_and_ambiguity(self):
        assert self._estimate(1).resolved
        estimate = self._estimate(2)
        assert not estimate.resolved
        assert estimate.ambiguity == 2 ** 16

    def test_as_round_key_assembles_bits(self):
        estimate = RoundKeyEstimate(
            round_index=1,
            pair_candidates=[((1, 0),)] * 16,
        )
        u, v = estimate.as_round_key()
        assert v == 0xFFFF
        assert u == 0x0000

    def test_as_round_key_requires_resolution(self):
        with pytest.raises(RuntimeError):
            self._estimate(2).as_round_key()

    def test_guess_round_key_with_overrides(self):
        estimate = self._estimate(2)
        u, v = estimate.guess_round_key({0: (1, 1)})
        assert v & 1 == 1
        assert u & 1 == 1

    def test_narrow_segment(self):
        estimate = self._estimate(4)
        estimate.narrow_segment(3, ((0, 1), (1, 0)))
        assert estimate.pair_candidates[3] == ((0, 1), (1, 0))
        estimate.resolve_segment(3, (1, 0))
        assert estimate.pair_candidates[3] == ((1, 0),)

    def test_narrow_validation(self):
        estimate = self._estimate(2)
        with pytest.raises(ValueError):
            estimate.narrow_segment(0, ())
        with pytest.raises(ValueError):
            estimate.narrow_segment(0, ((1, 1),))  # not a candidate

    def test_requires_16_segments(self):
        with pytest.raises(ValueError):
            RoundKeyEstimate(round_index=1, pair_candidates=[((0, 0),)] * 15)
        with pytest.raises(ValueError):
            RoundKeyEstimate(round_index=1, pair_candidates=[()] * 16)


class TestSegmentOutcome:
    def test_ambiguity_flag(self):
        outcome = SegmentOutcome(
            round_index=1, segment=0, encryptions=10, hypotheses_tried=1,
            line=4096, key_pairs=((0, 1),),
        )
        assert not outcome.ambiguous
        outcome.key_pairs = ((0, 1), (1, 1))
        assert outcome.ambiguous
