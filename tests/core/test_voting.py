"""Property tests for the voting recovery and its strict fallback.

The lossy-channel tentpole rests on four claims, each pinned here:

* the strict intersection is monotone and order-independent;
* at zero loss the voter is update-for-update identical to the strict
  intersection (same surviving set, same convergence, same
  contradiction);
* false negatives can only *deprioritise* the true line in the
  voter's ranking, never hard-eliminate it from the viable set;
* whenever the voter accepts with confidence at or above the
  threshold, the full attack's recovered key matches the planted one
  (checked end-to-end in ``test_lossy_attack.py``).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.eliminate import CandidateEliminator
from repro.core.voting import (
    VotingEliminator,
    VotingPolicy,
    binom_tail_ge,
    binom_tail_le,
)

UNIVERSE = frozenset(range(16))
OBSERVATIONS = st.lists(
    st.frozensets(st.integers(0, 15), max_size=16), max_size=24
)


class TestBinomialTails:
    def test_tails_partition_probability(self):
        for n, k, p in [(10, 3, 0.5), (25, 20, 0.8), (8, 0, 0.1)]:
            le = binom_tail_le(n, k, p)
            ge = binom_tail_ge(n, k + 1, p)
            assert le + ge == pytest.approx(1.0, abs=1e-9)

    def test_degenerate_rates(self):
        assert binom_tail_ge(10, 10, 1.0) == 1.0
        assert binom_tail_le(10, 0, 0.0) == 1.0
        assert binom_tail_ge(10, 1, 0.0) == 0.0


class TestStrictIntersectionProperties:
    @given(OBSERVATIONS)
    def test_monotone(self, observations):
        eliminator = CandidateEliminator(UNIVERSE)
        previous = eliminator.candidates
        for observed in observations:
            current = eliminator.update(observed)
            assert current <= previous
            previous = current

    @given(OBSERVATIONS)
    def test_order_independent(self, observations):
        forward = CandidateEliminator(UNIVERSE)
        backward = CandidateEliminator(UNIVERSE)
        for observed in observations:
            forward.update(observed)
        for observed in reversed(observations):
            backward.update(observed)
        assert forward.candidates == backward.candidates


class TestZeroLossEquivalence:
    @given(OBSERVATIONS)
    @settings(max_examples=200)
    def test_voter_tracks_intersection_update_for_update(self,
                                                         observations):
        strict = CandidateEliminator(UNIVERSE)
        voter = VotingEliminator(UNIVERSE)  # default policy: presence 1.0
        assert voter.policy.strict_equivalent
        for observed in observations:
            strict.update(observed)
            voter.update(observed)
            assert voter.viable == strict.candidates
            assert voter.decided == strict.converged
            assert voter.rejected == strict.contradicted
            if strict.converged:
                assert voter.resolved_line == strict.resolved_line
                assert voter.confidence == 1.0


class TestLossyViability:
    def _lossy_observations(self, target, miss, count, seed):
        rng = random.Random(seed)
        for _ in range(count):
            observed = {
                line for line in UNIVERSE
                if line != target and rng.random() < 0.55
            }
            if rng.random() >= miss:
                observed.add(target)
            yield observed

    @pytest.mark.parametrize("seed", range(5))
    def test_true_line_never_eliminated_under_false_negatives(self, seed):
        target = 11
        policy = VotingPolicy(expected_presence=0.8)
        voter = VotingEliminator(UNIVERSE, policy)
        for observed in self._lossy_observations(target, 0.2, 200, seed):
            voter.update(observed)
            assert target in voter.viable

    @pytest.mark.parametrize("seed", range(5))
    def test_leader_converges_to_true_line(self, seed):
        target = 3
        policy = VotingPolicy(expected_presence=0.8)
        voter = VotingEliminator(UNIVERSE, policy)
        for observed in self._lossy_observations(target, 0.2, 200, seed):
            voter.update(observed)
        assert voter.leader == target
        assert voter.decided
        assert voter.resolved_line == target

    def test_background_only_streams_overwhelmingly_rejected(self):
        # No constant target at all (the wrong-hypothesis situation).
        # The voter cannot make false accepts *impossible* — with
        # enough target-free streams, some background line eventually
        # fakes a target-like count — but the attack only needs them
        # rare: each residual accept must still name the hypothesis's
        # predicted line to survive ``_accept_lines``, and a wrong
        # survivor is caught by the verification rounds or the planted-
        # key check.  Pin the calibrated policy's measured behaviour:
        # every stream resolves, and the vast majority reject.
        policy = VotingPolicy(
            expected_presence=0.8,
            confidence_threshold=0.9995,
            min_observations=16,
        )
        outcomes = {"accepted": 0, "rejected": 0, "unresolved": 0}
        for seed in range(20):
            rng = random.Random(seed)
            voter = VotingEliminator(UNIVERSE, policy)
            outcome = "unresolved"
            for _ in range(400):
                voter.update(
                    {line for line in UNIVERSE if rng.random() < 0.5}
                )
                if voter.decided:
                    outcome = "accepted"
                    break
                if voter.rejected:
                    outcome = "rejected"
                    break
            outcomes[outcome] += 1
        assert outcomes["unresolved"] == 0
        assert outcomes["rejected"] >= 17

    def test_deprioritised_line_recovers_the_lead(self):
        # An early unlucky streak must not be fatal: after it, the
        # target outruns the field again.
        policy = VotingPolicy(expected_presence=0.8)
        voter = VotingEliminator(frozenset({0, 1}), policy)
        for _ in range(3):  # target 0 misses three windows in a row
            voter.update({1})
        assert 0 in voter.viable  # deprioritised, not eliminated
        assert voter.leader == 1
        for _ in range(40):
            voter.update({0, 1})
        for _ in range(12):
            voter.update({0})
        assert voter.leader == 0

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            VotingPolicy(expected_presence=0.0)
        with pytest.raises(ValueError):
            VotingPolicy(confidence_threshold=1.0)
        with pytest.raises(ValueError):
            VotingPolicy(min_observations=0)
        with pytest.raises(ValueError):
            VotingEliminator(frozenset())

    def test_counts_ignore_lines_outside_universe(self):
        voter = VotingEliminator(frozenset({0, 1}))
        voter.update({0, 5, 9})
        assert voter.counts == {0: 1, 1: 0}
