"""The batched attack loop: batch_size > 1 equals the scalar attack.

``batch_size=1`` (the default) reproduces the historic scalar run
call-for-call — the 464-encryption pin in
``tests/channel/test_observer.py`` keeps guarding that.  These tests
pin the other direction: a batched run recovers the SAME key through
the vectorized channel, lossless and lossy, deterministically at any
batch size, and the budget accounting stays exact.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.degradation import LossyChannel
from repro.core.attack import BudgetExceeded, GrinchAttack
from repro.core.config import AttackConfig
from repro.core.eliminate import CandidateEliminator
from repro.core.voting import VotingEliminator, VotingPolicy
from repro.gift.bitsliced import numpy_available
from repro.seeding import derive_key, derive_rng
from repro.targets.registry import get_target

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="the vectorized batch path requires numpy"
)


def _attack(target_name="gift64", *, seed=0, **config_kwargs):
    target = get_target(target_name)
    key = derive_key(target.key_bits, seed)
    victim = target.make_victim(key)
    return key, GrinchAttack(victim, AttackConfig(seed=seed,
                                                  **config_kwargs))


class TestConfig:
    def test_default_is_scalar(self):
        assert AttackConfig().batch_size == 1

    @pytest.mark.parametrize("bad", [0, -1])
    def test_invalid_batch_size_rejected(self, bad):
        with pytest.raises(ValueError):
            AttackConfig(batch_size=bad)


class TestEliminatorBatches:
    @settings(max_examples=20)
    @given(st.lists(st.lists(st.integers(min_value=0, max_value=7),
                             min_size=0, max_size=5),
                    min_size=1, max_size=8))
    def test_candidate_update_batch_equals_sequential(self, raw_windows):
        windows = [frozenset(window) for window in raw_windows]
        universe = frozenset(range(8))
        batched = CandidateEliminator(universe)
        sequential = CandidateEliminator(universe)
        result = batched.update_batch(windows)
        for window in windows:
            sequential.update(window)
        assert result == sequential.candidates
        assert batched.updates == sequential.updates == len(windows)
        assert batched.converged == sequential.converged

    @settings(max_examples=20)
    @given(st.lists(st.lists(st.integers(min_value=0, max_value=7),
                             min_size=0, max_size=5),
                    min_size=1, max_size=8))
    def test_voting_update_batch_equals_sequential(self, raw_windows):
        windows = [frozenset(window) for window in raw_windows]
        universe = frozenset(range(8))
        policy = VotingPolicy(expected_presence=0.8)
        batched = VotingEliminator(universe, policy)
        sequential = VotingEliminator(universe, policy)
        batched.update_batch(windows)
        for window in windows:
            sequential.update(window)
        assert batched.counts == sequential.counts
        assert batched.observations == sequential.observations


@needs_numpy
class TestBatchedRecovery:
    def test_scalar_pin_is_untouched(self):
        # The seed-0 historic reference: batch_size=1 IS the scalar
        # attack, down to the exact encryption count.
        key, attack = _attack()
        result = attack.recover_master_key()
        assert result.master_key == key
        assert result.verified
        assert result.total_encryptions == 464

    def test_batched_full_key_recovers_same_key(self):
        key, attack = _attack(batch_size=32)
        result = attack.recover_master_key()
        assert result.master_key == key
        assert result.verified
        # Over-observation is bounded: every segment decision costs at
        # most one full batch beyond the scalar effort, never more than
        # batch_size times the scalar total.
        assert 464 <= result.total_encryptions <= 464 * 32

    @pytest.mark.parametrize("batch_size", [2, 8, 64])
    def test_batched_first_round_recovers_all_bits(self, batch_size):
        _, scalar_attack = _attack()
        scalar = scalar_attack.attack_first_round()
        _, attack = _attack(batch_size=batch_size)
        result = attack.attack_first_round()
        assert result.recovered_bits == scalar.recovered_bits == 32
        assert result.outcome.estimate.pair_candidates \
            == scalar.outcome.estimate.pair_candidates

    def test_batched_present80(self):
        key, attack = _attack("present80", batch_size=16)
        result = attack.recover_master_key()
        assert result.master_key == key
        assert result.verified

    def test_batched_lossy_voting_is_deterministic(self):
        runs = []
        for _ in range(2):
            key, attack = _attack(
                batch_size=64,
                loss=LossyChannel(miss_probability=0.2),
            )
            result = attack.recover_master_key()
            assert result.master_key == key
            assert result.verified
            runs.append(result.total_encryptions)
        assert runs[0] == runs[1]

    @settings(max_examples=4, deadline=None)
    @given(st.integers(min_value=2, max_value=96))
    def test_any_batch_size_recovers_the_key(self, batch_size):
        key, attack = _attack(batch_size=batch_size)
        result = attack.recover_master_key()
        assert result.master_key == key
        assert result.verified


@needs_numpy
class TestBudgetAccounting:
    def test_batch_never_overruns_the_total_budget(self):
        _, attack = _attack(batch_size=32, max_total_encryptions=100)
        with pytest.raises(BudgetExceeded):
            attack.recover_master_key()
        assert attack.total_encryptions == 100

    def test_generous_budget_still_succeeds(self):
        key, attack = _attack(batch_size=32, max_total_encryptions=10_000)
        result = attack.recover_master_key()
        assert result.master_key == key
        assert attack.total_encryptions <= 10_000
