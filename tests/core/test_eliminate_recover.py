"""Tests for candidate elimination (Step 3) and key recovery (Step 4)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry
from repro.core.eliminate import CandidateEliminator
from repro.channel import SboxMonitor
from repro.core.recover import (
    expected_index,
    indices_consistent_with_prediction,
    key_pairs_from_line,
)
from repro.core.target_bits import set_target_bits
from repro.gift.lut import TableLayout


class TestEliminator:
    def test_intersection_shrinks_monotonically(self):
        eliminator = CandidateEliminator(frozenset(range(8)))
        eliminator.update({0, 1, 2, 3})
        eliminator.update({1, 2, 3, 4})
        assert eliminator.candidates == {1, 2, 3}

    def test_convergence_detection(self):
        eliminator = CandidateEliminator(frozenset(range(4)))
        eliminator.update({2, 3})
        assert not eliminator.converged
        eliminator.update({2})
        assert eliminator.converged
        assert eliminator.resolved_line == 2

    def test_contradiction_detection(self):
        eliminator = CandidateEliminator(frozenset(range(4)))
        eliminator.update({0, 1})
        eliminator.update({2, 3})
        assert eliminator.contradicted
        assert not eliminator.converged

    def test_resolved_line_requires_convergence(self):
        eliminator = CandidateEliminator(frozenset(range(4)))
        with pytest.raises(RuntimeError):
            _ = eliminator.resolved_line

    def test_reset_restores_universe(self):
        eliminator = CandidateEliminator(frozenset(range(4)))
        eliminator.update({1})
        eliminator.reset()
        assert eliminator.candidates == frozenset(range(4))
        assert eliminator.updates == 0

    def test_rejects_empty_universe(self):
        with pytest.raises(ValueError):
            CandidateEliminator(frozenset())

    @given(st.lists(st.sets(st.integers(0, 15)), max_size=20))
    def test_candidates_always_subset_of_universe(self, observations):
        universe = frozenset(range(16))
        eliminator = CandidateEliminator(universe)
        for observed in observations:
            eliminator.update(observed)
            assert eliminator.candidates <= universe

    def test_update_counter(self):
        eliminator = CandidateEliminator(frozenset(range(4)))
        eliminator.update({0})
        eliminator.update({0})
        assert eliminator.updates == 2


def _monitor(line_words):
    return SboxMonitor.build(TableLayout(),
                             CacheGeometry(line_words=line_words))


class TestExpectedIndex:
    @pytest.mark.parametrize("v_bit", (0, 1))
    @pytest.mark.parametrize("u_bit", (0, 1))
    def test_low_bits_invert_key_bits(self, v_bit, u_bit):
        spec = set_target_bits(1, 4)
        index = expected_index(spec, v_bit, u_bit)
        assert index & 1 == 1 ^ v_bit
        assert (index >> 1) & 1 == 1 ^ u_bit
        assert (index >> 2) & 0b11 == spec.predicted_high_bits

    def test_rejects_non_bits(self):
        spec = set_target_bits(1, 0)
        with pytest.raises(ValueError):
            expected_index(spec, 2, 0)


class TestKeyPairsFromLine:
    @pytest.mark.parametrize("line_words,expected_candidates",
                             [(1, 1), (2, 2), (4, 4), (8, 4)])
    def test_candidate_counts_match_section_iii_d(self, line_words,
                                                  expected_candidates):
        """"the maximum number of candidates is 4" — and with 1-word
        lines the answer is unique."""
        monitor = _monitor(line_words)
        spec = set_target_bits(1, 2)
        line = monitor.line_for_index(expected_index(spec, 0, 1))
        pairs = key_pairs_from_line(spec, monitor, line)
        assert len(pairs) == expected_candidates

    @pytest.mark.parametrize("line_words", [1, 2, 4, 8])
    @pytest.mark.parametrize("v_bit", (0, 1))
    @pytest.mark.parametrize("u_bit", (0, 1))
    def test_true_pair_always_among_candidates(self, line_words, v_bit,
                                               u_bit):
        monitor = _monitor(line_words)
        spec = set_target_bits(1, 9)
        line = monitor.line_for_index(expected_index(spec, v_bit, u_bit))
        assert (v_bit, u_bit) in key_pairs_from_line(spec, monitor, line)

    def test_wrong_line_yields_empty_with_unit_lines(self):
        """With 1-word lines, a line whose high bits contradict the
        prediction is impossible — the consistency check the hypothesis
        pruning uses."""
        monitor = _monitor(1)
        spec = set_target_bits(1, 2)
        true_index = expected_index(spec, 0, 0)
        wrong_index = true_index ^ 0b0100  # flip predicted bit 2
        line = monitor.line_for_index(wrong_index)
        assert key_pairs_from_line(spec, monitor, line) == ()

    def test_consistent_indices_filter(self):
        monitor = _monitor(8)
        spec = set_target_bits(1, 2)
        line = monitor.line_for_index(expected_index(spec, 1, 1))
        consistent = indices_consistent_with_prediction(spec, monitor, line)
        assert len(consistent) == 4
        for index in consistent:
            assert (index >> 2) & 0b11 == spec.predicted_high_bits
