"""End-to-end attack behaviour over a lossy observation channel.

The tentpole claims, attack-level:

* under per-probe false negatives up to 0.2 the voting recovery still
  assembles and verifies the planted 128-bit master key;
* the strict intersection raises its contradiction error on the very
  same lossy configuration — the failure mode the voter exists to fix;
* whenever the attack accepts, every segment's confidence is at or
  above the configured threshold and the key matches the planted one;
* at zero loss, voting and strict recover the same key;
* under hopeless loss the attack gives up gracefully with
  :class:`~repro.core.errors.LowConfidenceError`, not a wrong key.
"""

import pytest

from repro.core import (
    AttackConfig,
    GrinchAttack,
    InconsistentObservation,
    LossyChannel,
    LowConfidenceError,
)
from repro.seeding import derive_key
from repro.gift.lut import TracedGift64

#: The acceptance-criterion channel: 20% per-probe false negatives.
LOSSY = LossyChannel(miss_probability=0.2)

#: E14's encryption budget (budget_factor 4.0 at default geometry).
E14_BUDGET = 1906


def _lossy_config(seed, **overrides):
    return AttackConfig(seed=seed, loss=LOSSY,
                        max_total_encryptions=E14_BUDGET, **overrides)


class TestVotingRecovery:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_recovers_planted_key_at_twenty_percent_loss(self, seed):
        planted = derive_key(128, 100 + seed)
        attack = GrinchAttack(TracedGift64(master_key=planted),
                              _lossy_config(seed))
        result = attack.recover_master_key()
        assert result.master_key == planted
        assert result.total_encryptions <= E14_BUDGET

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_acceptance_implies_confidence_at_threshold(self, seed):
        planted = derive_key(128, 100 + seed)
        config = _lossy_config(seed)
        attack = GrinchAttack(TracedGift64(master_key=planted), config)
        result = attack.recover_master_key()
        # Every segment decision cleared the bar, and the recovery is
        # flagged as voting-based in the per-segment telemetry.
        assert result.min_confidence >= config.voting_confidence
        for round_outcome in result.rounds:
            for segment in round_outcome.segments:
                assert segment.recovery == "voting"
                assert segment.observations > 0
        assert result.master_key == planted

    def test_strict_contradicts_on_the_same_channel(self):
        # recovery="strict" forces the monotone intersection onto the
        # identical lossy configuration: the first false negative that
        # hits the target line empties the intersection.
        planted = derive_key(128, 100)
        attack = GrinchAttack(TracedGift64(master_key=planted),
                              _lossy_config(0, recovery="strict"))
        with pytest.raises(InconsistentObservation):
            attack.recover_master_key()

    def test_zero_loss_voting_matches_strict_key(self):
        planted = derive_key(128, 7)
        strict = GrinchAttack(
            TracedGift64(master_key=planted),
            AttackConfig(seed=7, recovery="strict"),
        ).recover_master_key()
        voting = GrinchAttack(
            TracedGift64(master_key=planted),
            AttackConfig(seed=7, recovery="voting"),
        ).recover_master_key()
        assert strict.master_key == voting.master_key == planted
        # Lossless voting reports full confidence on every segment.
        assert voting.min_confidence == 1.0

    def test_hopeless_loss_fails_gracefully(self):
        # At 90% miss probability the channel carries almost no signal:
        # the voter must stall out with a structured LowConfidenceError
        # (never a silently wrong key), reporting how far it got.
        planted = derive_key(128, 1)
        attack = GrinchAttack(
            TracedGift64(master_key=planted),
            AttackConfig(seed=1,
                         loss=LossyChannel(miss_probability=0.9),
                         max_total_encryptions=5_000),
        )
        with pytest.raises(LowConfidenceError) as excinfo:
            attack.recover_master_key()
        assert excinfo.value.encryptions > 0
        assert 0.0 <= excinfo.value.best_confidence < 1.0


@pytest.mark.slow
def test_acceptance_criterion_fifty_trials(tmp_path):
    """ISSUE acceptance: >= 95% of 50 seeded E14 trials recover the
    full key at miss probability 0.2 within the 4x encryption budget."""
    from repro.engine import run_experiment

    record = run_experiment(
        "noise_robustness",
        {"runs": 50, "miss_probabilities": [0.2],
         "eviction_rates": [0.0]},
        workers=2, cache_root=tmp_path,
    )
    cell = record["cells"][0]
    assert cell["success_rate"] >= 0.95
    assert cell["budget"] == E14_BUDGET
    for trial in cell["trials"]:
        if trial["recovered"]:
            assert trial["encryptions"] <= E14_BUDGET
