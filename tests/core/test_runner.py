"""Tests for the cache-attack runner, including fast/full path equivalence."""

import random

import pytest

from repro.cache.geometry import CacheGeometry
from repro.core.config import AttackConfig
from repro.channel import NoiseModel
from repro.channel import ObservationChannel as CacheAttackRunner
from repro.gift.lut import TracedGift64


def _runner(victim, **overrides):
    config = AttackConfig(seed=11, **overrides)
    return CacheAttackRunner(victim, config)


class TestObservationSemantics:
    def test_flush_hides_round_one(self, victim):
        """With the mid-run flush the observation only contains rounds
        t+1..t+r; round 1's accesses must be invisible."""
        runner = _runner(victim, probing_round=1, use_flush=True)
        plaintext = 0x0123456789ABCDEF
        observed = runner.observe_encryption(plaintext, attacked_round=1)
        round2 = victim.sbox_indices_by_round(plaintext, 2)[1]
        expected = {runner.monitor.line_for_index(i) for i in round2}
        assert observed == expected

    def test_no_flush_includes_round_one(self, victim):
        runner = _runner(victim, probing_round=1, use_flush=False)
        plaintext = 0xFEDCBA9876543210
        observed = runner.observe_encryption(plaintext, attacked_round=1)
        rounds = victim.sbox_indices_by_round(plaintext, 2)
        expected = {
            runner.monitor.line_for_index(i)
            for indices in rounds for i in indices
        }
        assert observed == expected

    def test_probing_round_widens_the_window(self, victim):
        early = _runner(victim, probing_round=1)
        late = _runner(victim, probing_round=6)
        plaintext = 0x1122334455667788
        assert early.observe_encryption(plaintext, 1) <= \
            late.observe_encryption(plaintext, 1)

    def test_counts_encryptions(self, victim):
        runner = _runner(victim)
        for _ in range(5):
            runner.observe_encryption(0, 1)
        assert runner.encryptions_run == 5

    def test_rejects_bad_round(self, victim):
        with pytest.raises(ValueError):
            _runner(victim).observe_encryption(0, 0)


class TestFastFullEquivalence:
    @pytest.mark.parametrize("line_words", [1, 2, 4, 8])
    @pytest.mark.parametrize("use_flush", [True, False])
    def test_paths_agree_observation_for_observation(self, random_key,
                                                     line_words, use_flush):
        """The accelerated path must be *exactly* the full cache
        simulation for Flush+Reload — this equality is what licenses
        using it in the Table I sweeps."""
        victim = TracedGift64(random_key)
        geometry = CacheGeometry(line_words=line_words)
        fast = CacheAttackRunner(victim, AttackConfig(
            geometry=geometry, probing_round=2, use_flush=use_flush,
            use_fast_path=True, seed=5,
        ))
        full = CacheAttackRunner(victim, AttackConfig(
            geometry=geometry, probing_round=2, use_flush=use_flush,
            use_fast_path=False, seed=5,
        ))
        assert fast.fast_path_active
        assert not full.fast_path_active
        rng = random.Random(77)
        for _ in range(25):
            plaintext = rng.getrandbits(64)
            assert fast.observe_encryption(plaintext, 1) == \
                full.observe_encryption(plaintext, 1)

    def test_deeper_attack_rounds_agree_too(self, random_key):
        victim = TracedGift64(random_key)
        fast = CacheAttackRunner(victim, AttackConfig(use_fast_path=True))
        full = CacheAttackRunner(victim, AttackConfig(use_fast_path=False))
        rng = random.Random(78)
        for attacked_round in (2, 3, 4):
            plaintext = rng.getrandbits(64)
            assert fast.observe_encryption(plaintext, attacked_round) == \
                full.observe_encryption(plaintext, attacked_round)

    def test_prime_probe_never_uses_fast_path(self, victim):
        runner = _runner(victim, probe_strategy="prime_probe")
        assert not runner.fast_path_active

    def test_paths_agree_for_gift128(self, random_key):
        from repro.gift.lut import TracedGift128
        victim = TracedGift128(random_key)
        fast = CacheAttackRunner(victim, AttackConfig(use_fast_path=True))
        full = CacheAttackRunner(victim, AttackConfig(use_fast_path=False))
        rng = random.Random(80)
        for _ in range(10):
            plaintext = rng.getrandbits(128)
            assert fast.observe_encryption(plaintext, 1) == \
                full.observe_encryption(plaintext, 1)


class TestNoise:
    def test_noise_only_adds_monitored_lines(self, victim):
        noisy = CacheAttackRunner(victim, AttackConfig(
            seed=3, noise=NoiseModel(touch_probability=1.0,
                                     monitored_touches=4),
        ))
        quiet = CacheAttackRunner(victim, AttackConfig(seed=3))
        rng = random.Random(9)
        for _ in range(10):
            plaintext = rng.getrandbits(64)
            noisy_obs = noisy.observe_encryption(plaintext, 1)
            quiet_obs = quiet.observe_encryption(plaintext, 1)
            assert quiet_obs <= noisy_obs
            assert noisy_obs <= noisy.monitor.universe

    def test_silent_noise_changes_nothing(self, victim):
        a = CacheAttackRunner(victim, AttackConfig(seed=3))
        b = CacheAttackRunner(victim, AttackConfig(
            seed=3, noise=NoiseModel(touch_probability=0.0,
                                     monitored_touches=10),
        ))
        assert a.observe_encryption(42, 1) == b.observe_encryption(42, 1)


class TestKnownPair:
    def test_matches_victim_encryption(self, victim):
        runner = _runner(victim)
        assert runner.known_pair(0x1234) == victim.encrypt(0x1234)
