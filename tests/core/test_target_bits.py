"""Tests for Algorithm 1 (target-bit selection and tracing)."""

import pytest

from repro.gift.constants import constant_mask
from repro.gift.permutation import PERM64_INV
from repro.gift.sbox import GIFT_SBOX
from repro.core.target_bits import set_target_bits


class TestSourceTracing:
    @pytest.mark.parametrize("segment", range(16))
    def test_four_distinct_source_segments(self, segment):
        # Section III-C: "the attacker has to carefully select four
        # segments of the plaintext".
        spec = set_target_bits(1, segment)
        assert len(spec.source_segments) == 4

    @pytest.mark.parametrize("segment", range(16))
    def test_sources_follow_inverse_permutation(self, segment):
        spec = set_target_bits(1, segment)
        for source in spec.sources:
            expected_pre = PERM64_INV[source.target_position]
            assert source.pre_perm_position == expected_pre
            assert source.source_segment == expected_pre // 4
            assert source.output_bit == expected_pre % 4

    @pytest.mark.parametrize("segment", range(16))
    def test_output_bit_equals_target_offset(self, segment):
        """GIFT's permutation preserves offsets mod 4, so the source's
        S-box output bit equals the target index bit it feeds — the fact
        behind the visible/invisible hypothesis split."""
        spec = set_target_bits(2, segment)
        for source in spec.sources:
            assert source.output_bit == source.target_position % 4

    def test_key_positions_are_the_two_low_bits(self):
        spec = set_target_bits(1, 3)
        key_positions = [s.target_position for s in spec.sources if s.key_xored]
        assert key_positions == [12, 13]

    def test_union_of_source_cones_covers_all_segments(self):
        cones = set()
        for segment in range(16):
            cones.update(set_target_bits(1, segment).source_segments)
        assert cones == set(range(16))


class TestForcedLists:
    @pytest.mark.parametrize("segment", range(16))
    def test_valid_inputs_force_their_bits(self, segment):
        spec = set_target_bits(1, segment)
        for source in spec.sources:
            inputs = spec.valid_inputs[source.source_segment]
            for x in inputs:
                assert (GIFT_SBOX[x] >> source.output_bit) & 1 \
                    == source.forced_value

    def test_key_bits_forced_to_one_by_default(self):
        # "In this attack we set these bits to 1" (Section III-C).
        spec = set_target_bits(1, 0)
        for source in spec.sources:
            if source.key_xored:
                assert source.forced_value == 1

    def test_forced_high_bits_configurable(self):
        spec = set_target_bits(1, 0, forced_high_bits=(0, 1))
        by_offset = {s.target_position % 4: s for s in spec.sources}
        assert by_offset[2].forced_value == 0
        assert by_offset[3].forced_value == 1

    def test_lists_have_eight_entries(self):
        # Component functions of a bijective S-box are balanced.
        spec = set_target_bits(1, 5)
        for inputs in spec.valid_inputs.values():
            assert len(inputs) == 8


class TestPredictedHighBits:
    @pytest.mark.parametrize("round_index", [1, 2, 3, 4])
    @pytest.mark.parametrize("segment", [0, 3, 7, 15])
    def test_prediction_accounts_for_round_constant(self, round_index,
                                                    segment):
        spec = set_target_bits(round_index, segment)
        constant = constant_mask(round_index, 64)
        expected_bit2 = 1 ^ ((constant >> (4 * segment + 2)) & 1)
        expected_bit3 = 1 ^ ((constant >> (4 * segment + 3)) & 1)
        assert spec.predicted_high_bits == (expected_bit3 << 1) | expected_bit2

    def test_segment15_gets_the_fixed_msb_constant(self):
        # Bit 63 is XORed with 1 every round.
        spec = set_target_bits(1, 15)
        assert (spec.predicted_high_bits >> 1) & 1 == 0  # 1 ^ 1


class TestKeyBitBookkeeping:
    def test_paper_example(self):
        spec = set_target_bits(1, 0)
        assert spec.key_bit_positions == (0, 16)
        assert spec.master_key_bits() == (0, 16)

    def test_round5_has_no_fresh_master_bits(self):
        spec = set_target_bits(5, 0)
        assert spec.key_bit_positions == (-1, -1)


class TestGift128Targets:
    def test_key_offsets_are_bits_one_and_two(self):
        spec = set_target_bits(1, 0, width=128)
        assert spec.key_offsets == (1, 2)
        key_positions = [
            s.target_position for s in spec.sources if s.key_xored
        ]
        assert key_positions == [1, 2]

    def test_free_offsets_are_zero_and_three(self):
        spec = set_target_bits(1, 5, width=128)
        assert tuple(o for o, _ in spec.free_bit_predictions) == (0, 3)

    def test_bit_zero_never_sees_a_round_constant(self):
        # Constants land on nibble bit 3 and the MSB only.
        for segment in (0, 7, 31):
            spec = set_target_bits(1, segment, width=128)
            predictions = dict(spec.free_bit_predictions)
            assert predictions[0] == 1  # forced value passes through

    def test_32_segments_with_four_sources_each(self):
        for segment in range(32):
            spec = set_target_bits(2, segment, width=128)
            assert len(spec.source_segments) == 4

    def test_master_key_bits_cover_everything_in_two_rounds(self):
        seen = set()
        for round_index in (1, 2):
            for segment in range(32):
                spec = set_target_bits(round_index, segment, width=128)
                seen.update(spec.master_key_bits())
        assert seen == set(range(128))

    def test_predicted_high_bits_view_is_64_only(self):
        spec = set_target_bits(1, 0, width=128)
        with pytest.raises(ValueError):
            _ = spec.predicted_high_bits


class TestValidation:
    def test_rejects_undefined_width(self):
        with pytest.raises(ValueError):
            set_target_bits(1, 0, width=96)

    def test_rejects_bad_segment(self):
        with pytest.raises(ValueError):
            set_target_bits(1, 16)

    def test_rejects_bad_forced_bits(self):
        with pytest.raises(ValueError):
            set_target_bits(1, 0, forced_high_bits=(2, 0))
