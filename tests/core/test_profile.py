"""Tests for the width-specific attack profiles."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.profile import (
    PROFILE_64,
    PROFILE_128,
    profile_for_width,
)
from repro.gift.keyschedule import round_keys

keys = st.integers(min_value=0, max_value=(1 << 128) - 1)


class TestProfileFacts:
    def test_gift64_profile(self):
        assert PROFILE_64.segments == 16
        assert PROFILE_64.key_offsets == (0, 1)
        assert PROFILE_64.free_offsets == (2, 3)
        assert PROFILE_64.full_key_rounds == 4
        assert PROFILE_64.verification_round == 5
        assert PROFILE_64.bits_per_round == 32

    def test_gift128_profile(self):
        assert PROFILE_128.segments == 32
        assert PROFILE_128.key_offsets == (1, 2)
        assert PROFILE_128.free_offsets == (0, 3)
        assert PROFILE_128.full_key_rounds == 2
        assert PROFILE_128.verification_round == 3
        assert PROFILE_128.bits_per_round == 64

    def test_lookup(self):
        assert profile_for_width(64) is PROFILE_64
        assert profile_for_width(128) is PROFILE_128
        with pytest.raises(ValueError):
            profile_for_width(96)


class TestMasterKeyMapping:
    @given(keys)
    @settings(max_examples=20)
    def test_gift64_assembly_roundtrip(self, key):
        rks = round_keys(key, 4, width=64)
        assert PROFILE_64.assemble_master_key(rks) == key

    @given(keys)
    @settings(max_examples=20)
    def test_gift128_assembly_roundtrip(self, key):
        """GIFT-128's two first round keys jointly hold the whole master
        key — the structural reason GRINCH needs only two rounds there."""
        rks = round_keys(key, 2, width=128)
        assert PROFILE_128.assemble_master_key(rks) == key

    @given(keys)
    @settings(max_examples=20)
    def test_mapping_matches_schedule_bits(self, key):
        rks = round_keys(key, 2, width=128)
        for round_index, (u, v) in enumerate(rks, start=1):
            for segment in (0, 13, 31):
                v_pos, u_pos = PROFILE_128.master_key_bits(
                    round_index, segment
                )
                assert (v >> segment) & 1 == (key >> v_pos) & 1
                assert (u >> segment) & 1 == (key >> u_pos) & 1

    def test_mapping_bounds(self):
        with pytest.raises(ValueError):
            PROFILE_64.master_key_bits(5, 0)
        with pytest.raises(ValueError):
            PROFILE_128.master_key_bits(3, 0)
        with pytest.raises(ValueError):
            PROFILE_128.master_key_bits(1, 32)

    def test_assembly_validates_count(self):
        with pytest.raises(ValueError):
            PROFILE_128.assemble_master_key([(0, 0)])


class TestVerificationKey:
    @given(keys)
    @settings(max_examples=20)
    def test_gift64_round5_prediction(self, key):
        rks = round_keys(key, 5, width=64)
        assert PROFILE_64.verification_key(rks[0]) == rks[4]

    @given(keys)
    @settings(max_examples=20)
    def test_gift128_round3_prediction(self, key):
        """RK3 of GIFT-128 is fully determined by RK1 — the verification
        stage's foundation for the 128-bit variant."""
        rks = round_keys(key, 3, width=128)
        assert PROFILE_128.verification_key(rks[0]) == rks[2]
