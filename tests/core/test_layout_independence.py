"""The attack must work wherever the victim's tables live in memory."""

import random

import pytest

from repro.cache.geometry import CacheGeometry
from repro.core.attack import GrinchAttack
from repro.core.config import AttackConfig
from repro.channel import SboxMonitor
from repro.gift.lut import TableLayout, TracedGift64


class TestCustomLayouts:
    @pytest.mark.parametrize("sbox_base,perm_base", [
        (0x0, 0x4000),          # table at address zero
        (0x8000, 0x9000),       # high addresses
        (0x1003, 0x2000),       # UNALIGNED S-box base
    ])
    def test_full_recovery_with_relocated_tables(self, sbox_base,
                                                 perm_base):
        key = random.Random(sbox_base or 77).getrandbits(128)
        layout = TableLayout(sbox_base=sbox_base, perm_base=perm_base)
        victim = TracedGift64(key, layout=layout)
        config = AttackConfig(layout=layout, seed=13)
        result = GrinchAttack(victim, config).recover_master_key()
        assert result.master_key == key

    def test_unaligned_base_with_wide_lines_splits_lines_unevenly(self):
        """An S-box whose base is not line-aligned straddles one more
        cache line; the monitor must model that correctly."""
        layout = TableLayout(sbox_base=0x1002, perm_base=0x2000)
        geometry = CacheGeometry(line_words=4)
        monitor = SboxMonitor.build(layout, geometry)
        # 16 bytes starting 2 bytes into a 4-byte line: 5 lines.
        assert len(monitor.lines) == 5
        sizes = sorted(
            len(monitor.indices_for_line(line)) for line in monitor.lines
        )
        assert sizes == [2, 2, 4, 4, 4]

    def test_unaligned_recovery_with_wide_lines(self):
        """Misalignment changes which index bits leak, but the
        candidate-carrying machinery absorbs it."""
        key = random.Random(31337).getrandbits(128)
        layout = TableLayout(sbox_base=0x1002, perm_base=0x2000)
        victim = TracedGift64(key, layout=layout)
        config = AttackConfig(
            layout=layout,
            geometry=CacheGeometry(line_words=2),
            seed=17,
            max_total_encryptions=None,
        )
        result = GrinchAttack(victim, config).recover_master_key()
        assert result.master_key == key

    def test_layout_mismatch_is_rejected(self):
        victim = TracedGift64(0, layout=TableLayout(sbox_base=0x5000,
                                                    perm_base=0x6000))
        with pytest.raises(ValueError):
            GrinchAttack(victim, AttackConfig())
