"""Tests for the S-box monitor and the probing primitives."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.setassoc import SetAssociativeCache
from repro.channel import SboxMonitor
from repro.channel import FlushReload, PrimeProbe, make_primitive as make_probe
from repro.gift.lut import TableLayout


def _monitor(line_words=1):
    return SboxMonitor.build(TableLayout(), CacheGeometry(line_words=line_words))


class TestSboxMonitor:
    @pytest.mark.parametrize("line_words,expected_lines",
                             [(1, 16), (2, 8), (4, 4), (8, 2)])
    def test_line_counts_follow_geometry(self, line_words, expected_lines):
        monitor = _monitor(line_words)
        assert len(monitor.lines) == expected_lines
        assert monitor.indices_per_line == 16 // expected_lines

    def test_indices_by_line_partition(self):
        monitor = _monitor(4)
        covered = sorted(
            index
            for line in monitor.lines
            for index in monitor.indices_for_line(line)
        )
        assert covered == list(range(16))

    def test_line_for_index_consistent(self):
        monitor = _monitor(2)
        for index in range(16):
            line = monitor.line_for_index(index)
            assert index in monitor.indices_for_line(line)

    def test_adjacent_indices_share_lines(self):
        monitor = _monitor(2)
        for even in range(0, 16, 2):
            assert monitor.line_for_index(even) == \
                monitor.line_for_index(even + 1)

    def test_line_addresses_one_per_line(self):
        monitor = _monitor(4)
        addresses = monitor.line_addresses()
        assert len(addresses) == 4
        lines = {monitor.geometry.line_of(a) for a in addresses}
        assert lines == set(monitor.lines)

    def test_universe_is_frozen(self):
        monitor = _monitor(1)
        assert monitor.universe == frozenset(monitor.lines)

    def test_validation(self):
        monitor = _monitor(1)
        with pytest.raises(ValueError):
            monitor.line_for_index(16)
        with pytest.raises(ValueError):
            monitor.indices_for_line(-5)


class TestFlushReload:
    def test_observes_exactly_touched_lines(self):
        monitor = _monitor(1)
        probe = FlushReload(monitor)
        cache = SetAssociativeCache(monitor.geometry)
        probe.reset(cache)
        cache.access(monitor.layout.sbox_address(3))
        cache.access(monitor.layout.sbox_address(9))
        observed = probe.observe(cache)
        assert observed == {
            monitor.line_for_index(3), monitor.line_for_index(9)
        }

    def test_reset_clears_previous_observation(self):
        monitor = _monitor(1)
        probe = FlushReload(monitor)
        cache = SetAssociativeCache(monitor.geometry)
        cache.access(monitor.layout.sbox_address(5))
        probe.reset(cache)
        assert probe.observe(cache) == frozenset()

    def test_supports_mid_flush(self):
        monitor = _monitor(1)
        probe = FlushReload(monitor)
        assert probe.supports_mid_flush
        cache = SetAssociativeCache(monitor.geometry)
        cache.access(monitor.layout.sbox_address(1))
        probe.mid_flush(cache)
        assert probe.observe(cache) == frozenset()

    def test_line_granular_observation(self):
        monitor = _monitor(4)
        probe = FlushReload(monitor)
        cache = SetAssociativeCache(monitor.geometry)
        probe.reset(cache)
        cache.access(monitor.layout.sbox_address(0))
        observed = probe.observe(cache)
        # Index 0's whole line (indices 0-3) reads as touched.
        assert observed == {monitor.line_for_index(0)}


class TestPrimeProbe:
    def test_detects_victim_touches_as_superset(self):
        monitor = _monitor(1)
        probe = PrimeProbe(monitor)
        cache = SetAssociativeCache(monitor.geometry)
        probe.reset(cache)
        cache.access(monitor.layout.sbox_address(7))
        observed = probe.observe(cache)
        assert monitor.line_for_index(7) in observed

    def test_quiet_victim_yields_empty(self):
        monitor = _monitor(1)
        probe = PrimeProbe(monitor)
        cache = SetAssociativeCache(monitor.geometry)
        probe.reset(cache)
        assert probe.observe(cache) == frozenset()

    def test_cannot_mid_flush(self):
        monitor = _monitor(1)
        probe = PrimeProbe(monitor)
        assert not probe.supports_mid_flush
        with pytest.raises(NotImplementedError):
            probe.mid_flush(SetAssociativeCache(monitor.geometry))

    def test_observe_reprimes_the_sets(self):
        monitor = _monitor(1)
        probe = PrimeProbe(monitor)
        cache = SetAssociativeCache(monitor.geometry)
        probe.reset(cache)
        cache.access(monitor.layout.sbox_address(2))
        probe.observe(cache)
        # After observe the attacker owns the sets again: a fresh
        # observation with no victim activity must be empty.
        assert probe.observe(cache) == frozenset()

    def test_unrelated_set_collisions_are_false_positives(self):
        """An access colliding in a monitored set (e.g. the PermBits
        table) is indistinguishable from an S-box touch — the
        set-granularity weakness of Prime+Probe."""
        monitor = _monitor(1)
        probe = PrimeProbe(monitor)
        cache = SetAssociativeCache(monitor.geometry)
        probe.reset(cache)
        sbox_set = monitor.geometry.set_of(monitor.layout.sbox_address(0))
        colliding = (0x100 * monitor.geometry.num_sets
                     + sbox_set) * monitor.geometry.line_bytes
        cache.access(colliding)
        observed = probe.observe(cache)
        assert monitor.line_for_index(0) in observed


class TestFactory:
    def test_builds_by_name(self):
        monitor = _monitor(1)
        assert isinstance(make_probe("flush_reload", monitor), FlushReload)
        assert isinstance(make_probe("prime_probe", monitor), PrimeProbe)

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_probe("evict_time", _monitor(1))
