"""Tests for Algorithm 2 and the multi-round plaintext inversion.

The central soundness property: a crafted plaintext, encrypted under
the *true* key, makes the monitored round-(t+1) S-box access of the
target segment hit exactly the index predicted by
:func:`repro.core.recover.expected_index`.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.crafting import (
    PlaintextCrafter,
    build_target_round_input,
    invert_rounds,
)
from repro.core.recover import expected_index
from repro.core.target_bits import set_target_bits
from repro.gift.cipher import Gift64
from repro.gift.keyschedule import round_keys

keys = st.integers(min_value=0, max_value=(1 << 128) - 1)


def _target_index(key, plaintext, spec):
    """Ground truth: the S-box input of the monitored access."""
    states = Gift64(key).round_states(plaintext, rounds=spec.round_index)
    round_output = states[spec.round_index - 1].after_add_round_key
    return (round_output >> (4 * spec.segment)) & 0xF


class TestInvertRounds:
    @settings(max_examples=20)
    @given(keys, st.integers(min_value=0, max_value=(1 << 64) - 1),
           st.integers(min_value=1, max_value=4))
    def test_inversion_matches_forward_rounds(self, key, state, rounds):
        rks = round_keys(key, rounds, width=64)
        plaintext = invert_rounds(state, rks, width=64)
        states = Gift64(key).round_states(plaintext, rounds=rounds)
        assert states[-1].after_add_round_key == state

    def test_zero_rounds_is_identity(self):
        assert invert_rounds(0xDEADBEEF, [], width=64) == 0xDEADBEEF


class TestRoundOneCrafting:
    @settings(max_examples=10)
    @given(keys, st.integers(min_value=0, max_value=15))
    def test_crafted_plaintext_pins_the_target_index(self, key, segment):
        """For a round-1 target the crafted plaintext must make the
        round-2 S-box input of the target segment equal the predicted
        index — for *any* key."""
        spec = set_target_bits(1, segment)
        crafter = PlaintextCrafter(spec, [], random.Random(1))
        v_bit, u_bit = (
            (key >> spec.key_bit_positions[0]) & 1,
            (key >> spec.key_bit_positions[1]) & 1,
        )
        expected = expected_index(spec, v_bit, u_bit)
        for plaintext in crafter.craft_many(5):
            assert _target_index(key, plaintext, spec) == expected

    def test_non_source_segments_vary(self):
        spec = set_target_bits(1, 0)
        crafter = PlaintextCrafter(spec, [], random.Random(2))
        plaintexts = crafter.craft_many(50)
        free_segment = next(
            s for s in range(16) if s not in spec.source_segments
        )
        nibbles = {(p >> (4 * free_segment)) & 0xF for p in plaintexts}
        assert len(nibbles) > 8  # essentially uniform

    def test_source_segments_stay_within_their_lists(self):
        spec = set_target_bits(1, 7)
        crafter = PlaintextCrafter(spec, [], random.Random(3))
        for plaintext in crafter.craft_many(30):
            for segment, allowed in spec.valid_inputs.items():
                nibble = (plaintext >> (4 * segment)) & 0xF
                assert nibble in allowed


class TestDeeperRoundCrafting:
    @settings(max_examples=8)
    @given(keys, st.integers(min_value=0, max_value=15),
           st.integers(min_value=2, max_value=4))
    def test_pins_deeper_targets_with_true_prior_keys(self, key, segment,
                                                      round_index):
        """Step 5: with the earlier round keys known, crafting pins
        round-t targets exactly the same way."""
        spec = set_target_bits(round_index, segment)
        prior = round_keys(key, round_index - 1, width=64)
        crafter = PlaintextCrafter(spec, prior, random.Random(4))
        v_bit = (key >> spec.key_bit_positions[0]) & 1
        u_bit = (key >> spec.key_bit_positions[1]) & 1
        expected = expected_index(spec, v_bit, u_bit)
        for plaintext in crafter.craft_many(3):
            assert _target_index(key, plaintext, spec) == expected

    def test_wrong_prior_key_breaks_the_pin(self):
        """A wrong guess of a source segment's previous-round key bits
        makes the target index vary — the signal hypothesis testing
        relies on."""
        key = random.Random(9).getrandbits(128)
        spec = set_target_bits(2, 5)
        true_prior = round_keys(key, 1, width=64)
        # Flip the V bit of one source segment of round 1.
        wrong_segment = spec.source_segments[0]
        u, v = true_prior[0]
        wrong_prior = [(u, v ^ (1 << wrong_segment))]
        crafter = PlaintextCrafter(spec, wrong_prior, random.Random(5))
        indices = {
            _target_index(key, plaintext, spec)
            for plaintext in crafter.craft_many(60)
        }
        assert len(indices) > 1


class TestBuildTargetRoundInput:
    def test_respects_constraints(self):
        spec = set_target_bits(1, 11)
        rng = random.Random(6)
        for _ in range(20):
            state = build_target_round_input(spec, rng)
            for segment, allowed in spec.valid_inputs.items():
                assert (state >> (4 * segment)) & 0xF in allowed


class TestValidation:
    def test_prior_key_count_checked(self):
        spec = set_target_bits(2, 0)
        with pytest.raises(ValueError):
            PlaintextCrafter(spec, [], random.Random(0))

    def test_craft_many_rejects_negative(self):
        spec = set_target_bits(1, 0)
        crafter = PlaintextCrafter(spec, [], random.Random(0))
        with pytest.raises(ValueError):
            crafter.craft_many(-1)
