"""Smoke tests: the fast example scripts must run end-to-end.

Each example asserts its own correctness internally (recovered keys,
taxonomy agreement, ...), so executing ``main()`` doubles as an
integration test.  Only the quick examples run here; the sweep-style
ones are exercised through their harnesses in the benchmark suite.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "full_key_recovery.py",
    "present_vs_gift.py",
    "countermeasure_demo.py",
    "soc_timing_study.py",
    "gift128_attack.py",
]


def _run_example(name: str) -> None:
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(
        f"example_{name.removesuffix('.py')}", path
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name, capsys):
    _run_example(name)
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"


def test_quickstart_reports_a_match(capsys):
    _run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "exact match       : True" in out


def test_every_example_has_a_docstring_and_main():
    for path in sorted(EXAMPLES_DIR.glob("*.py")):
        source = path.read_text()
        assert source.lstrip().startswith(('#!/usr/bin/env python3', '"""')), \
            f"{path.name} lacks a shebang/docstring header"
        assert "def main()" in source, f"{path.name} lacks main()"
        assert '__name__ == "__main__"' in source, \
            f"{path.name} lacks a __main__ guard"
