"""The external malloc/free + access-log parser, strict and lenient."""

import pytest

from repro.targets.layout import SBOX_ENTRIES, TableLayout
from repro.trace import ExternalTraceParser, ExternalTraceError

#: A well-formed two-round log against the canonical default layout:
#: a 16-byte S-box allocation and a 16*16*8-byte perm allocation.
GOOD_LOG = "\n".join(
    ["# tooling header", "alloc 0x55a0 16", "alloc 0x7000 2048",
     "enc 0123456789abcdef fedcba9876543210"]
    + [f"read 0x55{0xA0 + (i % 16):x}" for i in range(32)]
    + ["read 0x7010", "end", "free 0x55a0", "free 0x7000"]
)


class TestHappyPath:
    def test_parses_rounds_and_tables(self):
        trace, stats = ExternalTraceParser().parse(GOOD_LOG)
        assert stats.skipped == 0
        assert stats.allocations == 2
        assert stats.frees == 2
        assert stats.encryptions == 1
        assert trace.header.target == "external"
        assert trace.header.scope == "external"
        record = trace.records[0]
        assert record.plaintext == 0x0123456789ABCDEF
        assert record.ciphertext == 0xFEDCBA9876543210
        assert record.rounds_visible == 2
        sbox = [a for a in record.accesses if a.table == "sbox"]
        perm = [a for a in record.accesses if a.table == "perm"]
        assert len(sbox) == 32 and len(perm) == 1
        assert {a.round_index for a in sbox} == {1, 2}
        # Segment positions count S-box loads within the round.
        assert [a.segment for a in sbox[:4]] == [0, 1, 2, 3]

    def test_addresses_rebased_to_canonical_layout(self):
        layout = TableLayout()
        trace, _ = ExternalTraceParser().parse(GOOD_LOG)
        record = trace.records[0]
        first = record.accesses[0]
        assert first.index == 0
        assert first.address == layout.sbox_address(0)

    def test_feeds_through_replay_transport(self):
        from repro.trace import ReplayTransport

        trace, _ = ExternalTraceParser().parse(GOOD_LOG)
        transport = ReplayTransport.for_trace(trace)
        played = transport.play(trace.records[0])
        assert played == 33

    def test_implicit_block_without_markers(self):
        log = "alloc 0x55a0 16\nread 0x55a1\nread 0x55a2\n"
        trace, stats = ExternalTraceParser().parse(log)
        assert stats.encryptions == 1
        assert trace.records[0].plaintext is None
        assert len(trace.records[0].accesses) == 2

    def test_enc_marker_autocloses_previous_block(self):
        log = ("alloc 0x55a0 16\nenc 01\nread 0x55a1\n"
               "enc 02\nread 0x55a2\n")
        trace, stats = ExternalTraceParser().parse(log)
        assert stats.encryptions == 2
        assert [r.plaintext for r in trace.records] == [1, 2]

    def test_free_unbinds_region(self):
        log = ("alloc 0x55a0 16\nfree 0x55a0\nalloc 0x9000 16\n"
               "read 0x9001\n")
        trace, stats = ExternalTraceParser().parse(log)
        assert stats.skipped == 0
        assert trace.records[0].accesses[0].index == 1

    def test_round_inference_uses_segments(self):
        parser = ExternalTraceParser(segments=4)
        sbox_size = SBOX_ENTRIES * TableLayout().sbox_entry_bytes
        log = "\n".join([f"alloc 0x55a0 {sbox_size}"]
                        + ["read 0x55a0"] * 9)
        trace, _ = parser.parse(log)
        assert trace.header.width == 16
        rounds = [a.round_index for a in trace.records[0].accesses]
        assert rounds == [1, 1, 1, 1, 2, 2, 2, 2, 3]


MALFORMED_CASES = [
    ("garbage line", "frobnicate 0x1 2", "skipped_malformed"),
    ("bad operand", "alloc 0xZZ 16", "skipped_malformed"),
    ("wrong arity", "alloc 0x55a0", "skipped_malformed"),
    ("negative size", "alloc 0x55a0 -4", "skipped_malformed"),
    ("unknown free", "free 0x9999", "skipped_unknown_free"),
    ("unmapped access", "read 0xdead0000", "skipped_unmapped"),
    ("stray end", "end", "skipped_stray"),
]


class TestStrictMode:
    @pytest.mark.parametrize("label,line,_", MALFORMED_CASES,
                             ids=[c[0] for c in MALFORMED_CASES])
    def test_raises_with_line_number(self, label, line, _):
        log = f"alloc 0x55a0 16\n{line}\n"
        with pytest.raises(ExternalTraceError) as excinfo:
            ExternalTraceParser(strict=True).parse(log)
        assert excinfo.value.lineno == 2
        assert "line 2" in str(excinfo.value)

    def test_access_outside_enc_block(self):
        log = "alloc 0x55a0 16\nenc 01\nend\nread 0x55a1\n"
        with pytest.raises(ExternalTraceError) as excinfo:
            ExternalTraceParser(strict=True).parse(log)
        assert excinfo.value.lineno == 4

    def test_overlapping_allocation(self):
        log = "alloc 0x55a0 16\nalloc 0x55a8 16\n"
        with pytest.raises(ExternalTraceError):
            ExternalTraceParser(strict=True).parse(log)


class TestLenientMode:
    @pytest.mark.parametrize("label,line,category", MALFORMED_CASES,
                             ids=[c[0] for c in MALFORMED_CASES])
    def test_skips_and_counts(self, label, line, category):
        log = f"alloc 0x55a0 16\n{line}\nread 0x55a1\n"
        trace, stats = ExternalTraceParser(strict=False).parse(log)
        assert getattr(stats, category) == 1
        assert stats.skipped == 1
        # The good access after the bad line still lands.
        assert len(trace.records[0].accesses) == 1

    def test_counts_survive_into_meta(self):
        log = "alloc 0x55a0 16\nbogus\nread 0x55a1\n"
        trace, stats = ExternalTraceParser(strict=False).parse(log)
        assert trace.header.meta["stats"] == stats.as_dict()
        assert trace.header.meta["stats"]["skipped_malformed"] == 1

    def test_never_silent(self):
        """Lenient mode must tally every single dropped line."""
        bad_lines = [case[1] for case in MALFORMED_CASES]
        log = "\n".join(["alloc 0x55a0 16"] + bad_lines)
        _, stats = ExternalTraceParser(strict=False).parse(log)
        assert stats.skipped == len(bad_lines)


class TestParserConfig:
    def test_custom_target_and_segments(self):
        parser = ExternalTraceParser(segments=32, target="mycipher")
        trace, _ = parser.parse("alloc 0x55a0 16\nread 0x55a0\n")
        assert trace.header.target == "mycipher"
        assert trace.header.width == 128

    def test_bad_segments(self):
        with pytest.raises(ValueError):
            ExternalTraceParser(segments=0)

    def test_custom_layout_binding(self):
        layout = TableLayout(sbox_entry_bytes=4)
        parser = ExternalTraceParser(layout=layout)
        trace, _ = parser.parse("alloc 0x55a0 64\nread 0x55a4\n")
        access = trace.records[0].accesses[0]
        assert access.table == "sbox"
        assert access.index == 1
        assert access.address == layout.sbox_address(1)

    def test_parse_file(self, tmp_path):
        path = tmp_path / "victim.log"
        path.write_text(GOOD_LOG, encoding="utf-8")
        trace, stats = ExternalTraceParser().parse_file(path)
        assert stats.accesses == 33
        assert trace.windows == 1
