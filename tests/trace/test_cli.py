"""The ``python -m repro trace`` front-end."""

from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.seeding import derive_key
from repro.trace import read_binary, read_jsonl
from repro.tracecli import main as trace_main

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"


class TestRecord:
    def test_record_replay_check(self, tmp_path, capsys):
        out = tmp_path / "run.grtr"
        assert trace_main(["record", "--target", "gift64", "--seed", "0",
                           "--scope", "first-round",
                           "--out", str(out)]) == 0
        assert out.is_file()
        assert trace_main(["replay", str(out), "--check"]) == 0
        captured = capsys.readouterr()
        assert "replay matches the recording" in captured.out

    def test_record_is_deterministic(self, tmp_path):
        paths = [tmp_path / "a.grtr", tmp_path / "b.grtr"]
        for path in paths:
            assert trace_main(["record", "--target", "present80",
                               "--seed", "3", "--scope", "first-round",
                               "--out", str(path)]) == 0
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_record_matches_committed_corpus(self, tmp_path):
        """A fresh seed-0 recording is byte-identical to the corpus."""
        out = tmp_path / "fresh.grtr"
        assert trace_main(["record", "--target", "gift64", "--seed", "0",
                           "--scope", "full-key",
                           "--out", str(out)]) == 0
        committed = (CORPUS_DIR / "gift64-seed0-full.grtr").read_bytes()
        assert out.read_bytes() == committed

    def test_record_jsonl_output(self, tmp_path):
        out = tmp_path / "run.jsonl"
        assert trace_main(["record", "--target", "gift64", "--seed", "0",
                           "--scope", "first-round",
                           "--out", str(out)]) == 0
        trace = read_jsonl(out)
        assert trace.header.target == "gift64"
        assert trace.windows == 116

    def test_record_stamps_meta(self, tmp_path):
        out = tmp_path / "run.grtr"
        trace_main(["record", "--target", "gift64", "--seed", "0",
                    "--scope", "full-key", "--out", str(out)])
        meta = read_binary(out).header.meta
        assert meta["recovered"] is True
        assert meta["total_encryptions"] == 464
        assert int(meta["master_key"], 16) == derive_key(128, 0)


class TestReplay:
    def test_check_catches_tamper(self, tmp_path, capsys):
        import json

        from repro.trace import dump_jsonl, load_jsonl, read_binary, \
            write_binary

        trace = read_binary(CORPUS_DIR / "gift64-seed0-full.grtr")
        lines = dump_jsonl(trace).splitlines()
        header = json.loads(lines[0])
        header["meta"]["total_encryptions"] = 999
        lines[0] = json.dumps(header, sort_keys=True,
                              separators=(",", ":"))
        tampered = tmp_path / "tampered.grtr"
        write_binary(load_jsonl("\n".join(lines)), tampered)
        assert trace_main(["replay", str(tampered), "--check"]) == 1
        assert "effort drift" in capsys.readouterr().err

    def test_corrupt_file_is_a_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.grtr"
        bad.write_bytes(b"GRTR" + b"\x00" * 10)
        assert trace_main(["replay", str(bad)]) == 2
        assert "trace error" in capsys.readouterr().err

    def test_missing_file_is_a_clean_error(self, capsys):
        assert trace_main(["replay", "/nonexistent/trace.grtr"]) == 2
        assert "trace error" in capsys.readouterr().err


class TestConvertAndInfo:
    def test_binary_jsonl_binary_is_byte_identical(self, tmp_path):
        source = CORPUS_DIR / "gift64-seed0-first.grtr"
        middle = tmp_path / "mid.jsonl"
        back = tmp_path / "back.grtr"
        assert trace_main(["convert", str(source), str(middle)]) == 0
        assert trace_main(["convert", str(middle), str(back)]) == 0
        assert back.read_bytes() == source.read_bytes()

    def test_external_log_conversion(self, tmp_path):
        log = tmp_path / "victim.log"
        log.write_text(
            "alloc 0x55a0 16\nenc 0123\nread 0x55a3\nend\n",
            encoding="utf-8",
        )
        out = tmp_path / "ext.grtr"
        assert trace_main(["convert", str(log), str(out)]) == 0
        trace = read_binary(out)
        assert trace.header.target == "external"
        assert trace.records[0].accesses[0].index == 3

    def test_lenient_flag_reaches_parser(self, tmp_path, capsys):
        log = tmp_path / "victim.log"
        log.write_text("alloc 0x55a0 16\nbogus\nread 0x55a1\n",
                       encoding="utf-8")
        out = tmp_path / "ext.grtr"
        assert trace_main(["convert", str(log), str(out)]) == 2
        assert trace_main(["convert", str(log), str(out),
                           "--lenient"]) == 0
        assert "skipped 1 lines" in capsys.readouterr().err

    def test_info(self, capsys):
        assert trace_main(
            ["info", str(CORPUS_DIR / "gift64-seed0-full.grtr")]
        ) == 0
        out = capsys.readouterr().out
        assert "gift64" in out
        assert "464 windows" in out
        assert "full-key" in out


class TestTopLevelWiring:
    def test_repro_trace_dispatches(self, capsys):
        code = repro_main(
            ["trace", "info",
             str(CORPUS_DIR / "present80-seed0-full.grtr")]
        )
        assert code == 0
        assert "present80" in capsys.readouterr().out

    def test_trace_in_top_level_help(self, capsys):
        with pytest.raises(SystemExit):
            repro_main(["--help"])
        assert "trace" in capsys.readouterr().out
