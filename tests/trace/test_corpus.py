"""The committed golden-trace corpus: replay-only regression pins.

These tests never construct a cipher victim — every recovery below
runs from the committed ``tests/corpus/*.grtr`` files alone.  The
pinned numbers mirror the live-effort invariant in
``tests/channel/test_observer.py`` (seed-0 GIFT-64 full key = exactly
464 encryptions): if a pipeline change shifts what the attack extracts
from a fixed observation stream, these fail first.
"""

from pathlib import Path

import pytest

from repro.core.attack import GrinchAttack
from repro.engine.replay import DEFAULT_TRACES, config_from_header
from repro.seeding import derive_key
from repro.trace import ReplayVictim, dump_jsonl, dumps, load_jsonl, \
    read_binary

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"

#: Pinned effort per corpus trace (windows == recorded encryptions).
PINNED = {
    "gift64-seed0-full.grtr": 464,
    "gift64-seed0-first.grtr": 116,
    "gift64-seed0-miss20-full.grtr": 1856,
    "present80-seed0-full.grtr": 244,
    "present80-seed0-first.grtr": 132,
}


def _read(name):
    return read_binary(CORPUS_DIR / name)


class TestCorpusIntegrity:
    def test_all_default_traces_committed(self):
        for path_text in DEFAULT_TRACES:
            assert (CORPUS_DIR / Path(path_text).name).is_file()

    @pytest.mark.parametrize("name", sorted(PINNED))
    def test_window_counts_pinned(self, name):
        trace = _read(name)
        assert trace.windows == PINNED[name]
        assert trace.header.seed == 0
        assert trace.header.meta["total_encryptions"] == PINNED[name]

    @pytest.mark.parametrize("name", sorted(PINNED))
    def test_jsonl_twin_round_trips(self, name):
        blob = (CORPUS_DIR / name).read_bytes()
        trace = _read(name)
        text = dump_jsonl(trace)
        assert load_jsonl(text) == trace
        assert dumps(load_jsonl(text)) == blob

    def test_corpus_stays_small(self):
        total = sum((CORPUS_DIR / name).stat().st_size
                    for name in PINNED)
        assert total < 500_000, "golden corpus must stay a few hundred KB"


class TestReplayOnlyRecovery:
    def test_gift64_full_key_from_corpus_alone(self):
        trace = _read("gift64-seed0-full.grtr")
        result = GrinchAttack(
            ReplayVictim(trace), config_from_header(trace.header)
        ).recover_master_key()
        assert result.master_key == derive_key(128, 0)
        assert result.verified
        assert result.total_encryptions == 464

    def test_present80_full_key_from_corpus_alone(self):
        trace = _read("present80-seed0-full.grtr")
        result = GrinchAttack(
            ReplayVictim(trace), config_from_header(trace.header)
        ).recover_master_key()
        assert result.master_key == derive_key(80, 0)
        assert result.verified
        assert result.total_encryptions == 244

    @pytest.mark.parametrize("name,bits", [
        ("gift64-seed0-first.grtr", 32),
        ("present80-seed0-first.grtr", 64),
    ])
    def test_first_round_from_corpus_alone(self, name, bits):
        trace = _read(name)
        result = GrinchAttack(
            ReplayVictim(trace), config_from_header(trace.header)
        ).attack_first_round()
        assert result.recovered_bits == bits
        assert result.encryptions == PINNED[name]

    def test_replay_consumes_whole_recording(self):
        trace = _read("gift64-seed0-full.grtr")
        victim = ReplayVictim(trace)
        GrinchAttack(victim, config_from_header(trace.header)) \
            .recover_master_key()
        assert victim.remaining == 0
        assert victim.windows_served == 464
        assert victim.pairs_served == 1

    def test_recorded_key_matches_derivation(self):
        """The corpus metadata agrees with the seeding discipline."""
        trace = _read("gift64-seed0-full.grtr")
        assert int(trace.header.meta["master_key"], 16) \
            == derive_key(128, 0)
        assert trace.header.meta["recovered"] is True

    def test_degraded_recording_replays_through_voting(self):
        """The 20%-miss recording rebuilds its lossy channel from the
        header meta alone and recovers the key via voting, with the
        exact recorded effort."""
        trace = _read("gift64-seed0-miss20-full.grtr")
        assert trace.header.meta["miss_probability"] == 0.2
        config = config_from_header(trace.header)
        assert config.loss.miss_probability == 0.2
        assert config.voting_active
        victim = ReplayVictim(trace)
        result = GrinchAttack(victim, config).recover_master_key()
        assert result.master_key == derive_key(128, 0)
        assert result.verified
        assert result.total_encryptions == 1856
        assert victim.remaining == 0
