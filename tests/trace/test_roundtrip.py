"""Property tests: serialization round-trips and corruption handling.

The binary codec and its JSONL twin must be mutually lossless — any
in-memory trace survives ``memory -> binary -> memory`` and
``binary <-> JSONL`` byte-for-byte — and every malformed input must
raise a *typed* error, never silently yield a short stream.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.geometry import GEOMETRY_PRESETS, CacheGeometry
from repro.targets.layout import TableLayout
from repro.targets.trace import MemoryAccess
from repro.trace import (
    FORMAT_VERSION,
    KIND_ACCESSES,
    KIND_INDICES,
    KIND_PAIR,
    MAGIC,
    EncryptionRecord,
    TraceFile,
    TraceFormatError,
    TraceHeader,
    TraceVersionError,
    dump_jsonl,
    dumps,
    load_jsonl,
    loads,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

_TABLES = ("sbox", "perm", "other")


@st.composite
def headers(draw):
    width = draw(st.sampled_from((64, 128)))
    return TraceHeader(
        target=draw(st.sampled_from(("gift64", "gift128", "present80",
                                     "external"))),
        width=width,
        rounds=draw(st.integers(min_value=1, max_value=40)),
        seed=draw(st.one_of(st.none(),
                            st.integers(min_value=-2**31,
                                        max_value=2**31 - 1))),
        scope=draw(st.sampled_from(("runner", "external", "custom"))),
        probe_round_offset=draw(st.integers(min_value=0, max_value=2)),
        geometry=draw(st.sampled_from(
            tuple(GEOMETRY_PRESETS.values())
            + (CacheGeometry(total_lines=2048, ways=8),)
        )),
        layout=draw(st.sampled_from((
            TableLayout(),
            TableLayout(sbox_base=0x8000, sbox_entry_bytes=4,
                        perm_base=0x10000, perm_entry_bytes=16),
        ))),
        probing_round=draw(st.integers(min_value=1, max_value=4)),
        use_flush=draw(st.booleans()),
        probe_strategy=draw(st.sampled_from(
            ("flush_reload", "prime_probe", "flush_flush")
        )),
        meta=draw(st.dictionaries(
            st.sampled_from(("scope", "note", "total_encryptions")),
            st.one_of(st.integers(min_value=0, max_value=10**6),
                      st.text(max_size=12), st.booleans()),
            max_size=3,
        )),
    )


def _records(header: TraceHeader):
    width = header.width
    blocks = st.integers(min_value=0, max_value=2**width - 1)
    segments = header.segments
    rounds_visible = st.integers(min_value=1, max_value=4)

    pair = st.builds(
        lambda p, c: EncryptionRecord(kind=KIND_PAIR, plaintext=p,
                                      ciphertext=c),
        blocks, blocks,
    )

    access = st.builds(
        MemoryAccess,
        address=st.integers(min_value=0, max_value=2**48 - 1),
        round_index=st.integers(min_value=0, max_value=8),
        segment=st.integers(min_value=-1, max_value=segments - 1),
        table=st.sampled_from(_TABLES),
        index=st.integers(min_value=-1, max_value=255),
    )
    accesses = st.builds(
        lambda p, c, rv, acc: EncryptionRecord(
            kind=KIND_ACCESSES, plaintext=p, ciphertext=c,
            rounds_visible=rv, accesses=tuple(acc),
        ),
        st.one_of(st.none(), blocks), st.one_of(st.none(), blocks),
        rounds_visible, st.lists(access, max_size=24),
    )

    row = st.tuples(*([st.integers(min_value=0, max_value=15)]
                      * segments))
    indices = rounds_visible.flatmap(
        lambda rv: st.builds(
            lambda p, rows: EncryptionRecord(
                kind=KIND_INDICES, plaintext=p, rounds_visible=rv,
                indices=tuple(rows),
            ),
            st.one_of(st.none(), blocks),
            st.lists(row, min_size=rv, max_size=rv),
        )
    )
    return st.one_of(pair, accesses, indices)


@st.composite
def trace_files(draw):
    header = draw(headers())
    records = draw(st.lists(_records(header), max_size=6))
    return TraceFile(header=header, records=tuple(records))


# ----------------------------------------------------------------------
# Round-trip properties
# ----------------------------------------------------------------------

class TestRoundTrips:
    @settings(max_examples=60, deadline=None)
    @given(trace_files())
    def test_binary_roundtrip(self, trace):
        assert loads(dumps(trace)) == trace

    @settings(max_examples=60, deadline=None)
    @given(trace_files())
    def test_jsonl_roundtrip(self, trace):
        assert load_jsonl(dump_jsonl(trace)) == trace

    @settings(max_examples=60, deadline=None)
    @given(trace_files())
    def test_cross_format_byte_stability(self, trace):
        blob = dumps(trace)
        text = dump_jsonl(trace)
        assert dumps(load_jsonl(text)) == blob
        assert dump_jsonl(loads(blob)) == text

    @settings(max_examples=30, deadline=None)
    @given(trace_files())
    def test_binary_encoding_deterministic(self, trace):
        assert dumps(trace) == dumps(trace)


# ----------------------------------------------------------------------
# Corruption: typed errors, never short streams
# ----------------------------------------------------------------------

class TestBinaryCorruption:
    @settings(max_examples=30, deadline=None)
    @given(trace_files(), st.data())
    def test_truncation_never_yields_short_stream(self, trace, data):
        blob = dumps(trace)
        cut = data.draw(st.integers(min_value=0,
                                    max_value=len(blob) - 1))
        with pytest.raises(TraceFormatError):
            loads(blob[:cut])

    @settings(max_examples=30, deadline=None)
    @given(trace_files(), st.data())
    def test_bitflip_is_detected(self, trace, data):
        blob = bytearray(dumps(trace))
        position = data.draw(st.integers(min_value=0,
                                         max_value=len(blob) - 1))
        blob[position] ^= data.draw(st.integers(min_value=1,
                                                max_value=255))
        with pytest.raises((TraceFormatError, TraceVersionError)):
            loads(bytes(blob))

    def test_bad_magic(self, small_trace):
        blob = b"XXXX" + dumps(small_trace)[4:]
        with pytest.raises(TraceFormatError):
            loads(blob)

    def test_version_skew_is_typed(self, small_trace):
        import struct
        import zlib

        blob = bytearray(dumps(small_trace))
        struct.pack_into("<H", blob, len(MAGIC), FORMAT_VERSION + 1)
        body = bytes(blob[:-4])
        blob[-4:] = struct.pack("<I", zlib.crc32(body))
        with pytest.raises(TraceVersionError):
            loads(bytes(blob))

    def test_trailing_garbage_rejected(self, small_trace):
        with pytest.raises(TraceFormatError):
            loads(dumps(small_trace) + b"\x00")

    def test_empty_input(self):
        with pytest.raises(TraceFormatError):
            loads(b"")


class TestJsonlCorruption:
    def test_empty_text(self):
        with pytest.raises(TraceFormatError):
            load_jsonl("")

    def test_not_json(self):
        with pytest.raises(TraceFormatError):
            load_jsonl("this is not json\n")

    def test_wrong_format_tag(self, small_trace):
        lines = dump_jsonl(small_trace).splitlines()
        header = json.loads(lines[0])
        header["format"] = "something-else"
        lines[0] = json.dumps(header)
        with pytest.raises(TraceFormatError):
            load_jsonl("\n".join(lines))

    def test_version_skew_is_typed(self, small_trace):
        lines = dump_jsonl(small_trace).splitlines()
        header = json.loads(lines[0])
        header["version"] = FORMAT_VERSION + 1
        lines[0] = json.dumps(header)
        with pytest.raises(TraceVersionError):
            load_jsonl("\n".join(lines))

    def test_missing_header_field(self, small_trace):
        lines = dump_jsonl(small_trace).splitlines()
        header = json.loads(lines[0])
        del header["tables"]
        lines[0] = json.dumps(header)
        with pytest.raises(TraceFormatError):
            load_jsonl("\n".join(lines))

    def test_malformed_record_line(self, small_trace):
        text = dump_jsonl(small_trace) + '{"kind": "bogus"}\n'
        with pytest.raises(TraceFormatError):
            load_jsonl(text)

    def test_bad_access_row(self, small_trace):
        lines = dump_jsonl(small_trace).splitlines()
        record = json.loads(lines[2])
        assert record["kind"] == KIND_ACCESSES
        record["accesses"][0] = [1, 2, 3]  # not 5 elements
        lines[2] = json.dumps(record)
        with pytest.raises(TraceFormatError):
            load_jsonl("\n".join(lines))

    def test_table_index_out_of_range(self, small_trace):
        lines = dump_jsonl(small_trace).splitlines()
        record = json.loads(lines[2])
        record["accesses"][0][3] = 99
        lines[2] = json.dumps(record)
        with pytest.raises(TraceFormatError):
            load_jsonl("\n".join(lines))
