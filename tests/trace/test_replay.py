"""Replay: recorded traces drive the unchanged pipeline, no cipher."""

import dataclasses

import pytest

from repro.core.attack import GrinchAttack
from repro.core.config import AttackConfig
from repro.seeding import derive_key
from repro.targets.registry import get_target
from repro.trace import (
    KIND_PAIR,
    EncryptionRecord,
    RecordingVictim,
    ReplayTransport,
    ReplayVictim,
    TraceExhaustedError,
    TraceFile,
    TraceHeader,
    TraceMismatchError,
    TraceRecorder,
)


def _record_full_key(target_name, seed=0, **config_overrides):
    target = get_target(target_name)
    key = derive_key(target.key_bits, seed)
    victim = target.make_victim(key)
    config = AttackConfig(seed=seed, **config_overrides)
    header = TraceHeader.for_victim(target_name, victim, config,
                                    scope="full-key")
    recorder = TraceRecorder(header)
    result = GrinchAttack(RecordingVictim(victim, recorder), config) \
        .recover_master_key()
    return key, config, result, recorder.to_trace_file()


class TestReplayVictim:
    def test_full_key_without_cipher(self):
        key, config, live, trace = _record_full_key("gift64")
        replayed = GrinchAttack(ReplayVictim(trace), config) \
            .recover_master_key()
        assert replayed.master_key == key
        assert replayed.verified
        assert replayed.total_encryptions == live.total_encryptions
        assert replayed.encryptions_by_round == live.encryptions_by_round

    def test_full_path_replay(self):
        key, config, live, trace = _record_full_key(
            "gift64", use_fast_path=False
        )
        replayed = GrinchAttack(ReplayVictim(trace), config) \
            .recover_master_key()
        assert replayed.master_key == key
        assert replayed.total_encryptions == live.total_encryptions

    def test_present_replay(self):
        key, config, live, trace = _record_full_key("present80")
        replayed = GrinchAttack(ReplayVictim(trace), config) \
            .recover_master_key()
        assert replayed.master_key == key
        assert replayed.total_encryptions == live.total_encryptions

    def test_attack_surface_comes_from_header(self):
        _, _, _, trace = _record_full_key("gift64")
        victim = ReplayVictim(trace)
        header = trace.header
        assert victim.width == header.width
        assert victim.rounds == header.rounds
        assert victim.layout == header.layout
        assert victim.attack_target == header.target
        assert victim.probe_round_offset == header.probe_round_offset

    def test_strict_plaintext_drift_raises(self):
        _, _, _, trace = _record_full_key("gift64")
        victim = ReplayVictim(trace)
        first = trace.records[0]
        wrong = (first.plaintext or 0) ^ 1
        with pytest.raises(TraceMismatchError):
            victim.sbox_indices_by_round(wrong, 1)

    def test_strict_kind_drift_raises(self):
        _, _, _, trace = _record_full_key("gift64")
        victim = ReplayVictim(trace)
        first = trace.records[0]
        assert first.is_window
        with pytest.raises(TraceMismatchError):
            victim.encrypt(first.plaintext)

    def test_loose_mode_skips_interleaved_kinds(self):
        _, _, _, trace = _record_full_key("gift64")
        victim = ReplayVictim(trace, strict=False)
        pair = next(r for r in trace.records if r.kind == KIND_PAIR)
        # Skips every window on the way to the single known pair.
        assert victim.encrypt(pair.plaintext) == pair.ciphertext

    def test_exhaustion_is_typed(self, header):
        trace = TraceFile(header=header, records=(
            EncryptionRecord(kind=KIND_PAIR, plaintext=1, ciphertext=2),
        ))
        victim = ReplayVictim(trace)
        assert victim.encrypt(1) == 2
        with pytest.raises(TraceExhaustedError):
            victim.encrypt(1)
        with pytest.raises(TraceExhaustedError):
            victim.sbox_indices_by_round(1, 1)

    def test_short_window_raises(self, header):
        rows = (tuple(range(16)),)
        trace = TraceFile(header=header, records=(
            EncryptionRecord(kind="indices", plaintext=None,
                             rounds_visible=1, indices=rows),
        ))
        with pytest.raises(TraceMismatchError):
            ReplayVictim(trace).sbox_indices_by_round(0, 3)

    def test_counters(self):
        _, config, _, trace = _record_full_key("gift64")
        victim = ReplayVictim(trace)
        GrinchAttack(victim, config).recover_master_key()
        assert victim.pairs_served == 1
        assert victim.windows_served == trace.windows
        assert victim.remaining == 0


class TestReplayTransport:
    def test_play_feeds_victim_traffic(self):
        _, _, _, trace = _record_full_key("gift64",
                                          use_fast_path=False)
        transport = ReplayTransport.for_trace(trace)
        window = next(r for r in trace.records if r.is_window)
        played = transport.play(window, header=trace.header)
        assert played == len(window.accesses)
        # A played S-box line is now resident: reload hits.
        assert transport.access(window.accesses[0].address)

    def test_play_indices_needs_header(self):
        _, _, _, trace = _record_full_key("gift64")  # fast path: indices
        transport = ReplayTransport.for_trace(trace)
        window = next(r for r in trace.records if r.is_window)
        with pytest.raises(TraceMismatchError):
            transport.play(window)
        assert transport.play(window, header=trace.header) > 0

    def test_play_respects_round_limit(self):
        _, _, _, trace = _record_full_key("gift64")
        transport = ReplayTransport.for_trace(trace)
        window = next(r for r in trace.records if r.is_window)
        all_rounds = transport.cold().play(window, header=trace.header)
        one_round = transport.cold().play(window, header=trace.header,
                                          through_round=1)
        assert one_round == trace.header.segments
        assert all_rounds > one_round

    def test_pair_plays_nothing(self):
        _, _, _, trace = _record_full_key("gift64")
        transport = ReplayTransport.for_trace(trace)
        pair = next(r for r in trace.records if r.kind == KIND_PAIR)
        assert transport.play(pair) == 0

    def test_geometry_check(self):
        _, _, _, trace = _record_full_key("gift64")
        transport = ReplayTransport.for_trace(trace)
        transport.check_geometry(trace.header.geometry)
        wide = dataclasses.replace(trace.header.geometry, line_words=8)
        with pytest.raises(ValueError):
            transport.check_geometry(wide)
