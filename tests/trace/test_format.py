"""The trace data model: headers, records, classification."""

import dataclasses

import pytest

from repro.cache.geometry import GEOMETRY_PRESETS, CacheGeometry
from repro.targets.layout import TableLayout
from repro.targets.trace import MemoryAccess
from repro.trace import (
    KIND_ACCESSES,
    KIND_INDICES,
    KIND_PAIR,
    EncryptionRecord,
    TraceError,
    TraceFile,
    TraceHeader,
    classify_address,
)


class TestTraceHeader:
    def test_defaults(self, header):
        assert header.segments == 16
        assert header.geometry_preset == "paper"
        assert header.tables == ("sbox", "perm", "other")

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceHeader(target="", width=64, rounds=28)
        with pytest.raises(ValueError):
            TraceHeader(target="x", width=63, rounds=28)
        with pytest.raises(ValueError):
            TraceHeader(target="x", width=64, rounds=0)
        with pytest.raises(ValueError):
            TraceHeader(target="x", width=64, rounds=28,
                        tables=("sbox", "sbox"))

    def test_table_index(self, header):
        assert header.table_index("sbox") == 0
        assert header.table_index("perm") == 1
        with pytest.raises(TraceError):
            header.table_index("nope")

    def test_with_meta_is_functional(self, header):
        stamped = header.with_meta(scope="full-key")
        assert stamped.meta == {"scope": "full-key"}
        assert header.meta == {}

    def test_non_preset_geometry(self):
        header = TraceHeader(target="x", width=64, rounds=28,
                             geometry=CacheGeometry(total_lines=2048))
        assert header.geometry_preset is None

    def test_for_victim_mirrors_config(self):
        from repro.core.config import AttackConfig
        from repro.targets.registry import get_target
        from repro.seeding import derive_key

        target = get_target("gift64")
        victim = target.make_victim(derive_key(target.key_bits, 0))
        config = AttackConfig(seed=7, probing_round=2, use_flush=False)
        header = TraceHeader.for_victim("gift64", victim, config,
                                        scope="full-key")
        assert header.target == "gift64"
        assert header.width == victim.width
        assert header.rounds == victim.rounds
        assert header.seed == 7
        assert header.probing_round == 2
        assert header.use_flush is False
        assert header.layout == victim.layout


class TestEncryptionRecord:
    def test_pair_needs_both_blocks(self):
        with pytest.raises(ValueError):
            EncryptionRecord(kind=KIND_PAIR, plaintext=1)
        with pytest.raises(ValueError):
            EncryptionRecord(kind=KIND_PAIR, ciphertext=1)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            EncryptionRecord(kind="bogus")

    def test_indices_shape_checked(self):
        with pytest.raises(ValueError):
            EncryptionRecord(kind=KIND_INDICES, rounds_visible=2,
                             indices=(tuple(range(16)),))
        with pytest.raises(ValueError):
            EncryptionRecord(kind=KIND_INDICES, rounds_visible=1,
                             indices=((0,) * 15 + (16,),))

    def test_kind_stream_exclusivity(self):
        access = MemoryAccess(address=0x1000, round_index=1, segment=0,
                              table="sbox", index=0)
        with pytest.raises(ValueError):
            EncryptionRecord(kind=KIND_INDICES, rounds_visible=1,
                             indices=(tuple(range(16)),),
                             accesses=(access,))
        with pytest.raises(ValueError):
            EncryptionRecord(kind=KIND_ACCESSES, rounds_visible=1,
                             indices=(tuple(range(16)),))

    def test_is_window(self, small_trace):
        kinds = [r.is_window for r in small_trace.records]
        assert kinds == [True, True, False]

    def test_indices_record_to_trace(self, header, small_trace):
        record = small_trace.records[0]
        trace = record.to_trace(header)
        assert len(trace.accesses) == 2 * 16
        first = trace.accesses[0]
        assert first.table == "sbox"
        assert first.round_index == 1
        assert first.address == header.layout.sbox_address(first.index)

    def test_sbox_indices_by_round_from_accesses(self, header,
                                                 small_trace):
        record = small_trace.records[1]
        rows = record.sbox_indices_by_round(header.segments)
        assert rows == [[i for i in range(16)]]

    def test_sbox_rows_require_full_rounds(self, header):
        accesses = tuple(
            MemoryAccess(address=header.layout.sbox_address(i),
                         round_index=1, segment=i, table="sbox", index=i)
            for i in range(15)  # one short
        )
        record = EncryptionRecord(kind=KIND_ACCESSES, rounds_visible=1,
                                  accesses=accesses)
        with pytest.raises(TraceError):
            record.sbox_indices_by_round(header.segments)


class TestTraceFile:
    def test_counts(self, small_trace):
        assert small_trace.windows == 2
        assert small_trace.pairs == 1

    def test_segment_width_checked(self, header):
        bad = EncryptionRecord(kind=KIND_INDICES, rounds_visible=1,
                               indices=((0,) * 15,))
        with pytest.raises(ValueError):
            TraceFile(header=header, records=(bad,))


class TestClassifyAddress:
    def test_sbox_and_perm_regions(self):
        layout = TableLayout()
        assert classify_address(layout, layout.sbox_address(5), 16) \
            == ("sbox", -1, 5)
        table, segment, slot = classify_address(
            layout, layout.perm_base + 17 * layout.perm_entry_bytes, 16
        )
        assert (table, segment, slot) == ("perm", 1, 17)

    def test_other_region(self):
        layout = TableLayout()
        assert classify_address(layout, 0xDEAD_0000, 16) \
            == ("other", -1, -1)

    def test_roundtrips_all_sbox_entries(self):
        layout = TableLayout(sbox_entry_bytes=4)
        for index in range(16):
            table, _, got = classify_address(
                layout, layout.sbox_address(index), 16
            )
            assert (table, got) == ("sbox", index)


class TestHeaderEquality:
    def test_dataclass_roundtrip_fields(self, header):
        clone = dataclasses.replace(header)
        assert clone == header

    def test_presets_all_detectable(self):
        for name, geometry in GEOMETRY_PRESETS.items():
            assert TraceHeader(target="x", width=64, rounds=28,
                               geometry=geometry).geometry_preset == name
