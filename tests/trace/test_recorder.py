"""Recording wrappers: capture without perturbation.

The load-bearing property is RNG transparency — the pinned seed-0
GIFT-64 full-key recovery must still take exactly 464 encryptions
with a recorder in the loop, on both observer paths.
"""

import pytest

from repro.channel.observer import ObservationChannel
from repro.channel.transport import SingleLevelTransport
from repro.core.attack import GrinchAttack
from repro.core.config import AttackConfig
from repro.seeding import derive_key
from repro.targets.registry import get_target
from repro.targets.trace import MemoryAccess
from repro.trace import (
    KIND_PAIR,
    EncryptionRecord,
    RecordingTransport,
    RecordingVictim,
    TraceError,
    TraceHeader,
    TraceRecorder,
)

#: The pinned effort invariant from tests/channel/test_observer.py.
PINNED_GIFT64_SEED0 = 464


def _gift64_setup(config):
    target = get_target("gift64")
    key = derive_key(target.key_bits, 0)
    victim = target.make_victim(key)
    header = TraceHeader.for_victim("gift64", victim, config,
                                    scope="full-key")
    return key, victim, header


class TestTraceRecorder:
    def test_single_capture_point(self, header):
        recorder = TraceRecorder(header)
        recorder.attach("victim")
        recorder.attach("victim")  # same point twice is fine
        with pytest.raises(TraceError):
            recorder.attach("transport")

    def test_unknown_capture_point(self, header):
        with pytest.raises(TraceError):
            TraceRecorder(header).attach("oscilloscope")

    def test_open_window_closed_by_record(self, header):
        recorder = TraceRecorder(header)
        recorder.append_raw_access(MemoryAccess(
            address=0x1000, round_index=0, segment=-1, table="sbox",
            index=0,
        ))
        assert recorder.windows == 1
        recorder.record(EncryptionRecord(kind=KIND_PAIR, plaintext=1,
                                         ciphertext=2))
        trace = recorder.to_trace_file()
        assert trace.windows == 1
        assert trace.pairs == 1
        # The raw window must precede the pair that closed it.
        assert trace.records[0].is_window
        assert trace.records[1].kind == KIND_PAIR


class TestRecordingVictimTransparency:
    def test_fast_path_pinned_effort(self):
        config = AttackConfig(seed=0)
        key, victim, header = _gift64_setup(config)
        recorder = TraceRecorder(header)
        attack = GrinchAttack(RecordingVictim(victim, recorder), config)
        result = attack.recover_master_key()
        assert result.master_key == key
        assert result.verified
        assert result.total_encryptions == PINNED_GIFT64_SEED0
        trace = recorder.to_trace_file()
        assert trace.windows == PINNED_GIFT64_SEED0
        assert trace.pairs == 1

    def test_full_path_pinned_effort(self):
        config = AttackConfig(seed=0, use_fast_path=False)
        key, victim, header = _gift64_setup(config)
        recorder = TraceRecorder(header)
        attack = GrinchAttack(RecordingVictim(victim, recorder), config)
        result = attack.recover_master_key()
        assert result.master_key == key
        assert result.total_encryptions == PINNED_GIFT64_SEED0
        assert recorder.to_trace_file().windows == PINNED_GIFT64_SEED0

    def test_delegation_preserves_victim_surface(self):
        config = AttackConfig(seed=0)
        _, victim, header = _gift64_setup(config)
        wrapped = RecordingVictim(victim, TraceRecorder(header))
        assert wrapped.width == victim.width
        assert wrapped.rounds == victim.rounds
        assert wrapped.layout == victim.layout
        # Target resolution must see the wrapped victim exactly.
        from repro.targets.registry import resolve_target_for
        assert resolve_target_for(wrapped) is resolve_target_for(victim)

    def test_return_values_untouched(self):
        config = AttackConfig(seed=0)
        _, victim, header = _gift64_setup(config)
        recorder = TraceRecorder(header)
        wrapped = RecordingVictim(victim, recorder)
        plaintext = 0x0123_4567_89AB_CDEF
        assert wrapped.encrypt(plaintext) == victim.encrypt(plaintext)
        assert (wrapped.sbox_indices_by_round(plaintext, 2)
                == victim.sbox_indices_by_round(plaintext, 2))
        recorded = recorder.to_trace_file()
        assert recorded.pairs == 1
        assert recorded.windows == 1
        assert recorded.records[0].plaintext == plaintext


class TestRecordingTransport:
    def test_transport_level_capture(self):
        config = AttackConfig(seed=0, use_fast_path=False)
        key, victim, header = _gift64_setup(config)
        recorder = TraceRecorder(header)
        transport = RecordingTransport(
            SingleLevelTransport(config.geometry), recorder
        )
        runner = ObservationChannel(victim, config, transport=transport)
        result = GrinchAttack(victim, config, runner=runner) \
            .recover_master_key()
        assert result.master_key == key
        assert result.total_encryptions == PINNED_GIFT64_SEED0
        trace = recorder.to_trace_file()
        # The known pair bypasses the transport, so windows only.
        assert trace.windows == PINNED_GIFT64_SEED0
        assert trace.pairs == 0
        window = next(r for r in trace.records if r.is_window)
        assert all(a.table in ("sbox", "perm", "other")
                   for a in window.accesses)

    def test_capability_flags_delegate(self, header):
        inner = SingleLevelTransport(AttackConfig().geometry)
        wrapped = RecordingTransport(inner, TraceRecorder(header))
        assert wrapped.supports_fast_path == inner.supports_fast_path
        assert wrapped.supports_prime_probe == inner.supports_prime_probe
        assert wrapped.line_bytes == inner.line_bytes

    def test_attacker_traffic_not_recorded(self, header):
        recorder = TraceRecorder(header)
        wrapped = RecordingTransport(
            SingleLevelTransport(AttackConfig().geometry), recorder
        )
        wrapped.access(0x1000)
        wrapped.flush_line(0x1000)
        assert recorder.to_trace_file().windows == 0

    def test_probe_then_victim_splits_windows(self, header):
        recorder = TraceRecorder(header)
        wrapped = RecordingTransport(
            SingleLevelTransport(AttackConfig().geometry), recorder
        )
        wrapped.victim_access(0x1000)
        wrapped.victim_access(0x1001)
        wrapped.access(0x1000)        # attacker reload: probe ran
        wrapped.victim_access(0x1002)  # next victim access = new window
        trace = recorder.to_trace_file()
        assert trace.windows == 2
        assert len(trace.records[0].accesses) == 2
        assert len(trace.records[1].accesses) == 1
