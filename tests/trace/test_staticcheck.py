"""Static gates over the L0 trace layer: secrets and layering."""

from pathlib import Path

from repro.staticcheck.baseline import load_baseline_fingerprints
from repro.staticcheck.layering import (
    TRACE_FORBIDDEN,
    check_package_layering,
)
from repro.staticcheck.project import analyze_paths

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


class TestSecretAnnotations:
    def test_replay_path_adds_no_unintentional_findings(self):
        """Every finding in the trace stack is baselined.

        The recorder/replay attributes carry key-dependent addresses
        and are declared ``@secret_attributes``; the analyzer findings
        that follow from that are intentional and recorded in the
        committed baseline.  Anything beyond the baseline is a
        regression in this PR's code.
        """
        findings, _ = analyze_paths([
            str(REPO_ROOT / "src" / "repro" / "trace"),
            str(REPO_ROOT / "src" / "repro" / "tracecli.py"),
        ])
        baselined = load_baseline_fingerprints(
            REPO_ROOT / "staticcheck-baseline.json"
        )
        fresh = [f for f in findings
                 if f.fingerprint not in baselined]
        assert fresh == [], (
            "unbaselined findings in the trace stack: "
            + "; ".join(f.fingerprint for f in fresh)
        )

    def test_secret_attributes_declared(self):
        from repro.staticcheck.secrets import SECRET_ATTRIBUTES_ATTR
        from repro.trace import recorder, replay

        def declared(cls):
            return getattr(cls, SECRET_ATTRIBUTES_ATTR)

        assert "records" in declared(recorder.TraceRecorder)
        assert "inner" in declared(recorder.RecordingVictim)
        assert "recorder" in declared(recorder.RecordingTransport)
        assert "trace" in declared(replay.ReplayVictim)


class TestTraceLayering:
    def test_repo_tree_is_compliant(self):
        assert check_package_layering() == []

    def test_forbidden_list_covers_the_stack(self):
        for package in ("repro.channel", "repro.core", "repro.engine",
                        "repro.cli", "repro.tracecli"):
            assert package in TRACE_FORBIDDEN

    def test_upward_import_is_caught(self, tmp_path):
        pkg = tmp_path / "repro" / "trace"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "sneaky.py").write_text(
            "from repro.core.attack import GrinchAttack\n"
        )
        violations = check_package_layering(tmp_path)
        assert len(violations) == 1
        assert "repro.trace.sneaky" in violations[0]
        assert "L0" in violations[0]

    def test_relative_upward_import_is_caught(self, tmp_path):
        pkg = tmp_path / "repro" / "trace"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "sneaky.py").write_text(
            "from ..channel.observer import ObservationChannel\n"
        )
        violations = check_package_layering(tmp_path)
        assert len(violations) == 1
        assert "repro.channel" in violations[0]

    def test_allowed_imports_pass(self, tmp_path):
        pkg = tmp_path / "repro" / "trace"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "fine.py").write_text(
            "from ..targets.trace import MemoryAccess\n"
            "from ..cache.geometry import CacheGeometry\n"
            "from ..seeding import derive_key\n"
            "from ..staticcheck.secrets import secret_attributes\n"
        )
        assert check_package_layering(tmp_path) == []
