"""Shared fixtures for the L0 trace tests."""

from __future__ import annotations

import pytest

from repro.trace import (
    KIND_ACCESSES,
    KIND_INDICES,
    KIND_PAIR,
    EncryptionRecord,
    TraceFile,
    TraceHeader,
)
from repro.targets.trace import MemoryAccess


@pytest.fixture
def header():
    """A default GIFT-64-shaped header."""
    return TraceHeader(target="gift64", width=64, rounds=28, seed=0)


@pytest.fixture
def small_trace(header):
    """A tiny but kind-complete trace file."""
    indices = tuple(tuple((i + j) % 16 for i in range(16))
                    for j in range(2))
    accesses = tuple(
        MemoryAccess(address=header.layout.sbox_address(i),
                     round_index=1, segment=i, table="sbox", index=i)
        for i in range(16)
    )
    return TraceFile(header=header, records=(
        EncryptionRecord(kind=KIND_INDICES, plaintext=0x0123,
                         rounds_visible=2, indices=indices),
        EncryptionRecord(kind=KIND_ACCESSES, plaintext=0x4567,
                         ciphertext=0x89AB, rounds_visible=1,
                         accesses=accesses),
        EncryptionRecord(kind=KIND_PAIR, plaintext=0xCDEF,
                         ciphertext=0xFEDC),
    ))
