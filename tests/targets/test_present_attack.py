"""GRINCH ported to PRESENT-80: the tentpole's first proof obligation.

PRESENT adds the round key *before* the S-box layer
(``probe_round_offset = 0``, ``first_round_direct``), has four key bits
per S-box index (no free offsets), and couples K3 to the still-ambiguous
K2 through the rotating key schedule — every axis on which it differs
from GIFT exercises a protocol seam.
"""

import random

import pytest

from repro.cache.geometry import CacheGeometry
from repro.core import AttackConfig, GrinchAttack
from repro.seeding import derive_key
from repro.staticcheck import declassify
from repro.targets import get_target


def _attack(seed, **config_kwargs):
    target = get_target("present80")
    planted = derive_key(80, seed)
    config = AttackConfig(seed=seed, **config_kwargs)
    victim = target.make_victim(planted, layout=config.layout)
    return planted, GrinchAttack(victim, config)


class TestFirstRound:
    def test_first_round_recovers_all_64_bits(self):
        _, attack = _attack(1)
        first = attack.attack_first_round()
        assert first.recovered_bits == 64

    def test_round_one_needs_no_crafting(self):
        """``first_round_direct``: the round-1 target spec has no source
        cone, because the key meets the plaintext before any S-box."""
        from repro.core.target_bits import set_target_bits

        target = get_target("present80")
        spec = set_target_bits(1, 3, target=target)
        assert spec.sources == ()


class TestFullKey:
    @pytest.mark.parametrize("seed", range(4))
    def test_recovers_the_planted_80_bit_key(self, seed):
        planted, attack = _attack(seed)
        result = attack.recover_master_key()
        assert declassify(result.master_key) == planted
        assert result.verified

    def test_recovery_at_later_probing_rounds(self):
        planted, attack = _attack(2, probing_round=2)
        result = attack.recover_master_key()
        assert declassify(result.master_key) == planted

    def test_wide_lines_leave_offset0_nibbles_ambiguous(self):
        """The documented structural limit: PRESENT's P-layer sends all
        four output bits of round-1 nibble ``q`` to index-bit offset
        ``q % 4``, so 2-word lines make nibbles 0/4/8/12 unobservable
        through round 2 and the full-key assembly cannot finish."""
        planted, attack = _attack(
            3, geometry=CacheGeometry(line_words=2)
        )
        with pytest.raises(RuntimeError, match="joint candidates"):
            attack.recover_master_key()


class TestKeySchedule:
    def test_k2_segment15_is_nonlinear_in_the_master_key(self):
        """K2's top nibble passes through the S-box inside the schedule;
        the target's assembly must invert it rather than read bits."""
        from repro.present.cipher import PRESENT_SBOX, Present

        rng = random.Random(9)
        for _ in range(20):
            master = rng.getrandbits(80)
            k2 = Present(master, key_bits=80).round_keys[1]
            assert (k2 >> 60) & 0xF == PRESENT_SBOX[(master >> 15) & 0xF]
