"""The cipher-target registry and its staticcheck obligations."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.staticcheck.leakage import geometry_preset, target_table_layout
from repro.targets import (
    get_target,
    registered_targets,
    resolve_target_for,
    target_names,
)

BUILTINS = ("gift64", "gift128", "giftcofb", "present80")


class TestRegistry:
    def test_builtins_are_registered(self):
        assert set(target_names()) >= set(BUILTINS)

    def test_get_target_returns_the_named_target(self):
        for name in BUILTINS:
            assert get_target(name).name == name

    def test_unknown_target_lists_the_known_ones(self):
        with pytest.raises(KeyError, match="gift64"):
            get_target("speck")

    def test_registered_targets_is_a_copy(self):
        snapshot = registered_targets()
        snapshot["bogus"] = None
        assert "bogus" not in registered_targets()


class TestResolveTargetFor:
    def test_attack_target_attribute_wins(self):
        target = get_target("present80")
        victim = target.make_victim(0)
        assert resolve_target_for(victim) is target

    def test_cofb_victim_resolves_to_the_cofb_target(self):
        target = get_target("giftcofb")
        victim = target.make_victim(1)
        assert resolve_target_for(victim) is target

    def test_width_fallback_for_plain_gift_victims(self):
        from repro.targets.gift import TracedGift64, TracedGift128

        assert resolve_target_for(TracedGift64(0)).name == "gift64"
        assert resolve_target_for(TracedGift128(0)).name == "gift128"

    def test_unresolvable_victim_raises(self):
        class Mystery:
            width = 48

        with pytest.raises(TypeError):
            resolve_target_for(Mystery())


class TestDeclaredLayouts:
    """Each target's declared tables must resolve in staticcheck
    leakage with nonzero observation classes (the registry/staticcheck
    contract the ISSUE pins)."""

    @pytest.mark.parametrize("name", BUILTINS)
    def test_layout_resolves_with_nonzero_classes(self, name):
        layout = target_table_layout(name)
        partition = layout.partition(geometry_preset("paper"))
        assert partition.class_count > 0

    @pytest.mark.parametrize("name", BUILTINS)
    def test_paper_geometry_separates_all_entries(self, name):
        layout = target_table_layout(name)
        assert layout.partition(geometry_preset("paper")).class_count == 16

    @pytest.mark.parametrize("name", BUILTINS)
    def test_joint_round_bound_is_positive(self, name):
        target = get_target(name)
        for preset in ("paper", "paper-8word", "arm"):
            assert target.joint_bits_per_round(
                geometry_preset(preset)) > 0.0

    def test_joint_bound_never_below_any_single_site(self):
        geometry = CacheGeometry(line_words=8)
        for target in registered_targets().values():
            for segment in range(target.segments):
                joint = target.joint_round_partition(segment, geometry)
                for site in target.observation_partitions(
                        segment, geometry):
                    assert joint.shannon_bits >= site.shannon_bits - 1e-9
