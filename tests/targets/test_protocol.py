"""Protocol conformance: every registered target's victim, algebra and
crafting surface agree with its reference cipher."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.targets import get_target, registered_targets

TARGETS = sorted(registered_targets())


def _planted_key(target, rng):
    return rng.getrandbits(target.key_bits)


def _scheduled_round_keys(target, master_key):
    """The attacked rounds' keys, straight from the cipher's schedule."""
    if target.name == "present80":
        from repro.present.cipher import Present

        return Present(master_key, key_bits=80) \
            .round_keys[:target.full_key_rounds]
    from repro.targets.gift import standard_round_keys

    return standard_round_keys(
        master_key, target.full_key_rounds, target.width
    )


class TestTracedVsUntraced:
    """The traced victim and the reference cipher are the same function
    — the property sweep the ISSUE requires for every registered
    target."""

    @pytest.mark.parametrize("name", TARGETS)
    @settings(max_examples=12)
    @given(data=st.data())
    def test_traced_equals_reference(self, name, data):
        target = get_target(name)
        key = data.draw(st.integers(0, (1 << target.key_bits) - 1))
        plaintext = data.draw(st.integers(0, (1 << target.width) - 1))
        victim = target.make_victim(key)
        assert victim.encrypt(plaintext) == \
            target.reference_encrypt(key, plaintext)

    @pytest.mark.parametrize("name", TARGETS)
    def test_trace_replays_the_encryption(self, name):
        target = get_target(name)
        rng = random.Random(hash(name) & 0xFFFF)
        key = _planted_key(target, rng)
        plaintext = rng.getrandbits(target.width)
        victim = target.make_victim(key)
        trace = victim.encrypt_traced(plaintext)
        assert trace.ciphertext == victim.encrypt(plaintext)
        assert trace.accesses

    @pytest.mark.parametrize("name", TARGETS)
    def test_partial_round_trace_indices_match(self, name):
        target = get_target(name)
        rng = random.Random(len(name))
        key = _planted_key(target, rng)
        plaintext = rng.getrandbits(target.width)
        victim = target.make_victim(key)
        indices = victim.sbox_indices_by_round(plaintext, 2)
        sbox_accesses = [
            a for a in victim.encrypt_traced(plaintext, max_rounds=2)
            .accesses if a.table == "sbox"
        ]
        flat = [i for per_round in indices for i in per_round]
        assert [a.index for a in sbox_accesses] == flat


class TestKeyAlgebra:
    @pytest.mark.parametrize("name", TARGETS)
    def test_segment_bits_roundtrip(self, name):
        target = get_target(name)
        rng = random.Random(7)
        key = _planted_key(target, rng)
        round_key = target.verification_round_key([
            target.round_key_from_segment_bits([
                tuple(rng.getrandbits(1)
                      for _ in range(len(target.key_offsets)))
                for _ in range(target.segments)
            ])
            for _ in range(target.full_key_rounds)
        ])
        bits = [target.segment_key_bits(round_key, s)
                for s in range(target.segments)]
        assert target.round_key_from_segment_bits(bits) == round_key

    @pytest.mark.parametrize("name", TARGETS)
    def test_master_key_bit_positions_invert_the_schedule(self, name):
        """``assemble_master_key`` really does invert the key relation
        the positions describe: planting a key, reading the scheduled
        round keys back through ``segment_key_bits`` and reassembling
        must reproduce the planted key."""
        target = get_target(name)
        rng = random.Random(11)
        for _ in range(10):
            planted = _planted_key(target, rng)
            resolved = _scheduled_round_keys(target, planted)
            assembled = target.assemble_master_key(resolved)
            assert assembled == planted

    @pytest.mark.parametrize("name", TARGETS)
    def test_bits_per_round_matches_offsets(self, name):
        target = get_target(name)
        assert target.bits_per_round == \
            len(target.key_offsets) * target.segments


class TestCraftingSurface:
    @pytest.mark.parametrize("name", TARGETS)
    def test_inverse_permutation_is_a_bijection(self, name):
        target = get_target(name)
        perm = target.inverse_permutation()
        assert sorted(perm) == list(range(target.width))

    @pytest.mark.parametrize("name", TARGETS)
    def test_invert_rounds_with_no_priors_is_identity_or_direct(self, name):
        target = get_target(name)
        state = 0x0123456789ABCDEF & ((1 << target.width) - 1)
        assert isinstance(target.invert_rounds(state, []), int)

    @pytest.mark.parametrize("name", TARGETS)
    def test_constants_do_not_touch_key_offsets(self, name):
        """Round constants must never collide with the key bit offsets
        inside a segment the attack reads — the TargetSpec arithmetic
        assumes the two are disjoint."""
        target = get_target(name)
        for round_index in range(1, target.full_key_rounds + 2):
            mask = target.round_constant_mask(round_index)
            for segment in range(target.segments):
                nibble = (mask >> (4 * segment)) & 0xF
                for offset in target.key_offsets:
                    assert not (nibble >> offset) & 1
