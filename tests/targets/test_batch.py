"""The target layer's batch surface: BatchVictim and the batch hooks.

Every registered target must honour the same contract:
``make_victim_batch`` returns a drop-in victim whose batch calls equal
the scalar loop element-for-element — vectorized where a bitsliced
backend exists (gift64, gift128, present80) and via the exact scalar
fallback where none does (giftcofb) — and ``batch_view`` must refuse
to see through recording/replay wrappers so those channels stay
scalar-exact.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gift.bitsliced import numpy_available
from repro.seeding import derive_key, derive_rng
from repro.targets.batch import BatchVictim
from repro.targets.registry import get_target, target_names

ALL_TARGETS = tuple(sorted(target_names()))
BITSLICED_TARGETS = ("gift128", "gift64", "present80")


def _pool(target_name, count=6):
    target = get_target(target_name)
    victim = target.make_victim(derive_key(target.key_bits, 0))
    rng = derive_rng("targets-batch-tests", target_name)
    return target, [rng.getrandbits(victim.width) for _ in range(count)]


class TestMakeVictimBatch:
    @pytest.mark.parametrize("name", ALL_TARGETS)
    def test_encrypt_batch_equals_scalar_loop(self, name):
        target, plaintexts = _pool(name)
        victim = target.make_victim_batch(derive_key(target.key_bits, 0))
        assert victim.encrypt_batch(plaintexts) \
            == [victim.encrypt(p) for p in plaintexts]

    @pytest.mark.parametrize("name", ALL_TARGETS)
    def test_sbox_indices_batch_equals_scalar_loop(self, name):
        target, plaintexts = _pool(name)
        victim = target.make_victim_batch(derive_key(target.key_bits, 0))
        limit = min(3, victim.rounds)
        indices = victim.sbox_indices_batch(plaintexts, max_rounds=limit)
        for n, plaintext in enumerate(plaintexts):
            expected = victim.sbox_indices_by_round(plaintext, limit)
            for round_index in range(limit):
                row = indices[round_index]
                assert [int(row[segment][n])
                        for segment in range(len(expected[round_index]))] \
                    == list(expected[round_index])

    @pytest.mark.parametrize("name", ALL_TARGETS)
    def test_vectorized_exactly_where_a_backend_exists(self, name):
        target, _ = _pool(name)
        victim = target.make_victim_batch(derive_key(target.key_bits, 0))
        assert isinstance(victim, BatchVictim)
        expected = numpy_available() and name in BITSLICED_TARGETS
        assert victim.vectorized is expected

    @pytest.mark.parametrize("name", ALL_TARGETS)
    def test_scalar_surface_delegates(self, name):
        target, plaintexts = _pool(name, count=1)
        key = derive_key(target.key_bits, 0)
        batch_victim = target.make_victim_batch(key)
        scalar_victim = target.make_victim(key)
        assert batch_victim.width == scalar_victim.width
        assert batch_victim.rounds == scalar_victim.rounds
        assert batch_victim.layout == scalar_victim.layout
        assert batch_victim.encrypt(plaintexts[0]) \
            == scalar_victim.encrypt(plaintexts[0])
        # Optional victim attributes pass through the wrapper, so the
        # channel's getattr probes see the real victim.
        assert getattr(batch_victim, "probe_round_offset", 1) \
            == getattr(scalar_victim, "probe_round_offset", 1)


class TestReferenceEncryptBatch:
    @pytest.mark.parametrize("name", ALL_TARGETS)
    def test_matches_scalar_reference(self, name):
        target, plaintexts = _pool(name)
        key = derive_key(target.key_bits, 0)
        assert target.reference_encrypt_batch(key, plaintexts) \
            == [target.reference_encrypt(key, p) for p in plaintexts]

    @pytest.mark.skipif(not numpy_available(), reason="numpy required")
    @settings(max_examples=10)
    @given(st.integers(min_value=0, max_value=(1 << 128) - 1),
           st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1),
                    min_size=1, max_size=6),
           st.integers(min_value=1, max_value=28))
    def test_gift64_reduced_round_reference(self, key, plaintexts, rounds):
        target = get_target("gift64")
        assert target.reference_encrypt_batch(key, plaintexts,
                                              rounds=rounds) \
            == [target.reference_encrypt(key, p, rounds=rounds)
                for p in plaintexts]

    @pytest.mark.parametrize("name", ALL_TARGETS)
    def test_empty_batch(self, name):
        target = get_target(name)
        assert target.reference_encrypt_batch(
            derive_key(target.key_bits, 0), []
        ) == []


class TestBatchView:
    @pytest.mark.skipif(not numpy_available(), reason="numpy required")
    @pytest.mark.parametrize("name", BITSLICED_TARGETS)
    def test_sees_its_own_victims(self, name):
        target, plaintexts = _pool(name)
        victim = target.make_victim(derive_key(target.key_bits, 0))
        view = target.batch_view(victim)
        assert view is not None
        assert view.encrypt_batch(plaintexts) \
            == [victim.encrypt(p) for p in plaintexts]

    def test_giftcofb_has_no_backend(self):
        target = get_target("giftcofb")
        victim = target.make_victim(derive_key(target.key_bits, 0))
        assert target.batch_view(victim) is None

    @pytest.mark.parametrize("name", BITSLICED_TARGETS)
    def test_refuses_wrapped_victims(self, name):
        # Recording and replay wrap the victim in classes the
        # isinstance check cannot (and must not) see through: recording
        # stays RNG-transparent, replay stays cipher-free.
        from repro.channel.observer import ObservationChannel  # noqa: F401
        from repro.trace import RecordingVictim, TraceHeader, TraceRecorder
        from repro.core.config import AttackConfig

        target = get_target(name)
        victim = target.make_victim(derive_key(target.key_bits, 0))
        header = TraceHeader.for_victim(name, victim, AttackConfig())
        wrapped = RecordingVictim(victim, TraceRecorder(header))
        assert target.batch_view(wrapped) is None


class TestBatchVictimFallback:
    """The backend-less wrapper is the exact scalar loop."""

    def test_empty_sbox_indices_batch(self):
        target = get_target("giftcofb")
        victim = target.make_victim_batch(derive_key(target.key_bits, 0))
        assert victim.sbox_indices_batch([], max_rounds=2) == []

    def test_forced_scalar_wrapper_matches_vectorized(self):
        target, plaintexts = _pool("gift64")
        key = derive_key(target.key_bits, 0)
        scalar_wrap = BatchVictim(target.make_victim(key), backend=None)
        vectorized = target.make_victim_batch(key)
        assert not scalar_wrap.vectorized
        assert scalar_wrap.encrypt_batch(plaintexts) \
            == vectorized.encrypt_batch(plaintexts)
        limit = 3
        scalar_indices = scalar_wrap.sbox_indices_batch(plaintexts,
                                                        max_rounds=limit)
        vector_indices = vectorized.sbox_indices_batch(plaintexts,
                                                       max_rounds=limit)
        for round_index in range(limit):
            for segment in range(16):
                assert list(scalar_indices[round_index][segment]) \
                    == [int(v) for v in
                        vector_indices[round_index][segment]]
