"""GIFT-COFB: the AEAD construction and the nonce-channel attack.

The second proof obligation of the CipherTarget refactor: COFB's first
block cipher call is ``Y0 = E_K(N)`` on the raw nonce, so GRINCH's
crafted plaintexts survive verbatim as crafted *nonces* — recovering
the full GIFT-128 key of the AEAD.  Interior blocks are masked by the
unknown chaining state, so the nonce call is also the *only* crafting
channel (the documented negative result in docs/targets.md).
"""

import pytest

from repro.core import AttackConfig, GrinchAttack
from repro.gift.cofb import GiftCofb
from repro.seeding import derive_key
from repro.staticcheck import declassify
from repro.targets import get_target

NONCE = 0x000102030405060708090A0B0C0D0E0F


class TestAead:
    def test_seal_open_roundtrip(self):
        aead = GiftCofb(derive_key(128, 1))
        for message in (b"", b"x", b"sixteen byte blk", b"a" * 37):
            for ad in (b"", b"header", b"h" * 16):
                ciphertext, tag = aead.seal(NONCE, ad, message)
                assert aead.open(NONCE, ad, ciphertext, tag) == message

    def test_ciphertext_length_matches_message(self):
        aead = GiftCofb(derive_key(128, 2))
        ciphertext, _ = aead.seal(NONCE, b"", b"a" * 21)
        assert len(ciphertext) == 21

    def test_tag_is_checked(self):
        aead = GiftCofb(derive_key(128, 3))
        ciphertext, tag = aead.seal(NONCE, b"ad", b"message")
        with pytest.raises(ValueError):
            aead.open(NONCE, b"ad", ciphertext, bytes(16))
        with pytest.raises(ValueError):
            aead.open(NONCE, b"tampered", ciphertext, tag)

    def test_distinct_nonces_give_distinct_streams(self):
        aead = GiftCofb(derive_key(128, 4))
        a, _ = aead.seal(NONCE, b"", b"\x00" * 16)
        b, _ = aead.seal(NONCE + 1, b"", b"\x00" * 16)
        assert a != b


class TestNonceChannel:
    def test_victim_first_block_is_plain_gift128(self):
        """Y0 = E_K(N): the nonce channel is bit-for-bit GIFT-128, which
        is what lets the unchanged pipeline attack the AEAD."""
        from repro.targets.gift import Gift128

        key = derive_key(128, 5)
        victim = get_target("giftcofb").make_victim(key)
        assert victim.encrypt(NONCE) == Gift128(key).encrypt(NONCE)
        assert victim.encrypt(NONCE) == GiftCofb(key).first_block(NONCE)

    def test_first_round_attack_through_the_nonce(self):
        target = get_target("giftcofb")
        planted = derive_key(128, 6)
        config = AttackConfig(seed=6)
        victim = target.make_victim(planted, layout=config.layout)
        first = GrinchAttack(victim, config).attack_first_round()
        assert first.recovered_bits == target.bits_per_round

    def test_full_aead_key_recovery_via_crafted_nonces(self):
        target = get_target("giftcofb")
        planted = derive_key(128, 7)
        config = AttackConfig(seed=7)
        victim = target.make_victim(planted, layout=config.layout)
        result = GrinchAttack(victim, config).recover_master_key()
        recovered = declassify(result.master_key)
        assert recovered == planted
        # The recovered key drives the full AEAD, not just the nonce
        # call: sealing with it reproduces the victim's output.
        message, ad = b"attack at dawn!!", b"hdr"
        assert GiftCofb(recovered).seal(NONCE, ad, message) == \
            GiftCofb(planted).seal(NONCE, ad, message)
