"""The bitsliced batch PRESENT backend against the scalar references.

Mirrors ``tests/gift/test_bitsliced.py``: ``encrypt_batch`` is pinned
to :class:`repro.present.cipher.Present`, the traced index batch to
:class:`repro.present.lut.TracedPresent` — and the LUT-free S-box's
algebraic normal form is re-derived against ``PRESENT_SBOX`` itself.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.present.bitsliced import (
    PRESENT_SBOX_ANF,
    BitslicedPresent,
    numpy_available,
)
from repro.present.cipher import PRESENT_SBOX, Present
from repro.present.lut import TracedPresent
from repro.present.vectors import PRESENT80_VECTORS, PRESENT128_VECTORS

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="bitsliced backend requires numpy"
)

blocks = st.integers(min_value=0, max_value=(1 << 64) - 1)
batches = st.lists(blocks, min_size=1, max_size=12)
keys80 = st.integers(min_value=0, max_value=(1 << 80) - 1)
keys128 = st.integers(min_value=0, max_value=(1 << 128) - 1)


class TestSboxAnf:
    def test_anf_reproduces_the_sbox(self):
        for x in range(16):
            value = 0
            for bit, masks in enumerate(PRESENT_SBOX_ANF):
                acc = 0
                for mask in masks:
                    term = 1
                    for position in range(4):
                        if (mask >> position) & 1:
                            term &= (x >> position) & 1
                    acc ^= term
                value |= acc << bit
            assert value == PRESENT_SBOX[x]


class TestKnownAnswers:
    @pytest.mark.parametrize("vector", PRESENT80_VECTORS)
    def test_official_vectors_80(self, vector):
        batch = BitslicedPresent(vector.key, key_bits=80)
        assert batch.encrypt_batch([vector.plaintext]) \
            == [vector.ciphertext]

    @pytest.mark.parametrize("vector", PRESENT128_VECTORS)
    def test_official_vectors_128(self, vector):
        batch = BitslicedPresent(vector.key, key_bits=128)
        assert batch.encrypt_batch([vector.plaintext]) \
            == [vector.ciphertext]

    def test_all_80bit_vectors_as_one_batch(self):
        by_key = {}
        for vector in PRESENT80_VECTORS:
            by_key.setdefault(vector.key, []).append(vector)
        for key, vectors in by_key.items():
            batch = BitslicedPresent(key, key_bits=80)
            assert batch.encrypt_batch([v.plaintext for v in vectors]) \
                == [v.ciphertext for v in vectors]


class TestBatchMatchesScalar:
    @settings(max_examples=20)
    @given(keys80, batches)
    def test_present80_encrypt_batch(self, key, plaintexts):
        scalar = Present(key, key_bits=80)
        assert BitslicedPresent(key, key_bits=80) \
            .encrypt_batch(plaintexts) \
            == [scalar.encrypt(p) for p in plaintexts]

    @settings(max_examples=10)
    @given(keys128, batches)
    def test_present128_encrypt_batch(self, key, plaintexts):
        scalar = Present(key, key_bits=128)
        assert BitslicedPresent(key, key_bits=128) \
            .encrypt_batch(plaintexts) \
            == [scalar.encrypt(p) for p in plaintexts]

    @settings(max_examples=15)
    @given(keys80, batches, st.integers(min_value=1, max_value=31))
    def test_reduced_round_victim(self, key, plaintexts, rounds):
        victim = TracedPresent(key, key_bits=80, rounds=rounds)
        assert BitslicedPresent(key, key_bits=80, rounds=rounds) \
            .encrypt_batch(plaintexts) \
            == [victim.encrypt(p) for p in plaintexts]


class TestTracedIndices:
    @settings(max_examples=20)
    @given(keys80, batches, st.integers(min_value=1, max_value=5))
    def test_sbox_indices_batch(self, key, plaintexts, max_rounds):
        victim = TracedPresent(key, key_bits=80)
        indices = BitslicedPresent(key, key_bits=80).sbox_indices_batch(
            plaintexts, max_rounds=max_rounds
        )
        assert indices.shape == (max_rounds, 16, len(plaintexts))
        for n, plaintext in enumerate(plaintexts):
            expected = victim.sbox_indices_by_round(plaintext, max_rounds)
            for round_index in range(max_rounds):
                assert list(indices[round_index, :, n]) \
                    == list(expected[round_index])

    @settings(max_examples=15)
    @given(keys80, batches, st.integers(min_value=1, max_value=31))
    def test_traced_batch_whitening_matches_scalar(self, key, plaintexts,
                                                   max_rounds):
        # The post-whitening key must be applied exactly when the full
        # rounds ran — the scalar encrypt_traced contract.
        victim = TracedPresent(key, key_bits=80)
        trace = BitslicedPresent(key, key_bits=80).encrypt_traced_batch(
            plaintexts, max_rounds=max_rounds
        )
        assert trace.rounds == max_rounds
        for n, plaintext in enumerate(plaintexts):
            scalar = victim.encrypt_traced(plaintext, max_rounds=max_rounds)
            assert trace.ciphertexts[n] == scalar.ciphertext

    @settings(max_examples=10)
    @given(keys80, batches)
    def test_from_victim(self, key, plaintexts):
        victim = TracedPresent(key, key_bits=80)
        batch = BitslicedPresent.from_victim(victim)
        assert batch.key_bits == 80
        assert batch.encrypt_batch(plaintexts) \
            == [victim.encrypt(p) for p in plaintexts]


class TestEdges:
    def test_empty_batch(self):
        batch = BitslicedPresent(0, key_bits=80)
        assert batch.encrypt_batch([]) == []
        assert batch.sbox_indices_batch([], max_rounds=2).shape \
            == (2, 16, 0)

    def test_oversized_block_rejected(self):
        with pytest.raises(ValueError):
            BitslicedPresent(0, key_bits=80).encrypt_batch([1 << 64])

    def test_bad_key_bits_rejected(self):
        with pytest.raises(ValueError):
            BitslicedPresent(0, key_bits=96)

    def test_bad_rounds_rejected(self):
        with pytest.raises(ValueError):
            BitslicedPresent(0, key_bits=80, rounds=0)
        with pytest.raises(ValueError):
            BitslicedPresent(0, key_bits=80).sbox_indices_batch(
                [0], max_rounds=32
            )
