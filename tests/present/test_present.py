"""Tests for the PRESENT baseline cipher."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gift.sbox import branch_number
from repro.present.cipher import (
    PLAYER,
    PLAYER_INV,
    PRESENT_ROUNDS,
    PRESENT_SBOX,
    Present,
)
from repro.present.lut import TracedPresent
from repro.present.vectors import PRESENT80_VECTORS, PRESENT128_VECTORS

blocks = st.integers(min_value=0, max_value=(1 << 64) - 1)
keys80 = st.integers(min_value=0, max_value=(1 << 80) - 1)
keys128 = st.integers(min_value=0, max_value=(1 << 128) - 1)


class TestKnownAnswers:
    @pytest.mark.parametrize("vector", PRESENT80_VECTORS)
    def test_official_vectors_80(self, vector):
        cipher = Present(vector.key, key_bits=80)
        assert cipher.encrypt(vector.plaintext) == vector.ciphertext
        assert cipher.decrypt(vector.ciphertext) == vector.plaintext

    @pytest.mark.parametrize("vector", PRESENT128_VECTORS)
    def test_official_vectors_128(self, vector):
        cipher = Present(vector.key, key_bits=128)
        assert cipher.encrypt(vector.plaintext) == vector.ciphertext
        assert cipher.decrypt(vector.ciphertext) == vector.plaintext

    @pytest.mark.parametrize("vector", PRESENT80_VECTORS)
    def test_traced_implementation_matches_vectors(self, vector):
        traced = TracedPresent(vector.key, key_bits=80)
        assert traced.encrypt(vector.plaintext) == vector.ciphertext
        assert traced.decrypt(vector.ciphertext) == vector.plaintext


class TestRoundTrips:
    @settings(max_examples=20)
    @given(keys80, blocks)
    def test_present80_roundtrip(self, key, plaintext):
        cipher = Present(key, key_bits=80)
        assert cipher.decrypt(cipher.encrypt(plaintext)) == plaintext

    @settings(max_examples=10)
    @given(keys128, blocks)
    def test_present128_roundtrip(self, key, plaintext):
        cipher = Present(key, key_bits=128)
        assert cipher.decrypt(cipher.encrypt(plaintext)) == plaintext


class TestStructure:
    def test_sbox_branch_number_is_three(self):
        # The BN3 requirement PRESENT pays for and GIFT avoids
        # (Section II of the GRINCH paper).
        assert branch_number(PRESENT_SBOX) == 3

    def test_player_is_a_bijection(self):
        assert sorted(PLAYER) == list(range(64))

    def test_player_inverse(self):
        for i in range(64):
            assert PLAYER_INV[PLAYER[i]] == i

    def test_player_formula(self):
        assert PLAYER[0] == 0
        assert PLAYER[1] == 16
        assert PLAYER[62] == 47
        assert PLAYER[63] == 63

    def test_round_count(self):
        assert PRESENT_ROUNDS == 31

    def test_key_schedule_produces_32_round_keys(self):
        assert len(Present(0, 80).round_keys) == 32


class TestAttackSurfaceContrast:
    def test_round_one_sbox_inputs_are_key_dependent(self):
        """Unlike GIFT (whose first round is key-free), PRESENT XORs the
        round key *before* the S-box layer — the contrast discussed in
        the paper's vulnerability analysis."""
        plaintext = 0x0123456789ABCDEF
        indices_a = Present(0, 80).sbox_indices_by_round(plaintext, 1)
        indices_b = Present(1 << 79, 80).sbox_indices_by_round(plaintext, 1)
        assert indices_a != indices_b

    def test_gift_round_one_is_key_free_for_reference(self):
        from repro.gift.lut import TracedGift64
        plaintext = 0x0123456789ABCDEF
        a = TracedGift64(0).sbox_indices_by_round(plaintext, 1)
        b = TracedGift64((1 << 128) - 1).sbox_indices_by_round(plaintext, 1)
        assert a == b

    def test_indices_match_manual_first_round(self):
        cipher = Present(0xA5A5A5A5A5A5A5A5A5A5, 80)
        plaintext = 0x1111222233334444
        state = plaintext ^ cipher.round_keys[0]
        expected = [(state >> (4 * s)) & 0xF for s in range(16)]
        assert cipher.sbox_indices_by_round(plaintext, 1)[0] == expected


class TestTracedPresent:
    @settings(max_examples=15)
    @given(keys80, blocks)
    def test_traced_equals_untraced(self, key, plaintext):
        assert TracedPresent(key, key_bits=80).encrypt(plaintext) == \
            Present(key, key_bits=80).encrypt(plaintext)

    @settings(max_examples=10)
    @given(keys128, blocks)
    def test_traced_equals_untraced_128(self, key, plaintext):
        assert TracedPresent(key, key_bits=128).encrypt(plaintext) == \
            Present(key, key_bits=128).encrypt(plaintext)

    def test_trace_ciphertext_and_tables(self):
        traced = TracedPresent(0xDEADBEEFCAFE0123456789 & ((1 << 80) - 1))
        plaintext = 0x0011223344556677
        trace = traced.encrypt_traced(plaintext)
        assert trace.ciphertext == traced.encrypt(plaintext)
        tables = {a.table for a in trace.accesses}
        assert tables == {"sbox", "perm"}

    def test_partial_trace_stops_before_the_final_key(self):
        """A ``max_rounds`` trace exposes the attacked rounds only; the
        whitening key K_32 is applied solely on full encryptions."""
        traced = TracedPresent(derive_present_key(1))
        plaintext = 0x0123456789ABCDEF
        partial = traced.encrypt_traced(plaintext, max_rounds=2)
        rounds = {a.round_index for a in partial.accesses}
        assert rounds == {1, 2}

    def test_attack_target_name_follows_key_size(self):
        assert TracedPresent(0, key_bits=80).attack_target == "present80"
        assert TracedPresent(0, key_bits=128).attack_target == "present128"

    def test_probe_round_offset_is_zero(self):
        # Key-before-S-box: round t's own accesses carry K_t.
        assert TracedPresent(0).probe_round_offset == 0


def derive_present_key(seed):
    import random

    return random.Random(seed).getrandbits(80)


class TestValidation:
    def test_rejects_bad_key_size(self):
        with pytest.raises(ValueError):
            Present(0, key_bits=96)

    def test_rejects_oversized_key(self):
        with pytest.raises(ValueError):
            Present(1 << 80, key_bits=80)

    def test_rejects_oversized_block(self):
        with pytest.raises(ValueError):
            Present(0, 80).encrypt(1 << 64)
        with pytest.raises(ValueError):
            Present(0, 80).decrypt(1 << 64)

    def test_sbox_indices_bounds(self):
        with pytest.raises(ValueError):
            Present(0, 80).sbox_indices_by_round(0, 0)
        with pytest.raises(ValueError):
            Present(0, 80).sbox_indices_by_round(0, 32)
