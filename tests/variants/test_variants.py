"""Tests for the trace-driven and time-driven attack variants."""

import random

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.hierarchy import MemoryLatencies
from repro.core.errors import BudgetExceeded
from repro.gift.keyschedule import round_keys
from repro.gift.lut import TracedGift64, TracedGift128
from repro.variants import (
    TimeDrivenAttack,
    TraceDrivenAttack,
    observe_window,
)


@pytest.fixture
def planted():
    key = random.Random(0xBEEF).getrandbits(128)
    victim = TracedGift64(key)
    u1, v1 = round_keys(key, 1, width=64)[0]
    return victim, u1, v1


class TestObservationChannels:
    def test_window_has_one_bit_per_sbox_access(self, planted):
        victim, _, _ = planted
        observation = observe_window(
            victim, 0x1234, CacheGeometry(), first_round=1, last_round=2
        )
        assert observation.accesses == 32  # 2 rounds x 16 segments

    def test_first_touch_is_always_a_miss(self, planted):
        victim, _, _ = planted
        observation = observe_window(
            victim, 0xFEDCBA9876543210, CacheGeometry(),
            first_round=1, last_round=1,
        )
        assert observation.hit_miss[0] is False  # cold cache

    def test_misses_equal_distinct_lines(self, planted):
        victim, _, _ = planted
        plaintext = 0x0123456789ABCDEF
        observation = observe_window(
            victim, plaintext, CacheGeometry(), first_round=1, last_round=1
        )
        distinct = len({(plaintext >> (4 * s)) & 0xF for s in range(16)})
        assert observation.misses == distinct

    def test_repeated_nibbles_hit(self, planted):
        victim, _, _ = planted
        observation = observe_window(
            victim, 0x0, CacheGeometry(), first_round=1, last_round=1
        )
        # All sixteen round-1 accesses load index 0: 1 miss, 15 hits.
        assert observation.misses == 1

    def test_latency_is_affine_in_misses(self, planted):
        victim, _, _ = planted
        latencies = MemoryLatencies(l1_hit_cycles=1, l1_miss_cycles=10)
        observation = observe_window(
            victim, 0x0123456789ABCDEF, CacheGeometry(),
            first_round=1, last_round=2, latencies=latencies,
        )
        hits = observation.accesses - observation.misses
        assert observation.latency_cycles == hits + 10 * observation.misses

    def test_rejects_empty_window(self, planted):
        victim, _, _ = planted
        with pytest.raises(ValueError):
            observe_window(victim, 0, CacheGeometry(), 3, 2)


class TestTraceDriven:
    @pytest.mark.parametrize("segment", [0, 7, 15])
    def test_recovers_single_segments(self, planted, segment):
        victim, u1, v1 = planted
        attack = TraceDrivenAttack(victim, seed=segment)
        recovery = attack.recover_segment(segment)
        expected = ((v1 >> segment) & 1, (u1 >> segment) & 1)
        assert recovery.key_pairs == (expected,)

    def test_recovers_full_round_one_key(self, planted):
        victim, u1, v1 = planted
        attack = TraceDrivenAttack(victim, seed=5)
        assert attack.recover_first_round_key() == (u1, v1)

    def test_needs_few_encryptions(self, planted):
        """The round-1 self-priming makes this variant cheap: a miss
        eliminates many lines at once."""
        victim, _, _ = planted
        attack = TraceDrivenAttack(victim, seed=6)
        recovery = attack.recover_segment(0)
        assert recovery.encryptions < 200

    def test_works_on_gift128(self):
        key = random.Random(11).getrandbits(128)
        victim = TracedGift128(key)
        u1, v1 = round_keys(key, 1, width=128)[0]
        attack = TraceDrivenAttack(victim, seed=7)
        recovery = attack.recover_segment(4)
        expected = ((v1 >> 4) & 1, (u1 >> 4) & 1)
        assert recovery.key_pairs == (expected,)

    def test_budget_raises(self, planted):
        victim, _, _ = planted
        attack = TraceDrivenAttack(victim, seed=8,
                                   max_encryptions_per_segment=1)
        with pytest.raises(BudgetExceeded):
            attack.recover_segment(0)

    def test_pinned_line_never_eliminated(self, planted):
        """Soundness invariant: across many crafted encryptions, a miss
        of the target access never coincides with round-1 coverage of
        the true line."""
        victim, u1, v1 = planted
        segment = 2
        attack = TraceDrivenAttack(victim, seed=9)
        recovery = attack.recover_segment(segment)
        true_pair = ((v1 >> segment) & 1, (u1 >> segment) & 1)
        assert true_pair in recovery.key_pairs


class TestTimeDriven:
    def test_recovers_a_segment_from_latency_alone(self, planted):
        victim, u1, v1 = planted
        attack = TimeDrivenAttack(victim, seed=10)
        recovery = attack.recover_segment(3, samples=3_000)
        expected = ((v1 >> 3) & 1, (u1 >> 3) & 1)
        assert recovery.key_pairs == (expected,)
        assert recovery.margin > 0

    def test_gap_separation_matches_theory(self, planted):
        """Candidates other than the pinned line are touched by round 2
        only with probability ~1-(15/16)^15, so their conditional gap
        sits ~0.35 misses below the pinned line's — the margin between
        best and runner-up must reflect that separation."""
        victim, _, _ = planted
        attack = TimeDrivenAttack(victim, seed=11)
        recovery = attack.recover_segment(5, samples=4_000)
        assert recovery.margin > 0.1
        runner_up_gaps = [s.gap for s in recovery.scores[1:]]
        assert recovery.scores[0].gap - max(runner_up_gaps) > 0.1

    def test_needs_many_more_samples_than_trace_driven(self, planted):
        """The taxonomy's quantitative content: coarser channel, more
        encryptions."""
        victim, _, _ = planted
        trace_cost = TraceDrivenAttack(
            victim, seed=12
        ).recover_segment(0).encryptions
        assert trace_cost * 10 < 3_000  # time-driven sample budget

    def test_rejects_flat_latency_model(self, planted):
        victim, _, _ = planted
        with pytest.raises(ValueError):
            TimeDrivenAttack(
                victim,
                latencies=MemoryLatencies(l1_hit_cycles=5,
                                          l1_miss_cycles=5),
            )

    def test_rejects_tiny_sample_budget(self, planted):
        victim, _, _ = planted
        with pytest.raises(ValueError):
            TimeDrivenAttack(victim, seed=1).recover_segment(0, samples=1)
