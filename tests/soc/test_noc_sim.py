"""Tests for the packet-level NoC simulation."""

import pytest

from repro.soc.clock import ClockDomain
from repro.soc.events import Simulator
from repro.soc.noc_sim import PacketNoc, measure_probe_contention

CLOCK = ClockDomain(50e6)


def _noc():
    simulator = Simulator()
    return simulator, PacketNoc(simulator, CLOCK)


class TestPacketTransport:
    def test_single_packet_latency(self):
        simulator, noc = _noc()
        delivered = []
        noc.send((0, 0), (2, 0), on_delivered=delivered.append)
        simulator.run()
        assert len(delivered) == 1
        # injection 4 + 2 hops x (2 + 2) cycles.
        expected = CLOCK.cycles_to_seconds(4 + 2 * 4)
        assert delivered[0].latency_s == pytest.approx(expected)

    def test_packets_on_disjoint_links_do_not_interact(self):
        simulator, noc = _noc()
        records = []
        noc.send((0, 0), (1, 0), on_delivered=records.append)
        noc.send((3, 1), (2, 1), on_delivered=records.append)
        simulator.run()
        assert len(records) == 2
        assert records[0].latency_s == pytest.approx(records[1].latency_s)

    def test_shared_link_serialises(self):
        simulator, noc = _noc()
        records = []
        # Two packets over the same single link, injected together.
        noc.send((0, 0), (1, 0), on_delivered=records.append)
        noc.send((0, 0), (1, 0), on_delivered=records.append)
        simulator.run()
        latencies = sorted(r.latency_s for r in records)
        hop = CLOCK.cycles_to_seconds(4)
        assert latencies[1] - latencies[0] == pytest.approx(hop)

    def test_link_utilisation_counts(self):
        simulator, noc = _noc()
        noc.send((0, 0), (2, 0))
        simulator.run()
        utilisation = noc.link_utilisation()
        assert utilisation[((0, 0), (1, 0))] == 1
        assert utilisation[((1, 0), (2, 0))] == 1


class TestRequestResponse:
    def test_round_trip_latency(self):
        simulator, noc = _noc()
        results = []
        noc.request_response((3, 1), (1, 1), on_complete=results.append)
        simulator.run()
        # Two packets (2 hops each: inj 4 + 8) + 4 cycles of service.
        expected = CLOCK.cycles_to_seconds(2 * 12 + 4)
        assert results[0] == pytest.approx(expected)

    def test_cache_service_port_serialises_requestors(self):
        simulator, noc = _noc()
        results = []
        noc.request_response((3, 1), (1, 1), on_complete=results.append)
        noc.request_response((0, 0), (1, 1), on_complete=results.append)
        simulator.run()
        assert len(results) == 2
        # The second-served request waits for the first's service slot.
        assert max(results) > min(results)


class TestContentionStudy:
    def test_idle_network_baseline(self):
        report = measure_probe_contention(CLOCK, probes=16)
        assert report.slowdown == pytest.approx(1.0)
        assert report.probes_completed == 16

    def test_traffic_slows_probes_monotonically_to_saturation(self):
        idle = measure_probe_contention(CLOCK, probes=32)
        loaded = measure_probe_contention(
            CLOCK, traffic_interval_cycles=8, probes=32
        )
        assert loaded.mean_round_trip_s > idle.mean_round_trip_s
        assert loaded.worst_round_trip_s > idle.idle_round_trip_s

    def test_contention_never_threatens_table2(self):
        """Even saturated cache traffic delays probes by ~10%, far from
        the 100x margin between a probe sweep and a cipher round —
        Table II's MPSoC row is robust to co-runner traffic."""
        report = measure_probe_contention(
            CLOCK, traffic_interval_cycles=8, probes=64
        )
        assert report.slowdown < 2.0

    def test_validates_probe_count(self):
        with pytest.raises(ValueError):
            measure_probe_contention(CLOCK, probes=0)
