"""Tests for the Table II platform models."""

import pytest

from repro.soc.clock import ClockDomain
from repro.soc.noc import MeshNoc, MeshTopology
from repro.soc.platform import MPSoC, ProbeReport, SingleCoreSoC
from repro.soc.processor import CoreTimingModel


class TestSingleCoreSoC:
    @pytest.mark.parametrize("frequency,expected_round", [
        (10e6, 2), (25e6, 4), (50e6, 8),
    ])
    def test_reproduces_table2_row_one(self, frequency, expected_round):
        report = SingleCoreSoC(ClockDomain(frequency)).run_attack_window()
        assert report.probed_round == expected_round

    def test_faster_clock_probes_later_rounds(self):
        rounds = [
            SingleCoreSoC(ClockDomain(f)).run_attack_window().probed_round
            for f in (5e6, 10e6, 20e6, 40e6)
        ]
        assert rounds == sorted(rounds)

    def test_smaller_quantum_probes_earlier(self):
        clock = ClockDomain(50e6)
        default = SingleCoreSoC(clock).run_attack_window()
        shorter = SingleCoreSoC(clock, quantum_s=0.002).run_attack_window()
        assert shorter.probed_round < default.probed_round

    def test_report_fields(self):
        report = SingleCoreSoC(ClockDomain(10e6)).run_attack_window()
        assert report.platform == "single-core SoC"
        assert report.frequency_hz == 10e6
        assert report.round_duration_s == pytest.approx(6e-3)
        assert report.probe_latency_s > 0

    def test_practicality_threshold(self):
        low = SingleCoreSoC(ClockDomain(10e6)).run_attack_window()
        high = SingleCoreSoC(ClockDomain(50e6)).run_attack_window()
        assert low.practical
        assert not high.practical


class TestMPSoC:
    @pytest.mark.parametrize("frequency", [10e6, 25e6, 50e6])
    def test_reproduces_table2_row_two(self, frequency):
        report = MPSoC(ClockDomain(frequency)).run_attack_window()
        assert report.probed_round == 1

    def test_probe_much_faster_than_round(self):
        """The core of the paper's MPSoC result: remote probing (~400 ns
        per access) is orders of magnitude faster than a cipher round
        (~1.2 ms at 50 MHz)."""
        report = MPSoC(ClockDomain(50e6)).run_attack_window()
        assert report.probe_latency_s < report.round_duration_s / 10

    def test_probe_report_platform_name(self):
        report = MPSoC(ClockDomain(10e6)).run_attack_window()
        assert report.platform == "MPSoC"
        assert report.practical

    def test_farther_attacker_tile_still_round_one(self):
        # Even the worst-case mesh distance leaves probing far faster
        # than a round.
        soc = MPSoC(
            ClockDomain(50e6),
            attacker_tile=(3, 1),
            cache_tile=(0, 0),
        )
        assert soc.run_attack_window().probed_round == 1

    def test_rejects_tiles_outside_mesh(self):
        with pytest.raises(ValueError):
            MPSoC(ClockDomain(10e6), victim_tile=(9, 9))

    def test_custom_mesh(self):
        noc = MeshNoc(MeshTopology(3, 3))
        soc = MPSoC(ClockDomain(10e6), noc=noc, attacker_tile=(2, 2),
                    cache_tile=(1, 1))
        assert soc.run_attack_window().probed_round == 1


class TestCalibrationSensitivity:
    def test_slower_software_lets_attacker_probe_earlier(self):
        """With a slower victim binary (more cycles per round), the same
        quantum covers fewer rounds."""
        clock = ClockDomain(50e6)
        slow = SingleCoreSoC(
            clock, core=CoreTimingModel(cycles_per_round=240_000)
        ).run_attack_window()
        fast = SingleCoreSoC(clock).run_attack_window()
        assert slow.probed_round < fast.probed_round

    def test_probe_report_is_plain_data(self):
        report = ProbeReport(
            platform="x", frequency_hz=1e6, probed_round=3,
            probe_time_s=0.01, round_duration_s=0.001,
            probe_latency_s=1e-6,
        )
        assert report.probed_round == 3
        assert report.practical
