"""Tests for the discrete-event kernel."""

import pytest

from repro.soc.events import Simulator


class TestOrdering:
    def test_events_fire_in_time_order(self):
        simulator = Simulator()
        fired = []
        simulator.schedule(3.0, lambda: fired.append("c"))
        simulator.schedule(1.0, lambda: fired.append("a"))
        simulator.schedule(2.0, lambda: fired.append("b"))
        simulator.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_insertion_order(self):
        simulator = Simulator()
        fired = []
        for name in "abc":
            simulator.schedule(1.0, lambda n=name: fired.append(n))
        simulator.run()
        assert fired == ["a", "b", "c"]

    def test_now_advances_to_event_time(self):
        simulator = Simulator()
        seen = []
        simulator.schedule(2.5, lambda: seen.append(simulator.now))
        simulator.run()
        assert seen == [2.5]

    def test_nested_scheduling(self):
        simulator = Simulator()
        fired = []

        def outer():
            fired.append(("outer", simulator.now))
            simulator.schedule(1.0, inner)

        def inner():
            fired.append(("inner", simulator.now))

        simulator.schedule(1.0, outer)
        simulator.run()
        assert fired == [("outer", 1.0), ("inner", 2.0)]


class TestControl:
    def test_run_until_stops_the_clock(self):
        simulator = Simulator()
        fired = []
        simulator.schedule(1.0, lambda: fired.append(1))
        simulator.schedule(5.0, lambda: fired.append(5))
        simulator.run(until=2.0)
        assert fired == [1]
        assert simulator.now == 2.0

    def test_cancelled_events_do_not_fire(self):
        simulator = Simulator()
        fired = []
        handle = simulator.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        simulator.run()
        assert fired == []

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_schedule_at_absolute_time(self):
        simulator = Simulator()
        seen = []
        simulator.schedule_at(4.0, lambda: seen.append(simulator.now))
        simulator.run()
        assert seen == [4.0]

    def test_pending_counts_live_events(self):
        simulator = Simulator()
        handle = simulator.schedule(1.0, lambda: None)
        simulator.schedule(2.0, lambda: None)
        assert simulator.pending == 2
        handle.cancel()
        assert simulator.pending == 1


class TestValidation:
    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_rejects_scheduling_in_the_past(self):
        simulator = Simulator()
        simulator.schedule(2.0, lambda: None)
        simulator.run()
        with pytest.raises(ValueError):
            simulator.schedule_at(1.0, lambda: None)

    def test_event_loop_guard(self):
        simulator = Simulator()

        def rearm():
            simulator.schedule(0.0, rearm)

        simulator.schedule(0.0, rearm)
        with pytest.raises(RuntimeError):
            simulator.run(max_events=100)
