"""Tests for the clock domain, core timing model, bus and RTOS scheduler."""

import pytest

from repro.soc.bus import BusLatencyModel, SharedBus
from repro.soc.clock import PAPER_FREQUENCIES_HZ, ClockDomain
from repro.soc.events import Simulator
from repro.soc.processor import CoreTimingModel
from repro.soc.scheduler import PAPER_QUANTUM_S, RoundRobinScheduler, Task


class TestClockDomain:
    def test_paper_frequencies(self):
        assert PAPER_FREQUENCIES_HZ == (10_000_000, 25_000_000, 50_000_000)

    def test_conversions_roundtrip(self):
        clock = ClockDomain(25e6)
        assert clock.seconds_to_cycles(clock.cycles_to_seconds(1000)) \
            == pytest.approx(1000)

    def test_period(self):
        assert ClockDomain(10e6).period_s == pytest.approx(100e-9)

    def test_describe(self):
        assert ClockDomain(50e6).describe() == "50 MHz"

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            ClockDomain(0)

    def test_rejects_negative_cycles(self):
        with pytest.raises(ValueError):
            ClockDomain(1e6).cycles_to_seconds(-1)


class TestCoreTimingModel:
    def test_round_duration_matches_paper_observation(self):
        # ~1.2 ms between rounds at 50 MHz (Section IV-B3).
        core = CoreTimingModel()
        assert core.round_duration_s(ClockDomain(50e6)) \
            == pytest.approx(1.2e-3)

    def test_round_in_progress_setup_is_round_zero(self):
        core = CoreTimingModel()
        clock = ClockDomain(50e6)
        assert core.round_in_progress(clock, 0.0) == 0
        assert core.round_in_progress(
            clock, core.setup_duration_s(clock) / 2
        ) == 0

    def test_round_in_progress_counts_up(self):
        core = CoreTimingModel()
        clock = ClockDomain(50e6)
        setup = core.setup_duration_s(clock)
        round_t = core.round_duration_s(clock)
        assert core.round_in_progress(clock, setup + 0.5 * round_t) == 1
        assert core.round_in_progress(clock, setup + 1.5 * round_t) == 2

    def test_boundary_counts_as_completed_round(self):
        core = CoreTimingModel()
        clock = ClockDomain(50e6)
        elapsed = (core.setup_duration_s(clock)
                   + 8 * core.round_duration_s(clock))
        assert core.round_in_progress(clock, elapsed) == 8

    def test_probe_duration_scales_with_lines(self):
        core = CoreTimingModel()
        clock = ClockDomain(10e6)
        assert core.probe_duration_s(clock, 32) \
            == pytest.approx(2 * core.probe_duration_s(clock, 16))

    def test_validation(self):
        with pytest.raises(ValueError):
            CoreTimingModel(cycles_per_round=0)
        with pytest.raises(ValueError):
            CoreTimingModel().round_in_progress(ClockDomain(1e6), -1.0)
        with pytest.raises(ValueError):
            CoreTimingModel().probe_duration_s(ClockDomain(1e6), -1)


class TestSharedBus:
    def test_uncontended_transaction(self):
        bus = SharedBus()
        assert bus.access_cycles("cpu") == 3

    def test_contention_adds_waiting(self):
        bus = SharedBus()
        assert bus.access_cycles("cpu", pending_masters=2) == 3 + 6

    def test_transactions_accounted_per_master(self):
        bus = SharedBus()
        bus.access_cycles("cpu")
        bus.access_cycles("cpu")
        bus.access_cycles("dma")
        assert bus.transactions == {"cpu": 2, "dma": 1}

    def test_seconds_conversion(self):
        bus = SharedBus(BusLatencyModel(arbitration_cycles=1,
                                        transfer_cycles=1))
        assert bus.access_seconds("cpu", ClockDomain(2e6)) \
            == pytest.approx(1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            BusLatencyModel(arbitration_cycles=-1)
        with pytest.raises(ValueError):
            SharedBus().access_cycles("cpu", pending_masters=-1)


class TestScheduler:
    def test_paper_quantum(self):
        assert PAPER_QUANTUM_S == pytest.approx(0.010)

    def test_round_robin_alternation(self):
        simulator = Simulator()
        scheduler = RoundRobinScheduler(simulator, quantum_s=1.0)
        order = []
        scheduler.add_task(Task("a", on_scheduled=lambda t: order.append("a")))
        scheduler.add_task(Task("b", on_scheduled=lambda t: order.append("b")))
        scheduler.start()
        simulator.run(until=4.5)
        assert order == ["a", "b", "a", "b", "a"]

    def test_quantum_boundaries(self):
        simulator = Simulator()
        scheduler = RoundRobinScheduler(simulator, quantum_s=2.0)
        times = []
        scheduler.add_task(Task("a", on_scheduled=times.append))
        scheduler.add_task(Task("b", on_scheduled=times.append))
        scheduler.start()
        simulator.run(until=5.0)
        assert times == [0.0, 2.0, 4.0]

    def test_context_switch_shifts_later_dispatches(self):
        simulator = Simulator()
        scheduler = RoundRobinScheduler(
            simulator, quantum_s=1.0, context_switch_s=0.25
        )
        times = []
        scheduler.add_task(Task("a", on_scheduled=times.append))
        scheduler.add_task(Task("b", on_scheduled=times.append))
        scheduler.start()
        simulator.run(until=2.0)
        # First dispatch immediate; second after quantum + switch.
        assert times[0] == 0.0
        assert times[1] == pytest.approx(1.25)

    def test_task_bookkeeping(self):
        simulator = Simulator()
        scheduler = RoundRobinScheduler(simulator, quantum_s=1.0)
        task = Task("only")
        scheduler.add_task(task)
        scheduler.start()
        simulator.run(until=3.5)
        assert task.times_scheduled == 4
        assert task.last_scheduled_at == pytest.approx(3.0)

    def test_rejects_duplicate_names(self):
        scheduler = RoundRobinScheduler(Simulator())
        scheduler.add_task(Task("x"))
        with pytest.raises(ValueError):
            scheduler.add_task(Task("x"))

    def test_rejects_empty_start(self):
        with pytest.raises(RuntimeError):
            RoundRobinScheduler(Simulator()).start()

    def test_rejects_bad_quantum(self):
        with pytest.raises(ValueError):
            RoundRobinScheduler(Simulator(), quantum_s=0)
