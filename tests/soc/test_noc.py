"""Tests for the mesh NoC with XY routing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.soc.clock import ClockDomain
from repro.soc.noc import (
    MeshNoc,
    MeshTopology,
    NocLatencyModel,
    Packet,
)

mesh = MeshTopology(4, 2)
coords = st.tuples(st.integers(0, 3), st.integers(0, 1))


class TestTopology:
    def test_paper_mpsoc_mesh_has_eight_tiles(self):
        # 7 processors + shared cache/IO tile (Section IV-A).
        assert mesh.tile_count == 8

    def test_tiles_enumerates_all(self):
        assert len(list(mesh.tiles())) == 8

    def test_contains(self):
        assert mesh.contains((0, 0))
        assert mesh.contains((3, 1))
        assert not mesh.contains((4, 0))
        assert not mesh.contains((0, -1))

    def test_rejects_degenerate_mesh(self):
        with pytest.raises(ValueError):
            MeshTopology(0, 2)


class TestXyRouting:
    def test_route_goes_x_first_then_y(self):
        route = mesh.xy_route((0, 0), (2, 1))
        assert route == [(0, 0), (1, 0), (2, 0), (2, 1)]

    def test_route_to_self_is_singleton(self):
        assert mesh.xy_route((1, 1), (1, 1)) == [(1, 1)]

    def test_route_handles_negative_directions(self):
        route = mesh.xy_route((3, 1), (1, 0))
        assert route == [(3, 1), (2, 1), (1, 1), (1, 0)]

    @given(coords, coords)
    def test_route_length_is_manhattan_distance(self, src, dst):
        route = mesh.xy_route(src, dst)
        assert len(route) - 1 == mesh.hop_count(src, dst)

    @given(coords, coords)
    def test_route_steps_are_adjacent(self, src, dst):
        route = mesh.xy_route(src, dst)
        for a, b in zip(route, route[1:]):
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

    @given(coords, coords)
    def test_xy_determinism_no_y_before_x(self, src, dst):
        """XY routing never moves in Y while X is unresolved."""
        route = mesh.xy_route(src, dst)
        moved_y = False
        for a, b in zip(route, route[1:]):
            if a[1] != b[1]:
                moved_y = True
            if a[0] != b[0]:
                assert not moved_y

    def test_rejects_out_of_mesh(self):
        with pytest.raises(ValueError):
            mesh.xy_route((0, 0), (9, 9))


class TestLatency:
    def test_default_round_trip_matches_calibration(self):
        # 2 hops: 4 + 2*(2+2) + 2*(2+2) + 4 = 24 cycles.
        latency = NocLatencyModel()
        assert latency.round_trip_cycles(2) == 24

    def test_zero_hops_is_local(self):
        latency = NocLatencyModel()
        assert latency.round_trip_cycles(0) == \
            latency.injection_cycles + latency.response_cycles

    def test_calibrated_to_paper_400ns_at_50mhz(self):
        """Section IV-B3: remote shared-cache access took ~400 ns at
        50 MHz.  The default attacker->cache distance is 2 hops."""
        noc = MeshNoc()
        seconds = noc.remote_access_seconds(
            (3, 1), (1, 1), ClockDomain(50e6)
        )
        assert 300e-9 <= seconds <= 600e-9

    def test_packets_counted(self):
        noc = MeshNoc()
        noc.remote_access_cycles((0, 0), (1, 0))
        assert noc.packets_sent == 2

    def test_rejects_negative_hops(self):
        with pytest.raises(ValueError):
            NocLatencyModel().one_way_cycles(-1)

    def test_rejects_negative_components(self):
        with pytest.raises(ValueError):
            NocLatencyModel(router_cycles=-1)


class TestPacket:
    def test_packet_fields(self):
        packet = Packet(source=(0, 0), destination=(1, 1), payload_flits=3)
        assert packet.payload_flits == 3

    def test_rejects_empty_packet(self):
        with pytest.raises(ValueError):
            Packet(source=(0, 0), destination=(1, 1), payload_flits=0)
