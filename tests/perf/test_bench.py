"""Tests for the calibrated timing core."""

import pytest

from repro.perf.bench import MAX_BATCH, BenchResult, measure


class FakeClock:
    """Deterministic clock: each call advances by ``step`` seconds."""

    def __init__(self, step=0.01):
        self.step = step
        self.now = 0.0

    def __call__(self):
        self.now += self.step
        return self.now


class TestMeasure:
    def test_accumulates_past_floor(self):
        calls = []
        result = measure("t", lambda: calls.append(None),
                         min_seconds=0.05, clock=FakeClock(step=0.01))
        assert result.name == "t"
        assert result.seconds >= 0.05
        # warm-up call is untimed but still executed
        assert len(calls) == result.ops + 1

    def test_batches_grow_geometrically(self):
        batches = []
        ops_seen = [0]

        def fn():
            ops_seen[0] += 1

        clock = FakeClock(step=0.001)
        result = measure("t", fn, min_seconds=0.01, clock=clock)
        assert result.ops == ops_seen[0] - 1
        # 1 + 2 + 4 + ... pattern: ops is one less than a power of two
        assert (result.ops + 1) & result.ops == 0

    def test_slow_callable_single_batch(self):
        result = measure("slow", lambda: None,
                         min_seconds=0.01, clock=FakeClock(step=0.5))
        assert result.ops == 1

    def test_rejects_nonpositive_floor(self):
        with pytest.raises(ValueError):
            measure("t", lambda: None, min_seconds=0.0)

    def test_batch_cap(self):
        assert MAX_BATCH == 1 << 20


class TestBenchResult:
    def test_ops_per_s(self):
        assert BenchResult("t", ops=100, seconds=2.0).ops_per_s == 50.0

    def test_degenerate_clock(self):
        assert BenchResult("t", ops=7, seconds=0.0).ops_per_s == 7.0

    def test_as_record_round_trips(self):
        record = BenchResult("t", ops=3, seconds=1.5).as_record()
        assert record == {"name": "t", "ops": 3, "seconds": 1.5,
                          "ops_per_s": 2.0}
