"""Tests for the ``python -m repro perf`` front-end."""

import json

import pytest

from repro.cli import main as repro_main
from repro.perf.artifact import ARTIFACT_NAME, TRAJECTORY_NAME, SCHEMA_ID
from repro.perf.cli import main as perf_main


@pytest.fixture()
def out_dir(tmp_path):
    return tmp_path / "results"


class TestPerfCli:
    def test_quick_json_run(self, out_dir, capsys):
        code = perf_main(["--quick", "--json", "--output", str(out_dir)])
        assert code == 0
        record = json.loads(capsys.readouterr().out)
        assert record["schema"] == SCHEMA_ID
        assert record["quick"] is True
        assert record["gates"]["passed"] is True
        assert (out_dir / ARTIFACT_NAME).exists()
        assert (out_dir / TRAJECTORY_NAME).exists()

    def test_second_run_picks_up_baseline(self, out_dir, capsys):
        perf_main(["--quick", "--json", "--output", str(out_dir)])
        capsys.readouterr()
        perf_main(["--quick", "--json", "--output", str(out_dir)])
        record = json.loads(capsys.readouterr().out)
        assert record["gates"]["baseline_untraced_over_traced"] is not None
        lines = (out_dir / TRAJECTORY_NAME).read_text().splitlines()
        assert len(lines) == 2

    def test_ascii_rendering(self, out_dir, capsys):
        code = perf_main(["--quick", "--output", str(out_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "gift64_encrypt_untraced" in out
        assert "PASS" in out

    def test_no_artifact_writes_nothing(self, out_dir, capsys):
        code = perf_main(["--quick", "--json", "--no-artifact",
                          "--output", str(out_dir)])
        assert code == 0
        assert not out_dir.exists()

    def test_profile_dump(self, tmp_path, capsys):
        profile = tmp_path / "perf.prof"
        code = perf_main(["--quick", "--output", str(tmp_path / "r"),
                          "--profile", str(profile)])
        assert code == 0
        assert profile.stat().st_size > 0
        assert "profile:" in capsys.readouterr().out

    def test_repro_subcommand_forwards(self, out_dir, capsys):
        code = repro_main(["perf", "--quick", "--json",
                           "--output", str(out_dir)])
        assert code == 0
        record = json.loads(capsys.readouterr().out)
        assert record["schema"] == SCHEMA_ID
