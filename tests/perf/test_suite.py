"""Tests for the benchmark suite and its ratio gates."""

import pytest

from repro.gift.bitsliced import numpy_available
from repro.perf.suite import (
    MIN_BATCH_OVER_UNTRACED,
    MIN_UNTRACED_OVER_TRACED,
    PerfReport,
    check_gates,
    run_suite,
)
from repro.perf.bench import BenchResult


class TestCheckGates:
    def test_all_pass(self):
        assert check_gates({"gift64_untraced_over_traced": 12.0}) == []

    def test_below_min_ratio(self):
        failures = check_gates({"gift64_untraced_over_traced": 2.0})
        assert len(failures) == 1
        assert "below" in failures[0]

    def test_every_ratio_is_gated(self):
        failures = check_gates({
            "gift64_untraced_over_traced": 12.0,
            "gift128_untraced_over_traced": 1.5,
        })
        assert len(failures) == 1
        assert "gift128" in failures[0]

    def test_baseline_headroom(self):
        ratios = {"gift64_untraced_over_traced": 30.0}
        assert check_gates(ratios, baseline_ratio=20.0) == []
        failures = check_gates(ratios, baseline_ratio=10.0)
        assert len(failures) == 1
        assert "regressed" in failures[0]

    def test_no_baseline_means_no_regression_gate(self):
        assert check_gates({"gift64_untraced_over_traced": 1000.0}) == []

    def test_batch_ratio_gated_at_batch_floor(self):
        # 12x clears the 5x untraced gate but not the 20x batch gate.
        failures = check_gates({"gift64_batch_over_untraced": 12.0})
        assert len(failures) == 1
        assert f"{MIN_BATCH_OVER_UNTRACED:.1f}x" in failures[0]
        assert check_gates(
            {"gift64_batch_over_untraced": MIN_BATCH_OVER_UNTRACED}
        ) == []


class TestPerfReport:
    def test_result_lookup(self):
        report = PerfReport(quick=True, seed=0, results=[
            BenchResult("a", ops=1, seconds=1.0),
        ])
        assert report.result("a").ops == 1
        with pytest.raises(KeyError):
            report.result("missing")

    def test_ratios_skip_missing_pairs(self):
        report = PerfReport(quick=True, seed=0, results=[
            BenchResult("gift64_encrypt_untraced", ops=10, seconds=1.0),
        ])
        assert report.ratios == {}


class TestRunSuite:
    @pytest.fixture(scope="class")
    def report(self):
        # One real (but tiny) suite run shared by the assertions below.
        return run_suite(quick=True, seed=0, min_seconds=0.01)

    def test_quick_suite_shape(self, report):
        names = [result.name for result in report.results]
        expected = [
            "gift64_encrypt_untraced",
            "gift64_encrypt_traced",
        ]
        if numpy_available():
            expected.append("gift64_encrypt_batch")
        expected += [
            "observer_fast_observations",
            "voting_updates",
            "engine_first_round_trial",
        ]
        assert names == expected
        assert all(result.ops >= 1 for result in report.results)

    def test_untraced_beats_traced_by_gate_margin(self, report):
        """The tentpole claim: the trace-free path is >= 5x the traced
        path, on whatever hardware the tests run on."""
        ratio = report.ratios["gift64_untraced_over_traced"]
        assert ratio >= MIN_UNTRACED_OVER_TRACED

    @pytest.mark.skipif(not numpy_available(), reason="needs numpy")
    def test_batch_beats_untraced_by_gate_margin(self, report):
        """The batch-fabric claim: bitsliced encrypt_batch delivers
        >= 20x the scalar untraced blocks/s."""
        ratio = report.ratios["gift64_batch_over_untraced"]
        assert ratio >= MIN_BATCH_OVER_UNTRACED

    def test_gates_pass_on_real_run(self, report):
        assert check_gates(report.ratios) == []
