"""Tests for the BENCH_perf.json schema and trajectory file."""

import json

import pytest

from repro.perf.artifact import (
    ARTIFACT_NAME,
    SCHEMA_ID,
    TRAJECTORY_NAME,
    PerfSchemaError,
    append_trajectory,
    build_record,
    last_trajectory_ratio,
    validate_record,
    write_artifact,
)
from repro.perf.bench import BenchResult
from repro.perf.suite import PerfReport


def make_report(fast=1000.0, slow=100.0):
    return PerfReport(quick=True, seed=0, results=[
        BenchResult("gift64_encrypt_untraced", ops=int(fast), seconds=1.0),
        BenchResult("gift64_encrypt_traced", ops=int(slow), seconds=1.0),
        BenchResult("voting_updates", ops=500, seconds=1.0),
    ])


class TestBuildRecord:
    def test_valid_and_passing(self):
        record = build_record(make_report())
        validate_record(record)
        assert record["schema"] == SCHEMA_ID
        assert record["ratios"]["gift64_untraced_over_traced"] == 10.0
        assert record["gates"]["passed"]
        assert record["gates"]["baseline_untraced_over_traced"] is None

    def test_min_ratio_gate_fails(self):
        record = build_record(make_report(fast=300.0, slow=100.0))
        assert not record["gates"]["passed"]
        assert any("below" in failure
                   for failure in record["gates"]["failures"])

    def test_baseline_regression_gate_fails(self):
        # ratio 10.0 against a 4.0 baseline with 2.0 headroom -> fail
        record = build_record(make_report(), baseline_ratio=4.0)
        assert not record["gates"]["passed"]
        assert any("regressed" in failure
                   for failure in record["gates"]["failures"])

    def test_baseline_within_headroom_passes(self):
        record = build_record(make_report(), baseline_ratio=8.0)
        assert record["gates"]["passed"]


class TestValidateRecord:
    def test_rejects_wrong_schema(self):
        record = build_record(make_report())
        record["schema"] = "repro.perf/bench/v0"
        with pytest.raises(PerfSchemaError):
            validate_record(record)

    def test_rejects_empty_benchmarks(self):
        record = build_record(make_report())
        record["benchmarks"] = []
        with pytest.raises(PerfSchemaError):
            validate_record(record)

    def test_rejects_missing_gate_field(self):
        record = build_record(make_report())
        del record["gates"]["passed"]
        with pytest.raises(PerfSchemaError):
            validate_record(record)

    def test_rejects_non_numeric_ratio(self):
        record = build_record(make_report())
        record["ratios"]["gift64_untraced_over_traced"] = "10x"
        with pytest.raises(PerfSchemaError):
            validate_record(record)

    def test_rejects_non_mapping(self):
        with pytest.raises(PerfSchemaError):
            validate_record([])


class TestArtifactFiles:
    def test_write_artifact(self, tmp_path):
        record = build_record(make_report())
        path = write_artifact(record, tmp_path)
        assert path == tmp_path / ARTIFACT_NAME
        loaded = json.loads(path.read_text())
        validate_record(loaded)
        assert loaded["ratios"] == record["ratios"]

    def test_trajectory_appends(self, tmp_path):
        record = build_record(make_report())
        append_trajectory(record, tmp_path, timestamp="t0")
        append_trajectory(record, tmp_path, timestamp="t1")
        lines = (tmp_path / TRAJECTORY_NAME).read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["timestamp"] == "t1"

    def test_last_trajectory_ratio_reads_latest(self, tmp_path):
        append_trajectory(build_record(make_report()), tmp_path)
        append_trajectory(build_record(make_report(fast=2000.0)), tmp_path)
        assert last_trajectory_ratio(tmp_path) == 20.0

    def test_last_trajectory_ratio_missing_file(self, tmp_path):
        assert last_trajectory_ratio(tmp_path) is None

    def test_last_trajectory_ratio_skips_malformed_lines(self, tmp_path):
        append_trajectory(build_record(make_report()), tmp_path)
        with (tmp_path / TRAJECTORY_NAME).open("a") as handle:
            handle.write("{truncated\n")
        assert last_trajectory_ratio(tmp_path) == 10.0
