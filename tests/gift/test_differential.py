"""Differential cross-check of the two GIFT implementations.

``repro.gift.lut`` (the traced, table-based victim) and
``repro.gift.cipher`` (the spec-style reference) are written
independently on purpose; this sweep drives both with the same
hypothesis-generated keys and blocks and demands bit-identical results,
for both variants, alongside the official Banik et al. vectors.  Any
drift in bit ordering, key schedule, or table scatter shows up here
before it silently corrupts the attack bookkeeping.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gift.cipher import GiftCipher
from repro.gift.lut import TracedGift64, TracedGift128
from repro.gift.vectors import GIFT64_VECTORS, GIFT128_VECTORS

KEYS = st.integers(min_value=0, max_value=(1 << 128) - 1)
BLOCKS_64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
BLOCKS_128 = st.integers(min_value=0, max_value=(1 << 128) - 1)


class TestGift64Differential:
    @given(key=KEYS, plaintext=BLOCKS_64)
    @settings(max_examples=200)
    def test_lut_matches_reference(self, key, plaintext):
        lut = TracedGift64(master_key=key)
        reference = GiftCipher(key, width=64, rounds=lut.rounds)
        assert lut.encrypt(plaintext) == reference.encrypt(plaintext)

    @given(key=KEYS, plaintext=BLOCKS_64)
    @settings(max_examples=200)
    def test_decrypt_round_trips_both_ways(self, key, plaintext):
        lut = TracedGift64(master_key=key)
        reference = GiftCipher(key, width=64, rounds=lut.rounds)
        ciphertext = lut.encrypt(plaintext)
        assert lut.decrypt(ciphertext) == plaintext
        assert reference.decrypt(ciphertext) == plaintext

    @given(key=KEYS, plaintext=BLOCKS_64)
    @settings(max_examples=50)
    def test_traced_accesses_match_fast_index_path(self, key, plaintext):
        lut = TracedGift64(master_key=key)
        trace = lut.encrypt_traced(plaintext)
        by_round = lut.sbox_indices_by_round(plaintext,
                                             max_rounds=lut.rounds)
        traced = [[] for _ in range(lut.rounds)]
        for access in trace.accesses:
            if access.table == "sbox":
                traced[access.round_index - 1].append(access.index)
        assert traced == by_round

    def test_official_vectors(self):
        for vector in GIFT64_VECTORS:
            lut = TracedGift64(master_key=vector.key)
            reference = GiftCipher(vector.key, width=64, rounds=lut.rounds)
            assert lut.encrypt(vector.plaintext) == vector.ciphertext
            assert reference.encrypt(vector.plaintext) == vector.ciphertext
            assert lut.decrypt(vector.ciphertext) == vector.plaintext


class TestGift128Differential:
    @given(key=KEYS, plaintext=BLOCKS_128)
    @settings(max_examples=200)
    def test_lut_matches_reference(self, key, plaintext):
        lut = TracedGift128(master_key=key)
        reference = GiftCipher(key, width=128, rounds=lut.rounds)
        assert lut.encrypt(plaintext) == reference.encrypt(plaintext)

    @given(key=KEYS, plaintext=BLOCKS_128)
    @settings(max_examples=200)
    def test_decrypt_round_trips_both_ways(self, key, plaintext):
        lut = TracedGift128(master_key=key)
        reference = GiftCipher(key, width=128, rounds=lut.rounds)
        ciphertext = lut.encrypt(plaintext)
        assert lut.decrypt(ciphertext) == plaintext
        assert reference.decrypt(ciphertext) == plaintext

    @given(key=KEYS, plaintext=BLOCKS_128)
    @settings(max_examples=50)
    def test_truncated_trace_prefixes_full_trace(self, key, plaintext):
        lut = TracedGift128(master_key=key)
        full = lut.sbox_indices_by_round(plaintext, max_rounds=lut.rounds)
        partial = lut.sbox_indices_by_round(plaintext, max_rounds=3)
        assert partial == full[:3]

    def test_official_vectors(self):
        for vector in GIFT128_VECTORS:
            lut = TracedGift128(master_key=vector.key)
            reference = GiftCipher(vector.key, width=128,
                                   rounds=lut.rounds)
            assert lut.encrypt(vector.plaintext) == vector.ciphertext
            assert reference.encrypt(vector.plaintext) == vector.ciphertext
            assert lut.decrypt(vector.ciphertext) == vector.plaintext
