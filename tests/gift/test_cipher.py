"""Tests for the reference GIFT-64/128 implementations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gift.cipher import Gift64, Gift128, RoundState, sub_cells
from repro.gift.vectors import GIFT64_VECTORS, GIFT128_VECTORS

keys = st.integers(min_value=0, max_value=(1 << 128) - 1)
blocks64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
blocks128 = st.integers(min_value=0, max_value=(1 << 128) - 1)


class TestKnownAnswers:
    @pytest.mark.parametrize("vector", GIFT64_VECTORS)
    def test_gift64_official_vectors(self, vector):
        cipher = Gift64(vector.key)
        assert cipher.encrypt(vector.plaintext) == vector.ciphertext
        assert cipher.decrypt(vector.ciphertext) == vector.plaintext

    @pytest.mark.parametrize("vector", GIFT128_VECTORS)
    def test_gift128_official_vectors(self, vector):
        cipher = Gift128(vector.key)
        assert cipher.encrypt(vector.plaintext) == vector.ciphertext
        assert cipher.decrypt(vector.ciphertext) == vector.plaintext


class TestRoundTrips:
    @settings(max_examples=30)
    @given(keys, blocks64)
    def test_gift64_roundtrip(self, key, plaintext):
        cipher = Gift64(key)
        assert cipher.decrypt(cipher.encrypt(plaintext)) == plaintext

    @settings(max_examples=15)
    @given(keys, blocks128)
    def test_gift128_roundtrip(self, key, plaintext):
        cipher = Gift128(key)
        assert cipher.decrypt(cipher.encrypt(plaintext)) == plaintext

    @given(keys, blocks64)
    @settings(max_examples=15)
    def test_reduced_round_roundtrip(self, key, plaintext):
        cipher = Gift64(key, rounds=5)
        assert cipher.decrypt(cipher.encrypt(plaintext)) == plaintext


class TestDiffusion:
    def test_single_bit_flip_avalanches(self):
        cipher = Gift64(0x0123456789ABCDEF0123456789ABCDEF)
        base = cipher.encrypt(0)
        flipped = cipher.encrypt(1)
        differing = bin(base ^ flipped).count("1")
        # Full-round GIFT should flip roughly half the bits.
        assert 16 <= differing <= 48

    def test_key_bit_flip_changes_ciphertext(self):
        plaintext = 0xDEADBEEFCAFEF00D
        a = Gift64(0).encrypt(plaintext)
        b = Gift64(1).encrypt(plaintext)
        assert a != b


class TestRoundStates:
    def test_states_chain_consistently(self):
        cipher = Gift64(0xFEDCBA9876543210FEDCBA9876543210)
        states = cipher.round_states(0x0123456789ABCDEF, rounds=6)
        assert [s.round_index for s in states] == [1, 2, 3, 4, 5, 6]
        for previous, current in zip(states, states[1:]):
            assert current.before_sub_cells == previous.after_add_round_key

    def test_first_state_starts_at_plaintext(self):
        cipher = Gift64(7)
        states = cipher.round_states(0xABCDEF, rounds=1)
        assert states[0].before_sub_cells == 0xABCDEF

    def test_sub_cells_stage_matches_helper(self):
        cipher = Gift64(99)
        state = cipher.round_states(0x1234, rounds=1)[0]
        assert state.after_sub_cells == sub_cells(0x1234, 64)

    def test_full_chain_reaches_ciphertext(self):
        cipher = Gift64(0x42)
        plaintext = 0x0F0F0F0F0F0F0F0F
        states = cipher.round_states(plaintext)
        assert states[-1].after_add_round_key == cipher.encrypt(plaintext)

    def test_round_bounds(self):
        cipher = Gift64(0)
        with pytest.raises(ValueError):
            cipher.round_states(0, rounds=0)
        with pytest.raises(ValueError):
            cipher.round_states(0, rounds=29)


class TestSubCells:
    @given(blocks64)
    def test_inverse_round_trips(self, state):
        assert sub_cells(sub_cells(state, 64), 64, inverse=True) == state

    def test_applies_per_nibble(self):
        # S(0) = 1 in every nibble position.
        assert sub_cells(0, 64) == 0x1111111111111111


class TestValidation:
    def test_rejects_oversized_key(self):
        with pytest.raises(ValueError):
            Gift64(1 << 128)

    def test_rejects_oversized_block(self):
        with pytest.raises(ValueError):
            Gift64(0).encrypt(1 << 64)
        with pytest.raises(ValueError):
            Gift64(0).decrypt(-1)

    def test_rejects_bad_round_count(self):
        with pytest.raises(ValueError):
            Gift64(0, rounds=0)

    def test_round_state_dataclass_fields(self):
        state = RoundState(1, 2, 3, 4, 5)
        assert (state.round_index, state.before_sub_cells,
                state.after_sub_cells, state.after_perm_bits,
                state.after_add_round_key) == (1, 2, 3, 4, 5)
