"""Tests for the traced table-based victim implementation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gift.cipher import Gift64, Gift128
from repro.gift.lut import TableLayout, TracedGift64, TracedGift128
from repro.gift.vectors import GIFT64_VECTORS

keys = st.integers(min_value=0, max_value=(1 << 128) - 1)
blocks64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestFunctionalEquivalence:
    @settings(max_examples=25)
    @given(keys, blocks64)
    def test_matches_reference_gift64(self, key, plaintext):
        assert TracedGift64(key).encrypt(plaintext) == \
            Gift64(key).encrypt(plaintext)

    @settings(max_examples=10)
    @given(keys, st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_matches_reference_gift128(self, key, plaintext):
        assert TracedGift128(key).encrypt(plaintext) == \
            Gift128(key).encrypt(plaintext)

    @pytest.mark.parametrize("vector", GIFT64_VECTORS)
    def test_official_vectors(self, vector):
        assert TracedGift64(vector.key).encrypt(vector.plaintext) == \
            vector.ciphertext

    @settings(max_examples=15)
    @given(keys, blocks64)
    def test_decrypt_roundtrip(self, key, plaintext):
        victim = TracedGift64(key)
        assert victim.decrypt(victim.encrypt(plaintext)) == plaintext


class TestTraceStructure:
    def test_access_counts_per_round(self, victim):
        trace = victim.encrypt_traced(0x1234, max_rounds=3)
        for round_index in (1, 2, 3):
            accesses = [a for a in trace if a.round_index == round_index]
            assert len([a for a in accesses if a.table == "sbox"]) == 16
            assert len([a for a in accesses if a.table == "perm"]) == 16

    def test_sbox_indices_match_state_nibbles(self, victim, random_key):
        plaintext = 0xA5A5_5A5A_0FF0_3CC3
        trace = victim.encrypt_traced(plaintext, max_rounds=4)
        states = Gift64(random_key).round_states(plaintext, rounds=4)
        for state in states:
            observed = dict(trace.sbox_indices(state.round_index))
            for segment in range(16):
                expected = (state.before_sub_cells >> (4 * segment)) & 0xF
                assert observed[segment] == expected

    def test_addresses_follow_layout(self, victim):
        trace = victim.encrypt_traced(0, max_rounds=1)
        for access in trace:
            if access.table == "sbox":
                assert access.address == \
                    victim.layout.sbox_address(access.index)

    def test_segments_in_order(self, victim):
        trace = victim.encrypt_traced(0, max_rounds=1)
        sbox_accesses = [a for a in trace if a.table == "sbox"]
        assert [a.segment for a in sbox_accesses] == list(range(16))

    def test_max_rounds_truncates(self, victim):
        trace = victim.encrypt_traced(0, max_rounds=2)
        assert trace.rounds_traced == 2
        assert len(trace) == 2 * 32

    def test_full_trace_yields_real_ciphertext(self, victim):
        plaintext = 0x123456789ABCDEF0
        trace = victim.encrypt_traced(plaintext)
        assert trace.ciphertext == victim.encrypt(plaintext)

    def test_max_rounds_bounds(self, victim):
        with pytest.raises(ValueError):
            victim.encrypt_traced(0, max_rounds=0)
        with pytest.raises(ValueError):
            victim.encrypt_traced(0, max_rounds=29)


class TestFastIndicesPath:
    @settings(max_examples=20)
    @given(keys, blocks64, st.integers(min_value=1, max_value=8))
    def test_matches_traced_sbox_indices(self, key, plaintext, rounds):
        """The hot path must agree with the fully traced path — the
        attack's fast observations are built on this equality."""
        victim = TracedGift64(key)
        fast = victim.sbox_indices_by_round(plaintext, max_rounds=rounds)
        trace = victim.encrypt_traced(plaintext, max_rounds=rounds)
        for round_index in range(1, rounds + 1):
            traced = [idx for _, idx in trace.sbox_indices(round_index)]
            assert fast[round_index - 1] == traced

    def test_validates_arguments(self, victim):
        with pytest.raises(ValueError):
            victim.sbox_indices_by_round(1 << 64, 1)
        with pytest.raises(ValueError):
            victim.sbox_indices_by_round(0, 0)


class TestTableLayout:
    def test_default_table_is_16_bytes(self):
        layout = TableLayout()
        addresses = layout.sbox_addresses()
        assert len(addresses) == 16
        assert addresses[-1] - addresses[0] == 15

    def test_wider_entries_scale_addresses(self):
        layout = TableLayout(sbox_entry_bytes=4, perm_base=0x4000)
        assert layout.sbox_address(3) == layout.sbox_base + 12

    def test_rejects_overlapping_tables(self):
        with pytest.raises(ValueError):
            TableLayout(sbox_base=0x2000 - 8, perm_base=0x2000)

    def test_rejects_sbox_inside_perm_extent(self):
        # Regression: validation used to be one-sided — an S-box base
        # *above* the PermBits base slipped through even when it landed
        # inside the PermBits table's extent.
        with pytest.raises(ValueError):
            TableLayout(sbox_base=0x2000 + 16, perm_base=0x2000)

    def test_rejects_perm_base_inside_sbox(self):
        with pytest.raises(ValueError):
            TableLayout(sbox_base=0x2000, perm_base=0x2000 + 8)

    def test_accepts_sbox_past_maximal_perm_extent(self):
        # The perm extent is sized for the widest variant (32 segments
        # of 8-byte entries); a base just past it is legal either way.
        extent = 16 * 32 * 8
        layout = TableLayout(sbox_base=0x2000 + extent, perm_base=0x2000)
        assert layout.sbox_address(0) == 0x2000 + extent
        TableLayout(sbox_base=0x2000, perm_base=0x2000 + 16)

    def test_rejects_negative_base(self):
        with pytest.raises(ValueError):
            TableLayout(sbox_base=-1)

    def test_rejects_bad_index(self):
        with pytest.raises(ValueError):
            TableLayout().sbox_address(16)

    def test_perm_address_bounds(self):
        layout = TableLayout()
        with pytest.raises(ValueError):
            layout.perm_address(0, 16, 16)
        with pytest.raises(ValueError):
            layout.perm_address(16, 0, 16)

    def test_perm_addresses_disjoint_from_sbox(self):
        layout = TableLayout()
        sbox_range = set(layout.sbox_addresses())
        for segment in range(16):
            for nibble in range(16):
                assert layout.perm_address(segment, nibble, 16) \
                    not in sbox_range
