"""Tests for the GIFT bit permutations."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gift.permutation import (
    PERM64,
    PERM64_INV,
    PERM128,
    PERM128_INV,
    inverse_permutation_for_width,
    permutation_for_width,
    permute,
    permute64,
    permute64_inv,
    permute128,
    permute128_inv,
)


class TestTables:
    def test_perm64_matches_specification_prefix(self):
        # First row of the published GIFT-64 permutation table.
        expected_prefix = (0, 17, 34, 51, 48, 1, 18, 35,
                           32, 49, 2, 19, 16, 33, 50, 3)
        assert PERM64[:16] == expected_prefix

    def test_perm64_is_a_bijection(self):
        assert sorted(PERM64) == list(range(64))

    def test_perm128_is_a_bijection(self):
        assert sorted(PERM128) == list(range(128))

    def test_inverses_invert(self):
        for i in range(64):
            assert PERM64_INV[PERM64[i]] == i
        for i in range(128):
            assert PERM128_INV[PERM128[i]] == i

    @pytest.mark.parametrize("table", [PERM64, PERM128])
    def test_preserves_bit_offset_mod_4(self, table):
        """P(i) = i (mod 4) for both widths.

        This is load-bearing for the attack: an S-box output bit ``b``
        always lands on index bit ``b`` of the next round's segment, so
        cache-line granularity masks *exactly* the low source bits.
        """
        for i, destination in enumerate(table):
            assert destination % 4 == i % 4

    @pytest.mark.parametrize("table", [PERM64, PERM128])
    def test_spreads_segments(self, table):
        """The four bits of every segment go to four distinct segments."""
        for segment in range(len(table) // 4):
            destinations = {
                table[4 * segment + bit] // 4 for bit in range(4)
            }
            assert len(destinations) == 4


class TestPermute:
    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_64_roundtrip(self, state):
        assert permute64_inv(permute64(state)) == state

    @given(st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_128_roundtrip(self, state):
        assert permute128_inv(permute128(state)) == state

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_preserves_popcount(self, state):
        assert bin(permute64(state)).count("1") == bin(state).count("1")

    def test_single_bit_follows_table(self):
        for i in range(64):
            assert permute64(1 << i) == 1 << PERM64[i]

    @given(
        st.integers(min_value=0, max_value=(1 << 64) - 1),
        st.integers(min_value=0, max_value=(1 << 64) - 1),
    )
    def test_linearity_over_xor(self, a, b):
        assert permute64(a ^ b) == permute64(a) ^ permute64(b)


class TestWidthSelectors:
    def test_width_lookup(self):
        assert permutation_for_width(64) is PERM64
        assert permutation_for_width(128) is PERM128
        assert inverse_permutation_for_width(64) is PERM64_INV
        assert inverse_permutation_for_width(128) is PERM128_INV

    @pytest.mark.parametrize("width", [0, 32, 96, 256])
    def test_rejects_undefined_widths(self, width):
        with pytest.raises(ValueError):
            permutation_for_width(width)
        with pytest.raises(ValueError):
            inverse_permutation_for_width(width)

    def test_permute_generic_matches_specialised(self):
        state = 0x0123456789ABCDEF
        assert permute(state, PERM64) == permute64(state)
