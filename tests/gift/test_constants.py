"""Tests for the GIFT round-constant generator."""

import pytest

from repro.gift.constants import (
    CONSTANT_BIT_POSITIONS,
    MAX_ROUNDS,
    ROUND_CONSTANTS,
    constant_mask,
    round_constant,
)


class TestLfsrSequence:
    def test_first_constants_match_specification(self):
        # Published sequence of GIFT round constants.
        expected = (0x01, 0x03, 0x07, 0x0F, 0x1F, 0x3E, 0x3D, 0x3B,
                    0x37, 0x2F, 0x1E, 0x3C, 0x39, 0x33, 0x27, 0x0E)
        assert ROUND_CONSTANTS[:16] == expected

    def test_constants_are_six_bit(self):
        assert all(0 <= c < 64 for c in ROUND_CONSTANTS)

    def test_never_repeats_within_gift128_rounds(self):
        # The 6-bit LFSR has a long enough period to cover 40 rounds
        # (GIFT-128) without repetition.
        assert len(set(ROUND_CONSTANTS[:40])) == 40

    def test_round_constant_is_one_based(self):
        assert round_constant(1) == 0x01
        assert round_constant(2) == 0x03

    @pytest.mark.parametrize("bad", [0, -3, MAX_ROUNDS + 1])
    def test_round_constant_bounds(self, bad):
        with pytest.raises(ValueError):
            round_constant(bad)


class TestConstantMask:
    def test_msb_always_set(self):
        for width in (64, 128):
            for r in (1, 5, 28):
                assert constant_mask(r, width) >> (width - 1) == 1

    def test_constant_bits_land_on_documented_positions(self):
        mask = constant_mask(1, 64)  # constant 0b000001
        assert mask == (1 << 63) | (1 << CONSTANT_BIT_POSITIONS[0])

    def test_round_two_sets_two_low_positions(self):
        mask = constant_mask(2, 64)  # constant 0b000011
        expected = (1 << 63) | (1 << 3) | (1 << 7)
        assert mask == expected

    def test_positions_are_bit_three_of_segments(self):
        # All constant positions sit on nibble bit 3 — never on the
        # key-carrying bits 0/1, which the attack's bookkeeping assumes.
        for position in CONSTANT_BIT_POSITIONS:
            assert position % 4 == 3

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            constant_mask(1, 96)
