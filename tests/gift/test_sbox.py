"""Tests for the GIFT S-box and its attack-facing helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gift.sbox import (
    GIFT_SBOX,
    GIFT_SBOX_INV,
    SBOX_SIZE,
    branch_number,
    inputs_for_output_bits,
    outputs_with_bit,
    sbox,
    sbox_inv,
)
from repro.present.cipher import PRESENT_SBOX


class TestSboxTable:
    def test_is_a_permutation_of_nibbles(self):
        assert sorted(GIFT_SBOX) == list(range(16))

    def test_matches_specification_values(self):
        # Spot values from the GIFT specification (Table 1).
        assert GIFT_SBOX[0x0] == 0x1
        assert GIFT_SBOX[0x1] == 0xA
        assert GIFT_SBOX[0xF] == 0xE
        assert GIFT_SBOX[0xD] == 0x0

    def test_inverse_table_inverts(self):
        for value in range(16):
            assert GIFT_SBOX_INV[GIFT_SBOX[value]] == value

    def test_no_fixed_point_zero(self):
        # S(0) != 0, a standard S-box hygiene property GIFT satisfies.
        assert GIFT_SBOX[0] != 0

    @given(st.integers(min_value=0, max_value=15))
    def test_sbox_roundtrip(self, value):
        assert sbox_inv(sbox(value)) == value
        assert sbox(sbox_inv(value)) == value

    @pytest.mark.parametrize("bad", [-1, 16, 255])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(ValueError):
            sbox(bad)
        with pytest.raises(ValueError):
            sbox_inv(bad)


class TestBranchNumber:
    def test_gift_sbox_has_branch_number_two(self):
        # The design point of GIFT: BN2 suffices (Section II).
        assert branch_number(GIFT_SBOX) == 2

    def test_present_sbox_has_branch_number_three(self):
        # PRESENT pays for BN3 — the overhead GIFT avoids.
        assert branch_number(PRESENT_SBOX) == 3

    def test_identity_rejected_values(self):
        with pytest.raises(ValueError):
            branch_number(list(range(15)))
        with pytest.raises(ValueError):
            branch_number([0] * 16)


class TestBitPreimageLists:
    @pytest.mark.parametrize("bit", range(4))
    @pytest.mark.parametrize("value", (0, 1))
    def test_list_members_force_the_bit(self, bit, value):
        for x in outputs_with_bit(bit, value):
            assert (GIFT_SBOX[x] >> bit) & 1 == value

    @pytest.mark.parametrize("bit", range(4))
    def test_lists_partition_the_domain(self, bit):
        ones = set(outputs_with_bit(bit, 1))
        zeros = set(outputs_with_bit(bit, 0))
        assert ones | zeros == set(range(16))
        assert not ones & zeros

    @pytest.mark.parametrize("bit", range(4))
    def test_balancedness(self, bit):
        # A bijective S-box has balanced component bits: 8 inputs each.
        assert len(outputs_with_bit(bit, 1)) == 8

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            outputs_with_bit(4)
        with pytest.raises(ValueError):
            outputs_with_bit(0, 2)

    def test_multi_constraint_intersection(self):
        both = inputs_for_output_bits([(0, 1), (1, 1)])
        assert both == [
            x for x in range(16)
            if GIFT_SBOX[x] & 1 and (GIFT_SBOX[x] >> 1) & 1
        ]

    def test_empty_constraints_return_everything(self):
        assert inputs_for_output_bits([]) == list(range(SBOX_SIZE))

    def test_contradictory_constraints_return_nothing(self):
        assert inputs_for_output_bits([(2, 0), (2, 1)]) == []

    def test_rejects_invalid_constraints(self):
        with pytest.raises(ValueError):
            inputs_for_output_bits([(5, 1)])
        with pytest.raises(ValueError):
            inputs_for_output_bits([(1, 3)])


class TestAttackRelevantStructure:
    @pytest.mark.parametrize("bit", range(4))
    @pytest.mark.parametrize("error", (1, 2, 3))
    def test_key_bit_errors_are_detectable(self, bit, error):
        """A wrong guess of previous-round key bits XORs an error of 1,
        2 or 3 into an S-box input nibble; the forced output bit must
        *vary* over the preimage list for the hypothesis test to prune
        it.  (Errors involving nibble bits 2/3 do have constant cosets,
        but key bits only ever land on nibble bits 0/1.)"""
        members = outputs_with_bit(bit, 1)
        outputs = {(GIFT_SBOX[x ^ error] >> bit) & 1 for x in members}
        assert len(outputs) == 2
