"""The trace-free fast path must be ciphertext-identical to tracing.

Every trace-discarding call site (engine trial bodies, voting stall
re-crafts, countermeasure known-answer checks) now goes through
``encrypt()`` without building an :class:`EncryptionTrace`; these tests
pin that the fast path computes the *same cipher* as the traced path on
every variant, width, and round count, and that the precomputation the
fast path relies on (fused tables, inject masks, cached inverse
permutation, memoised ``round_key_mask``) behaves.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.countermeasures.hardened_schedule import HardenedKeyScheduleGift64
from repro.countermeasures.reshaped_sbox import ReshapedSboxGift64
from repro.gift.cipher import Gift64, Gift128, round_key_mask
from repro.gift.lut import TracedGift64, TracedGift128
from repro.gift.vectors import GIFT64_VECTORS, GIFT128_VECTORS

keys = st.integers(min_value=0, max_value=(1 << 128) - 1)
blocks64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
blocks128 = st.integers(min_value=0, max_value=(1 << 128) - 1)

GIFT64_VARIANTS = (TracedGift64, HardenedKeyScheduleGift64,
                   ReshapedSboxGift64)


class TestFastEqualsTraced:
    @pytest.mark.parametrize("victim_cls", GIFT64_VARIANTS)
    @settings(max_examples=25)
    @given(key=keys, plaintext=blocks64)
    def test_gift64_variants(self, victim_cls, key, plaintext):
        victim = victim_cls(key)
        assert victim.encrypt(plaintext) == \
            victim.encrypt_traced(plaintext).ciphertext

    @settings(max_examples=10)
    @given(keys, blocks128)
    def test_gift128(self, key, plaintext):
        victim = TracedGift128(key)
        assert victim.encrypt(plaintext) == \
            victim.encrypt_traced(plaintext).ciphertext

    @settings(max_examples=10)
    @given(keys, blocks64, st.integers(min_value=1, max_value=28))
    def test_reduced_round_counts(self, key, plaintext, rounds):
        victim = TracedGift64(key, rounds=rounds)
        assert victim.encrypt(plaintext) == \
            victim.encrypt_traced(plaintext).ciphertext

    @pytest.mark.parametrize("vector", GIFT64_VECTORS)
    def test_official_vectors_gift64(self, vector):
        victim = TracedGift64(vector.key)
        assert victim.encrypt(vector.plaintext) == vector.ciphertext
        assert victim.decrypt(vector.ciphertext) == vector.plaintext

    @pytest.mark.parametrize("vector", GIFT128_VECTORS)
    def test_official_vectors_gift128(self, vector):
        victim = TracedGift128(vector.key)
        assert victim.encrypt(vector.plaintext) == vector.ciphertext
        assert victim.decrypt(vector.ciphertext) == vector.plaintext

    @pytest.mark.parametrize("victim_cls", GIFT64_VARIANTS)
    @settings(max_examples=15)
    @given(key=keys, plaintext=blocks64)
    def test_decrypt_inverts_fast_path(self, victim_cls, key, plaintext):
        victim = victim_cls(key)
        assert victim.decrypt(victim.encrypt(plaintext)) == plaintext

    def test_fast_path_emits_no_trace(self):
        victim = TracedGift64(0x123)
        accesses = []
        victim.encrypt(0x456)
        # encrypt_traced is the only producer of MemoryAccess records;
        # the fast path must not have grown a hidden dependency on it.
        original = victim.encrypt_traced

        def spy(*args, **kwargs):
            accesses.append(args)
            return original(*args, **kwargs)

        victim.encrypt_traced = spy
        victim.encrypt(0x789)
        assert accesses == []


class TestPrecomputation:
    def test_inject_masks_reflect_key_schedule_override(self):
        key = 0xFEDC_BA98_7654_3210_0123_4567_89AB_CDEF
        plain, hardened = TracedGift64(key), HardenedKeyScheduleGift64(key)
        assert hardened._round_keys == hardened.compute_round_keys()
        assert plain._round_keys != hardened._round_keys
        assert plain._inject_masks != hardened._inject_masks
        assert plain.encrypt(0) != hardened.encrypt(0)

    def test_inverse_permutation_cached_on_instance(self):
        victim = TracedGift64(0x1)
        first = victim._inverse_permutation
        victim.decrypt(victim.encrypt(0x2))
        assert victim._inverse_permutation is first

    def test_reference_cipher_inverse_permutation_cached(self):
        cipher = Gift64(0x1)
        first = cipher._inverse_permutation
        cipher.decrypt(cipher.encrypt(0x2))
        assert cipher._inverse_permutation is first

    def test_round_key_mask_is_memoised(self):
        before = round_key_mask.cache_info().hits
        value = round_key_mask(0xBEEF, 0xCAFE, 64)
        assert round_key_mask(0xBEEF, 0xCAFE, 64) == value
        assert round_key_mask.cache_info().hits > before

    @settings(max_examples=10)
    @given(keys, blocks128)
    def test_reference_cipher_matches_traced_gift128(self, key, plaintext):
        assert Gift128(key).encrypt(plaintext) == \
            TracedGift128(key).encrypt(plaintext)
