"""Tests for the memory-access trace records."""

import pytest

from repro.gift.trace import EncryptionTrace, MemoryAccess


def _access(round_index, segment=0, table="sbox", index=0, address=None):
    return MemoryAccess(
        address=address if address is not None else 0x1000 + index,
        round_index=round_index,
        segment=segment,
        table=table,
        index=index,
    )


class TestEncryptionTrace:
    def test_append_and_len(self):
        trace = EncryptionTrace(plaintext=0, ciphertext=0)
        trace.append(_access(1))
        trace.append(_access(2))
        assert len(trace) == 2

    def test_iteration_preserves_order(self):
        trace = EncryptionTrace(plaintext=0, ciphertext=0)
        accesses = [_access(1, segment=s) for s in range(5)]
        for access in accesses:
            trace.append(access)
        assert list(trace) == accesses

    def test_rounds_traced(self):
        trace = EncryptionTrace(plaintext=0, ciphertext=0)
        assert trace.rounds_traced == 0
        trace.append(_access(3))
        trace.append(_access(1))
        assert trace.rounds_traced == 3

    def test_accesses_through_round(self):
        trace = EncryptionTrace(plaintext=0, ciphertext=0)
        for r in (1, 2, 3, 4):
            trace.append(_access(r))
        assert len(trace.accesses_through_round(2)) == 2
        assert trace.accesses_through_round(0) == []

    def test_accesses_in_rounds_window(self):
        trace = EncryptionTrace(plaintext=0, ciphertext=0)
        for r in (1, 2, 3, 4, 5):
            trace.append(_access(r))
        window = trace.accesses_in_rounds(2, 4)
        assert [a.round_index for a in window] == [2, 3, 4]

    def test_window_validation(self):
        trace = EncryptionTrace(plaintext=0, ciphertext=0)
        with pytest.raises(ValueError):
            trace.accesses_in_rounds(3, 2)
        with pytest.raises(ValueError):
            trace.accesses_through_round(-1)

    def test_sbox_indices_filters_tables(self):
        trace = EncryptionTrace(plaintext=0, ciphertext=0)
        trace.append(_access(1, segment=0, table="sbox", index=5))
        trace.append(_access(1, segment=0, table="perm", index=9))
        trace.append(_access(1, segment=1, table="sbox", index=7))
        trace.append(_access(2, segment=0, table="sbox", index=1))
        assert trace.sbox_indices(1) == [(0, 5), (1, 7)]
        assert trace.sbox_indices(2) == [(0, 1)]

    def test_memory_access_is_immutable(self):
        access = _access(1)
        with pytest.raises(AttributeError):
            access.address = 42
