"""Tests for the GIFT key schedule and its attack-facing bookkeeping."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gift.keyschedule import (
    GiftKeyState,
    assemble_master_key_from_round_keys,
    key_xor_state_bits,
    master_key_bits_for_segment,
    round_keys,
)

keys = st.integers(min_value=0, max_value=(1 << 128) - 1)


class TestKeyState:
    def test_word_extraction(self):
        state = GiftKeyState(0x7777_6666_5555_4444_3333_2222_1111_0000)
        assert state.words() == (0x0000, 0x1111, 0x2222, 0x3333,
                                 0x4444, 0x5555, 0x6666, 0x7777)

    def test_round_key_64_uses_low_words(self):
        state = GiftKeyState(0x7777_6666_5555_4444_3333_2222_1111_0000)
        assert state.round_key(64) == (0x1111, 0x0000)

    def test_round_key_128_uses_four_words(self):
        state = GiftKeyState(0x7777_6666_5555_4444_3333_2222_1111_0000)
        u, v = state.round_key(128)
        assert u == 0x5555_4444
        assert v == 0x1111_0000

    def test_update_rotates_32_bits_with_local_rotations(self):
        # Paper Fig. 1: whole state >>> 32; consumed words get >>> 2
        # and >>> 12 respectively.
        state = GiftKeyState(0x7777_6666_5555_4444_3333_2222_1111_0000)
        state.update()
        words = state.words()
        assert words[:6] == (0x2222, 0x3333, 0x4444, 0x5555,
                             0x6666, 0x7777)
        # k1 = 0x1111 >>> 2 and k0 = 0x0000 >>> 12.
        assert words[7] == 0x4444 + 0x0  # 0x1111 ror 2 == 0x4444
        assert words[6] == 0x0000

    def test_update_local_rotation_values(self):
        state = GiftKeyState((0x8001 << 16) | 0x8001)
        state.update()
        words = state.words()
        assert words[7] == ((0x8001 >> 2) | (0x8001 << 14)) & 0xFFFF
        assert words[6] == ((0x8001 >> 12) | (0x8001 << 4)) & 0xFFFF

    @given(keys)
    def test_copy_is_independent(self, key):
        state = GiftKeyState(key)
        clone = state.copy()
        state.update()
        assert clone.value == key

    def test_rejects_oversized_key(self):
        with pytest.raises(ValueError):
            GiftKeyState(1 << 128)

    def test_rejects_bad_word_index(self):
        with pytest.raises(ValueError):
            GiftKeyState(0).word(8)


class TestRoundKeys:
    @given(keys)
    def test_first_four_round_keys_are_disjoint_quarters(self, key):
        """Rounds 1-4 consume the four 32-bit quarters of the master key
        — the structural fact GRINCH's four-stage recovery relies on."""
        rks = round_keys(key, 4, width=64)
        for round_index, (u, v) in enumerate(rks, start=1):
            quarter = (key >> (32 * (round_index - 1))) & 0xFFFFFFFF
            assert v == quarter & 0xFFFF
            assert u == quarter >> 16

    @given(keys)
    def test_round_five_key_is_rotation_of_round_one(self, key):
        """RK5 = (RK1.U >>> 2, RK1.V >>> 12): the verification stage's
        ability to predict round 5 from round 1 depends on this."""
        rks = round_keys(key, 5, width=64)
        u1, v1 = rks[0]
        u5, v5 = rks[4]
        assert u5 == ((u1 >> 2) | (u1 << 14)) & 0xFFFF
        assert v5 == ((v1 >> 12) | (v1 << 4)) & 0xFFFF

    @given(keys)
    def test_assemble_inverts_extraction(self, key):
        rks = round_keys(key, 4, width=64)
        assert assemble_master_key_from_round_keys(rks) == key

    def test_assemble_validates_input(self):
        with pytest.raises(ValueError):
            assemble_master_key_from_round_keys([(0, 0)] * 3)
        with pytest.raises(ValueError):
            assemble_master_key_from_round_keys([(1 << 16, 0)] + [(0, 0)] * 3)


class TestStateBitMapping:
    def test_gift64_positions(self):
        u_positions, v_positions = key_xor_state_bits(64)
        assert v_positions[:4] == (0, 4, 8, 12)
        assert u_positions[:4] == (1, 5, 9, 13)

    def test_gift128_positions(self):
        u_positions, v_positions = key_xor_state_bits(128)
        assert v_positions[0] == 1
        assert u_positions[0] == 2
        assert len(u_positions) == 32

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            key_xor_state_bits(96)


class TestSegmentKeyBits:
    def test_paper_example_segment_zero(self):
        # "the two LSB bits of the first segment are XORed with key-bit 0
        # and key-bit 16" (Section II).
        assert master_key_bits_for_segment(1, 0) == (0, 16)

    def test_next_segment_uses_bits_1_and_17(self):
        assert master_key_bits_for_segment(1, 1) == (1, 17)

    def test_rounds_step_by_32_bits(self):
        for round_index in range(1, 5):
            v_bit, u_bit = master_key_bits_for_segment(round_index, 0)
            assert v_bit == 32 * (round_index - 1)
            assert u_bit == 32 * (round_index - 1) + 16

    def test_all_128_bits_covered_exactly_once(self):
        seen = set()
        for round_index in range(1, 5):
            for segment in range(16):
                seen.update(master_key_bits_for_segment(round_index, segment))
        assert seen == set(range(128))

    def test_bounds(self):
        with pytest.raises(ValueError):
            master_key_bits_for_segment(5, 0)
        with pytest.raises(ValueError):
            master_key_bits_for_segment(1, 16)
        with pytest.raises(ValueError):
            master_key_bits_for_segment(1, 0, width=128)
