"""The bitsliced batch GIFT backend against the scalar references.

Every property here pins the batch path to the scalar one the attack
already trusts: ``encrypt_batch`` against :class:`repro.gift.cipher`,
``sbox_indices_batch`` / ``encrypt_traced_batch`` against the traced
LUT victim — including the key-schedule and table-layout
countermeasure subclasses, which :meth:`BitslicedGiftCipher.from_victim`
must absorb without any per-subclass code.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gift.bitsliced import (
    BitslicedGift64,
    BitslicedGift128,
    BitslicedGiftCipher,
    numpy_available,
)
from repro.gift.cipher import Gift64, Gift128
from repro.gift.vectors import GIFT64_VECTORS, GIFT128_VECTORS
from repro.countermeasures.hardened_schedule import HardenedKeyScheduleGift64
from repro.countermeasures.reshaped_sbox import ReshapedSboxGift64
from repro.targets.gift import TracedGift64, TracedGift128

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="bitsliced backend requires numpy"
)

keys = st.integers(min_value=0, max_value=(1 << 128) - 1)
blocks64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
blocks128 = st.integers(min_value=0, max_value=(1 << 128) - 1)
batches64 = st.lists(blocks64, min_size=1, max_size=12)
batches128 = st.lists(blocks128, min_size=1, max_size=8)


class TestKnownAnswers:
    @pytest.mark.parametrize("vector", GIFT64_VECTORS)
    def test_gift64_official_vectors(self, vector):
        batch = BitslicedGift64(vector.key)
        assert batch.encrypt_batch([vector.plaintext]) \
            == [vector.ciphertext]

    @pytest.mark.parametrize("vector", GIFT128_VECTORS)
    def test_gift128_official_vectors(self, vector):
        batch = BitslicedGift128(vector.key)
        assert batch.encrypt_batch([vector.plaintext]) \
            == [vector.ciphertext]

    def test_all_vectors_as_one_batch(self):
        batch = BitslicedGift64(GIFT64_VECTORS[0].key)
        same_key = [v for v in GIFT64_VECTORS
                    if v.key == GIFT64_VECTORS[0].key]
        assert batch.encrypt_batch([v.plaintext for v in same_key]) \
            == [v.ciphertext for v in same_key]


class TestBatchMatchesScalar:
    @settings(max_examples=25)
    @given(keys, batches64)
    def test_gift64_encrypt_batch(self, key, plaintexts):
        scalar = Gift64(key)
        assert BitslicedGift64(key).encrypt_batch(plaintexts) \
            == [scalar.encrypt(p) for p in plaintexts]

    @settings(max_examples=12)
    @given(keys, batches128)
    def test_gift128_encrypt_batch(self, key, plaintexts):
        scalar = Gift128(key)
        assert BitslicedGift128(key).encrypt_batch(plaintexts) \
            == [scalar.encrypt(p) for p in plaintexts]

    @settings(max_examples=15)
    @given(keys, batches64, st.integers(min_value=1, max_value=28))
    def test_gift64_reduced_rounds(self, key, plaintexts, rounds):
        scalar = Gift64(key, rounds=rounds)
        assert BitslicedGift64(key, rounds=rounds) \
            .encrypt_batch(plaintexts) \
            == [scalar.encrypt(p) for p in plaintexts]


class TestTracedIndices:
    @settings(max_examples=20)
    @given(keys, batches64, st.integers(min_value=1, max_value=6))
    def test_gift64_sbox_indices_batch(self, key, plaintexts, max_rounds):
        victim = TracedGift64(key)
        indices = BitslicedGift64(key).sbox_indices_batch(
            plaintexts, max_rounds=max_rounds
        )
        assert indices.shape == (max_rounds, 16, len(plaintexts))
        for n, plaintext in enumerate(plaintexts):
            expected = victim.sbox_indices_by_round(plaintext, max_rounds)
            for round_index in range(max_rounds):
                assert list(indices[round_index, :, n]) \
                    == list(expected[round_index])

    @settings(max_examples=8)
    @given(keys, batches128, st.integers(min_value=1, max_value=4))
    def test_gift128_sbox_indices_batch(self, key, plaintexts, max_rounds):
        victim = TracedGift128(key)
        indices = BitslicedGift128(key).sbox_indices_batch(
            plaintexts, max_rounds=max_rounds
        )
        assert indices.shape == (max_rounds, 32, len(plaintexts))
        for n, plaintext in enumerate(plaintexts):
            expected = victim.sbox_indices_by_round(plaintext, max_rounds)
            for round_index in range(max_rounds):
                assert list(indices[round_index, :, n]) \
                    == list(expected[round_index])

    @settings(max_examples=15)
    @given(keys, batches64)
    def test_encrypt_traced_batch_full(self, key, plaintexts):
        batch = BitslicedGift64(key)
        trace = batch.encrypt_traced_batch(plaintexts)
        assert trace.rounds == 28
        assert trace.first_round == 1
        assert list(trace.ciphertexts) == batch.encrypt_batch(plaintexts)
        assert (trace.sbox_indices
                == batch.sbox_indices_batch(plaintexts)).all()


class TestCountermeasureVictims:
    """``from_victim`` must absorb the countermeasure subclasses."""

    @settings(max_examples=15)
    @given(keys, batches64)
    def test_hardened_schedule_round_keys_picked_up(self, key, plaintexts):
        victim = HardenedKeyScheduleGift64(key)
        batch = BitslicedGiftCipher.from_victim(victim)
        assert batch.encrypt_batch(plaintexts) \
            == [victim.encrypt(p) for p in plaintexts]

    def test_hardened_schedule_differs_from_standard(self):
        key = 0x0123456789ABCDEF0123456789ABCDEF
        hardened = BitslicedGiftCipher.from_victim(
            HardenedKeyScheduleGift64(key)
        )
        assert hardened.encrypt_batch([0]) != BitslicedGift64(key) \
            .encrypt_batch([0])

    @settings(max_examples=15)
    @given(keys, batches64)
    def test_reshaped_sbox_is_value_identical(self, key, plaintexts):
        # The reshaped layout only changes load *addresses*; both the
        # ciphertexts and the traced index values are those of plain
        # GIFT-64, so one bitsliced backend serves both.
        victim = ReshapedSboxGift64(key)
        batch = BitslicedGiftCipher.from_victim(victim)
        assert batch.encrypt_batch(plaintexts) \
            == [victim.encrypt(p) for p in plaintexts]
        indices = batch.sbox_indices_batch(plaintexts, max_rounds=2)
        for n, plaintext in enumerate(plaintexts):
            expected = victim.sbox_indices_by_round(plaintext, 2)
            for round_index in range(2):
                assert list(indices[round_index, :, n]) \
                    == list(expected[round_index])

    @settings(max_examples=10)
    @given(keys, batches64)
    def test_from_victim_matches_from_master_key(self, key, plaintexts):
        victim = TracedGift64(key)
        assert BitslicedGiftCipher.from_victim(victim) \
            .encrypt_batch(plaintexts) \
            == BitslicedGift64(key).encrypt_batch(plaintexts)


class TestEdges:
    def test_empty_batch(self):
        batch = BitslicedGift64(0)
        assert batch.encrypt_batch([]) == []
        assert batch.sbox_indices_batch([], max_rounds=3).shape \
            == (3, 16, 0)

    def test_oversized_block_rejected(self):
        with pytest.raises(ValueError):
            BitslicedGift64(0).encrypt_batch([1 << 64])

    def test_bad_max_rounds_rejected(self):
        batch = BitslicedGift64(0)
        with pytest.raises(ValueError):
            batch.sbox_indices_batch([0], max_rounds=0)
        with pytest.raises(ValueError):
            batch.sbox_indices_batch([0], max_rounds=29)

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            BitslicedGiftCipher(32, 4, [(0, 0)] * 4)

    def test_short_schedule_rejected(self):
        with pytest.raises(ValueError):
            BitslicedGiftCipher(64, 4, [(0, 0)] * 3)
