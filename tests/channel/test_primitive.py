"""L1 tests: probe primitives against a bare cache surface."""

import random

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.setassoc import SetAssociativeCache
from repro.channel import (
    FlushFlush,
    FlushReload,
    PrimeProbe,
    SboxMonitor,
    make_primitive,
)
from repro.channel.primitive import PRIMITIVE_NAMES
from repro.gift.lut import TableLayout


@pytest.fixture
def monitor():
    return SboxMonitor.build(TableLayout(), CacheGeometry())


@pytest.fixture
def cache():
    return SetAssociativeCache(CacheGeometry())


class TestFactory:
    def test_all_names_construct(self, monitor):
        for name in PRIMITIVE_NAMES:
            primitive = make_primitive(name, monitor)
            assert primitive.name == name

    def test_unknown_name_rejected(self, monitor):
        with pytest.raises(ValueError, match="unknown probe strategy"):
            make_primitive("evict_reload", monitor)

    def test_capability_flags(self, monitor):
        fr = make_primitive("flush_reload", monitor)
        pp = make_primitive("prime_probe", monitor)
        ff = make_primitive("flush_flush", monitor)
        assert fr.flush_based and fr.line_granular and fr.supports_mid_flush
        assert not (pp.flush_based or pp.line_granular
                    or pp.supports_mid_flush)
        assert ff.flush_based and ff.line_granular and ff.supports_mid_flush


class TestFlushReload:
    def test_reads_exactly_the_touched_lines(self, monitor, cache):
        primitive = FlushReload(monitor)
        primitive.reset(cache)
        touched = monitor.line_addresses()[:3]
        for address in touched:
            cache.access(address)
        observed = primitive.observe(cache)
        expected = {monitor.geometry.line_of(a) for a in touched}
        assert observed == frozenset(expected)

    def test_observe_is_perturbing(self, monitor, cache):
        """The reload loads every monitored line — a second observe
        without reset sees everything (why the runner resets per window)."""
        primitive = FlushReload(monitor)
        primitive.reset(cache)
        primitive.observe(cache)
        assert primitive.observe(cache) == frozenset(monitor.lines)


class TestPrimeProbe:
    def test_detects_victim_evictions_set_granularly(self, monitor):
        tiny = CacheGeometry(total_lines=16, ways=2, line_words=1)
        small_monitor = SboxMonitor.build(TableLayout(), tiny)
        cache = SetAssociativeCache(tiny)
        primitive = PrimeProbe(small_monitor)
        primitive.reset(cache)
        victim_address = small_monitor.line_addresses()[0]
        cache.access(victim_address)
        observed = primitive.observe(cache)
        target_set = tiny.set_of(victim_address)
        expected = {
            line for line, address in zip(small_monitor.lines,
                                          small_monitor.line_addresses())
            if tiny.set_of(address) == target_set
        }
        assert observed == frozenset(expected)

    def test_quiet_victim_yields_empty_observation(self, monitor, cache):
        primitive = PrimeProbe(monitor)
        primitive.reset(cache)
        assert primitive.observe(cache) == frozenset()


class TestFlushFlush:
    def test_flush_is_the_probe(self, monitor, cache):
        primitive = FlushFlush(monitor)
        primitive.reset(cache)
        touched = monitor.line_addresses()[:4]
        for address in touched:
            cache.access(address)
        observed = primitive.observe(cache)
        assert observed == frozenset(
            monitor.geometry.line_of(a) for a in touched
        )
        # ...and the probe reset the lines: nothing remains resident.
        assert primitive.observe(cache) == frozenset()

    def test_perfect_readout_by_default(self, monitor):
        primitive = FlushFlush(monitor)
        assert primitive.signal_reliability == 1.0
        lines = frozenset(monitor.lines)
        assert primitive.filter_observation(lines) == lines

    def test_noisy_readout_requires_rng(self, monitor):
        with pytest.raises(ValueError, match="RNG stream"):
            FlushFlush(monitor, signal_miss_probability=0.1)

    def test_miss_probability_validated(self, monitor):
        with pytest.raises(ValueError, match="signal_miss_probability"):
            FlushFlush(monitor, signal_miss_probability=1.0,
                       rng=random.Random(0))

    def test_set_profile_scales_per_line(self, monitor):
        primitive = FlushFlush(monitor, signal_miss_probability=0.1,
                               rng=random.Random(0))
        profile = FlushFlush.SET_WEIGHT_PROFILE
        geometry = monitor.geometry
        for line, address in zip(monitor.lines, monitor.line_addresses()):
            weight = profile[geometry.set_of(address) % len(profile)]
            assert primitive._miss_by_line[line] == \
                pytest.approx(min(1.0, 0.1 * weight))
        assert primitive.signal_reliability == pytest.approx(
            1.0 - sum(primitive._miss_by_line.values())
            / len(primitive._miss_by_line)
        )

    def test_filter_drops_lines_deterministically(self, monitor):
        a = FlushFlush(monitor, signal_miss_probability=0.5,
                       rng=random.Random(1234))
        b = FlushFlush(monitor, signal_miss_probability=0.5,
                       rng=random.Random(1234))
        lines = frozenset(monitor.lines)
        filtered = a.filter_observation(lines)
        assert filtered == b.filter_observation(lines)
        assert filtered < lines  # p=0.5 over 16 lines: loss is certain

    def test_filtered_observation_is_a_subset(self, monitor):
        primitive = FlushFlush(monitor, signal_miss_probability=0.3,
                               rng=random.Random(7))
        lines = frozenset(monitor.lines)
        for _ in range(20):
            assert primitive.filter_observation(lines) <= lines
