"""Architecture tests: import layering and RNG discipline.

These are the grep-style regression guards of the refactor: the layer
rules of ``docs/architecture.md`` and the derive_rng seeding discipline
hold for the *current source tree*, not just the modules some test
happens to import.
"""

import re
from pathlib import Path

from repro.staticcheck.layering import (
    CHANNEL_LAYERS,
    check_channel_layering,
)

SRC = Path(__file__).resolve().parent.parent.parent / "src" / "repro"


class TestChannelLayering:
    def test_channel_package_is_compliant(self):
        assert check_channel_layering() == []

    def test_every_channel_module_has_a_layer(self):
        modules = {p.stem for p in (SRC / "channel").glob("*.py")}
        assert modules == set(CHANNEL_LAYERS)

    def test_upward_import_is_detected(self, tmp_path):
        """The checker must actually catch violations, not just pass."""
        (tmp_path / "primitive.py").write_text(
            "from .transport import CacheTransport\n"
        )
        (tmp_path / "transport.py").write_text("")
        violations = check_channel_layering(tmp_path)
        assert len(violations) == 1
        assert "strictly downward" in violations[0]

    def test_consumer_import_is_detected(self, tmp_path):
        (tmp_path / "observer.py").write_text(
            "from repro.core.attack import GrinchAttack\n"
        )
        violations = check_channel_layering(tmp_path)
        assert len(violations) == 1
        assert "must not import its consumers" in violations[0]

    def test_unknown_module_is_flagged(self, tmp_path):
        (tmp_path / "sidechannel.py").write_text("")
        violations = check_channel_layering(tmp_path)
        assert any("no assigned layer" in v for v in violations)


class TestRngDiscipline:
    def test_only_the_seeding_module_constructs_raw_rngs(self):
        """Every RNG in the tree must come from derive_rng with a scope
        label; a bare ``random.Random(seed)`` anywhere else silently
        correlates streams across consumers (the bug the time-/trace-
        driven variants shipped with)."""
        offenders = []
        pattern = re.compile(r"random\.Random\(")
        for path in sorted(SRC.rglob("*.py")):
            if path == SRC / "seeding.py":
                continue  # the one place allowed to construct RNGs
            for number, line in enumerate(
                    path.read_text().splitlines(), start=1):
                code = line.split("#", 1)[0]
                if pattern.search(code):
                    offenders.append(f"{path}:{number}: {line.strip()}")
        assert offenders == []
