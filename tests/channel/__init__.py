"""Tests of the layered observation-channel stack."""
