"""The channel's batch surface: observe_batch, window_batch, gating.

Three invariants anchor the batch path to the historic scalar channel:

* on a lossless (and even a noisy) channel, ``observe_batch`` is
  observation-for-observation identical to looping ``observe`` on a
  fresh channel — the noise stream is consumed per window in scalar
  order on both paths;
* on a lossy channel, the batch degradations are deterministic at ANY
  batch split — ``drop_lines_batch`` draws one C-order matrix per call
  on the dedicated ``"-loss-batch"`` stream, so window ``k`` always
  gets row ``k``'s randomness;
* the capability gate falls back to the exact scalar loop whenever a
  configuration could diverge (noisy Flush+Flush readouts, jittered
  windows, wrapped replay/recording victims).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.degradation import LossyChannel, ProbeJitter, NoiseModel
from repro.channel.observer import ObservationChannel
from repro.gift.bitsliced import numpy_available
from repro.core.config import AttackConfig
from repro.seeding import derive_key, derive_rng
from repro.targets.gift import TracedGift64
from repro.targets.registry import get_target

pytestmark = pytest.mark.skipif(
    not numpy_available(), reason="the batch path requires numpy"
)


def _plaintexts(count, label="channel-batch"):
    rng = derive_rng(label, 0)
    return [rng.getrandbits(64) for _ in range(count)]


def _channel(config, key_seed=0):
    victim = TracedGift64(derive_key(128, key_seed))
    return ObservationChannel(victim, config)


class TestGating:
    def test_active_on_the_reference_setup(self):
        channel = _channel(AttackConfig(seed=0))
        assert channel.fast_path_active
        assert channel.batch_path_active

    def test_active_with_batch_aware_loss(self):
        channel = _channel(AttackConfig(
            seed=0, loss=LossyChannel(miss_probability=0.2)
        ))
        assert channel.batch_path_active

    def test_inactive_for_prime_probe(self):
        channel = _channel(AttackConfig(
            seed=0, probe_strategy="prime_probe", stall_window=200
        ))
        assert not channel.batch_path_active

    def test_inactive_under_jitter(self):
        channel = _channel(AttackConfig(
            seed=0,
            loss=LossyChannel(jitter=ProbeJitter(offsets=(-1, 0, 1),
                                                 weights=(0.2, 0.6, 0.2))),
        ))
        assert channel.fast_path_active
        assert not channel.batch_path_active

    def test_inactive_for_noisy_flush_flush_readout(self):
        channel = _channel(AttackConfig(
            seed=0, probe_strategy="flush_flush",
            flush_flush_miss_probability=0.1,
        ))
        assert not channel.batch_path_active

    def test_inactive_for_replay_victims(self):
        from repro.engine.replay import config_from_header
        from repro.trace import ReplayVictim, read_binary
        from pathlib import Path

        corpus = (Path(__file__).resolve().parent.parent / "corpus"
                  / "gift64-seed0-full.grtr")
        trace = read_binary(corpus)
        victim = ReplayVictim(trace)
        channel = ObservationChannel(victim,
                                     config_from_header(trace.header))
        assert not channel.batch_path_active

    def test_fallback_still_answers(self):
        # An inactive batch path must still serve observe_batch via the
        # scalar loop, bit-identical to fresh scalar observes.
        config = AttackConfig(seed=0, probe_strategy="prime_probe",
                              stall_window=200)
        plaintexts = _plaintexts(5)
        batched = _channel(config).observe_batch(plaintexts, 1)
        scalar_channel = _channel(config)
        assert batched == [scalar_channel.observe(p, 1)
                           for p in plaintexts]


class TestLosslessEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=2 ** 32 - 1),
           st.integers(min_value=1, max_value=9))
    def test_matches_scalar_observes(self, seed, count):
        config = AttackConfig(seed=seed)
        rng = derive_rng("observe-batch-plaintexts", seed)
        plaintexts = [rng.getrandbits(64) for _ in range(count)]
        batch_channel = _channel(config)
        assert batch_channel.batch_path_active
        batched = batch_channel.observe_batch(plaintexts, 1)
        scalar_channel = _channel(config)
        assert batched == [scalar_channel.observe(p, 1)
                           for p in plaintexts]
        assert batch_channel.encryptions_run \
            == scalar_channel.encryptions_run == count

    def test_matches_under_ambient_noise(self):
        # The noise stream is drawn per window in scalar order on the
        # batch path too, so even a noisy environment stays identical.
        config = AttackConfig(
            seed=7, noise=NoiseModel(touch_probability=0.5,
                                     monitored_touches=2),
        )
        plaintexts = _plaintexts(16)
        batched = _channel(config).observe_batch(plaintexts, 1)
        scalar_channel = _channel(config)
        assert batched == [scalar_channel.observe(p, 1)
                           for p in plaintexts]

    def test_deeper_attacked_round(self):
        config = AttackConfig(seed=3)
        plaintexts = _plaintexts(6)
        batched = _channel(config).observe_batch(plaintexts, 4)
        scalar_channel = _channel(config)
        assert batched == [scalar_channel.observe(p, 4)
                           for p in plaintexts]

    def test_empty_batch(self):
        channel = _channel(AttackConfig(seed=0))
        assert channel.observe_batch([], 1) == []
        assert channel.encryptions_run == 0

    def test_bad_round_rejected(self):
        with pytest.raises(ValueError):
            _channel(AttackConfig(seed=0)).observe_batch([0], 0)


class TestLossyDeterminism:
    @settings(max_examples=12, deadline=None)
    @given(st.integers(min_value=0, max_value=2 ** 16),
           st.lists(st.integers(min_value=1, max_value=6),
                    min_size=1, max_size=5))
    def test_any_batch_split_is_identical(self, seed, sizes):
        """Splitting one window sequence into arbitrary batch sizes
        consumes the dedicated loss stream identically."""
        config = AttackConfig(
            seed=seed,
            loss=LossyChannel(miss_probability=0.25, eviction_rate=0.1),
        )
        total = sum(sizes)
        plaintexts = _plaintexts(total, label="lossy-split")
        whole = _channel(config).observe_batch(plaintexts, 1)
        split_channel = _channel(config)
        assert split_channel.batch_path_active
        split = []
        cursor = 0
        for size in sizes:
            split.extend(split_channel.observe_batch(
                plaintexts[cursor:cursor + size], 1
            ))
            cursor += size
        assert split == whole

    def test_scalar_loss_stream_untouched_by_batch_calls(self):
        # A batch call must never consume the scalar "-loss" stream:
        # interleaving batch calls cannot change later scalar draws.
        config = AttackConfig(seed=5,
                              loss=LossyChannel(miss_probability=0.3))
        plaintexts = _plaintexts(8, label="loss-interleave")
        pure = _channel(config)
        expected = [pure.observe(p, 1) for p in plaintexts[:4]]
        mixed = _channel(config)
        mixed.observe_batch(plaintexts[4:], 1)
        assert [mixed.observe(p, 1) for p in plaintexts[:4]] == expected


class TestDropLinesBatchStream:
    @settings(max_examples=20)
    @given(st.integers(min_value=0, max_value=2 ** 16),
           st.integers(min_value=1, max_value=12),
           st.integers(min_value=0, max_value=11))
    def test_split_invariance_on_raw_windows(self, seed, count, cut):
        import numpy

        from repro.seeding import derive_seed

        cut = min(cut, count)
        loss = LossyChannel(miss_probability=0.3, eviction_rate=0.2)
        lines = list(range(4))
        rng = derive_rng("drop-batch-windows", seed)
        windows = [
            frozenset(line for line in lines if rng.random() < 0.7)
            for _ in range(count)
        ]

        def fresh():
            return numpy.random.default_rng(
                derive_seed("drop-batch-test", seed)
            )

        whole = loss.drop_lines_batch(windows, lines, fresh())
        generator = fresh()
        split = loss.drop_lines_batch(windows[:cut], lines, generator) \
            + loss.drop_lines_batch(windows[cut:], lines, generator)
        assert split == whole
        for original, degraded in zip(windows, whole):
            assert degraded <= original

    def test_draws_per_window_is_fixed(self):
        loss = LossyChannel(miss_probability=0.5)
        assert loss.batch_draws_per_window(4) == 6


class TestWindowBatch:
    def test_vectorized_matches_scalar_windows(self):
        config = AttackConfig(seed=0)
        plaintexts = _plaintexts(7, label="window-batch")
        channel = _channel(config)
        batch = channel.window_batch(plaintexts, 1, 4)
        assert batch.count == len(plaintexts)
        scalar_channel = _channel(config)
        for index, plaintext in enumerate(plaintexts):
            assert batch.observation(index) \
                == scalar_channel.window(plaintext, 1, 4)

    def test_fallback_matches_vectorized(self):
        config = AttackConfig(seed=0)
        plaintexts = _plaintexts(5, label="window-fallback")
        vectorized = _channel(config).window_batch(plaintexts, 2, 5)
        fallback_channel = _channel(config)
        fallback_channel._batch_view_resolved = True
        fallback_channel._batch_view = None
        fallback = fallback_channel.window_batch(plaintexts, 2, 5)
        assert fallback.count == vectorized.count
        assert fallback.accesses == vectorized.accesses
        for index in range(vectorized.count):
            assert fallback.observation(index) \
                == vectorized.observation(index)
        assert fallback.misses == vectorized.misses

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            _channel(AttackConfig(seed=0)).window_batch([0], 3, 2)
