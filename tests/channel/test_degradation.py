"""Tests for the L3 degradation decorators.

The observation/attack-level behaviour of noise, loss, and jitter is
covered by the observer and core suites; this file checks the analytic
claims the degradations make about themselves — in particular that
:meth:`ProbeJitter.target_visibility` agrees with brute-force
Monte-Carlo sampling of :meth:`ProbeJitter.sample`.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.degradation import LossyChannel, ProbeJitter

jitters = st.lists(
    st.tuples(st.integers(-6, 6), st.floats(0.05, 1.0)),
    min_size=1, max_size=5,
    unique_by=lambda pair: pair[0],
).map(lambda pairs: ProbeJitter(
    offsets=tuple(offset for offset, _ in pairs),
    weights=tuple(weight for _, weight in pairs),
))


class TestTargetVisibilityAnalytic:
    def test_still_jitter_always_sees_the_target(self):
        assert ProbeJitter().target_visibility(1) == 1.0
        assert ProbeJitter().target_visibility(3) == 1.0

    def test_deterministic_early_probe_blinds_round_one(self):
        # A probe landing one round early never covers the round-1
        # target (offset -1 < 1 - 1), but a round-2 aim still does.
        jitter = ProbeJitter(offsets=(-1,), weights=(1.0,))
        assert jitter.target_visibility(1) == 0.0
        assert jitter.target_visibility(2) == 1.0

    def test_exact_weighted_mixture(self):
        jitter = ProbeJitter(offsets=(-2, 0, 3), weights=(1.0, 2.0, 1.0))
        # probing_round=1 keeps offsets >= 0: weight 3 of 4.
        assert jitter.target_visibility(1) == pytest.approx(0.75)

    @settings(max_examples=25, deadline=None)
    @given(jitter=jitters, probing_round=st.integers(1, 4),
           seed=st.integers(0, 2**32 - 1))
    def test_matches_monte_carlo_sampling(self, jitter, probing_round,
                                          seed):
        # The analytic visibility is the probability that a sampled
        # offset keeps the target round covered: estimate it by
        # brute-force draws from the same distribution.
        rng = random.Random(seed)
        draws = 4_000
        covered = sum(
            1 for _ in range(draws)
            if jitter.sample(rng) >= 1 - probing_round
        )
        analytic = jitter.target_visibility(probing_round)
        assert covered / draws == pytest.approx(analytic, abs=0.03)

    @settings(max_examples=25, deadline=None)
    @given(jitter=jitters, probing_round=st.integers(1, 4))
    def test_visibility_is_a_probability_and_monotone(self, jitter,
                                                      probing_round):
        earlier = jitter.target_visibility(probing_round)
        later = jitter.target_visibility(probing_round + 1)
        assert 0.0 <= earlier <= 1.0
        # Aiming later can only keep more offsets on target.
        assert later >= earlier

    def test_expected_target_presence_composes_jitter(self):
        channel = LossyChannel(
            miss_probability=0.1, eviction_rate=0.5,
            jitter=ProbeJitter(offsets=(-2, 0), weights=(1.0, 1.0)),
        )
        presence = channel.expected_target_presence(
            monitored_lines=16, probing_round=1
        )
        assert presence == pytest.approx(
            0.5 * (1 - 0.5 / 16) * (1 - 0.1)
        )
