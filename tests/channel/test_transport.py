"""L2 tests: the same-core and cross-core cache transports."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.multilevel import TwoLevelHierarchy
from repro.channel import SharedL2Transport, SingleLevelTransport


class TestSingleLevel:
    def test_attacker_and_victim_share_state(self):
        transport = SingleLevelTransport(CacheGeometry())
        assert not transport.access(0)        # cold miss fills the line
        assert transport.victim_access(0)     # victim sees the fill
        assert transport.flush_line(0)        # flush reports presence
        assert not transport.victim_access(0)  # and actually removed it

    def test_cold_starts_empty(self):
        transport = SingleLevelTransport(CacheGeometry())
        transport.access(0)
        fresh = transport.cold()
        assert not fresh.access(0)
        assert transport.geometry is fresh.geometry

    def test_capabilities(self):
        transport = SingleLevelTransport(CacheGeometry())
        assert transport.supports_prime_probe
        assert transport.supports_fast_path
        assert not transport.noise_via_victim
        assert not transport.probe_on_empty_window

    def test_geometry_check(self):
        transport = SingleLevelTransport(CacheGeometry(line_words=1))
        transport.check_geometry(CacheGeometry(line_words=1))
        with pytest.raises(ValueError, match="line size"):
            transport.check_geometry(CacheGeometry(line_words=8))


class TestSharedL2:
    def test_victim_l1_residency_is_invisible(self):
        transport = SharedL2Transport()
        transport.victim_access(0)
        # The line is in the victim's L1 *and* the inclusive L2, so the
        # shared level does expose it...
        assert transport.access(0)
        # ...but flushing purges every level for both parties.
        transport.flush_line(0)
        assert not transport.access(0)

    def test_flush_reports_shared_presence(self):
        transport = SharedL2Transport()
        transport.victim_access(0)
        assert transport.flush_line(0)
        assert not transport.flush_line(0)

    def test_capabilities_forbid_prime_probe(self):
        transport = SharedL2Transport()
        assert not transport.supports_prime_probe
        assert not transport.supports_fast_path
        assert transport.noise_via_victim
        assert transport.probe_on_empty_window

    def test_needs_two_cores(self):
        with pytest.raises(ValueError, match="two cores"):
            SharedL2Transport(TwoLevelHierarchy(cores=1))

    def test_needs_distinct_cores(self):
        with pytest.raises(ValueError, match="distinct cores"):
            SharedL2Transport(victim_core=1, attacker_core=1)

    def test_cold_preserves_shape(self):
        transport = SharedL2Transport()
        transport.victim_access(0)
        fresh = transport.cold()
        assert not fresh.access(0)
        assert fresh.hierarchy.cores == transport.hierarchy.cores
        assert fresh.line_bytes == transport.line_bytes
