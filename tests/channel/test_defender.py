"""L4 defender tests: counter attribution, per-primitive signatures,
detection policy, and — the load-bearing invariant — transparency:
watching an attack must not change what the attacker sees or spends."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.multilevel import InclusionPolicy, TwoLevelHierarchy
from repro.channel import (
    CounterDelta,
    DefenderObserver,
    DetectionPolicy,
    ObservationChannel,
    ObservedTransport,
    SharedL2Transport,
    SingleLevelTransport,
    read_counters,
)
from repro.core.attack import GrinchAttack
from repro.core.config import AttackConfig
from repro.gift.lut import TracedGift64
from repro.seeding import derive_key


def _watched_channel(primitive, seed=9, defender=None, **overrides):
    victim = TracedGift64(derive_key(128, "defender-tests", seed))
    defender = defender if defender is not None else DefenderObserver()
    config = AttackConfig(probe_strategy=primitive, seed=seed, **overrides)
    return victim, defender, ObservationChannel(victim, config,
                                                defender=defender)


class TestCounterDelta:
    def test_arithmetic_is_fieldwise(self):
        a = CounterDelta(accesses=3, hits=2, misses=1, flushes=5)
        b = CounterDelta(accesses=1, hits=1, misses=0, flushes=2)
        assert (a + b).accesses == 4
        assert (a - b).flushes == 3

    def test_rates(self):
        delta = CounterDelta(accesses=4, hits=3, misses=1)
        assert delta.hit_rate == pytest.approx(0.75)
        assert delta.miss_rate == pytest.approx(0.25)
        assert CounterDelta().hit_rate == 0.0

    def test_pmc_visible_excludes_flushes(self):
        delta = CounterDelta(misses=2, evictions=3, back_invalidates=1,
                             flushes=100, flush_hits=100)
        assert delta.pmc_visible == 6


class TestReadCounters:
    def test_single_level_transport(self):
        transport = SingleLevelTransport(CacheGeometry())
        transport.access(0)
        transport.access(0)
        transport.flush_line(0)
        delta = read_counters(transport)
        assert delta.accesses == 2
        assert delta.hits == 1
        assert delta.misses == 1
        assert delta.flushes == 1
        assert delta.flush_hits == 1

    def test_hierarchy_transport_normalises_levels(self):
        hierarchy = TwoLevelHierarchy(inclusion=InclusionPolicy.INCLUSIVE)
        transport = SharedL2Transport(hierarchy)
        transport.victim_access(0)
        transport.access(0)
        delta = read_counters(transport)
        assert delta.accesses == 2
        assert delta.misses == 1  # one memory fetch
        assert delta.hits == 1    # the cross-core L2 hit

    def test_unwraps_observing_wrappers(self):
        transport = SingleLevelTransport(CacheGeometry())
        observed = DefenderObserver().watch(transport)
        observed.access(0)
        assert read_counters(observed) == read_counters(transport)

    def test_rejects_counterless_objects(self):
        with pytest.raises(TypeError):
            read_counters(object())


class TestAttributionAndWindows:
    def test_roles_split_attacker_from_victim(self):
        defender = DefenderObserver()
        transport = defender.watch(SingleLevelTransport(CacheGeometry()))
        defender.begin_window("unit")
        transport.victim_access(0)
        transport.access(64)
        transport.flush_line(64)
        window = defender.end_window()
        assert window.victim.accesses == 1
        assert window.attacker.accesses == 1
        assert window.attacker.flushes == 1
        assert window.total.accesses == 2

    def test_traffic_outside_windows_lands_in_ambient(self):
        defender = DefenderObserver()
        transport = defender.watch(SingleLevelTransport(CacheGeometry()))
        transport.victim_access(0)
        transport.access(64)
        assert defender.windows == []
        assert defender.ambient["victim"].accesses == 1
        assert defender.ambient["attacker"].accesses == 1

    def test_begin_window_closes_a_dangling_one(self):
        defender = DefenderObserver()
        defender.begin_window("first")
        defender.begin_window("second")
        defender.end_window()
        assert [w.primitive for w in defender.windows] == \
            ["first", "second"]

    def test_unknown_role_rejected(self):
        with pytest.raises(ValueError):
            DefenderObserver().record("bystander", CounterDelta())

    def test_observed_transport_forces_full_path(self):
        transport = SingleLevelTransport(CacheGeometry())
        observed = DefenderObserver().watch(transport)
        assert transport.supports_fast_path
        assert not observed.supports_fast_path
        assert observed.line_bytes == transport.line_bytes

    def test_cold_keeps_the_same_defender(self):
        defender = DefenderObserver()
        observed = defender.watch(SingleLevelTransport(CacheGeometry()))
        chilled = observed.cold()
        assert isinstance(chilled, ObservedTransport)
        assert chilled.defender is defender
        assert chilled.inner.policy_name == observed.inner.policy_name


class TestDetectionPolicy:
    def test_flush_only_window_is_clean_by_default(self):
        window_flags = DetectionPolicy().flags(
            _window(attacker=CounterDelta(flushes=48, flush_hits=20,
                                          flush_misses=28))
        )
        assert window_flags == ()

    def test_miss_storm_flagged(self):
        flags = DetectionPolicy().flags(
            _window(attacker=CounterDelta(accesses=16, misses=12))
        )
        assert "attacker-miss-storm" in flags

    def test_eviction_storm_counts_back_invalidates(self):
        flags = DetectionPolicy().flags(
            _window(attacker=CounterDelta(evictions=5,
                                          back_invalidates=5))
        )
        assert "eviction-storm" in flags

    def test_victim_baseline_not_attributed_to_attacker(self):
        # The victim's own traffic may churn all it likes: attribution
        # keeps the detectors quiet.
        flags = DetectionPolicy().flags(
            _window(victim=CounterDelta(accesses=64, misses=64,
                                        evictions=64))
        )
        assert flags == ()

    def test_flush_detector_opt_in(self):
        window = _window(attacker=CounterDelta(flushes=48))
        assert DetectionPolicy().flags(window) == ()
        assert "flush-storm" in \
            DetectionPolicy(max_flushes=16).flags(window)


def _window(attacker=CounterDelta(), victim=CounterDelta()):
    from repro.channel.defender import WindowCounters
    return WindowCounters(index=0, primitive="unit",
                          attacker=attacker, victim=victim)


class TestPrimitiveSignatures:
    """The per-primitive counter fingerprints E20 rests on."""

    def _report(self, primitive, **overrides):
        victim, defender, channel = _watched_channel(primitive,
                                                     **overrides)
        plaintext = 0x0123456789ABCDEF
        for _ in range(32):
            channel.observe(plaintext, 1)
            plaintext = (plaintext * 0x9E3779B97F4A7C15 + 1) % (1 << 64)
        return defender.report()

    def test_flush_reload_is_a_miss_storm(self):
        report = self._report("flush_reload")
        assert report.windows == 32
        assert report.attacker_misses_per_window > 4
        # Flush phase + per-line reset: two clflush per monitored line.
        assert report.flushes_per_window == 32
        assert report.detectability > 0
        assert "attacker-miss-storm" in report.flag_reasons

    def test_flush_flush_is_invisible_to_the_pmu(self):
        report = self._report("flush_flush")
        assert report.windows == 32
        # Flush-only windows: no attacker loads at all.
        assert report.attacker_accesses_per_window == 0
        assert report.attacker_misses_per_window == 0
        assert report.detectability == 0.0
        assert report.detection_rate == 0.0
        # ... but the flush split still records the residency signal.
        # Flush phase plus the flush-probe itself: three clflush per
        # monitored line and window.
        assert report.flushes_per_window == 48
        assert report.flush_resident_per_window > 0

    def test_prime_probe_lights_up_the_eviction_counters(self):
        report = self._report("prime_probe", stall_window=200)
        assert report.windows == 32
        assert report.evictions_per_window > 10
        assert report.flushes_per_window == 0  # no clflush at all
        assert report.detection_rate == 1.0
        assert "eviction-storm" in report.flag_reasons

    def test_stealth_ordering(self):
        flush_flush = self._report("flush_flush")
        flush_reload = self._report("flush_reload")
        prime_probe = self._report("prime_probe", stall_window=200)
        assert flush_flush.detectability < flush_reload.detectability
        assert flush_reload.detectability < prime_probe.detectability

    def test_report_round_trips_to_json_dict(self):
        report = self._report("flush_reload")
        data = report.as_dict()
        assert data["windows"] == 32
        assert data["primitives"] == ["flush_reload"]
        assert isinstance(data["flag_reasons"], dict)


class TestTransparency:
    """Watching must not perturb the attack: same observations, same
    RNG draws, same effort."""

    def test_seed0_recovery_is_bit_identical_under_observation(self):
        key = derive_key(128, 0)
        victim = TracedGift64(key)

        unwatched = GrinchAttack(victim, AttackConfig(seed=0)) \
            .recover_master_key()

        defender = DefenderObserver()
        config = AttackConfig(seed=0)
        watched = GrinchAttack(
            victim, config,
            runner=ObservationChannel(victim, config, defender=defender),
        ).recover_master_key()

        assert watched.master_key == key
        # The documented seed-0 pin: exactly 464 encryptions, watched
        # or not.
        assert unwatched.total_encryptions == 464
        assert watched.total_encryptions == 464
        assert defender.report().windows == 464

    def test_observations_identical_with_and_without_defender(self):
        victim = TracedGift64(derive_key(128, "defender-tests", 2))
        plain = ObservationChannel(victim, AttackConfig(seed=3))
        watched = ObservationChannel(victim, AttackConfig(seed=3),
                                     defender=DefenderObserver())
        for plaintext in (0, 1, 0xFEDCBA9876543210):
            assert plain.observe(plaintext, 1) == \
                watched.observe(plaintext, 1)
