"""Per-primitive seeded smoke tests: every L1 primitive drives the
full attack machinery end to end.

The fast tests recover the round-1 key bits (seconds each); the
``slow``-marked tests run full 128-bit recoveries through the
non-default primitives.
"""

import pytest

from repro.core.attack import GrinchAttack
from repro.core.config import AttackConfig
from repro.gift.keyschedule import round_keys
from repro.gift.lut import TracedGift64
from repro.seeding import derive_key


def _attack(seed, **overrides):
    planted = derive_key(128, seed)
    victim = TracedGift64(planted)
    config = AttackConfig(seed=seed, max_total_encryptions=None,
                          **overrides)
    return planted, GrinchAttack(victim, config)


class TestFirstRoundSmoke:
    def test_flush_reload(self):
        planted, attack = _attack(31)
        outcome = attack.attack_first_round()
        assert outcome.recovered_bits == 32
        assert outcome.outcome.estimate.as_round_key() == \
            round_keys(planted, 1, width=64)[0]

    def test_prime_probe(self):
        planted, attack = _attack(
            32, probe_strategy="prime_probe", stall_window=200
        )
        outcome = attack.attack_first_round()
        assert outcome.recovered_bits == 32
        assert outcome.outcome.estimate.as_round_key() == \
            round_keys(planted, 1, width=64)[0]

    def test_flush_flush_noiseless(self):
        """With a perfect readout, Flush+Flush is an exact reload-free
        Flush+Reload — same recovery, strict intersection."""
        planted, attack = _attack(
            33, probe_strategy="flush_flush",
            flush_flush_miss_probability=0.0,
        )
        assert not attack.config.voting_active
        outcome = attack.attack_first_round()
        assert outcome.recovered_bits == 32
        assert outcome.outcome.estimate.as_round_key() == \
            round_keys(planted, 1, width=64)[0]

    def test_flush_flush_noisy_votes(self):
        """The default noisy readout flips recovery to voting and still
        converges on the round-1 key."""
        planted, attack = _attack(
            34, probe_strategy="flush_flush",
            flush_flush_miss_probability=0.02,
            voting_min_observations=8,
        )
        assert attack.config.voting_active
        outcome = attack.attack_first_round()
        assert outcome.recovered_bits == 32
        assert outcome.outcome.estimate.as_round_key() == \
            round_keys(planted, 1, width=64)[0]


@pytest.mark.slow
class TestFullKeySmoke:
    def test_flush_flush_full_key(self):
        planted, attack = _attack(
            35, probe_strategy="flush_flush",
            flush_flush_miss_probability=0.02,
            voting_min_observations=8,
        )
        result = attack.recover_master_key()
        assert result.master_key == planted

    def test_prime_probe_full_key(self):
        planted, attack = _attack(
            36, probe_strategy="prime_probe", stall_window=200
        )
        result = attack.recover_master_key()
        assert result.master_key == planted

    def test_flush_flush_cross_core(self):
        """Flush+Flush is clflush-based, so it must also work through
        the cross-core shared-L2 transport."""
        from repro.cache.multilevel import InclusionPolicy
        from repro.core.crosscore import make_cross_core_runner

        planted = derive_key(128, 37)
        victim = TracedGift64(planted)
        config = AttackConfig(
            seed=37, probe_strategy="flush_flush",
            flush_flush_miss_probability=0.02,
            voting_min_observations=8,
            max_total_encryptions=None,
        )
        runner = make_cross_core_runner(victim, config,
                                        InclusionPolicy.INCLUSIVE)
        result = GrinchAttack(victim, config, runner=runner) \
            .recover_master_key()
        assert result.master_key == planted
