"""Deprecation-shim tests: the pre-refactor import surface must keep
working for one release cycle, warning loudly."""

import importlib
import sys
import warnings

import pytest

SHIMS = {
    "repro.core.probe": ("make_probe", "ProbeStrategy", "FlushReload",
                         "PrimeProbe", "FlushFlush"),
    "repro.core.noise": ("NoiseModel", "LossyChannel", "ProbeJitter",
                         "LOSSLESS", "NO_NOISE", "NO_JITTER"),
    "repro.core.monitor": ("SboxMonitor",),
    "repro.core.runner": ("CacheAttackRunner",),
    "repro.variants.observations": ("WindowObservation", "observe_window",
                                    "hit_miss_trace", "encryption_latency"),
}


@pytest.mark.parametrize("module_name", sorted(SHIMS))
def test_shim_imports_and_warns(module_name):
    """A fresh import of each legacy module emits DeprecationWarning and
    still exposes its historic names."""
    sys.modules.pop(module_name, None)
    with pytest.warns(DeprecationWarning, match="deprecated"):
        module = importlib.import_module(module_name)
    for name in SHIMS[module_name]:
        assert hasattr(module, name), f"{module_name}.{name} missing"


def test_legacy_names_are_the_new_objects():
    """The shims re-export, not re-implement: identity must hold so
    isinstance checks across old and new import paths agree."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        from repro.channel import (
            ObservationChannel,
            SboxMonitor as NewMonitor,
            make_primitive,
        )
        from repro.core.monitor import SboxMonitor as OldMonitor
        from repro.core.probe import make_probe
        from repro.core.runner import CacheAttackRunner
    assert OldMonitor is NewMonitor
    assert make_probe is make_primitive
    assert CacheAttackRunner is ObservationChannel


def test_make_probe_builds_working_primitives(victim):
    """The acceptance-criterion shim path: ``from repro.core.probe
    import make_probe`` must still build usable primitives."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        from repro.core.probe import make_probe
    from repro.cache.geometry import CacheGeometry
    from repro.cache.setassoc import SetAssociativeCache
    from repro.channel import SboxMonitor

    monitor = SboxMonitor.build(victim.layout, CacheGeometry())
    probe = make_probe("flush_reload", monitor)
    cache = SetAssociativeCache(CacheGeometry())
    probe.reset(cache)
    assert probe.observe(cache) == frozenset()


def test_normal_import_path_is_warning_free():
    """Importing the package, the attack, and the channel must not
    touch any shim: users on the new API never see the warnings."""
    shimmed = set(SHIMS)
    for name in sorted(shimmed):
        sys.modules.pop(name, None)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        importlib.import_module("repro")
        importlib.import_module("repro.channel")
        importlib.import_module("repro.core.attack")
        importlib.import_module("repro.variants")
        importlib.import_module("repro.engine")
