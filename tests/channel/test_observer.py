"""L4 tests: ObservationChannel composition, path equivalence, and the
seed-0 effort invariant the refactor promised to preserve."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry
from repro.channel import (
    LOSSLESS,
    FlushReload,
    LossyChannel,
    ObservationChannel,
    ProbeJitter,
    SboxMonitor,
    SharedL2Transport,
    SingleLevelTransport,
)
from repro.core.attack import GrinchAttack
from repro.core.config import AttackConfig
from repro.gift.lut import TracedGift64
from repro.seeding import derive_key

plaintexts = st.integers(min_value=0, max_value=(1 << 64) - 1)


def _pair(victim, primitive, **overrides):
    """A (fast, full) channel pair with identical RNG streams."""
    fast = ObservationChannel(victim, AttackConfig(
        probe_strategy=primitive, use_fast_path=True, seed=5, **overrides
    ))
    full = ObservationChannel(victim, AttackConfig(
        probe_strategy=primitive, use_fast_path=False, seed=5, **overrides
    ))
    return fast, full


class TestPathEquivalence:
    """Fast analytic path == full simulation, for every primitive."""

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(plaintexts, st.integers(min_value=1, max_value=4))
    def test_flush_reload_paths_agree(self, plaintext, attacked_round):
        victim = TracedGift64(derive_key(128, 21))
        fast, full = _pair(victim, "flush_reload")
        assert fast.fast_path_active and not full.fast_path_active
        assert fast.observe(plaintext, attacked_round) == \
            full.observe(plaintext, attacked_round)

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(plaintexts, st.integers(min_value=1, max_value=4))
    def test_flush_flush_paths_agree(self, plaintext, attacked_round):
        """Holds even with a noisy readout: filter_observation applies
        to both paths, and identical pre-filter sets consume identical
        draws from the primitive stream."""
        victim = TracedGift64(derive_key(128, 22))
        fast, full = _pair(victim, "flush_flush",
                           flush_flush_miss_probability=0.1)
        assert fast.fast_path_active and not full.fast_path_active
        assert fast.observe(plaintext, attacked_round) == \
            full.observe(plaintext, attacked_round)

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(plaintexts)
    def test_prime_probe_ignores_fast_path_flag(self, plaintext):
        """Prime+Probe can never take the analytic path; asking for it
        must be a safe no-op, not a silent wrong answer."""
        victim = TracedGift64(derive_key(128, 23))
        fast, full = _pair(victim, "prime_probe", stall_window=200)
        assert not fast.fast_path_active and not full.fast_path_active
        assert fast.observe(plaintext, 1) == full.observe(plaintext, 1)

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(plaintexts)
    def test_lossy_decorated_channel_at_zero_loss_agrees(self, plaintext):
        """A LossyChannel decorator with miss_probability=0 must be an
        exact no-op on both paths (the degradation draws nothing)."""
        victim = TracedGift64(derive_key(128, 24))
        fast, full = _pair(victim, "flush_reload",
                           loss=LossyChannel(miss_probability=0.0))
        plain_fast, _ = _pair(victim, "flush_reload")
        assert fast.is_lossless
        assert fast.observe(plaintext, 1) == full.observe(plaintext, 1)
        assert fast.observe(plaintext, 1) == plain_fast.observe(plaintext, 1)


class TestComposition:
    def test_default_stack(self, victim):
        channel = ObservationChannel(victim, AttackConfig(seed=1))
        assert isinstance(channel.transport, SingleLevelTransport)
        assert isinstance(channel.primitive, FlushReload)
        assert channel.degradations == (LOSSLESS,)
        assert channel.is_lossless
        assert channel.signal_reliability == 1.0
        assert channel.mid_flush_supported

    def test_explicit_layers_compose(self, victim):
        config = AttackConfig(seed=2)
        monitor = SboxMonitor.build(victim.layout, config.geometry)
        channel = ObservationChannel(
            victim, config,
            transport=SingleLevelTransport(config.geometry),
            primitive=FlushReload(monitor),
            degradations=(LossyChannel(miss_probability=0.2),
                          ProbeJitter(offsets=(0, 1),
                                      weights=(0.5, 0.5))),
        )
        assert not channel.is_lossless
        observed = channel.observe(0x0123456789ABCDEF, 1)
        assert observed <= channel.monitor.universe

    def test_prime_probe_rejected_on_cross_core_transport(self, victim):
        config = AttackConfig(probe_strategy="prime_probe", seed=3)
        with pytest.raises(ValueError, match="same-cache contention"):
            ObservationChannel(victim, config,
                               transport=SharedL2Transport())

    def test_mismatched_transport_geometry_rejected(self, victim):
        config = AttackConfig(
            geometry=CacheGeometry(line_words=8), seed=3
        )
        with pytest.raises(ValueError, match="line size"):
            ObservationChannel(victim, config,
                               transport=SharedL2Transport())

    def test_stacked_degradations_apply_in_order(self, victim):
        """Two lossy decorators drop more than either alone (statistically,
        at p high enough to be certain over the run)."""
        config = AttackConfig(seed=4)
        heavy = ObservationChannel(
            victim, config,
            degradations=(LossyChannel(miss_probability=0.9),
                          LossyChannel(miss_probability=0.9)),
        )
        light = ObservationChannel(victim, AttackConfig(seed=4))
        rng = random.Random(0)
        heavy_total = light_total = 0
        for _ in range(10):
            plaintext = rng.getrandbits(64)
            heavy_total += len(heavy.observe(plaintext, 1))
            light_total += len(light.observe(plaintext, 1))
        assert heavy_total < light_total

    def test_observe_encryption_alias(self, victim):
        a = ObservationChannel(victim, AttackConfig(seed=6))
        b = ObservationChannel(victim, AttackConfig(seed=6))
        assert a.observe(0x42, 1) == b.observe_encryption(0x42, 1)


class TestEffortInvariant:
    def test_seed0_full_key_takes_exactly_464_encryptions(self):
        """The refactor's bit-identical-RNG contract, pinned: the
        seed-0 GIFT-64 Flush+Reload full-key recovery costs exactly the
        same 464 encryptions it did before the channel stack existed."""
        victim = TracedGift64(derive_key(128, 0))
        result = GrinchAttack(victim, AttackConfig(seed=0)) \
            .recover_master_key()
        assert result.master_key == derive_key(128, 0)
        assert result.total_encryptions == 464
