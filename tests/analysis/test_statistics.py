"""Tests for the statistics helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.statistics import (
    Summary,
    geometric_mean,
    mean,
    mean_confidence_interval,
    median,
    sample_stdev,
)

floats = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=1, max_size=50,
)


class TestBasics:
    def test_mean(self):
        assert mean([1, 2, 3, 4]) == 2.5

    def test_median_odd_even(self):
        assert median([5, 1, 3]) == 3
        assert median([4, 1, 3, 2]) == 2.5

    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)

    def test_sample_stdev_known_value(self):
        assert sample_stdev([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(
            math.sqrt(32 / 7)
        )

    def test_stdev_of_singleton_is_zero(self):
        assert sample_stdev([3]) == 0.0

    def test_empty_inputs_raise(self):
        for fn in (mean, median, geometric_mean):
            with pytest.raises(ValueError):
                fn([])

    def test_geometric_mean_requires_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1, 0])


class TestProperties:
    @given(floats)
    def test_mean_between_min_and_max(self, values):
        assert min(values) <= mean(values) <= max(values)

    @given(floats)
    def test_median_between_min_and_max(self, values):
        assert min(values) <= median(values) <= max(values)

    @given(floats)
    def test_ci_contains_mean(self, values):
        low, high = mean_confidence_interval(values)
        assert low <= mean(values) <= high


class TestSummary:
    def test_of_sequence(self):
        summary = Summary.of([1.0, 2.0, 3.0])
        assert summary.count == 3
        assert summary.mean == 2.0
        assert summary.median == 2.0
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Summary.of([])
