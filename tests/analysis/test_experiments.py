"""Tests for the experiment runners (the table/figure regenerators)."""

import pytest

from repro.analysis.experiments import (
    run_figure3,
    run_full_key,
    run_noise_sweep,
    run_probe_strategy_ablation,
    run_table1,
    run_table2,
    validate_theory,
)
from repro.core.config import AttackConfig


class TestFigure3:
    def test_shape_matches_paper(self):
        """Effort grows with the probing round and no-flush always costs
        more — Fig. 3's two qualitative claims."""
        result = run_figure3(probing_rounds=(1, 2, 3), runs=1,
                             max_simulated_effort=2_000)
        for use_flush in (True, False):
            series = result.series(use_flush)
            efforts = [p.encryptions for p in series]
            assert efforts == sorted(efforts)
        for flush_point, no_flush_point in zip(result.series(True),
                                               result.series(False)):
            assert no_flush_point.encryptions > flush_point.encryptions

    def test_round_one_with_flush_near_paper_value(self):
        """Paper: ~100 encryptions to break the first round when probing
        round 1 (32 key bits)."""
        result = run_figure3(probing_rounds=(1,), runs=3)
        point = result.series(True)[0]
        assert point.simulated
        assert 60 <= point.encryptions <= 300

    def test_analytic_fallback_beyond_budget(self):
        result = run_figure3(probing_rounds=(1, 6), runs=1,
                             max_simulated_effort=500)
        assert not result.series(True)[1].simulated

    def test_validation(self):
        with pytest.raises(ValueError):
            run_figure3(runs=0)


class TestTable1:
    def test_dropout_triangle_matches_paper(self):
        """The >1M cells appear in the same lower-right triangle as the
        paper's Table I."""
        result = run_table1(runs=1, max_simulated_effort=2_000)
        assert not result.cell(1, 1).dropped_out
        assert not result.cell(2, 4).dropped_out
        assert result.cell(2, 5).dropped_out
        assert result.cell(4, 3).dropped_out
        assert result.cell(8, 2).dropped_out

    def test_effort_grows_along_both_axes(self):
        result = run_table1(line_sizes=(1, 2), probing_rounds=(1, 2),
                            runs=1, max_simulated_effort=2_000)

        def value(lw, r):
            return result.cell(lw, r).encryptions

        assert value(1, 2) > value(1, 1)
        assert value(2, 1) > value(1, 1)

    def test_rows_render_like_the_paper(self):
        result = run_table1(line_sizes=(1, 8), probing_rounds=(1, 2),
                            runs=1, max_simulated_effort=500)
        rows = result.rows()
        assert rows[0][0] == "1 Word"
        assert rows[1][0] == "8 Words"
        assert rows[1][2] == ">1M"

    def test_missing_cell_lookup(self):
        result = run_table1(line_sizes=(1,), probing_rounds=(1,),
                            runs=1, max_simulated_effort=500)
        with pytest.raises(KeyError):
            result.cell(2, 1)


class TestTable2:
    def test_reproduces_paper_table2_exactly(self):
        result = run_table2()
        assert result.probed_round("single-core SoC", 10e6) == 2
        assert result.probed_round("single-core SoC", 25e6) == 4
        assert result.probed_round("single-core SoC", 50e6) == 8
        for frequency in (10e6, 25e6, 50e6):
            assert result.probed_round("MPSoC", frequency) == 1

    def test_rows_layout(self):
        rows = run_table2().rows()
        assert rows[0] == ["single-core SoC", "2", "4", "8"]
        assert rows[1] == ["MPSoC", "1", "1", "1"]


class TestFullKey:
    def test_headline_effort(self):
        """Full 128-bit recovery in the few-hundred-encryption regime."""
        summary = run_full_key(runs=2, seed=4)
        assert summary.all_recovered
        assert summary.encryptions.mean < 1_000

    def test_validation(self):
        with pytest.raises(ValueError):
            run_full_key(runs=0)

    def test_respects_custom_config(self):
        summary = run_full_key(
            runs=1, seed=4,
            config=AttackConfig(probing_round=2, max_total_encryptions=None),
        )
        assert summary.all_recovered


class TestAblations:
    def test_flush_reload_beats_prime_probe(self):
        rows = run_probe_strategy_ablation(seed=2, runs=1)
        by_name = {row.strategy: row for row in rows}
        assert by_name["flush_reload"].recovered
        assert by_name["prime_probe"].recovered
        assert by_name["prime_probe"].encryptions > \
            by_name["flush_reload"].encryptions

    def test_theory_tracks_simulation(self):
        rows = validate_theory(cases=((1, 1), (1, 2)), runs=3)
        for row in rows:
            assert row.relative_error < 0.6

    def test_noise_sweep_recovers_under_all_levels(self):
        rows = run_noise_sweep(levels=((0.0, 0), (0.8, 4)), runs=1)
        assert all(row.recovered for row in rows)
        assert rows[1].encryptions >= rows[0].encryptions
