"""Tests for the ASCII reporting helpers."""

import pytest

from repro.analysis.experiments import (
    Figure3Point,
    Figure3Result,
    Table1Cell,
    Table1Result,
    run_table2,
)
from repro.analysis.reporting import (
    format_count,
    format_table,
    render_figure3,
    render_series,
    render_table1,
    render_table2,
)


class TestFormatTable:
    def test_columns_align(self):
        text = format_table("T", ["a", "bee"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert lines[0] == "T"
        header, divider, *rows = lines[2:]
        assert header.index("|") == rows[0].index("|")

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table("T", ["a"], [["1", "2"]])


class TestFormatCount:
    def test_thousands_separator(self):
        assert format_count(12345) == "12,345"

    def test_dropout_threshold(self):
        assert format_count(2_000_000) == ">1M"


class TestRenderers:
    def _figure(self):
        return Figure3Result(points=[
            Figure3Point(1, True, 100.0, True),
            Figure3Point(1, False, 300.0, True),
            Figure3Point(2, True, 500.0, False),
        ])

    def test_render_figure3_mentions_series(self):
        text = render_figure3(self._figure())
        assert "flush" in text
        assert "no-flush" in text
        assert "analytic" in text
        assert "100" in text

    def test_render_table1(self):
        result = Table1Result(cells=[
            Table1Cell(1, 1, 96.0, False, True),
            Table1Cell(1, 2, None, True, False),
        ])
        text = render_table1(result)
        assert "1 Word" in text
        assert ">1M" in text
        assert "96" in text

    def test_render_table2(self):
        text = render_table2(run_table2())
        assert "single-core SoC" in text
        assert "MPSoC" in text
        assert "50 MHz" in text

    def test_render_series(self):
        text = render_series("title", ["a", "bb"], [1.0, 2_000_000.0])
        assert "title" in text
        assert ">1M" in text

    def test_render_series_validates(self):
        with pytest.raises(ValueError):
            render_series("t", ["a"], [1.0, 2.0])
