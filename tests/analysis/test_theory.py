"""Tests for the analytic effort model."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.theory import (
    absence_probability,
    expected_encryptions_per_segment,
    expected_first_round_effort,
    expected_max_geometric,
    flush_advantage,
    growth_factor_per_round,
    log_effort_slope,
    monitored_lines,
    practical_probing_round_limit,
    visible_noise_accesses,
)


class TestMonitoredLines:
    @pytest.mark.parametrize("line_words,expected",
                             [(1, 16), (2, 8), (4, 4), (8, 2), (16, 1)])
    def test_line_counts(self, line_words, expected):
        assert monitored_lines(line_words) == expected

    def test_validation(self):
        with pytest.raises(ValueError):
            monitored_lines(0)


class TestVisibleWindow:
    def test_flush_window(self):
        assert visible_noise_accesses(1, use_flush=True) == 15
        assert visible_noise_accesses(3, use_flush=True) == 47

    def test_no_flush_adds_earlier_rounds(self):
        assert visible_noise_accesses(1, use_flush=False) == 31
        assert visible_noise_accesses(1, attacked_round=2,
                                      use_flush=False) == 47

    def test_validation(self):
        with pytest.raises(ValueError):
            visible_noise_accesses(0)


class TestAbsenceProbability:
    def test_known_value(self):
        assert absence_probability(16, 15) == pytest.approx((15 / 16) ** 15)

    def test_single_line_never_absent(self):
        assert absence_probability(1, 100) == 0.0

    @given(st.integers(2, 16), st.integers(0, 200))
    def test_in_unit_interval(self, lines, accesses):
        p = absence_probability(lines, accesses)
        assert 0.0 < p <= 1.0


class TestExpectedMaxGeometric:
    def test_single_variable_is_plain_geometric(self):
        assert expected_max_geometric(1, 0.5) == pytest.approx(2.0)

    def test_zero_count(self):
        assert expected_max_geometric(0, 0.5) == 0.0

    def test_zero_probability_diverges(self):
        assert expected_max_geometric(3, 0.0) == float("inf")

    def test_matches_monte_carlo(self):
        """Closed form vs. direct simulation of the max of geometrics."""
        rng = random.Random(5)
        count, p = 5, 0.3
        trials = 4000
        total = 0
        for _ in range(trials):
            worst = 0
            for _ in range(count):
                draws = 1
                while rng.random() >= p:
                    draws += 1
                worst = max(worst, draws)
            total += worst
        simulated = total / trials
        predicted = expected_max_geometric(count, p)
        assert simulated == pytest.approx(predicted, rel=0.05)

    def test_stable_for_tiny_probabilities(self):
        value = expected_max_geometric(1, 1e-24)
        assert value == pytest.approx(1e24, rel=1e-6)


class TestEffortModel:
    def test_round1_effort_matches_paper_magnitude(self):
        """Paper Fig. 3 / Table I: ~100 encryptions at probing round 1
        with 1-word lines."""
        effort = expected_first_round_effort(1, 1, use_flush=True)
        assert 60 <= effort <= 200

    def test_monotone_in_probing_round(self):
        efforts = [
            expected_first_round_effort(1, r) for r in range(1, 8)
        ]
        assert efforts == sorted(efforts)

    def test_monotone_in_line_size(self):
        efforts = [
            expected_first_round_effort(lw, 2) for lw in (1, 2, 4, 8)
        ]
        assert efforts == sorted(efforts)

    def test_growth_factor_matches_consecutive_ratio(self):
        predicted = growth_factor_per_round(1)
        ratio = (expected_first_round_effort(1, 7)
                 / expected_first_round_effort(1, 6))
        assert ratio == pytest.approx(predicted, rel=0.05)

    def test_flush_advantage_about_the_dirty_round(self):
        """Removing 16 dirty accesses should cost about
        (16/15)^16 ~ 2.8x with 1-word lines."""
        advantage = flush_advantage(3)
        assert 2.0 <= advantage <= 3.5

    def test_log_slope_positive(self):
        assert log_effort_slope(1) > 0

    def test_per_segment_effort_composes(self):
        assert expected_first_round_effort(1, 1) == pytest.approx(
            16 * expected_encryptions_per_segment(1, 1)
        )


class TestDropoutRule:
    def test_one_word_lines_practical_through_round_8ish(self):
        limit = practical_probing_round_limit(1)
        assert 7 <= limit <= 10

    def test_eight_word_lines_only_round_one(self):
        limit = practical_probing_round_limit(8)
        assert limit == 1

    def test_matches_table1_dropout_pattern(self):
        """The >1M cells of Table I: line size 2 drops out at round 5,
        line 4 at round 3, line 8 at round 2."""
        assert practical_probing_round_limit(2) == 4
        assert practical_probing_round_limit(4) == 2
        assert practical_probing_round_limit(8) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            practical_probing_round_limit(1, budget=0)
