"""Shared fixtures for the GRINCH reproduction test suite."""

from __future__ import annotations

import random

import pytest

from repro.cache import CacheGeometry
from repro.core import AttackConfig
from repro.gift import TracedGift64


@pytest.fixture
def rng():
    """A deterministic RNG for tests that draw random keys/blocks."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def random_key(rng):
    """One random 128-bit master key."""
    return rng.getrandbits(128)


@pytest.fixture
def victim(random_key):
    """A traced GIFT-64 victim with a random key."""
    return TracedGift64(random_key)


@pytest.fixture
def default_config():
    """The paper-default attack configuration with a fixed seed."""
    return AttackConfig(seed=1234)


@pytest.fixture
def wide_line_geometry():
    """A 2-word-line geometry (first Table I sweep step)."""
    return CacheGeometry(line_words=2)
