"""Smoke tests of the package's public API surface."""

import repro


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_flow(self):
        """The README / module docstring quickstart must work verbatim."""
        victim = repro.TracedGift64(
            master_key=0x0123456789ABCDEF0123456789ABCDEF
        )
        result = repro.GrinchAttack(
            victim, repro.AttackConfig(seed=1)
        ).recover_master_key()
        assert result.master_key == victim.master_key

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.cache
        import repro.core
        import repro.countermeasures
        import repro.gift
        import repro.present
        import repro.soc
        import repro.trace

        for module in (repro.analysis, repro.cache, repro.core,
                       repro.countermeasures, repro.gift, repro.present,
                       repro.soc, repro.trace):
            assert module.__doc__

    def test_trace_exports_resolve(self):
        import repro.trace

        for name in repro.trace.__all__:
            assert getattr(repro.trace, name) is not None

    def test_convenience_wrapper(self):
        result = repro.recover_full_key(
            repro.TracedGift64(42), repro.AttackConfig(seed=2)
        )
        assert result.master_key == 42
