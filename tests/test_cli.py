"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def _redirect_results(tmp_path, monkeypatch):
    """Keep engine artifacts/cache out of the repository during tests."""
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))


class TestAttackCommand:
    def test_recovers_and_exits_zero(self, capsys):
        assert main(["attack", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "MATCH" in out
        assert "victim encryptions" in out

    def test_explicit_key(self, capsys):
        key = "0123456789abcdef0123456789abcdef"
        assert main(["attack", "--key", key, "--seed", "1"]) == 0
        assert key in capsys.readouterr().out

    def test_gift128(self, capsys):
        assert main(["attack", "--width", "128", "--seed", "2"]) == 0
        assert "GIFT-128" in capsys.readouterr().out

    def test_wide_lines(self, capsys):
        assert main(["attack", "--line-words", "2", "--seed", "3"]) == 0

    def test_rejects_bad_width(self):
        with pytest.raises(SystemExit):
            main(["attack", "--width", "96"])


class TestExperimentCommands:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "single-core SoC" in out
        assert "MPSoC" in out

    def test_theory(self, capsys):
        assert main(["theory", "--line-words", "4"]) == 0
        out = capsys.readouterr().out
        assert "drop-out" in out
        assert "practical limit" in out

    def test_figure3_quick(self, capsys):
        assert main(["figure3", "--runs", "1"]) == 0
        assert "no-flush" in capsys.readouterr().out

    def test_table1_quick(self, capsys):
        assert main(["table1", "--runs", "1"]) == 0
        assert ">1M" in capsys.readouterr().out

    def test_countermeasures(self, capsys):
        assert main(["countermeasures"]) == 0
        out = capsys.readouterr().out
        assert "defeated" in out
        assert "channel closed" in out

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestRunCommand:
    def test_list_names_every_design_id(self, capsys):
        assert main(["run", "--list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in [f"E{i}" for i in range(1, 14)]:
            assert experiment_id in out
        assert "figure3" in out
        assert "--set" in out

    def test_no_experiment_prints_the_listing(self, capsys):
        assert main(["run"]) == 0
        assert "figure3" in capsys.readouterr().out

    def test_json_record_is_schema_valid(self, capsys):
        from repro.engine import validate_record

        assert main(["run", "table2", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        validate_record(record)
        assert record["experiment"] == "table2"

    def test_second_run_is_a_cache_hit(self, capsys):
        assert main(["run", "table2", "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["telemetry"]["cache"] == "miss"
        assert main(["run", "table2", "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["telemetry"]["cache"] == "hit"
        assert second["cells"] == first["cells"]

    def test_no_cache_disables_the_cache(self, capsys):
        assert main(["run", "table2", "--json", "--no-cache"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["telemetry"]["cache"] == "disabled"

    def test_resolves_design_ids(self, capsys):
        assert main(["run", "E3", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["experiment"] == "table2"

    def test_writes_the_json_artifact(self, tmp_path, capsys):
        assert main(["run", "table2", "--json"]) == 0
        assert (tmp_path / "table2.json").exists()

    def test_set_overrides_a_parameter(self, capsys):
        assert main(["run", "table2", "--json",
                     "--set", "frequencies_mhz=25"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["params"]["frequencies_mhz"] == [25]

    def test_seed_flag_overrides_the_seed_param(self, capsys):
        assert main(["run", "figure3", "--json", "--seed", "9",
                     "--set", "probing_rounds=1", "--set", "runs=1"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["params"]["seed"] == 9

    def test_seed_flag_rejected_without_seed_param(self):
        with pytest.raises(SystemExit):
            main(["run", "table2", "--seed", "9"])

    def test_unknown_experiment_fails(self):
        with pytest.raises(SystemExit):
            main(["run", "figure99"])

    def test_unknown_parameter_fails(self):
        with pytest.raises(SystemExit):
            main(["run", "table2", "--set", "bogus=1"])

    def test_malformed_assignment_fails(self):
        with pytest.raises(SystemExit):
            main(["run", "table2", "--set", "frequencies_mhz"])
