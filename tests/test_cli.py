"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestAttackCommand:
    def test_recovers_and_exits_zero(self, capsys):
        assert main(["attack", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "MATCH" in out
        assert "victim encryptions" in out

    def test_explicit_key(self, capsys):
        key = "0123456789abcdef0123456789abcdef"
        assert main(["attack", "--key", key, "--seed", "1"]) == 0
        assert key in capsys.readouterr().out

    def test_gift128(self, capsys):
        assert main(["attack", "--width", "128", "--seed", "2"]) == 0
        assert "GIFT-128" in capsys.readouterr().out

    def test_wide_lines(self, capsys):
        assert main(["attack", "--line-words", "2", "--seed", "3"]) == 0

    def test_rejects_bad_width(self):
        with pytest.raises(SystemExit):
            main(["attack", "--width", "96"])


class TestExperimentCommands:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "single-core SoC" in out
        assert "MPSoC" in out

    def test_theory(self, capsys):
        assert main(["theory", "--line-words", "4"]) == 0
        out = capsys.readouterr().out
        assert "drop-out" in out
        assert "practical limit" in out

    def test_figure3_quick(self, capsys):
        assert main(["figure3", "--runs", "1"]) == 0
        assert "no-flush" in capsys.readouterr().out

    def test_table1_quick(self, capsys):
        assert main(["table1", "--runs", "1"]) == 0
        assert ">1M" in capsys.readouterr().out

    def test_countermeasures(self, capsys):
        assert main(["countermeasures"]) == 0
        out = capsys.readouterr().out
        assert "defeated" in out
        assert "channel closed" in out

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            main([])
