"""Tests for the two-level (private L1 + shared L2) hierarchy."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry
from repro.cache.multilevel import (
    InclusionPolicy,
    MemoryLevel,
    TwoLevelHierarchy,
)


def _inclusive():
    return TwoLevelHierarchy(inclusion=InclusionPolicy.INCLUSIVE)


def _exclusive():
    return TwoLevelHierarchy(inclusion=InclusionPolicy.EXCLUSIVE)


class TestBasicFlow:
    def test_miss_then_l1_hit(self):
        hierarchy = _inclusive()
        assert hierarchy.access(0, 0x100) is MemoryLevel.MEMORY
        assert hierarchy.access(0, 0x100) is MemoryLevel.L1

    def test_cross_core_sharing_through_l2_inclusive(self):
        hierarchy = _inclusive()
        hierarchy.access(0, 0x100)
        # Other core misses its own L1 but hits the shared L2.
        assert hierarchy.access(1, 0x100) is MemoryLevel.L2

    def test_exclusive_l2_does_not_hold_fresh_fills(self):
        hierarchy = _exclusive()
        hierarchy.access(0, 0x100)
        assert not hierarchy.is_resident_l2(0x100)
        # The other core must go to memory.
        assert hierarchy.access(1, 0x100) is MemoryLevel.MEMORY

    def test_exclusive_l2_receives_l1_victims(self):
        geometry = CacheGeometry(total_lines=4, ways=2)
        hierarchy = TwoLevelHierarchy(
            l1_geometry=geometry,
            l2_geometry=CacheGeometry(total_lines=64, ways=8),
            inclusion=InclusionPolicy.EXCLUSIVE,
        )
        sets = geometry.num_sets
        # Fill set 0's two ways, then overflow it.
        for tag in range(3):
            hierarchy.access(0, tag * sets * geometry.line_bytes)
        # Tag 0 was evicted from L1 and must now live in L2.
        assert hierarchy.is_resident_l2(0)
        assert hierarchy.access(0, 0) is MemoryLevel.L2

    def test_stats_accumulate(self):
        hierarchy = _inclusive()
        hierarchy.access(0, 0)
        hierarchy.access(0, 0)
        hierarchy.access(1, 0)
        assert hierarchy.stats.memory_fetches == 1
        assert hierarchy.stats.l1_hits == 1
        assert hierarchy.stats.l2_hits == 1


class TestFlush:
    def test_clflush_purges_every_level_and_core(self):
        hierarchy = _inclusive()
        hierarchy.access(0, 0x40)
        hierarchy.access(1, 0x40)
        hierarchy.flush_line(0x40)
        assert not hierarchy.is_resident_l2(0x40)
        assert not hierarchy.is_resident_l1(0, 0x40)
        assert not hierarchy.is_resident_l1(1, 0x40)
        assert hierarchy.access(0, 0x40) is MemoryLevel.MEMORY


class TestCounterAccounting:
    def test_flush_split_resident_vs_absent(self):
        hierarchy = _inclusive()
        hierarchy.access(0, 0x40)
        hierarchy.flush_line(0x40)   # resident somewhere
        hierarchy.flush_line(0x40)   # now gone
        hierarchy.flush_line(0x800)  # never seen
        assert hierarchy.stats.flushes == 3
        assert hierarchy.stats.flush_hits == 1
        assert hierarchy.stats.flush_misses == 2

    def test_evictions_and_back_invalidates_counted(self):
        hierarchy = TwoLevelHierarchy(
            l1_geometry=CacheGeometry(total_lines=64, ways=4),
            l2_geometry=CacheGeometry(total_lines=2, ways=2),
            inclusion=InclusionPolicy.INCLUSIVE,
        )
        hierarchy.access(0, 0)
        hierarchy.access(0, 2)
        assert hierarchy.stats.evictions == 0
        hierarchy.access(0, 4)  # L2 set overflows, line 0 back-invalidated
        assert hierarchy.stats.evictions == 1
        assert hierarchy.stats.back_invalidates == 1

    def test_exclusive_spill_evictions_counted(self):
        geometry = CacheGeometry(total_lines=4, ways=2)
        hierarchy = TwoLevelHierarchy(
            l1_geometry=geometry,
            l2_geometry=CacheGeometry(total_lines=64, ways=8),
            inclusion=InclusionPolicy.EXCLUSIVE,
        )
        sets = geometry.num_sets
        for tag in range(3):
            hierarchy.access(0, tag * sets * geometry.line_bytes)
        # The L1 overflow that spilled tag 0 into L2 is an eviction.
        assert hierarchy.stats.evictions == 1
        assert hierarchy.stats.back_invalidates == 0


class TestPolicyPlumbing:
    @pytest.mark.parametrize("policy", ["lru", "fifo", "random"])
    def test_policy_reaches_both_levels(self, policy):
        hierarchy = TwoLevelHierarchy(policy=policy)
        assert hierarchy.policy_name == policy
        assert type(hierarchy.l1[0].policies[0]).__name__.lower() \
            .startswith(policy[:3])
        assert type(hierarchy.l2.policies[0]).__name__.lower() \
            .startswith(policy[:3])

    def test_random_levels_draw_uncorrelated_streams(self):
        # Per-core L1s and the shared L2 must not evict in lockstep:
        # each array's sets get scope-derived streams.
        hierarchy = TwoLevelHierarchy(policy="random")
        occupied = [True] * 4
        l1a = [hierarchy.l1[0].policies[0].victim(occupied)
               for _ in range(12)]
        l1b = [hierarchy.l1[1].policies[0].victim(occupied)
               for _ in range(12)]
        assert l1a != l1b

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            TwoLevelHierarchy(policy="plru")


class TestInclusionInvariants:
    @settings(max_examples=20)
    @given(st.lists(
        st.tuples(st.integers(0, 1), st.integers(0, 1023)),
        max_size=300,
    ))
    def test_inclusive_invariant_holds(self, accesses):
        hierarchy = _inclusive()
        for core, address in accesses:
            hierarchy.access(core, address)
        assert hierarchy.inclusion_holds()

    @settings(max_examples=20)
    @given(st.lists(
        st.tuples(st.integers(0, 1), st.integers(0, 1023)),
        max_size=300,
    ))
    def test_exclusive_invariant_holds(self, accesses):
        hierarchy = _exclusive()
        for core, address in accesses:
            hierarchy.access(core, address)
        assert hierarchy.inclusion_holds()

    @pytest.mark.parametrize("policy", ["lru", "fifo", "random"])
    @pytest.mark.parametrize("inclusion", list(InclusionPolicy))
    @settings(max_examples=15, deadline=None)
    @given(ops=st.lists(
        st.one_of(
            st.tuples(st.just("access"), st.integers(0, 1),
                      st.integers(0, 255)),
            st.tuples(st.just("flush"), st.just(0), st.integers(0, 255)),
        ),
        max_size=200,
    ))
    def test_invariant_survives_mixed_streams(self, inclusion, policy,
                                              ops):
        # Tiny arrays so the stream forces L1 overflows (exclusive
        # spills), L2 evictions (inclusive back-invalidates), and
        # flush-under-pressure — for every replacement policy.
        hierarchy = TwoLevelHierarchy(
            l1_geometry=CacheGeometry(total_lines=4, ways=2,
                                      line_words=1),
            l2_geometry=CacheGeometry(total_lines=16, ways=4,
                                      line_words=1),
            inclusion=inclusion,
            policy=policy,
        )
        for kind, core, address in ops:
            if kind == "access":
                hierarchy.access(core, address)
            else:
                hierarchy.flush_line(address)
            assert hierarchy.inclusion_holds()
        flush_events = sum(1 for kind, _, _ in ops if kind == "flush")
        assert hierarchy.stats.flushes == flush_events
        assert hierarchy.stats.flush_hits + \
            hierarchy.stats.flush_misses == flush_events

    def test_back_invalidation_on_l2_eviction(self):
        # Tiny L2 so evictions are easy to force.
        hierarchy = TwoLevelHierarchy(
            l1_geometry=CacheGeometry(total_lines=64, ways=4),
            l2_geometry=CacheGeometry(total_lines=2, ways=2),
            inclusion=InclusionPolicy.INCLUSIVE,
        )
        hierarchy.access(0, 0)
        hierarchy.access(0, 2)
        hierarchy.access(0, 4)  # evicts line 0 from L2
        assert not hierarchy.is_resident_l2(0)
        assert not hierarchy.is_resident_l1(0, 0)  # back-invalidated


class TestValidation:
    def test_rejects_mismatched_line_sizes(self):
        with pytest.raises(ValueError):
            TwoLevelHierarchy(
                l1_geometry=CacheGeometry(line_words=1),
                l2_geometry=CacheGeometry(line_words=8),
            )

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            TwoLevelHierarchy(cores=0)

    def test_rejects_bad_core_index(self):
        with pytest.raises(ValueError):
            _inclusive().access(5, 0)
