"""Tests for the set-associative cache simulator."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry
from repro.cache.setassoc import SetAssociativeCache

small_geometry = CacheGeometry(total_lines=16, ways=4, line_words=1)


class TestBasicResidency:
    def test_first_access_misses_second_hits(self):
        cache = SetAssociativeCache()
        assert cache.access(0x1000) is False
        assert cache.access(0x1000) is True

    def test_is_resident_does_not_perturb(self):
        cache = SetAssociativeCache()
        assert cache.is_resident(0x1000) is False
        assert cache.stats.accesses == 0
        cache.access(0x1000)
        assert cache.is_resident(0x1000) is True

    def test_same_line_different_offsets_hit(self):
        cache = SetAssociativeCache(CacheGeometry(line_words=8))
        cache.access(0x1000)
        assert cache.access(0x1007) is True
        assert cache.access(0x1008) is False


class TestEviction:
    def test_lru_eviction_within_a_set(self):
        cache = SetAssociativeCache(small_geometry)
        sets = small_geometry.num_sets
        # Fill the 4 ways of set 0 with distinct tags, then overflow.
        addresses = [tag * sets for tag in range(5)]
        for address in addresses[:4]:
            cache.access(address)
        cache.access(addresses[0])  # refresh tag 0 -> tag 1 is LRU
        cache.access(addresses[4])  # evicts tag 1
        assert cache.is_resident(addresses[1]) is False
        assert cache.is_resident(addresses[0]) is True
        assert cache.stats.evictions == 1

    def test_capacity_never_exceeded(self):
        cache = SetAssociativeCache(small_geometry)
        rng = random.Random(3)
        for _ in range(500):
            cache.access(rng.randrange(1 << 16))
        assert cache.resident_count() <= small_geometry.total_lines
        for set_index in range(small_geometry.num_sets):
            assert cache.set_occupancy(set_index) <= small_geometry.ways


class TestFlush:
    def test_flush_line_removes_only_that_line(self):
        cache = SetAssociativeCache()
        cache.access(0x1000)
        cache.access(0x1001)
        assert cache.flush_line(0x1000) is True
        assert cache.is_resident(0x1000) is False
        assert cache.is_resident(0x1001) is True

    def test_flush_missing_line_reports_false(self):
        cache = SetAssociativeCache()
        assert cache.flush_line(0x9999) is False

    def test_flush_all_empties_cache(self):
        cache = SetAssociativeCache()
        for address in range(0, 256, 1):
            cache.access(address)
        cache.flush_all()
        assert cache.resident_count() == 0
        assert cache.access(0) is False

    def test_flushed_way_is_refillable(self):
        cache = SetAssociativeCache(small_geometry)
        cache.access(0)
        cache.flush_line(0)
        assert cache.access(0) is False
        assert cache.access(0) is True


class TestFlushAccounting:
    def test_flush_line_splits_resident_and_absent(self):
        cache = SetAssociativeCache()
        cache.access(0x1000)
        cache.flush_line(0x1000)  # resident
        cache.flush_line(0x1000)  # now absent
        cache.flush_line(0x9999)  # never resident
        assert cache.stats.flushes == 3
        assert cache.stats.flush_hits == 1
        assert cache.stats.flush_misses == 2

    def test_flush_all_counts_every_invalidated_line(self):
        cache = SetAssociativeCache(small_geometry)
        for address in range(7):
            cache.access(address)
        cache.flush_all()
        # One clflush per line: 7 resident lines = 7 flushes, and a
        # flush_all by construction only ever hits.
        assert cache.stats.flushes == 7
        assert cache.stats.flush_hits == 7
        assert cache.stats.flush_misses == 0

    def test_flush_all_of_empty_cache_counts_nothing(self):
        cache = SetAssociativeCache()
        cache.flush_all()
        assert cache.stats.flushes == 0


class TestPerSetRandomStreams:
    def test_sets_do_not_evict_in_lockstep(self):
        # Two sets, identical access patterns: with per-set derived
        # streams their eviction choices must eventually diverge (the
        # pre-fix shared stream made every set's residency identical).
        geometry = CacheGeometry(total_lines=8, ways=4, line_words=1)
        cache = SetAssociativeCache(geometry, policy="random")
        sets = geometry.num_sets
        for tag in range(12):
            cache.access(tag * sets + 0)
            cache.access(tag * sets + 1)
        survivors = [
            frozenset(tag for tag in range(12)
                      if cache.is_resident(tag * sets + set_index))
            for set_index in (0, 1)
        ]
        assert survivors[0] != survivors[1]

    def test_shared_explicit_rng_couples_sets(self):
        # An explicit rng restores the pre-fix semantics: one stream
        # shared by every set, so set 0's evictions consume draws that
        # change set 1's outcome.  With the default per-set streams,
        # set 1 is independent of set 0's traffic.
        geometry = CacheGeometry(total_lines=8, ways=4, line_words=1)
        sets = geometry.num_sets

        def set1_survivors(with_set0_traffic, rng):
            cache = SetAssociativeCache(geometry, policy="random",
                                        rng=rng)
            for tag in range(12):
                if with_set0_traffic:
                    cache.access(tag * sets + 0)
                cache.access(tag * sets + 1)
            return frozenset(
                tag for tag in range(12)
                if cache.is_resident(tag * sets + 1)
            )

        shared = (set1_survivors(True, random.Random(5)),
                  set1_survivors(False, random.Random(5)))
        assert shared[0] != shared[1]
        derived = (set1_survivors(True, None),
                   set1_survivors(False, None))
        assert derived[0] == derived[1]


class TestStats:
    def test_counters(self):
        cache = SetAssociativeCache()
        cache.access(0)
        cache.access(0)
        cache.access(64)
        assert cache.stats.accesses == 3
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert cache.stats.hit_rate == pytest.approx(1 / 3)

    def test_hit_rate_idle(self):
        assert SetAssociativeCache().stats.hit_rate == 0.0

    def test_replay_counts_hits(self):
        cache = SetAssociativeCache()
        # With 1-byte lines: miss, hit, miss, miss.
        assert cache.replay([0, 0, 1, 64]) == 1


class TestReplayDetail:
    def test_replay_hit_count_exact(self):
        cache = SetAssociativeCache()
        hits = cache.replay([0, 0, 0, 64, 64])
        assert hits == 3


class TestInvariantsPropertyBased:
    @settings(max_examples=30)
    @given(st.lists(st.integers(min_value=0, max_value=4095), max_size=200))
    def test_resident_iff_hit_on_reaccess(self, addresses):
        cache = SetAssociativeCache(small_geometry)
        for address in addresses:
            cache.access(address)
        for address in addresses[-10:]:
            resident = cache.is_resident(address)
            assert cache.access(address) == resident

    @settings(max_examples=30)
    @given(st.lists(st.integers(min_value=0, max_value=4095), max_size=200))
    def test_resident_lines_unique_and_bounded(self, addresses):
        cache = SetAssociativeCache(small_geometry)
        for address in addresses:
            cache.access(address)
        lines = cache.resident_lines()
        assert len(lines) == len(set(lines))
        assert len(lines) <= small_geometry.total_lines

    @settings(max_examples=20)
    @given(st.lists(st.integers(min_value=0, max_value=1023), max_size=64))
    def test_distinct_lines_below_capacity_all_fit(self, addresses):
        # The paper-default cache holds 1024 lines; up to 64 distinct
        # small addresses can never evict each other (one tag per set).
        cache = SetAssociativeCache()
        for address in addresses:
            cache.access(address)
        for address in addresses:
            assert cache.is_resident(address)


class TestValidation:
    def test_set_occupancy_bounds(self):
        cache = SetAssociativeCache(small_geometry)
        with pytest.raises(ValueError):
            cache.set_occupancy(small_geometry.num_sets)

    def test_policy_choice(self):
        cache = SetAssociativeCache(small_geometry, policy="fifo")
        assert cache.policy_name == "fifo"
        with pytest.raises(ValueError):
            SetAssociativeCache(small_geometry, policy="bogus")
