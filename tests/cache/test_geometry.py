"""Tests for the cache-geometry arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache.geometry import PAPER_DEFAULT_GEOMETRY, CacheGeometry


class TestPaperDefault:
    def test_matches_section_iv_a(self):
        # "16-way set-associative memory with 1024 cache lines where each
        # cache line contains in the default case a single word of 8 bits".
        geometry = PAPER_DEFAULT_GEOMETRY
        assert geometry.total_lines == 1024
        assert geometry.ways == 16
        assert geometry.line_words == 1
        assert geometry.word_bytes == 1
        assert geometry.num_sets == 64
        assert geometry.line_bytes == 1
        assert geometry.capacity_bytes == 1024


class TestDerivedValues:
    @pytest.mark.parametrize("line_words,expected_bytes",
                             [(1, 1), (2, 2), (4, 4), (8, 8)])
    def test_table1_sweep_line_sizes(self, line_words, expected_bytes):
        assert CacheGeometry(line_words=line_words).line_bytes \
            == expected_bytes

    def test_set_and_tag_partition_the_line_number(self):
        geometry = CacheGeometry()
        for address in (0, 1, 63, 64, 4096, 123456):
            line = geometry.line_of(address)
            assert geometry.set_of(address) == line % 64
            assert geometry.tag_of(address) == line // 64

    def test_line_of_strips_offset(self):
        geometry = CacheGeometry(line_words=8)
        assert geometry.line_of(0) == geometry.line_of(7)
        assert geometry.line_of(7) != geometry.line_of(8)

    @given(st.integers(min_value=0, max_value=1 << 32))
    def test_same_line_same_set(self, address):
        geometry = CacheGeometry(line_words=4)
        base = (address // geometry.line_bytes) * geometry.line_bytes
        for offset in range(geometry.line_bytes):
            assert geometry.set_of(base + offset) == geometry.set_of(base)


class TestValidation:
    @pytest.mark.parametrize("field,value", [
        ("total_lines", 0), ("total_lines", 1000),
        ("ways", 3), ("line_words", 0), ("word_bytes", 5),
    ])
    def test_rejects_non_powers_of_two(self, field, value):
        with pytest.raises(ValueError):
            CacheGeometry(**{field: value})

    def test_rejects_ways_above_line_count(self):
        with pytest.raises(ValueError):
            CacheGeometry(total_lines=16, ways=32)

    def test_rejects_negative_address(self):
        with pytest.raises(ValueError):
            CacheGeometry().line_of(-1)

    def test_geometry_is_hashable_and_frozen(self):
        geometry = CacheGeometry()
        assert hash(geometry) == hash(CacheGeometry())
        with pytest.raises(Exception):
            geometry.ways = 8
