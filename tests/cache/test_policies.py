"""Tests for the cache replacement policies."""

import random

import pytest

from repro.cache.policies import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    derive_set_rng,
    make_policy,
)


class TestLru:
    def test_evicts_least_recently_used(self):
        policy = LruPolicy(4)
        for way in (0, 1, 2, 3):
            policy.on_access(way)
        policy.on_access(0)  # 1 is now the oldest
        assert policy.victim([True] * 4) == 1

    def test_reaccess_refreshes(self):
        policy = LruPolicy(3)
        for way in (0, 1, 2, 0, 1):
            policy.on_access(way)
        assert policy.victim([True] * 3) == 2

    def test_skips_unoccupied_ways(self):
        policy = LruPolicy(3)
        for way in (0, 1, 2):
            policy.on_access(way)
        assert policy.victim([False, True, True]) == 1

    def test_invalidate_removes_from_order(self):
        policy = LruPolicy(3)
        for way in (0, 1, 2):
            policy.on_access(way)
        policy.on_invalidate(0)
        assert policy.victim([True, True, True]) == 1

    def test_victim_requires_occupied_ways(self):
        with pytest.raises(RuntimeError):
            LruPolicy(2).victim([True, True])


class TestFifo:
    def test_evicts_first_filled_even_after_reuse(self):
        policy = FifoPolicy(3)
        for way in (0, 1, 2):
            policy.on_access(way)
        policy.on_access(0)  # a re-reference must not refresh FIFO order
        assert policy.victim([True] * 3) == 0

    def test_invalidate_removes_from_queue(self):
        policy = FifoPolicy(2)
        policy.on_access(0)
        policy.on_access(1)
        policy.on_invalidate(0)
        assert policy.victim([True, True]) == 1


class TestRandom:
    def test_deterministic_with_seed(self):
        a = RandomPolicy(8, random.Random(7))
        b = RandomPolicy(8, random.Random(7))
        occupied = [True] * 8
        assert [a.victim(occupied) for _ in range(10)] == \
            [b.victim(occupied) for _ in range(10)]

    def test_only_picks_occupied(self):
        policy = RandomPolicy(4, random.Random(1))
        occupied = [False, True, False, True]
        for _ in range(20):
            assert policy.victim(occupied) in (1, 3)

    def test_raises_on_empty_set(self):
        with pytest.raises(RuntimeError):
            RandomPolicy(2).victim([False, False])


class TestDerivedSetStreams:
    """Regression: random replacement must be per-set state.

    The caches used to hand every set the same
    ``derive_rng("replacement-policy", 0)`` stream, so all sets evicted
    in lockstep — correlated "random" replacement.
    """

    def test_distinct_sets_draw_distinct_sequences(self):
        a = derive_set_rng(0)
        b = derive_set_rng(1)
        assert [a.randrange(1 << 30) for _ in range(8)] != \
            [b.randrange(1 << 30) for _ in range(8)]

    def test_same_set_same_scope_is_deterministic(self):
        a = derive_set_rng(3, "l2")
        b = derive_set_rng(3, "l2")
        assert [a.random() for _ in range(8)] == \
            [b.random() for _ in range(8)]

    def test_scopes_decorrelate_hierarchy_levels(self):
        l1 = derive_set_rng(0, "l1-core0")
        l2 = derive_set_rng(0, "l2")
        assert [l1.random() for _ in range(8)] != \
            [l2.random() for _ in range(8)]

    def test_factory_per_set_policies_pick_different_victims(self):
        occupied = [True] * 8
        streams = [
            [make_policy("random", 8, set_index=i).victim(occupied)
             for _ in range(16)]
            for i in range(4)
        ]
        # At least one pair of sets must disagree somewhere (with
        # 16 draws over 8 ways, identical sequences would be the
        # lockstep bug).
        assert len({tuple(s) for s in streams}) > 1

    def test_explicit_rng_reproduces_shared_stream(self):
        # The pre-fix behaviour is still constructible on demand: an
        # explicit rng object is shared verbatim, so every "set" handed
        # the same generator interleaves draws from one sequence.
        shared = random.Random(42)
        a = make_policy("random", 8, shared, set_index=0)
        b = make_policy("random", 8, shared, set_index=1)
        expected = random.Random(42)
        occupied = [True] * 8
        draws = [a.victim(occupied), b.victim(occupied),
                 a.victim(occupied)]
        assert draws == [expected.choice(range(8)) for _ in range(3)]


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("lru", LruPolicy), ("fifo", FifoPolicy), ("random", RandomPolicy),
    ])
    def test_builds_by_name(self, name, cls):
        assert isinstance(make_policy(name, 4), cls)

    def test_rejects_unknown_name(self):
        with pytest.raises(ValueError):
            make_policy("plru", 4)

    def test_rejects_bad_way_count(self):
        with pytest.raises(ValueError):
            LruPolicy(0)
