"""Tests for the timed memory hierarchy."""

import pytest

from repro.cache.geometry import CacheGeometry
from repro.cache.hierarchy import (
    AccessResult,
    MemoryHierarchy,
    MemoryLatencies,
)


class TestTimedAccess:
    def test_miss_then_hit_latencies(self):
        memory = MemoryHierarchy()
        first = memory.access(0x1000)
        second = memory.access(0x1000)
        assert first == AccessResult(hit=False, cycles=10)
        assert second == AccessResult(hit=True, cycles=1)

    def test_total_cycles_accumulate(self):
        memory = MemoryHierarchy()
        memory.access(0)
        memory.access(0)
        memory.access(64)
        assert memory.total_cycles == 10 + 1 + 10

    def test_custom_latencies(self):
        latencies = MemoryLatencies(l1_hit_cycles=2, l1_miss_cycles=50)
        memory = MemoryHierarchy(latencies=latencies)
        assert memory.access(0).cycles == 50
        assert memory.access(0).cycles == 2

    def test_flush_costs(self):
        memory = MemoryHierarchy()
        memory.access(0)
        assert memory.flush_line(0) == 1
        assert memory.flush_all() == 4
        assert memory.total_cycles == 10 + 1 + 4

    def test_flush_line_invalidates(self):
        memory = MemoryHierarchy()
        memory.access(0)
        memory.flush_line(0)
        assert memory.access(0).hit is False

    def test_geometry_passthrough(self):
        geometry = CacheGeometry(line_words=4)
        memory = MemoryHierarchy(geometry=geometry)
        assert memory.geometry is geometry

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            MemoryLatencies(l1_hit_cycles=-1)
