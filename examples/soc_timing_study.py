#!/usr/bin/env python3
"""Table II study: when can the attacker actually probe?

Simulates the paper's two FPGA platforms with the event-driven SoC
models and reports the round each configuration manages to probe —
Table II — plus the latency budget behind every number (RTOS quantum vs.
round duration on the single core; NoC round-trip vs. round duration on
the MPSoC).

Run:  python examples/soc_timing_study.py
"""

from repro.analysis import render_table2, run_table2
from repro.soc import (
    PAPER_FREQUENCIES_HZ,
    PAPER_QUANTUM_S,
    ClockDomain,
    MPSoC,
    SingleCoreSoC,
)


def main() -> None:
    print(render_table2(run_table2()))
    print()

    print("Single-core SoC: the attacker's only window is the RTOS")
    print(f"preemption after one {PAPER_QUANTUM_S * 1e3:.0f} ms quantum.")
    for frequency in PAPER_FREQUENCIES_HZ:
        clock = ClockDomain(frequency)
        report = SingleCoreSoC(clock).run_attack_window()
        rounds_per_quantum = PAPER_QUANTUM_S / report.round_duration_s
        print(f"  {clock.describe():>7}: round lasts "
              f"{report.round_duration_s * 1e3:5.2f} ms "
              f"({rounds_per_quantum:5.2f} rounds/quantum) "
              f"-> probed round {report.probed_round} "
              f"({'practical' if report.practical else 'impractical'})")

    print("\nMPSoC: the attacker owns a tile and probes the shared cache")
    print("over the mesh NoC (XY routing) while the victim computes.")
    for frequency in PAPER_FREQUENCIES_HZ:
        clock = ClockDomain(frequency)
        soc = MPSoC(clock)
        report = soc.run_attack_window()
        per_access = soc.noc.remote_access_seconds(
            soc.attacker_tile, soc.cache_tile, clock
        )
        print(f"  {clock.describe():>7}: remote access "
              f"{per_access * 1e9:6.0f} ns, full probe sweep "
              f"{report.probe_latency_s * 1e6:7.1f} us "
              f"<< round {report.round_duration_s * 1e3:5.2f} ms "
              f"-> probed round {report.probed_round}")

    print("\nPaper cross-check (Section IV-B3): ~400 ns per remote access")
    print("at 50 MHz and ~1.2 ms between rounds — the simulated values")
    print("above are calibrated to those observations (EXPERIMENTS.md).")


if __name__ == "__main__":
    main()
