#!/usr/bin/env python3
"""Future-work study: GRINCH across a multi-level cache hierarchy.

The paper closes with "further explore the effect of the memory
hierarchy on the effectiveness of the attack".  This example does it on
the two-level substrate: the victim encrypts on core 0 behind a private
L1 while the attacker on core 1 can only flush globally (clflush) and
sense the shared L2.

Findings (regenerated live below):

* an **inclusive** L2 mirrors every victim fill — the cross-core attack
  recovers the full key at essentially single-level cost;
* an **exclusive** L2 holds only L1 *victims*; GIFT's 16-byte S-box
  lives comfortably in L1, so the shared level carries just an
  occasional eviction spill and the intersection attack collapses.

Run:  python examples/memory_hierarchy_study.py
"""

from repro import AttackConfig, GrinchAttack, TracedGift64
from repro.cache import InclusionPolicy
from repro.core import AttackError, make_cross_core_runner
from repro.engine import derive_key


def main() -> None:
    key = derive_key(128, "example-hierarchy", 2718)
    victim = TracedGift64(key)

    print("GRINCH across a two-level hierarchy (victim core 0, attacker core 1)")
    print("====================================================================\n")

    baseline = GrinchAttack(
        victim, AttackConfig(seed=40)
    ).recover_master_key()
    print(f"baseline (single shared L1)  : key recovered in "
          f"{baseline.total_encryptions} encryptions")

    config = AttackConfig(seed=40, max_total_encryptions=None)
    runner = make_cross_core_runner(
        victim, config, InclusionPolicy.INCLUSIVE
    )
    inclusive = GrinchAttack(victim, config, runner=runner) \
        .recover_master_key()
    print(f"cross-core, inclusive L2     : key recovered in "
          f"{inclusive.total_encryptions} encryptions")
    assert inclusive.master_key == key

    blind_config = AttackConfig(seed=40, max_encryptions_per_segment=500,
                                max_total_encryptions=None)
    blind_runner = make_cross_core_runner(
        victim, blind_config, InclusionPolicy.EXCLUSIVE
    )
    try:
        GrinchAttack(victim, blind_config, runner=blind_runner) \
            .recover_master_key()
        print("cross-core, exclusive L2     : UNEXPECTEDLY recovered")
    except AttackError as error:
        print(f"cross-core, exclusive L2     : attack fails "
              f"({type(error).__name__})")

    print("\nInterpretation: inclusion is the enabling property for")
    print("cross-core Flush+Reload on tiny tables.  An exclusive LLC is")
    print("an (incidental) countermeasure — though L1-eviction spills")
    print("still trickle into L2, so it should not be relied upon; the")
    print("paper's reshaped-S-box countermeasure closes the channel")
    print("properly (examples/countermeasure_demo.py).")


if __name__ == "__main__":
    main()
