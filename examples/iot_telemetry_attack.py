#!/usr/bin/env python3
"""End-to-end IoT scenario: stealing a sensor hub's GIFT key.

The paper's motivating deployment (Section I): an IoT device encrypts
telemetry with GIFT-64 while untrusted third-party tasks share the SoC.
This example plays the whole story on the MPSoC model:

1. a sensor hub tile encrypts telemetry frames with a provisioned key;
2. a malicious co-resident task checks, with the timing model, that it
   can probe the shared cache inside round 1 (Table II row 2);
3. it mounts GRINCH — crafting "telemetry" the victim willingly
   encrypts — and recovers the provisioned key;
4. it decrypts a captured frame to prove the compromise.

Run:  python examples/iot_telemetry_attack.py
"""

from repro import AttackConfig, GrinchAttack, TracedGift64
from repro.core import NoiseModel
from repro.engine import derive_key, derive_rng
from repro.soc import ClockDomain, MPSoC


def main() -> None:
    provisioned_key = derive_key(128, "example-iot", 314)
    sensor_hub = TracedGift64(provisioned_key)

    print("IoT telemetry attack scenario")
    print("=============================\n")

    # -- Step 1: the device operates normally ---------------------------
    rng = derive_rng("example-iot-telemetry", 314)
    telemetry = [rng.getrandbits(64) for _ in range(3)]
    frames = [sensor_hub.encrypt(t) for t in telemetry]
    print("sensor hub transmits encrypted telemetry frames:")
    for frame in frames:
        print(f"  {frame:016x}")

    # -- Step 2: feasibility check on the platform ----------------------
    clock = ClockDomain(10_000_000)  # typical IoT operating point
    report = MPSoC(clock).run_attack_window()
    print(f"\nattacker tile timing check @ {clock.describe()}: "
          f"probe sweep {report.probe_latency_s * 1e6:.0f} us, "
          f"round {report.round_duration_s * 1e3:.1f} ms "
          f"-> can observe round {report.probed_round}")
    if not report.practical:
        raise SystemExit("platform not attackable at this configuration")

    # -- Step 3: mount GRINCH (with some co-runner noise for realism) ---
    attack = GrinchAttack(
        sensor_hub,
        AttackConfig(
            seed=99,
            probing_round=report.probed_round,
            noise=NoiseModel(touch_probability=0.2, monitored_touches=1),
            max_total_encryptions=None,
        ),
    )
    result = attack.recover_master_key()
    print(f"\nGRINCH recovered key {result.master_key:032x}")
    print(f"after {result.total_encryptions} chosen-plaintext encryptions")

    # -- Step 4: decrypt the captured traffic ---------------------------
    stolen = TracedGift64(result.master_key)
    recovered = [stolen.decrypt(frame) for frame in frames]
    print("\ndecrypted captured frames with the stolen key:")
    for original, plain in zip(telemetry, recovered):
        status = "ok" if original == plain else "FAIL"
        print(f"  {plain:016x}  ({status})")
    assert recovered == telemetry
    print("\ncompromise complete — every future frame is readable.")


if __name__ == "__main__":
    main()
