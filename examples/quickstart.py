#!/usr/bin/env python3
"""Quickstart: recover a GIFT-64 master key through the cache channel.

Builds a table-based GIFT-64 victim with a secret key, points GRINCH at
it with the paper's default setup (Flush+Reload, probing round 1, flush
enabled, 1-word cache lines) and prints the recovered key.

Run:  python examples/quickstart.py
"""

from repro import AttackConfig, GrinchAttack, TracedGift64
from repro.engine import derive_key


def main() -> None:
    secret_key = derive_key(128, "example-quickstart", 2021)
    victim = TracedGift64(master_key=secret_key)

    print("GRINCH quickstart")
    print("=================")
    print(f"victim secret key : {secret_key:032x}  (attacker never sees this)")

    attack = GrinchAttack(victim, AttackConfig(seed=42))
    result = attack.recover_master_key()

    print(f"recovered key     : {result.master_key:032x}")
    print(f"exact match       : {result.master_key == secret_key}")
    print(f"verified          : {result.verified}")
    print(f"victim encryptions: {result.total_encryptions}"
          f"  (paper headline: < 400)")
    for round_index, encryptions in result.encryptions_by_round.items():
        print(f"  round {round_index}: {encryptions} encryptions "
              f"-> 32 key bits")


if __name__ == "__main__":
    main()
