#!/usr/bin/env python3
"""Extension: GRINCH against GIFT-128 (the variant inside GIFT-COFB).

The paper develops the attack for GIFT-64; the NIST-LWC candidates it
motivates (GIFT-COFB and friends) build on GIFT-128.  This example runs
the generalised attack and highlights the structural differences:

* 32 segments, key bits on nibble offsets 1/2 (not 0/1);
* 64-bit round keys, so **two** attacked rounds cover the master key
  (GIFT-64 needs four);
* round 3 is the verification round (its key is derived from round 1's
  by the schedule);
* with 2-word cache lines the hidden index bit is key-FREE, so —
  unlike GIFT-64 — no ambiguity arises at all.

Run:  python examples/gift128_attack.py
"""

from repro import AttackConfig, CacheGeometry, GrinchAttack, TracedGift128
from repro.engine import derive_key


def main() -> None:
    key = derive_key(128, "example-gift128", 128)
    victim = TracedGift128(key)

    print("GRINCH vs. GIFT-128")
    print("===================")
    print(f"planted key: {key:032x}\n")

    result = GrinchAttack(victim, AttackConfig(seed=10)) \
        .recover_master_key()
    print(f"recovered  : {result.master_key:032x}")
    print(f"exact match: {result.master_key == key}")
    print(f"encryptions: {result.total_encryptions} "
          f"(two rounds x 32 segments)")
    for outcome in result.rounds:
        u, v = outcome.estimate.as_round_key()
        print(f"  round {outcome.round_index}: U={u:08x} V={v:08x} "
              f"({outcome.encryptions} encryptions, 64 key bits)")

    print("\nLine-size contrast with GIFT-64 (first-round attack):")
    for line_words in (1, 2):
        attack = GrinchAttack(
            TracedGift128(key),
            AttackConfig(seed=11,
                         geometry=CacheGeometry(line_words=line_words),
                         max_total_encryptions=None),
        )
        outcome = attack.attack_first_round()
        print(f"  {line_words}-word lines: {outcome.recovered_bits}/64 "
              f"bits outright in {outcome.encryptions} encryptions")
    print("\n(2-word lines hide index bit 0, which carries no key for")
    print("GIFT-128 — the same geometry halves GIFT-64's yield.  From")
    print("4-word lines on, the V bit hides too: 32/64 bits outright,")
    print("with the rest resolved by the multi-round machinery.)")


if __name__ == "__main__":
    main()
