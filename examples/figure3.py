#!/usr/bin/env python3
"""Regenerate Fig. 3: attack effort vs. cache probing round.

Both series (Grinch with / without flush) over probing rounds 1-10,
printed as a log-scale ASCII bar chart plus the raw numbers.  Cells
whose expected effort exceeds the Monte-Carlo budget fall back to the
validated analytic model (marked 'analytic'); set REPRO_FULL=1 to
simulate everything.

The sweep itself goes through the experiment engine, so repeated runs
are served from the content-addressed result cache and extra workers
speed up a cold run:  python examples/figure3.py  (REPRO_WORKERS=4 ...)
"""

import os

from repro.analysis import flush_advantage, growth_factor_per_round
from repro.engine import render_record, run_experiment, simulated_effort_budget


def main() -> None:
    workers = int(os.environ.get("REPRO_WORKERS", "1"))
    record = run_experiment(
        "figure3",
        {"runs": 2, "max_simulated_effort": simulated_effort_budget()},
        workers=workers,
    )
    print(render_record(record))

    telemetry = record["telemetry"]
    print(f"\n[{telemetry['trials_total']} trials in "
          f"{telemetry['wall_time_s']:.2f} s at {workers} worker(s), "
          f"cache {telemetry['cache']}]")

    print("\nShape checks against the paper")
    print("------------------------------")
    round1 = next(c for c in record["cells"]
                  if c["cell"]["probing_round"] == 1
                  and c["cell"]["use_flush"])
    print(f"probing round 1 with flush: "
          f"{round1['encryptions']:,.0f} encryptions "
          f"(paper: ~100 for the 32-bit first round)")
    print(f"effort growth per probing round: "
          f"x{growth_factor_per_round(1):.2f} "
          f"(the exponential slope of the log-scale bars)")
    print(f"no-flush penalty: x{flush_advantage(2):.2f} "
          f"(the paper's 'dirty first-round accesses')")
    print("practical limit: with flush the attack stays under 1M")
    print("encryptions through probing round ~8; the paper calls it")
    print("practical up to round 5 (with flush) / 4 (without).")


if __name__ == "__main__":
    main()
