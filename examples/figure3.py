#!/usr/bin/env python3
"""Regenerate Fig. 3: attack effort vs. cache probing round.

Both series (Grinch with / without flush) over probing rounds 1-10,
printed as a log-scale ASCII bar chart plus the raw numbers.  Cells
whose expected effort exceeds the Monte-Carlo budget fall back to the
validated analytic model (marked 'analytic'); set REPRO_FULL=1 to
simulate everything.

Run:  python examples/figure3.py
"""

import os

from repro.analysis import (
    flush_advantage,
    growth_factor_per_round,
    render_figure3,
    run_figure3,
)


def main() -> None:
    full = os.environ.get("REPRO_FULL", "") not in ("", "0")
    budget = 1_500_000.0 if full else 20_000.0

    result = run_figure3(runs=2, max_simulated_effort=budget)
    print(render_figure3(result))

    print("\nShape checks against the paper")
    print("------------------------------")
    with_flush = result.series(True)
    print(f"probing round 1 with flush: "
          f"{with_flush[0].encryptions:,.0f} encryptions "
          f"(paper: ~100 for the 32-bit first round)")
    print(f"effort growth per probing round: "
          f"x{growth_factor_per_round(1):.2f} "
          f"(the exponential slope of the log-scale bars)")
    print(f"no-flush penalty: x{flush_advantage(2):.2f} "
          f"(the paper's 'dirty first-round accesses')")
    print("practical limit: with flush the attack stays under 1M")
    print("encryptions through probing round ~8; the paper calls it")
    print("practical up to round 5 (with flush) / 4 (without).")


if __name__ == "__main__":
    main()
