#!/usr/bin/env python3
"""Section IV-C demo: both proposed countermeasures against live GRINCH.

Shows the two distinct protection arguments:

* the reshaped 8x8-bit S-box confined to one 8-byte cache line removes
  the access-driven channel entirely (no line-footprint variation);
* the hardened UpdateKey leaves the channel open — GRINCH still reads
  the effective round keys — but the recovered quarters no longer
  reassemble into the master key.

Run:  python examples/countermeasure_demo.py
"""

from repro.countermeasures import (
    evaluate_hardened_schedule,
    evaluate_reshaped_sbox,
)
from repro.engine import derive_key


def _describe(report) -> None:
    print(f"{report.name}")
    print("-" * len(report.name))
    baseline = report.baseline_leakage
    protected = report.protected_leakage
    print(f"  unprotected victim: {baseline.monitored_lines} monitored "
          f"lines, {baseline.varying_lines} vary across encryptions, "
          f"{baseline.distinct_observations} distinct footprints "
          f"-> {'LEAKS' if baseline.leaks else 'silent'}")
    print(f"  protected victim  : {protected.monitored_lines} monitored "
          f"lines, {protected.varying_lines} vary, "
          f"{protected.distinct_observations} distinct footprints "
          f"-> {'LEAKS' if protected.leaks else 'silent'}")
    verdict = "defeated" if report.attack_defeated else "NOT defeated"
    print(f"  GRINCH outcome    : {verdict}"
          + (f" ({report.failure_mode})" if report.failure_mode else ""))
    print()


def main() -> None:
    key = derive_key(128, "example-countermeasures", 1)
    print("GRINCH vs. the paper's countermeasures")
    print("======================================\n")

    _describe(evaluate_reshaped_sbox(key, seed=3, encryptions=200))
    _describe(evaluate_hardened_schedule(key, seed=3, encryptions=200))

    print("Note the asymmetry: countermeasure 1 closes the channel;")
    print("countermeasure 2 only breaks master-key reconstruction (the")
    print("round-key leak persists), and the paper itself defers its")
    print("cryptanalysis — see repro/countermeasures/hardened_schedule.py")
    print("for the solvable-equation caveat.")


if __name__ == "__main__":
    main()
