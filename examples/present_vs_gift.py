#!/usr/bin/env python3
"""Why GRINCH monitors round 2: GIFT vs. PRESENT attack surfaces.

GIFT applies its round key *after* SubCells/PermBits, so the first
round's S-box accesses depend only on the plaintext — useless to an
attacker — and the key first touches the table indices in round 2.
PRESENT (GIFT's ancestor) XORs the round key *before* its S-box layer,
so even round 1 leaks.  This example measures both facts directly on
the implementations.

Run:  python examples/present_vs_gift.py
"""

from repro import Present, TracedGift64
from repro.engine import derive_rng


def _distinct_footprints(get_indices, keys, plaintext):
    footprints = {tuple(get_indices(key, plaintext)) for key in keys}
    return len(footprints)


def main() -> None:
    rng = derive_rng("example-present-vs-gift", 5)
    plaintext = rng.getrandbits(64)
    gift_keys = [rng.getrandbits(128) for _ in range(32)]
    present_keys = [rng.getrandbits(80) for _ in range(32)]

    print("First-round S-box access footprint vs. the key")
    print("==============================================\n")

    gift_round1 = _distinct_footprints(
        lambda k, p: TracedGift64(k).sbox_indices_by_round(p, 1)[0],
        gift_keys, plaintext,
    )
    gift_round2 = _distinct_footprints(
        lambda k, p: TracedGift64(k).sbox_indices_by_round(p, 2)[1],
        gift_keys, plaintext,
    )
    present_round1 = _distinct_footprints(
        lambda k, p: Present(k, 80).sbox_indices_by_round(p, 1)[0],
        present_keys, plaintext,
    )

    print(f"GIFT-64 round 1: {gift_round1} distinct access pattern(s) "
          f"across {len(gift_keys)} keys  -> key-independent")
    print(f"GIFT-64 round 2: {gift_round2} distinct access pattern(s) "
          f"-> key-dependent (GRINCH's target)")
    print(f"PRESENT round 1: {present_round1} distinct access pattern(s) "
          f"-> key-dependent from the very first lookup\n")

    assert gift_round1 == 1
    assert gift_round2 > 1
    assert present_round1 > 1

    print("Consequences for the attack:")
    print(" * against GIFT, round-1 accesses are pure noise — hence the")
    print("   paper's optional flush after round 1 ('Grinch with Flush')")
    print("   and the Key <- Index XOR Input relation at round 2;")
    print(" * against PRESENT, a GRINCH-style attack would monitor round 1")
    print("   directly, but PRESENT pays for that with a costlier BN3")
    print("   S-box (see repro.gift.sbox.branch_number).")


if __name__ == "__main__":
    main()
