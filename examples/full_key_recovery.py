#!/usr/bin/env python3
"""E4 in detail: a narrated full 128-bit GRINCH key recovery.

Walks the five methodology steps of Section III-C round by round,
showing how each attacked round contributes a disjoint 32-bit quarter
of the master key, how the observations converge per segment, and how
the recovered round keys reassemble into the master key.

Run:  python examples/full_key_recovery.py
"""

from repro import AttackConfig, GrinchAttack, TracedGift64
from repro.engine import derive_key
from repro.gift import round_keys


def main() -> None:
    secret_key = derive_key(128, "example-full-key", 7)
    victim = TracedGift64(secret_key)
    attack = GrinchAttack(victim, AttackConfig(seed=9))

    print("GRINCH full key recovery, step by step")
    print("======================================")
    print(f"planted key: {secret_key:032x}\n")

    result = attack.recover_master_key()

    true_round_keys = round_keys(secret_key, 4, width=64)
    for outcome in result.rounds:
        u, v = outcome.estimate.as_round_key()
        expected_u, expected_v = true_round_keys[outcome.round_index - 1]
        status = "ok" if (u, v) == (expected_u, expected_v) else "MISMATCH"
        print(f"round {outcome.round_index}: U={u:04x} V={v:04x} "
              f"({outcome.encryptions} encryptions, {status})")
        busiest = max(outcome.segments, key=lambda s: s.encryptions)
        quietest = min(outcome.segments, key=lambda s: s.encryptions)
        print(f"  per-segment effort: {quietest.encryptions} "
              f"(segment {quietest.segment}) .. {busiest.encryptions} "
              f"(segment {busiest.segment})")

    print(f"\nassembled master key: {result.master_key:032x}")
    print(f"matches planted key : {result.master_key == secret_key}")
    print(f"total encryptions   : {result.total_encryptions}")
    print("\nWhy four rounds suffice: the GIFT key state rotates a full")
    print("32 bits per round, so rounds 1-4 consume disjoint quarters of")
    print("the master key (see repro.gift.keyschedule).")


if __name__ == "__main__":
    main()
