#!/usr/bin/env python3
"""Table I study: how the cache line size throttles GRINCH.

Regenerates the paper's Table I (encryptions to attack the first round
for line sizes of 1/2/4/8 words and probing rounds 1-5, with the >1M
drop-out rule) and explains each mechanism with the analytic model:

* wider lines mean fewer monitored lines, so spurious accesses cover
  them all more quickly — elimination slows exponentially;
* wider lines also hide the low index bits, leaving up to 4 key-bit
  candidates per segment (Section III-D).

Run:  python examples/cache_geometry_study.py          (quick)
      REPRO_FULL=1 python examples/cache_geometry_study.py
"""

import os

from repro.analysis import (
    absence_probability,
    expected_first_round_effort,
    monitored_lines,
    practical_probing_round_limit,
    render_table1,
    run_table1,
    visible_noise_accesses,
)


def main() -> None:
    full = os.environ.get("REPRO_FULL", "") not in ("", "0")
    budget = 1_500_000.0 if full else 20_000.0

    print(render_table1(run_table1(runs=2, max_simulated_effort=budget)))
    print("\n('~' cells are analytic-model projections; set REPRO_FULL=1 "
          "to simulate them.)\n")

    print("Mechanism, per the analytic model")
    print("---------------------------------")
    for line_words in (1, 2, 4, 8):
        lines = monitored_lines(line_words)
        p = absence_probability(lines, visible_noise_accesses(1))
        effort = expected_first_round_effort(line_words, 1)
        limit = practical_probing_round_limit(line_words)
        print(f"{line_words} word(s)/line: {lines:>2} monitored lines, "
              f"P(line absent per window) = {p:.2e}, "
              f"round-1 effort ~ {effort:,.0f}, "
              f"practical through probing round "
              f"{limit if limit else '-'}")

    print("\nResidual key ambiguity per segment (Section III-D):")
    for line_words in (1, 2, 4, 8):
        hidden_bits = {1: 0, 2: 1, 4: 2, 8: 2}[line_words]
        print(f"  {line_words} word(s)/line -> {2 ** hidden_bits} "
              f"candidate key-bit pairs per segment")
    print("\nGRINCH resolves the residue by carrying candidates into the "
          "next round's consistency tests (repro.core.attack).")


if __name__ == "__main__":
    main()
