#!/usr/bin/env python3
"""The paper's attack taxonomy, measured: access vs. trace vs. time.

Section I classifies cache attacks by what the adversary observes —
the access pattern (GRINCH), the victim's hit/miss sequence
(trace-driven, e.g. via power analysis as Section III-D suggests), or
only the execution time (time-driven).  This example mounts all three
against the same GIFT-64 victim and compares their costs for one
segment's two key bits, making the taxonomy quantitative.

Run:  python examples/attack_taxonomy.py
"""

from repro import AttackConfig, GrinchAttack, TracedGift64
from repro.engine import derive_key
from repro.gift import round_keys
from repro.variants import TimeDrivenAttack, TraceDrivenAttack

SEGMENT = 6


def main() -> None:
    key = derive_key(128, "example-taxonomy", 1605)
    victim = TracedGift64(key)
    u1, v1 = round_keys(key, 1, width=64)[0]
    true_pair = ((v1 >> SEGMENT) & 1, (u1 >> SEGMENT) & 1)

    print("One victim, three observation channels")
    print("======================================")
    print(f"target: round-1 key bits of segment {SEGMENT} "
          f"(truth: v={true_pair[0]}, u={true_pair[1]})\n")

    # Access-driven (the paper's GRINCH): full first round for scale.
    grinch = GrinchAttack(victim, AttackConfig(seed=20))
    first_round = grinch.attack_first_round()
    per_segment = first_round.outcome.segments[SEGMENT]
    print(f"access-driven (GRINCH, Flush+Reload):")
    print(f"  observes : which S-box lines are resident after a probe")
    print(f"  cost     : {per_segment.encryptions} encryptions for this "
          f"segment ({first_round.encryptions} for all 16)")
    print(f"  recovered: {per_segment.key_pairs[0]}\n")

    trace = TraceDrivenAttack(victim, seed=21)
    trace_recovery = trace.recover_segment(SEGMENT)
    print("trace-driven (hit/miss sequence, cf. Aciicmez & Koc):")
    print("  observes : the victim's own hit/miss trace (e.g. power)")
    print(f"  cost     : {trace_recovery.encryptions} encryptions "
          f"({trace_recovery.misses_observed} informative misses)")
    print(f"  recovered: {trace_recovery.key_pairs[0]}")
    print("  trick    : GIFT's key-free round 1 self-primes the cache\n")

    timing = TimeDrivenAttack(victim, seed=22)
    timing_recovery = timing.recover_segment(SEGMENT, samples=3_000)
    print("time-driven (total latency, cf. Bernstein):")
    print("  observes : only how long the window took")
    print(f"  cost     : {timing_recovery.encryptions} encryptions "
          f"(statistical; margin {timing_recovery.margin:.2f} misses)")
    print(f"  recovered: {timing_recovery.key_pairs[0]}\n")

    assert per_segment.key_pairs[0] == true_pair
    assert trace_recovery.key_pairs == (true_pair,)
    assert timing_recovery.key_pairs == (true_pair,)
    print("all three channels agree with the planted key — the taxonomy")
    print("differs only in cost: coarser observation, more encryptions.")


if __name__ == "__main__":
    main()
