"""The project's single seed-derivation rule.

Every random choice in the reproduction — victim keys, attacker
plaintext crafting, co-runner noise, Monte-Carlo trial streams — is
derived here, from one documented scheme:

``derive_seed(*parts)`` canonicalises its arguments (strings, numbers,
``None``, booleans, and nested lists/tuples/dicts of those), joins them
with an unprintable separator, and takes the first 8 bytes of the
SHA-256 digest as a 63-bit integer.  Properties the experiments rely on:

* **Deterministic** — the same parts always give the same seed, on any
  platform and Python version (no ``hash()`` randomisation, no OS
  entropy).  ``None`` is a valid part and canonicalises like any other
  value, so a "no seed supplied" run is reproducible too; there is no
  fall-back to nondeterministic seeding anywhere.
* **Scoped** — a leading label string (``"victim-key"``,
  ``"runner-noise"``, ``"trial"``, ...) keeps independent consumers of
  the same user-facing seed statistically independent, replacing the
  magic XOR constants (``seed ^ 0xA77AC4`` and friends) that used to be
  sprinkled across the CLI and benchmarks.
* **Execution-order independent** — per-trial seeds depend only on the
  experiment name, the canonical parameters, the cell, and the trial
  index, never on which worker process runs the trial or in what order,
  which is what makes ``--workers N`` bit-identical to ``--workers 1``.
"""

from __future__ import annotations

import hashlib
import json
import random
from typing import Any

#: Separator between canonicalised parts (cannot appear in JSON output).
_SEP = "\x1f"


def canonical(value: Any) -> str:
    """Canonical string form of a seed part / parameter value.

    Dict keys are sorted, so two parameter mappings that compare equal
    canonicalise identically regardless of insertion order.  Tuples are
    canonicalised as lists.
    """
    return json.dumps(_jsonable(value), sort_keys=True, separators=(",", ":"))


def _jsonable(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    if isinstance(value, list):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(
        f"seed parts must be JSON-like primitives/containers, "
        f"got {type(value).__name__}"
    )


def derive_seed(*parts: Any) -> int:
    """Derive a 63-bit seed from the canonicalised ``parts``."""
    if not parts:
        raise ValueError("derive_seed needs at least one part")
    data = _SEP.join(canonical(part) for part in parts).encode("utf-8")
    return int.from_bytes(hashlib.sha256(data).digest()[:8], "big") >> 1


def derive_rng(*parts: Any) -> random.Random:
    """A :class:`random.Random` seeded by :func:`derive_seed`."""
    return random.Random(derive_seed(*parts))


def derive_key(bits: int, *parts: Any) -> int:
    """Derive a ``bits``-wide victim key from a scope + seed.

    Used everywhere a victim master key is planted (CLI, experiments,
    benchmarks, examples), replacing ad-hoc
    ``random.Random(seed ^ CONST).getrandbits(128)`` recipes.
    """
    if bits < 1:
        raise ValueError(f"bits must be positive, got {bits}")
    return derive_rng("victim-key", bits, *parts).getrandbits(bits)


def trial_seed(experiment: str, params: Any, cell: Any,
               trial_index: int) -> int:
    """The engine's per-trial seed: worker-count and order independent."""
    return derive_seed("trial", experiment, params, cell, trial_index)
