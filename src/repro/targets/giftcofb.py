"""GIFT-COFB as a :class:`CipherTarget`: GRINCH through the nonce.

Does GRINCH's crafted-input attack survive COFB's feedback?  The
analysis (full write-up in ``docs/targets.md``) splits in two:

* **Interior block inputs: no.**  Every block-cipher call after the
  first receives ``pad(M_i) XOR G(Y_{i-1}) XOR (L_i || 0^64)`` — the
  feedback of the previous *output* and a doubled secret mask derived
  from ``Y0``.  Both are unknown to the attacker at crafting time, so
  Algorithm 2 cannot place chosen values at an interior block input.
  This is the documented negative result.
* **The first call: yes.**  ``Y0 = E_K(N)`` encrypts the attacker's
  nonce directly with full-round GIFT-128, so the complete GRINCH
  pipeline runs unchanged with the *nonce* as the crafting channel
  (``crafting_channel = "nonce"``) — nonce-misuse is not even required,
  since every crafted nonce may be fresh.

The target therefore reuses GIFT-128's entire profile and algebra; the
only new piece is the victim, which wraps the traced GIFT-128 core the
way COFB's first call uses it and exposes the surrounding AEAD for
end-to-end key-confirmation in tests.

One modelling simplification, stated openly: ``Y0`` never leaves a real
COFB implementation, so the pipeline's known-pair verification (which
compares ``victim.encrypt`` against the reference block cipher) stands
in for confirming the recovered key against an observed
ciphertext/tag pair — the tests close that gap by re-sealing a message
with the recovered key.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..gift.cofb import GiftCofb
from ..gift.lut import TracedGift128
from .gift import PROFILE_128, GiftTarget
from .layout import TableLayout
from .protocol import TracedVictim
from .registry import register_target


class CofbNonceVictim:
    """COFB's first block-cipher call, as a traceable victim.

    Delegates the traced surface to the underlying GIFT-128 LUT core —
    the address stream of ``E_K(N)`` is identical whether the call was
    made by COFB or by a bare block-cipher user — and carries the AEAD
    object so tests can seal/open with the same key material.
    """

    attack_target = "giftcofb"

    def __init__(self, master_key: int, rounds: int = 40,
                 layout: TableLayout = TableLayout()) -> None:
        self._core = TracedGift128(master_key, rounds=rounds, layout=layout)
        self.aead = GiftCofb(master_key)
        self.master_key = master_key
        self.width = self._core.width
        self.rounds = self._core.rounds
        self.layout = self._core.layout

    def encrypt(self, nonce: int) -> int:
        """``Y0 = E_K(N)`` — the nonce-channel observable."""
        return self._core.encrypt(nonce)

    def encrypt_traced(self, nonce: int, max_rounds: Optional[int] = None):
        return self._core.encrypt_traced(nonce, max_rounds)

    def sbox_indices_by_round(self, nonce: int,
                              max_rounds: int) -> List[List[int]]:
        return self._core.sbox_indices_by_round(nonce, max_rounds)

    def seal(self, nonce: int, associated_data: bytes,
             plaintext: bytes) -> Tuple[bytes, int]:
        """The full AEAD operation whose first internal call the
        attack observes."""
        return self.aead.seal(nonce, associated_data, plaintext)


class GiftCofbTarget(GiftTarget):
    """GIFT-COFB's nonce channel: GIFT-128 algebra, AEAD victim."""

    crafting_channel = "nonce"

    def __init__(self) -> None:
        super().__init__("giftcofb", PROFILE_128, rounds=40)

    def make_victim(self, master_key: int,
                    layout: Optional[TableLayout] = None,
                    rounds: Optional[int] = None) -> TracedVictim:
        return CofbNonceVictim(
            master_key,
            rounds=self.rounds if rounds is None else rounds,
            layout=layout if layout is not None else TableLayout(),
        )
    # reference_encrypt is inherited: Y0 is a plain GIFT-128 encryption.


giftcofb = register_target(GiftCofbTarget())
