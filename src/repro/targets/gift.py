"""GIFT-64 and GIFT-128 as :class:`CipherTarget` implementations.

This module is also the sanctioned re-export surface for GIFT symbols:
the layering checker bans ``repro.gift`` imports everywhere outside
``repro.gift``/``repro.targets``, so consumers (engine experiments, the
CLI, countermeasures, perf benchmarks) import the cipher classes from
here.

:class:`GiftAttackProfile` — the width-specific bookkeeping table the
paper's attack needs (formerly ``repro.core.profile``) — lives here
because the target layer may not import ``repro.core``;
``repro.core.profile`` re-exports it unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from ..gift.bitsliced import (  # noqa: F401  (re-exported)
    BitslicedGift64,
    BitslicedGift128,
    BitslicedGiftCipher,
    numpy_available,
)
from ..gift.cipher import (  # noqa: F401  (re-exported)
    Gift64,
    Gift128,
    GiftCipher,
    round_key_mask,
    sub_cells,
)
from ..gift.constants import constant_mask
from ..gift.keyschedule import round_keys  # noqa: F401  (re-exported)
from ..gift.lut import (  # noqa: F401  (re-exported)
    TracedGift64,
    TracedGift128,
    TracedGiftCipher,
)
from ..gift.permutation import inverse_permutation_for_width, permute
from ..gift.sbox import GIFT_SBOX, GIFT_SBOX_INV  # noqa: F401  (re-exported)
from .layout import TableLayout
from .protocol import CipherTarget, TracedVictim
from .registry import register_target


def _rotate_right_16(word: int, amount: int) -> int:
    amount %= 16
    return ((word >> amount) | (word << (16 - amount))) & 0xFFFF


@dataclass(frozen=True)
class GiftAttackProfile:
    """Structural facts GRINCH needs about one GIFT variant.

    ================================  ==========  ===========
    property                          GIFT-64     GIFT-128
    ================================  ==========  ===========
    state segments                    16          32
    nibble bit receiving ``V``        0           1
    nibble bit receiving ``U``        1           2
    round-key width                   32 bits     64 bits
    rounds for the full 128-bit key   4           2
    verification round (key known)    5           3
    ================================  ==========  ===========

    The verification-round property comes from the shared key schedule:
    GIFT-64's round-5 key is a rotation of round 1's, and GIFT-128's
    round-3 key is ``U3 = rot(V1)``, ``V3 = U1`` — in both cases fully
    predictable once the first attacked round is recovered.
    """

    width: int
    v_offset: int
    u_offset: int
    full_key_rounds: int
    verification_round: int

    @property
    def segments(self) -> int:
        """Number of 4-bit state segments."""
        return self.width // 4

    @property
    def key_offsets(self) -> Tuple[int, int]:
        """Nibble bit offsets carrying ``(V, U)`` key bits."""
        return (self.v_offset, self.u_offset)

    @property
    def free_offsets(self) -> Tuple[int, ...]:
        """Nibble bit offsets not carrying key bits."""
        return tuple(
            offset for offset in range(4)
            if offset not in (self.v_offset, self.u_offset)
        )

    @property
    def bits_per_round(self) -> int:
        """Master-key bits recovered per attacked round."""
        return 2 * self.segments

    # ------------------------------------------------------------------
    # Master-key bookkeeping
    # ------------------------------------------------------------------

    def master_key_bits(self, round_index: int, segment: int
                        ) -> Tuple[int, int]:
        """Master-key bit indices ``(v_bit, u_bit)`` of one target.

        Only defined for the attacked rounds (``1..full_key_rounds``),
        where round keys are fresh master-key material.
        """
        if not 1 <= round_index <= self.full_key_rounds:
            raise ValueError(
                f"GIFT-{self.width} master-key quarters align with rounds "
                f"1-{self.full_key_rounds}, got round {round_index}"
            )
        if not 0 <= segment < self.segments:
            raise ValueError(
                f"GIFT-{self.width} has {self.segments} segments, "
                f"got {segment}"
            )
        if self.width == 64:
            base = 32 * (round_index - 1)
            return base + segment, base + 16 + segment
        # GIFT-128: RK1 = (U=k5||k4, V=k1||k0); RK2 = (U=k7||k6, V=k3||k2).
        if round_index == 1:
            return segment, 64 + segment
        return 32 + segment, 96 + segment

    def assemble_master_key(self, round_key_list: Sequence[Tuple[int, int]]
                            ) -> int:
        """Rebuild the 128-bit master key from the attacked round keys."""
        if len(round_key_list) != self.full_key_rounds:
            raise ValueError(
                f"GIFT-{self.width} needs {self.full_key_rounds} round "
                f"keys, got {len(round_key_list)}"
            )
        master = 0
        for round_index, (u, v) in enumerate(round_key_list, start=1):
            for bit in range(2 * self.segments // 2):
                v_pos, u_pos = self.master_key_bits(round_index, bit)
                master |= ((v >> bit) & 1) << v_pos
                master |= ((u >> bit) & 1) << u_pos
        return master

    # ------------------------------------------------------------------
    # Verification round
    # ------------------------------------------------------------------

    def verification_key(self, first_round_key: Tuple[int, int]
                         ) -> Tuple[int, int]:
        """The verification round's ``(U, V)``, from the round-1 key.

        GIFT-64: ``RK5 = (U1 >>> 2, V1 >>> 12)`` (16-bit rotations).
        GIFT-128: ``U3 = (v1_hi >>> 2) || (v1_lo >>> 12)``, ``V3 = U1``.
        """
        u1, v1 = first_round_key
        if self.width == 64:
            return (_rotate_right_16(u1, 2), _rotate_right_16(v1, 12))
        v1_high = (v1 >> 16) & 0xFFFF
        v1_low = v1 & 0xFFFF
        u3 = (_rotate_right_16(v1_high, 2) << 16) | _rotate_right_16(v1_low, 12)
        return (u3, u1)


PROFILE_64 = GiftAttackProfile(
    width=64, v_offset=0, u_offset=1,
    full_key_rounds=4, verification_round=5,
)

PROFILE_128 = GiftAttackProfile(
    width=128, v_offset=1, u_offset=2,
    full_key_rounds=2, verification_round=3,
)


def profile_for_width(width: int) -> GiftAttackProfile:
    """Return the attack profile for a GIFT state width."""
    if width == 64:
        return PROFILE_64
    if width == 128:
        return PROFILE_128
    raise ValueError(f"GIFT only defines 64- and 128-bit states, got {width}")


class GiftTarget(CipherTarget):
    """One GIFT variant as a pluggable cipher target.

    Wraps the :class:`GiftAttackProfile` bookkeeping with the crafting,
    victim-construction, and key-schedule methods the generic pipeline
    drives.  Round keys are ``(U, V)`` half-pairs throughout.
    """

    probe_round_offset = 1  # key enters after round t; monitored in t+1
    first_round_direct = False
    key_bits = 128
    sbox = GIFT_SBOX
    table_names = (
        "repro.gift.sbox.GIFT_SBOX",
        "repro.gift.sbox.GIFT_SBOX_INV",
    )
    crafting_channel = "plaintext"

    def __init__(self, name: str, profile: GiftAttackProfile,
                 rounds: int) -> None:
        self.name = name
        self.profile = profile
        self.width = profile.width
        self.rounds = rounds
        self.full_key_rounds = profile.full_key_rounds
        self.verification_round = profile.verification_round
        self.key_offsets = profile.key_offsets
        self.free_offsets = profile.free_offsets
        self._inverse_perm = inverse_permutation_for_width(profile.width)

    # -- Algorithm-1 support ------------------------------------------

    def inverse_permutation(self) -> Tuple[int, ...]:
        return self._inverse_perm

    def round_constant_mask(self, round_index: int) -> int:
        return constant_mask(round_index, self.width)

    # -- crafting ------------------------------------------------------

    def invert_rounds(self, state: int,
                      prior_round_keys: Sequence[Tuple[int, int]]) -> int:
        """Step 5's inversion: ``input_r = S⁻¹(P⁻¹(input_{r+1} XOR RK_r
        XOR C_r))`` from the constrained round-``t`` input down to the
        plaintext."""
        width = self.width
        for round_index in range(len(prior_round_keys), 0, -1):
            u, v = prior_round_keys[round_index - 1]
            state ^= round_key_mask(u, v, width)
            state ^= constant_mask(round_index, width)
            state = permute(state, self._inverse_perm)
            state = sub_cells(state, width, inverse=True)
        return state

    # -- key-relation algebra -----------------------------------------

    def master_key_bit_positions(self, round_index: int,
                                 segment: int) -> Tuple[int, ...]:
        return self.profile.master_key_bits(round_index, segment)

    def assemble_master_key(self,
                            round_keys: Sequence[Tuple[int, int]]) -> int:
        return self.profile.assemble_master_key(round_keys)

    def verification_round_key(
            self, round_keys: Sequence[Tuple[int, int]]
    ) -> Tuple[int, int]:
        # GIFT's verification key depends only on the round-1 key.
        return self.profile.verification_key(round_keys[0])

    def segment_key_bits(self, round_key: Tuple[int, int],
                         segment: int) -> Tuple[int, int]:
        u, v = round_key
        return ((v >> segment) & 1, (u >> segment) & 1)

    def round_key_from_segment_bits(
            self, bits_by_segment: Sequence[Tuple[int, int]]
    ) -> Tuple[int, int]:
        u = 0
        v = 0
        for segment, (v_bit, u_bit) in enumerate(bits_by_segment):
            v |= v_bit << segment
            u |= u_bit << segment
        return u, v

    # -- victims -------------------------------------------------------

    def make_victim(self, master_key: int,
                    layout: Optional[TableLayout] = None,
                    rounds: Optional[int] = None) -> TracedVictim:
        return TracedGiftCipher(
            master_key, width=self.width,
            rounds=self.rounds if rounds is None else rounds,
            layout=layout if layout is not None else TableLayout(),
        )

    def reference_encrypt(self, master_key: int, plaintext: int,
                          rounds: Optional[int] = None) -> int:
        cipher = GiftCipher(
            master_key, self.width,
            self.rounds if rounds is None else rounds,
        )
        return cipher.encrypt(plaintext)

    def reference_encrypt_batch(self, master_key: int,
                                plaintexts: Sequence[int],
                                rounds: Optional[int] = None) -> List[int]:
        if not numpy_available():
            return super().reference_encrypt_batch(
                master_key, plaintexts, rounds
            )
        cipher = BitslicedGiftCipher.from_master_key(
            master_key, self.width,
            self.rounds if rounds is None else rounds,
        )
        return cipher.encrypt_batch(plaintexts)

    def batch_view(self, victim: TracedVictim) -> Optional[Any]:
        """Bitslice any GIFT victim's expanded key schedule.

        Countermeasure subclasses stay batch-equivalent for free (the
        hardened schedule only changes ``compute_round_keys``, the
        reshaped S-box only load addresses); wrapped victims the
        isinstance check cannot see through (recording/replay) fall
        back to the scalar path, which is what keeps recording
        RNG-transparent and replay destructive-safe.
        """
        if not numpy_available():
            return None
        if not isinstance(victim, (TracedGiftCipher, GiftCipher)):
            return None
        return BitslicedGiftCipher.from_victim(victim)


gift64 = register_target(GiftTarget("gift64", PROFILE_64, rounds=28))
gift128 = register_target(GiftTarget("gift128", PROFILE_128, rounds=40))


def standard_round_keys(master_key: int, rounds: int,
                        width: int) -> List[Tuple[int, int]]:
    """The GIFT key schedule (alias of :func:`repro.gift.keyschedule.round_keys`)."""
    return round_keys(master_key, rounds, width)
