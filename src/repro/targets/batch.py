"""Batch execution surface of the target layer.

:class:`BatchVictim` wraps a scalar traced victim together with an
optional vectorized backend (the bitsliced ciphers of
:mod:`repro.gift.bitsliced` / :mod:`repro.present.bitsliced`, obtained
via :meth:`~repro.targets.protocol.CipherTarget.batch_view`).  The
scalar :class:`~repro.targets.protocol.TracedVictim` surface is
delegated unchanged, so a ``BatchVictim`` drops into every existing
consumer; the batch surface (``encrypt_batch`` /
``sbox_indices_batch``) runs vectorized when a backend exists and
falls back to an exact scalar loop otherwise — which is how targets
without a bitsliced port (GIFT-COFB) keep working unmodified.

The fallback's ``sbox_indices_batch`` returns nested lists indexed
``[round - 1][segment][block]`` — the same indexing as the backends'
``(rounds, segments, N)`` arrays — so callers never branch on which
path produced the result.
"""

from __future__ import annotations

from typing import Any, List, Optional

from .protocol import TracedVictim


class BatchVictim:
    """A traced victim plus its (optional) vectorized batch backend."""

    def __init__(self, victim: TracedVictim,
                 backend: Optional[Any] = None) -> None:
        self.victim = victim
        self.backend = backend
        self.width = victim.width
        self.rounds = victim.rounds
        self.layout = victim.layout

    @property
    def vectorized(self) -> bool:
        """Whether batch calls run on a bitsliced backend."""
        return self.backend is not None

    # -- scalar TracedVictim surface (delegated) ----------------------

    def encrypt(self, plaintext: int) -> int:
        return self.victim.encrypt(plaintext)

    def encrypt_traced(self, plaintext: int,
                       max_rounds: Optional[int] = None) -> Any:
        return self.victim.encrypt_traced(plaintext, max_rounds=max_rounds)

    def sbox_indices_by_round(self, plaintext: int,
                              max_rounds: int) -> List[List[int]]:
        return self.victim.sbox_indices_by_round(plaintext, max_rounds)

    # -- batch surface -------------------------------------------------

    def encrypt_batch(self, plaintexts: Any) -> List[int]:
        """``result[n] == encrypt(plaintexts[n])`` for the whole batch."""
        if self.backend is not None:
            return self.backend.encrypt_batch(plaintexts)
        return [self.victim.encrypt(plaintext) for plaintext in plaintexts]

    def sbox_indices_batch(self, plaintexts: Any,
                           max_rounds: Optional[int] = None) -> Any:
        """Per-round S-box indices, indexed ``[round - 1][segment][block]``."""
        if self.backend is not None:
            return self.backend.sbox_indices_batch(plaintexts, max_rounds)
        limit = self.rounds if max_rounds is None else max_rounds
        per_block = [
            self.victim.sbox_indices_by_round(plaintext, limit)
            for plaintext in plaintexts
        ]
        if not per_block:
            return []
        segments = len(per_block[0][0])
        return [
            [
                [indices[round_index][segment] for indices in per_block]
                for segment in range(segments)
            ]
            for round_index in range(limit)
        ]

    def __getattr__(self, name: str) -> Any:
        # Optional victim attributes (probe_round_offset, attack_target,
        # master_key, ...) pass through so target resolution and the
        # channel's getattr probes see the wrapped victim.
        return getattr(self.victim, name)

    def __repr__(self) -> str:  # pragma: no cover - debug sugar
        mode = "vectorized" if self.vectorized else "scalar-loop"
        return f"<BatchVictim {type(self.victim).__name__} ({mode})>"


__all__ = ["BatchVictim"]
