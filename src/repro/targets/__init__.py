"""The target layer: pluggable cipher definitions for the GRINCH pipeline.

A :class:`CipherTarget` captures everything the attack pipeline needs
to know about one table-based cipher — declared table layouts, round
structure, the traced-victim constructor, the crafted-input inversion,
and the round-key-to-master-key algebra.  The pipeline layers above
(``repro.core``, ``repro.channel``, ``repro.engine``) consume targets
through this package and never import a cipher package directly; the
layering checker enforces both directions (ciphers are only importable
from here, and this package may not import the pipeline).

Built-in targets: ``gift64``, ``gift128`` (the paper's victims),
``present80`` (the protocol's proof port, experiment E16), and
``giftcofb`` (GIFT-COFB's nonce channel).  See ``docs/targets.md``.
"""

from .batch import BatchVictim
from .layout import MAX_SEGMENTS, SBOX_ENTRIES, TableLayout
from .protocol import CipherTarget, RoundKey, TracedVictim
from .registry import (
    get_target,
    register_target,
    registered_targets,
    resolve_target_for,
    target_names,
)
from .trace import EncryptionTrace, MemoryAccess, TestVector

__all__ = [
    "BatchVictim",
    "CipherTarget",
    "EncryptionTrace",
    "MAX_SEGMENTS",
    "MemoryAccess",
    "RoundKey",
    "SBOX_ENTRIES",
    "TableLayout",
    "TestVector",
    "TracedVictim",
    "get_target",
    "register_target",
    "registered_targets",
    "resolve_target_for",
    "target_names",
]
