"""Table-layout vocabulary of the target layer.

:class:`TableLayout` (where a victim's lookup tables live in data
memory) was born in :mod:`repro.gift.lut` but is cipher-agnostic: any
table-based SPN victim places a 16-entry S-box and a per-segment
scatter table somewhere in its binary.  The target layer re-exports it
as the sanctioned, cipher-neutral import path — the layering checker
bans direct ``repro.gift`` imports outside ``repro.gift`` and
``repro.targets``, so every other layer gets the layout types from
here.
"""

from __future__ import annotations

from ..gift.lut import MAX_SEGMENTS, TableLayout

#: Entries in a 4-bit S-box — the monitored table of every registered
#: target (GIFT, PRESENT, and GIFT-COFB all substitute nibbles through
#: one 16-entry table).
SBOX_ENTRIES: int = 16

__all__ = ["TableLayout", "MAX_SEGMENTS", "SBOX_ENTRIES"]
