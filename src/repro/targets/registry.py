"""The target registry: name -> :class:`CipherTarget`.

Registration of the built-in targets is lazy (triggered by the first
lookup), mirroring :mod:`repro.engine.registry`: ``repro.core`` imports
this module at attack-construction time, and the builtin target modules
import the cipher packages — eager registration would pull every cipher
implementation in whenever anything touched ``repro.targets``.
"""

from __future__ import annotations

from typing import Any, Dict, List

from .protocol import CipherTarget

_REGISTRY: Dict[str, CipherTarget] = {}
_BUILTINS_LOADED = False


def register_target(target: CipherTarget) -> CipherTarget:
    """Register ``target`` under its name (later wins, like monkeypatching
    a registry entry in tests)."""
    _REGISTRY[target.name] = target
    return target


def _ensure_builtins() -> None:
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    # Imported for their registration side effects.
    from . import gift, giftcofb, present  # noqa: F401


def get_target(name: str) -> CipherTarget:
    """Resolve a registered target by name."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown cipher target {name!r}; known: "
            f"{', '.join(target_names())}"
        ) from None


def target_names() -> List[str]:
    """Names of all registered targets, sorted."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def registered_targets() -> Dict[str, CipherTarget]:
    """Snapshot of the registry (name -> target)."""
    _ensure_builtins()
    return dict(_REGISTRY)


def resolve_target_for(victim: Any) -> CipherTarget:
    """Map a victim instance to its registered target.

    Victims carry their registry name in an ``attack_target`` attribute;
    plain GIFT victims (including the countermeasure subclasses, which
    keep GIFT's structure) are recognised by state width alone, so every
    pre-protocol victim keeps working unmodified.
    """
    name = getattr(victim, "attack_target", None)
    if name is not None:
        return get_target(name)
    width = getattr(victim, "width", None)
    if width in (64, 128):
        return get_target(f"gift{width}")
    raise TypeError(
        f"cannot resolve a cipher target for {type(victim).__name__}: "
        f"no attack_target attribute and width {width!r} is not a GIFT "
        f"state width"
    )
