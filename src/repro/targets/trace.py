"""Trace and test-vector records, re-exported cipher-neutrally.

:class:`MemoryAccess` / :class:`EncryptionTrace` describe *any*
table-based victim's address stream (the tags carry a round, a segment,
a table name, and an index — nothing GIFT-specific), and
:class:`TestVector` is a plain known-answer triple.  They are defined
next to the first victim that emitted them (:mod:`repro.gift`), and the
target layer re-exports them so the channel stack, the variants, and
new cipher ports can consume traces without importing ``repro.gift``.
"""

from __future__ import annotations

from ..gift.trace import EncryptionTrace, MemoryAccess
from ..gift.vectors import TestVector

__all__ = ["EncryptionTrace", "MemoryAccess", "TestVector"]
