"""PRESENT-80 as a :class:`CipherTarget` — the protocol's proof port.

PRESENT is GIFT's direct ancestor and differs from it in every way the
protocol abstracts:

* The full 64-bit round key is XORed into the state *before* the S-box
  layer, so the monitored access of a round-``t`` target happens in
  round ``t`` itself (``probe_round_offset = 0``) and carries **four**
  key bits per segment instead of GIFT's two (``key_offsets =
  (0, 1, 2, 3)``, no free bits).
* Round 1's S-box indices are already key-dependent, so a round-1
  target pins the plaintext nibble to ``0xF`` directly
  (``first_round_direct``) instead of tracing through a previous round.
* PRESENT has no state-side round constants (the counter lands in the
  key register), so :meth:`round_constant_mask` is 0.
* Two 64-bit round keys over-cover the 80-bit master key, but the
  overlap runs through the key schedule's S-box: ``K2`` bits 63..60 map
  *nonlinearly* to master bits (position sentinel ``-1``), and
  :meth:`assemble_master_key` inverts that S-box explicitly.

The port is exercised end-to-end by experiment E16
(``present-recovery``); ``docs/targets.md`` walks through it.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from ..present.bitsliced import (  # noqa: F401  (re-exported)
    BitslicedPresent,
    numpy_available,
)
from ..present.cipher import (
    PLAYER_INV,
    PRESENT_ROUNDS,
    PRESENT_SBOX,
    PRESENT_SBOX_INV,
    _key_schedule_80,
    _p_layer,
    _sbox_layer,
)
from ..present.lut import TracedPresent
from .layout import TableLayout
from .protocol import CipherTarget, TracedVictim
from .registry import register_target


class PresentTarget(CipherTarget):
    """PRESENT-80 as a pluggable cipher target.

    Round keys are plain 64-bit integers (the full per-round XOR mask).
    ``full_key_rounds = 2`` because ``K1`` contributes master bits
    79..16 and ``K2`` the remaining bits 15..0 (plus redundant overlap);
    the verification round is round 3, whose key follows from the
    schedule once ``K1`` and ``K2`` are hypothesised.
    """

    name = "present80"
    width = 64
    key_bits = 80
    rounds = PRESENT_ROUNDS
    full_key_rounds = 2
    verification_round = 3
    probe_round_offset = 0
    first_round_direct = True
    key_offsets = (0, 1, 2, 3)
    free_offsets = ()
    sbox = PRESENT_SBOX
    table_names = (
        "repro.present.cipher.PRESENT_SBOX",
        "repro.present.cipher.PRESENT_SBOX_INV",
    )
    crafting_channel = "plaintext"

    # -- Algorithm-1 support ------------------------------------------

    def inverse_permutation(self) -> Tuple[int, ...]:
        return PLAYER_INV

    def round_constant_mask(self, round_index: int) -> int:
        # PRESENT's round counter enters the *key register*, never the
        # state, so the monitored index is state XOR key bits only.
        return 0

    # -- crafting ------------------------------------------------------

    def invert_rounds(self, state: int,
                      prior_round_keys: Sequence[int]) -> int:
        """Invert a constrained state back to a plaintext.

        For a round-``t`` target with ``t >= 2`` the constrained state
        is the round-``t-1`` *S-layer input* (already key-XORed): its
        S-box outputs scatter through the P-layer into the monitored
        round-``t`` nibble.  For ``t = 1`` (``first_round_direct``) the
        state is the plaintext itself and there is nothing to invert.
        """
        if not prior_round_keys:
            return state
        for round_index in range(len(prior_round_keys), 0, -1):
            state ^= prior_round_keys[round_index - 1]
            if round_index == 1:
                return state
            state = _sbox_layer(_p_layer(state, inverse=True), inverse=True)
        raise AssertionError("unreachable")  # pragma: no cover

    # -- key-relation algebra -----------------------------------------

    def master_key_bit_positions(self, round_index: int,
                                 segment: int) -> Tuple[int, ...]:
        """Master-key positions of one segment's four key bits.

        ``K1 = register >> 16``, so ``K1[b]`` is master bit ``b + 16``.
        After one schedule step (rotate left 61, S-box on the top
        nibble, counter XOR below bit 16), ``K2[b]`` is master bit
        ``(b + 35) mod 80`` for ``b <= 59``; ``K2[63:60]`` is
        ``S(master[18:15])`` — nonlinear, reported as ``-1``.
        """
        if not 1 <= round_index <= self.full_key_rounds:
            raise ValueError(
                f"PRESENT-80 master-key coverage uses rounds "
                f"1-{self.full_key_rounds}, got round {round_index}"
            )
        if not 0 <= segment < self.segments:
            raise ValueError(
                f"PRESENT has {self.segments} segments, got {segment}"
            )
        if round_index == 1:
            return tuple(16 + 4 * segment + j for j in range(4))
        if segment == 15:
            return (-1, -1, -1, -1)
        return tuple((4 * segment + j + 35) % 80 for j in range(4))

    def assemble_master_key(self, round_keys: Sequence[int]) -> int:
        """Rebuild the 80-bit master key from ``(K1, K2)``.

        Master bits 79..16 come from ``K1`` directly; bits 14..0 from
        ``K2`` bits 59..45; bit 15 is bit 0 of ``S^-1(K2[63:60])``
        (the schedule S-box ate master bits 18..15).  The redundant
        overlap (``K2``'s low bits repeat ``K1`` material) is not
        cross-checked here — the known-pair verification stage is the
        arbiter of a wrong hypothesis.
        """
        if len(round_keys) != self.full_key_rounds:
            raise ValueError(
                f"PRESENT-80 needs {self.full_key_rounds} round keys, "
                f"got {len(round_keys)}"
            )
        k1, k2 = round_keys
        master = (k1 & ((1 << 64) - 1)) << 16
        master |= (k2 >> 45) & 0x7FFF
        master |= (PRESENT_SBOX_INV[(k2 >> 60) & 0xF] & 1) << 15
        return master

    def verification_round_key(self, round_keys: Sequence[int]) -> int:
        # K3 depends on the K2 hypothesis (segment 15 is ambiguous
        # until verification), so it is recomputed per hypothesis from
        # the assembled master candidate.
        master = self.assemble_master_key(round_keys)
        return _key_schedule_80(master)[2]

    def segment_key_bits(self, round_key: int,
                         segment: int) -> Tuple[int, ...]:
        return tuple(
            (round_key >> (4 * segment + j)) & 1 for j in range(4)
        )

    def round_key_from_segment_bits(
            self, bits_by_segment: Sequence[Tuple[int, ...]]) -> int:
        key = 0
        for segment, bits in enumerate(bits_by_segment):
            for j, bit in enumerate(bits):
                key |= bit << (4 * segment + j)
        return key

    # -- victims -------------------------------------------------------

    def make_victim(self, master_key: int,
                    layout: Optional[TableLayout] = None,
                    rounds: Optional[int] = None) -> TracedVictim:
        return TracedPresent(
            master_key, key_bits=self.key_bits,
            rounds=self.rounds if rounds is None else rounds,
            layout=layout if layout is not None else TableLayout(),
        )

    def reference_encrypt(self, master_key: int, plaintext: int,
                          rounds: Optional[int] = None) -> int:
        """Bit-level reference matching :class:`TracedPresent` exactly,
        including the partial-round post-whitening convention."""
        limit = self.rounds if rounds is None else rounds
        keys: List[int] = _key_schedule_80(master_key)
        state = plaintext
        for round_index in range(limit):
            state ^= keys[round_index]
            state = _p_layer(_sbox_layer(state))
        return state ^ keys[limit]

    def reference_encrypt_batch(self, master_key: int,
                                plaintexts: Sequence[int],
                                rounds: Optional[int] = None) -> List[int]:
        if not numpy_available():
            return super().reference_encrypt_batch(
                master_key, plaintexts, rounds
            )
        cipher = BitslicedPresent(
            master_key, key_bits=self.key_bits,
            rounds=self.rounds if rounds is None else rounds,
        )
        return cipher.encrypt_batch(plaintexts)

    def batch_view(self, victim: TracedVictim) -> Optional[Any]:
        """Bitslice a scalar PRESENT victim's key schedule (scalar
        fallback for wrapped recording/replay victims, as on GIFT)."""
        if not numpy_available():
            return None
        if not isinstance(victim, TracedPresent):
            return None
        return BitslicedPresent.from_victim(victim)


present80 = register_target(PresentTarget())
