"""The :class:`CipherTarget` protocol: everything GRINCH needs to know
about one table-based SPN cipher.

The attack pipeline (crafting, elimination, recovery, the observation
channel, the experiment engine) is generic over any cipher whose round
function performs secret-indexed loads from a small table.  What is
*not* generic is the bookkeeping: where the key bits sit in the
monitored index, which round the monitored access happens in, how a
constrained round input inverts back to a plaintext, and how recovered
round keys relate to the master key.  A :class:`CipherTarget` captures
exactly that bookkeeping as first-class data and methods, so porting a
new cipher means implementing one class — the L1–L4 channel stack and
the E-registry stay untouched (see ``docs/targets.md`` for the worked
PRESENT-80 port).

Round-key values are opaque to the pipeline: GIFT uses ``(U, V)``
half-pairs, PRESENT a full 64-bit word.  The pipeline only ever moves
them between target methods (:meth:`CipherTarget.invert_rounds`,
:meth:`CipherTarget.assemble_master_key`, ...) or assembles them from
per-segment bit tuples via
:meth:`CipherTarget.round_key_from_segment_bits`.

The one structural assumption that stays: the monitored access of a
``(round t, segment s)`` target reads ``constrained_state[s] XOR
key_bits XOR constants``, where the constrained state is the state just
before the key material enters the monitored S-box layer.  GIFT's key
enters *after* round ``t``'s S+P (monitored access in round ``t + 1``,
:attr:`CipherTarget.probe_round_offset` = 1); PRESENT's key enters
*before* round ``t``'s S-box (monitored in round ``t`` itself,
offset 0).
"""

from __future__ import annotations

import abc
from typing import Any, List, Optional, Sequence, Tuple

try:  # pragma: no cover - Protocol import is version-dependent sugar
    from typing import Protocol
except ImportError:  # pragma: no cover - Python < 3.8
    Protocol = object  # type: ignore[assignment]

from ..staticcheck.equivalence import (
    ObservationPartition,
    partition_by_observation,
    refine,
)
from .layout import SBOX_ENTRIES, TableLayout

#: A round key as one opaque value — ``(U, V)`` for GIFT, an int for
#: PRESENT.  The pipeline never looks inside; only target methods do.
RoundKey = Any


class TracedVictim(Protocol):
    """Duck type of a victim instance the observation channel drives.

    Any object with this surface plugs into
    :class:`~repro.channel.observer.ObservationChannel` — the channel
    additionally reads the optional ``probe_round_offset`` (default 1)
    and ``attack_target`` (registry name) attributes via ``getattr``.
    """

    width: int
    rounds: int
    layout: TableLayout

    def encrypt(self, plaintext: int) -> int: ...

    def encrypt_traced(self, plaintext: int,
                       max_rounds: Optional[int] = None) -> Any: ...

    def sbox_indices_by_round(self, plaintext: int,
                              max_rounds: int) -> List[List[int]]: ...


class CipherTarget(abc.ABC):
    """Structural facts and key-relation algebra of one attackable cipher.

    Concrete targets (``gift64``, ``gift128``, ``present80``,
    ``giftcofb``) are registered in :mod:`repro.targets.registry`;
    :func:`~repro.targets.registry.resolve_target_for` maps a victim
    instance back to its target.
    """

    # ------------------------------------------------------------------
    # Identity and round structure (attributes/properties)
    # ------------------------------------------------------------------

    #: Registry name (``"gift64"``, ``"present80"``, ...).
    name: str
    #: State width in bits.
    width: int
    #: Master-key length in bits.
    key_bits: int
    #: Default round count of the victim.
    rounds: int
    #: Rounds the attack must break for the full master key.
    full_key_rounds: int
    #: Round whose key is schedule-predictable from the attacked rounds,
    #: used to resolve last-round ambiguity.
    verification_round: int
    #: Monitored round of a round-``t`` target is ``t + offset``:
    #: 1 for GIFT (key enters after round ``t``), 0 for PRESENT (key
    #: enters before round ``t``'s S-box layer).
    probe_round_offset: int
    #: Whether a round-1 target constrains the plaintext segment
    #: *directly* (PRESENT: monitored index = plaintext nibble XOR key)
    #: instead of tracing through the previous round's S+P (GIFT).
    first_round_direct: bool
    #: Index-bit offsets (within the monitored 4-bit index) that carry
    #: key bits, in the order key-bit tuples are reported.
    key_offsets: Tuple[int, ...]
    #: Index-bit offsets carrying no key material.
    free_offsets: Tuple[int, ...]
    #: The cipher's S-box, as a 16-entry tuple.
    sbox: Tuple[int, ...]
    #: Qualified names of the declared table layouts backing the
    #: monitored loads (resolvable via ``staticcheck.equivalence``).
    table_names: Tuple[str, ...]
    #: Which attacker-chosen input carries the crafted blocks into the
    #: victim: ``"plaintext"`` for the block ciphers, ``"nonce"`` for
    #: GIFT-COFB (the only attacker-controlled block cipher input the
    #: AEAD mode exposes; see ``docs/targets.md``).
    crafting_channel: str = "plaintext"

    @property
    def segments(self) -> int:
        """Number of 4-bit state segments."""
        return self.width // 4

    @property
    def bits_per_round(self) -> int:
        """Master-key bits recovered per attacked round."""
        return len(self.key_offsets) * self.segments

    # ------------------------------------------------------------------
    # Algorithm-1 support (target tracing)
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def inverse_permutation(self) -> Tuple[int, ...]:
        """Inverse of the cipher's bit permutation, full state width."""

    @abc.abstractmethod
    def round_constant_mask(self, round_index: int) -> int:
        """Key-independent XOR mask the monitored round applies to the
        state alongside the key bits (0 for ciphers without state-side
        round constants, e.g. PRESENT)."""

    def inputs_for_output_bits(
            self, constraints: Sequence[Tuple[int, int]]) -> Tuple[int, ...]:
        """S-box inputs whose output satisfies every ``(bit, value)``
        constraint — the paper's ``List_A``/``List_B`` construction,
        over this cipher's S-box."""
        candidates = []
        for value in range(SBOX_ENTRIES):
            output = self.sbox[value]
            if all((output >> bit) & 1 == wanted
                   for bit, wanted in constraints):
                candidates.append(value)
        return tuple(candidates)

    # ------------------------------------------------------------------
    # Algorithm-2 / Step-5 support (crafting)
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def invert_rounds(self, state: int,
                      prior_round_keys: Sequence[RoundKey]) -> int:
        """Invert the crafted constrained state back to a plaintext.

        ``state`` is the constrained state of a round-``t`` target with
        ``t = len(prior_round_keys) + 1`` (the state
        :func:`~repro.core.crafting.build_target_round_input` built from
        the spec's valid-input lists); the return value is the
        plaintext that reaches it under ``prior_round_keys``.
        """

    # ------------------------------------------------------------------
    # Key-relation algebra
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def master_key_bit_positions(self, round_index: int,
                                 segment: int) -> Tuple[int, ...]:
        """Master-key bit indices recovered by one target, in
        ``key_offsets`` order; ``-1`` marks a recovered bit that maps
        nonlinearly (through the key schedule's S-box) rather than to a
        single master-key position."""

    @abc.abstractmethod
    def assemble_master_key(self,
                            round_keys: Sequence[RoundKey]) -> int:
        """Rebuild the master key from the ``full_key_rounds`` recovered
        round keys."""

    @abc.abstractmethod
    def verification_round_key(self,
                               round_keys: Sequence[RoundKey]) -> RoundKey:
        """The verification round's key, derived from the recovered
        round keys (rounds ``1..full_key_rounds``) via the schedule."""

    @abc.abstractmethod
    def segment_key_bits(self, round_key: RoundKey,
                         segment: int) -> Tuple[int, ...]:
        """The key bits one segment's monitored index absorbs, in
        ``key_offsets`` order."""

    @abc.abstractmethod
    def round_key_from_segment_bits(
            self, bits_by_segment: Sequence[Tuple[int, ...]]) -> RoundKey:
        """Assemble a round key from per-segment bit tuples (the
        inverse of :meth:`segment_key_bits` over all segments)."""

    # ------------------------------------------------------------------
    # Victims and references
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def make_victim(self, master_key: int,
                    layout: Optional[TableLayout] = None,
                    rounds: Optional[int] = None) -> TracedVictim:
        """Instantiate the traced LUT victim for this target."""

    @abc.abstractmethod
    def reference_encrypt(self, master_key: int, plaintext: int,
                          rounds: Optional[int] = None) -> int:
        """Ground-truth encryption (bit-level reference implementation)
        used to verify an assembled master key against a known pair."""

    # ------------------------------------------------------------------
    # Batch execution (defaults: exact scalar loops)
    # ------------------------------------------------------------------

    def make_victim_batch(self, master_key: int,
                          layout: Optional[TableLayout] = None,
                          rounds: Optional[int] = None) -> Any:
        """Instantiate a batch-capable victim.

        Returns a :class:`~repro.targets.batch.BatchVictim`: the scalar
        traced victim with ``encrypt_batch`` / ``sbox_indices_batch``
        on top, vectorized when :meth:`batch_view` provides a bitsliced
        backend and an exact scalar loop otherwise — so targets without
        a bitsliced port (GIFT-COFB) work unmodified.
        """
        from .batch import BatchVictim

        victim = self.make_victim(master_key, layout, rounds)
        return BatchVictim(victim, backend=self.batch_view(victim))

    def reference_encrypt_batch(self, master_key: int,
                                plaintexts: Sequence[int],
                                rounds: Optional[int] = None) -> List[int]:
        """Ground-truth encryption of a whole batch.

        The default loops :meth:`reference_encrypt`; bitsliced targets
        override this with a vectorized path validated bit-exact
        against the loop.
        """
        return [self.reference_encrypt(master_key, plaintext, rounds)
                for plaintext in plaintexts]

    def batch_view(self, victim: Any) -> Optional[Any]:
        """A vectorized index/encryption backend for ``victim``, or
        ``None`` when only the scalar path exists.

        The observation channel treats ``None`` as "loop the scalar
        :meth:`~repro.channel.observer.ObservationChannel.observe`" —
        the correct answer for wrapped victims it cannot see through
        (recording or replay victims) and for ciphers without a
        bitsliced port.
        """
        return None

    # ------------------------------------------------------------------
    # Leakage enumeration (joint per-round bound)
    # ------------------------------------------------------------------

    def observation_partitions(
            self, segment: int, geometry: Any,
            layout: Optional[TableLayout] = None
    ) -> Tuple[ObservationPartition, ...]:
        """Per-site observation partitions of one segment's round work.

        One secret nibble drives two loads per round in the LUT
        victims: the S-box load (address = f(index)) and the scatter
        load (address = f(segment, S(index))).  Each partition maps the
        16 possible nibbles to cache-line observations under
        ``geometry``.
        """
        table_layout = layout if layout is not None else TableLayout()
        sbox = self.sbox
        segments = self.segments
        sbox_site = partition_by_observation(
            SBOX_ENTRIES,
            lambda x: geometry.line_of(table_layout.sbox_address(x)),
        )
        scatter_site = partition_by_observation(
            SBOX_ENTRIES,
            lambda x: geometry.line_of(
                table_layout.perm_address(segment, sbox[x], segments)
            ),
        )
        return (sbox_site, scatter_site)

    def joint_round_partition(
            self, segment: int, geometry: Any,
            layout: Optional[TableLayout] = None) -> ObservationPartition:
        """Joint (refined) partition across all of one segment's sites
        within a single round — ROADMAP item 4's follow-on: the
        per-site bounds miss what the *combination* of the S-box and
        scatter loads reveals."""
        partitions = self.observation_partitions(segment, geometry, layout)
        joint = partitions[0]
        for site in partitions[1:]:
            joint = refine(joint, site)
        return joint

    def joint_bits_per_round(self, geometry: Any,
                             layout: Optional[TableLayout] = None) -> float:
        """Shannon bits one full round leaks across all segments when
        each segment's sites are observed jointly."""
        return sum(
            self.joint_round_partition(segment, geometry, layout)
            .shannon_bits
            for segment in range(self.segments)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug sugar
        return f"<CipherTarget {self.name}>"
