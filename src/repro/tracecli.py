"""Front-end for the L0 trace channel: ``python -m repro trace ...``.

.. code-block:: console

   $ python -m repro trace record --target gift64 --seed 0 \\
         --scope full-key --out tests/corpus/gift64-seed0-full.grtr
   $ python -m repro trace replay tests/corpus/gift64-seed0-full.grtr \\
         --check
   $ python -m repro trace convert run.grtr run.jsonl
   $ python -m repro trace convert victim.log run.grtr --segments 16
   $ python -m repro trace info tests/corpus/gift64-seed0-full.grtr

``record`` runs the real attack against a registered target with a
:class:`~repro.trace.RecordingVictim` in front of the victim and
writes the captured trace; ``replay`` reruns the attack with a
:class:`~repro.trace.ReplayVictim` — same recovery, **no cipher in
the loop** — and ``--check`` pins the outcome against the metadata the
recording stored.  ``convert`` moves between the binary encoding, the
JSONL twin, and foreign malloc/free access logs.

This module lives *outside* the L0 package on purpose: it wires traces
into the attack core and so may import ``repro.core`` — which
``repro.trace`` itself must never do (enforced by the layering
checker).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .channel.degradation import LossyChannel
from .core.attack import GrinchAttack
from .core.config import AttackConfig
from .seeding import derive_key
from .targets.registry import get_target, target_names
from .trace import (
    BINARY_SUFFIX,
    MAGIC,
    ExternalTraceParser,
    RecordingVictim,
    ReplayVictim,
    TraceError,
    TraceFile,
    TraceHeader,
    TraceRecorder,
    dump_jsonl,
    dumps,
    load_jsonl,
    loads,
)

#: Recording scopes the CLI understands.
SCOPES = ("full-key", "first-round")


def _config_from_header(header: TraceHeader) -> AttackConfig:
    """The attack configuration a header describes.

    Record and replay both use this mapping, so the replayed attack
    re-derives the exact crafting stream of the recorded one —
    including the degradation model: a lossy recording stamps its loss
    parameters into the header meta, and the replay rebuilds the same
    :class:`~repro.channel.degradation.LossyChannel` so the voting
    recovery (and its derived RNG streams) make identical decisions.
    """
    return AttackConfig(
        geometry=header.geometry,
        layout=header.layout,
        probing_round=header.probing_round,
        use_flush=header.use_flush,
        probe_strategy=header.probe_strategy,
        stall_window=(200 if header.probe_strategy == "prime_probe"
                      else 0),
        seed=header.seed,
        loss=LossyChannel(
            miss_probability=float(header.meta.get("miss_probability",
                                                   0.0)),
            eviction_rate=float(header.meta.get("eviction_rate", 0.0)),
        ),
        max_total_encryptions=None,
    )


def _detect_format(data: bytes) -> str:
    """``"binary"``, ``"jsonl"`` or ``"external"`` from content."""
    if data[:len(MAGIC)] == MAGIC:
        return "binary"
    try:
        text = data.decode("utf-8")
    except UnicodeDecodeError:
        return "binary"  # not ours; let the binary reader complain
    for line in text.splitlines():
        if line.strip():
            return "jsonl" if line.lstrip().startswith("{") else "external"
    return "external"


def _read_trace(path: Path, args: argparse.Namespace) -> TraceFile:
    data = path.read_bytes()
    kind = getattr(args, "input_format", None) or _detect_format(data)
    if kind == "binary":
        return loads(data)
    if kind == "jsonl":
        return load_jsonl(data.decode("utf-8"))
    parser = ExternalTraceParser(
        segments=getattr(args, "segments", 16),
        target=getattr(args, "external_target", "external"),
        strict=not getattr(args, "lenient", False),
    )
    trace, stats = parser.parse(data.decode("utf-8").splitlines())
    if stats.skipped:
        print(f"external log: skipped {stats.skipped} lines "
              f"({stats.as_dict()})", file=sys.stderr)
    return trace


def _write_trace(trace: TraceFile, path: Path,
                 jsonl: Optional[bool] = None) -> int:
    as_jsonl = (path.suffix == ".jsonl" if jsonl is None else jsonl)
    if as_jsonl:
        data = dump_jsonl(trace).encode("utf-8")
    else:
        data = dumps(trace)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(data)
    return len(data)


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------

def _cmd_record(args: argparse.Namespace) -> int:
    target = get_target(args.target)
    key = (args.key if args.key is not None
           else derive_key(target.key_bits, args.seed))
    victim = target.make_victim(key)
    config = AttackConfig(
        probing_round=args.probing_round,
        use_flush=not args.no_flush,
        probe_strategy=args.probe,
        stall_window=200 if args.probe == "prime_probe" else 0,
        seed=args.seed,
        loss=LossyChannel(miss_probability=args.miss,
                          eviction_rate=args.evict),
        use_fast_path=not args.no_fast_path,
        max_total_encryptions=None,
    )
    header = TraceHeader.for_victim(args.target, victim, config,
                                    scope=args.scope)
    recorder = TraceRecorder(header)
    attack = GrinchAttack(RecordingVictim(victim, recorder), config)
    if args.scope == "full-key":
        result = attack.recover_master_key()
        recovered = result.master_key == key and result.verified
        meta = {
            "scope": args.scope,
            "master_key": f"{result.master_key:x}",
            "total_encryptions": result.total_encryptions,
            "recovered": recovered,
        }
        summary = (f"{result.total_encryptions} encryptions, key "
                   f"{'recovered' if recovered else 'NOT recovered'}")
    else:
        result = attack.attack_first_round()
        meta = {
            "scope": args.scope,
            "total_encryptions": result.encryptions,
            "recovered_bits": result.recovered_bits,
        }
        summary = (f"{result.encryptions} encryptions, "
                   f"{result.recovered_bits} bits")
    if args.miss or args.evict:
        # Stamp the degradation so replay rebuilds the same channel
        # (and therefore the same voting recovery) from the header
        # alone; lossless recordings stay byte-identical to pre-loss
        # recordings.
        meta["miss_probability"] = args.miss
        meta["eviction_rate"] = args.evict
    captured = recorder.to_trace_file()
    trace = TraceFile(
        header=header.with_meta(windows=captured.windows, **meta),
        records=captured.records,
    )
    out = Path(args.out)
    size = _write_trace(trace, out, jsonl=args.jsonl or None)
    print(f"recorded {args.target} {args.scope} (seed {args.seed}): "
          f"{summary}")
    print(f"wrote {out} ({size} bytes, {trace.windows} windows, "
          f"{trace.pairs} pairs)")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    trace = _read_trace(Path(args.trace), args)
    header = trace.header
    meta = header.meta
    scope = args.scope or meta.get("scope") or "full-key"
    victim = ReplayVictim(trace, strict=not args.lenient)
    attack = GrinchAttack(victim, _config_from_header(header))
    print(f"replaying {args.trace}: target {header.target}, "
          f"scope {scope}, seed {header.seed}, "
          f"{trace.windows} windows")
    failures = []
    if scope == "full-key":
        result = attack.recover_master_key()
        print(f"recovered key : {result.master_key:x}")
        print(f"encryptions   : {result.total_encryptions}")
        print(f"verified      : {result.verified}")
        if args.check:
            expected_key = meta.get("master_key")
            if expected_key is not None \
                    and int(expected_key, 16) != result.master_key:
                failures.append(
                    f"key mismatch: recorded {expected_key}, replayed "
                    f"{result.master_key:x}"
                )
            expected_count = meta.get("total_encryptions")
            if expected_count is not None \
                    and expected_count != result.total_encryptions:
                failures.append(
                    f"effort drift: recorded {expected_count} "
                    f"encryptions, replayed {result.total_encryptions}"
                )
            if meta.get("recovered") and not result.verified:
                failures.append("recording verified but replay did not")
    else:
        result = attack.attack_first_round()
        print(f"encryptions   : {result.encryptions}")
        print(f"recovered bits: {result.recovered_bits}")
        if args.check:
            expected_count = meta.get("total_encryptions")
            if expected_count is not None \
                    and expected_count != result.encryptions:
                failures.append(
                    f"effort drift: recorded {expected_count} "
                    f"encryptions, replayed {result.encryptions}"
                )
    if victim.remaining:
        print(f"note: {victim.remaining} records left unconsumed")
    for failure in failures:
        print(f"CHECK FAILED: {failure}", file=sys.stderr)
    if args.check and not failures:
        print("check: replay matches the recording")
    return 1 if failures else 0


def _cmd_convert(args: argparse.Namespace) -> int:
    trace = _read_trace(Path(args.input), args)
    out = Path(args.output)
    size = _write_trace(trace, out, jsonl=args.jsonl or None)
    print(f"wrote {out} ({size} bytes, {len(trace.records)} records)")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    path = Path(args.trace)
    trace = _read_trace(path, args)
    header = trace.header
    geometry = header.geometry
    print(f"{path} ({path.stat().st_size} bytes)")
    print(f"  target   : {header.target} (width {header.width}, "
          f"{header.rounds} rounds, {header.segments} segments)")
    print(f"  seed     : {header.seed} (scope {header.scope!r})")
    print(f"  geometry : {header.geometry_preset or 'custom'} "
          f"({geometry.total_lines} lines x {geometry.line_bytes} B)")
    print(f"  probing  : {header.probe_strategy}, round "
          f"{header.probing_round}, flush={header.use_flush}, "
          f"offset {header.probe_round_offset}")
    print(f"  records  : {len(trace.records)} "
          f"({trace.windows} windows, {trace.pairs} pairs)")
    kinds = {}
    for record in trace.records:
        kinds[record.kind] = kinds.get(record.kind, 0) + 1
    for kind in sorted(kinds):
        print(f"    {kind:<10}: {kinds[kind]}")
    for key in sorted(header.meta):
        print(f"  meta {key:<18}: {header.meta[key]}")
    return 0


# ----------------------------------------------------------------------
# Argument parsing
# ----------------------------------------------------------------------

def _add_input_options(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--input-format",
                     choices=("binary", "jsonl", "external"),
                     default=None,
                     help="input encoding (default: sniff the content)")
    sub.add_argument("--segments", type=int, default=16,
                     help="state segments for external logs "
                          "(default: 16)")
    sub.add_argument("--external-target", default="external",
                     help="target name stamped on parsed external logs")
    sub.add_argument("--lenient", action="store_true",
                     help="skip-and-count malformed external lines / "
                          "tolerate replay drift instead of failing")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="record, replay, convert and inspect attack traces",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    record = commands.add_parser(
        "record", help="run a live attack and capture it as a trace"
    )
    record.add_argument("--target", default="gift64",
                        help=f"registered cipher target "
                             f"(one of: {', '.join(target_names())})")
    record.add_argument("--scope", choices=SCOPES, default="full-key",
                        help="how much of the attack to record")
    record.add_argument("--seed", type=int, default=0,
                        help="attacker RNG seed (also derives the "
                             "victim key unless --key is given)")
    record.add_argument("--key", type=lambda v: int(v, 16), default=None,
                        help="victim master key (hex)")
    record.add_argument("--out", required=True,
                        help=f"output path ({BINARY_SUFFIX} binary "
                             f"unless it ends in .jsonl)")
    record.add_argument("--jsonl", action="store_true",
                        help="force the JSONL encoding")
    record.add_argument("--probing-round", type=int, default=1)
    record.add_argument("--no-flush", action="store_true")
    record.add_argument("--probe",
                        choices=("flush_reload", "prime_probe",
                                 "flush_flush"),
                        default="flush_reload")
    record.add_argument("--no-fast-path", action="store_true",
                        help="record tagged address streams instead of "
                             "packed index rows (much larger files)")
    record.add_argument("--miss", type=float, default=0.0,
                        help="per-line probe miss probability — records "
                             "through a lossy channel and stamps it "
                             "into the header meta")
    record.add_argument("--evict", type=float, default=0.0,
                        help="per-window co-runner eviction rate "
                             "(stamped like --miss)")

    replay = commands.add_parser(
        "replay", help="rerun an attack from a trace (no cipher)"
    )
    replay.add_argument("trace", help="trace file to replay")
    replay.add_argument("--scope", choices=SCOPES, default=None,
                        help="override the recorded scope")
    replay.add_argument("--check", action="store_true",
                        help="verify the replay against the recording's "
                             "metadata (exit 1 on drift)")
    _add_input_options(replay)

    convert = commands.add_parser(
        "convert", help="convert between binary / JSONL / external logs"
    )
    convert.add_argument("input")
    convert.add_argument("output")
    convert.add_argument("--jsonl", action="store_true",
                         help="force JSONL output regardless of suffix")
    _add_input_options(convert)

    info = commands.add_parser(
        "info", help="print a trace file's header and record counts"
    )
    info.add_argument("trace")
    _add_input_options(info)
    return parser


_HANDLERS = {
    "record": _cmd_record,
    "replay": _cmd_replay,
    "convert": _cmd_convert,
    "info": _cmd_info,
}


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro trace`` entry point; returns an exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except TraceError as error:
        print(f"trace error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"trace error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
