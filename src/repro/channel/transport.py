"""L2 — cache transports: *where* the probe and the victim meet.

A :class:`CacheTransport` adapts one memory substrate to the two roles
an observation needs: the attacker's probe surface (the
:class:`~repro.channel.primitive.ProbeSurface` protocol — ``access`` /
``flush_line`` as the attacker core sees them) and the victim's
execution substrate (``victim_access``).  The same-core and cross-core
attacks differ *only* in which transport they run on:

* :class:`SingleLevelTransport` — attacker and victim share one
  set-associative cache (the paper's threat model, Section III-B);
* :class:`SharedL2Transport` — the victim runs behind a private L1 and
  the attacker can only sense the shared L2, but wields a ``clflush``
  that purges the whole hierarchy (the paper's memory-hierarchy
  future-work question).

Transports also carry the capability flags the observer needs to pick
an execution path: whether Prime+Probe's set priming is meaningful
(only when attacker loads land in the same cache the victim fills),
whether the analytic fast path is exact, and two behavioural quirks of
the cross-core channel (noise arrives as victim-core traffic; an empty
probe window still performs a perturbing flush+probe cycle).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Optional

from ..cache.geometry import CacheGeometry
from ..cache.multilevel import MemoryLevel, TwoLevelHierarchy
from ..cache.setassoc import SetAssociativeCache

#: Core indices of the two parties on a shared-L2 transport.
VICTIM_CORE = 0
ATTACKER_CORE = 1


class CacheTransport(ABC):
    """One memory substrate, seen from both sides of the channel."""

    #: Whether attacker loads contend in the same sets the victim fills
    #: (required by eviction-based primitives such as Prime+Probe).
    supports_prime_probe: bool = False

    #: Whether monitored-line residency after the visible window is a
    #: pure function of the victim's S-box accesses (exact fast path).
    supports_fast_path: bool = False

    #: Whether co-runner noise manifests as victim-side traffic (it is
    #: then *observed* by the probe rather than unioned afterwards).
    noise_via_victim: bool = False

    #: Whether an empty probe window still runs a (state-perturbing)
    #: reset+observe cycle, as the cross-core attacker's loop does.
    probe_on_empty_window: bool = False

    @abstractmethod
    def access(self, address: int) -> bool:
        """One attacker load; returns whether it hit in attacker-visible
        cache state."""

    @abstractmethod
    def flush_line(self, address: int) -> bool:
        """``clflush`` one line everywhere; returns whether it was
        attacker-visibly present."""

    @abstractmethod
    def victim_access(self, address: int) -> bool:
        """One victim load; returns whether it hit in any cache level."""

    @abstractmethod
    def cold(self) -> "CacheTransport":
        """A fresh, cold transport of the same shape (for per-window
        observations that must start from a flushed state)."""

    def check_geometry(self, geometry: CacheGeometry) -> None:
        """Raise if the transport is incompatible with an attack
        geometry (default: require matching line size)."""
        if self.line_bytes != geometry.line_bytes:
            raise ValueError(
                "hierarchy line size must match the attack geometry"
            )

    @property
    @abstractmethod
    def line_bytes(self) -> int:
        """Cache line size of the substrate."""


class SingleLevelTransport(CacheTransport):
    """Attacker and victim time-share one set-associative cache."""

    supports_prime_probe = True
    supports_fast_path = True
    noise_via_victim = False
    probe_on_empty_window = False

    def __init__(self, geometry: CacheGeometry, policy: str = "lru",
                 rng: Optional[random.Random] = None) -> None:
        self.geometry = geometry
        self.policy_name = policy
        self.rng = rng
        self.cache = SetAssociativeCache(geometry, policy=policy, rng=rng)

    def access(self, address: int) -> bool:
        return self.cache.access(address)

    def flush_line(self, address: int) -> bool:
        return self.cache.flush_line(address)

    def victim_access(self, address: int) -> bool:
        return self.cache.access(address)

    def cold(self) -> "SingleLevelTransport":
        # The replacement policy is part of the substrate's shape: a
        # cold window on a random-replacement cache must not silently
        # revert to LRU.  (A shared explicit rng keeps drawing from its
        # stream; derived per-set streams restart identically, which is
        # what per-window reproducibility wants.)
        return SingleLevelTransport(self.geometry, self.policy_name,
                                    self.rng)

    @property
    def line_bytes(self) -> int:
        return self.geometry.line_bytes


class SharedL2Transport(CacheTransport):
    """Victim behind a private L1; attacker senses the shared L2 only.

    The attacker's reload can hit in its own (flushed) L1 or the shared
    L2 — victim-L1 residency is invisible — while its ``clflush``
    purges every level and core.  Prime+Probe is meaningless here: the
    attacker cannot prime the victim's private L1, which is where the
    contention would have to happen.
    """

    supports_prime_probe = False
    supports_fast_path = False
    noise_via_victim = True
    probe_on_empty_window = True

    def __init__(self, hierarchy: Optional[TwoLevelHierarchy] = None,
                 victim_core: int = VICTIM_CORE,
                 attacker_core: int = ATTACKER_CORE) -> None:
        if hierarchy is None:
            hierarchy = TwoLevelHierarchy()
        if hierarchy.cores < 2:
            raise ValueError("cross-core attacks need at least two cores")
        if victim_core == attacker_core:
            raise ValueError("victim and attacker must run on distinct cores")
        self.hierarchy = hierarchy
        self.victim_core = victim_core
        self.attacker_core = attacker_core

    def access(self, address: int) -> bool:
        # Sense shared-level residency first, then touch the line from
        # the attacker core, as a real reload would.
        resident = self.hierarchy.is_resident_l2(address)
        self.hierarchy.access(self.attacker_core, address)
        return resident

    def flush_line(self, address: int) -> bool:
        present = self.hierarchy.is_resident_l2(address)
        self.hierarchy.flush_line(address)
        return present

    def victim_access(self, address: int) -> bool:
        level = self.hierarchy.access(self.victim_core, address)
        return level is not MemoryLevel.MEMORY

    def cold(self) -> "SharedL2Transport":
        hierarchy = self.hierarchy
        return SharedL2Transport(
            TwoLevelHierarchy(
                cores=hierarchy.cores,
                l1_geometry=hierarchy.l1[0].geometry,
                l2_geometry=hierarchy.l2.geometry,
                inclusion=hierarchy.inclusion,
                policy=hierarchy.policy_name,
                rng=hierarchy.rng,
            ),
            victim_core=self.victim_core,
            attacker_core=self.attacker_core,
        )

    @property
    def line_bytes(self) -> int:
        return self.hierarchy.line_bytes
