"""L3 — channel degradations: noise, jitter, and loss.

The paper attributes extra attack effort to "the amount of noise (e.g.,
multiple processes disputing the processor)" (Section IV-B1).  In an
access-driven attack, a concurrent process can only *add* lines to the
cache between the victim's rounds and the probe — it never removes the
target's footprint — so noise slows candidate elimination without
corrupting it.  :class:`NoiseModel` injects such spurious accesses.

Real channels are lossier than that.  The paper's own platform study
(Table II) shows the probe landing anywhere in rounds 2–7 depending on
clock and SoC, coarse timers and eviction-based probes miss genuine
accesses outright, and Flush+Flush-style probes have an unreliable
hit/miss signal per line.  :class:`LossyChannel` models those *false
negatives* — observations where a line the victim really touched is
absent — which break the monotone-intersection soundness assumption and
motivate the voting recovery of :mod:`repro.core.voting`.

Degradations compose as decorators around an observation: the
:class:`~repro.channel.observer.ObservationChannel` accepts a tuple of
them and applies each one's window shift before the victim runs and
each one's line drop to the raw readout afterwards.  Anything with the
small duck-typed interface ``is_lossless`` / ``shifts_window`` /
``sample_jitter(rng)`` / ``drop_lines(observed, monitored, rng)``
participates; :class:`LossyChannel` and :class:`ProbeJitter` both do.
:func:`jitter_from_platform` builds the degradation matching a measured
SoC probe landing (Table II) so platform timing plugs into the same
stack.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, FrozenSet, List, Sequence, Tuple


@dataclass(frozen=True)
class NoiseModel:
    """Spurious accesses landing in the monitored region per probe window.

    Parameters
    ----------
    touch_probability:
        Chance that a noisy co-running process executes at all during one
        encryption's probe window.
    monitored_touches:
        How many loads that process issues into the monitored table range
        when it runs (addresses drawn uniformly over the table).
    """

    touch_probability: float = 0.0
    monitored_touches: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.touch_probability <= 1.0:
            raise ValueError(
                f"touch_probability must be in [0, 1], got {self.touch_probability}"
            )
        if self.monitored_touches < 0:
            raise ValueError(
                f"monitored_touches must be non-negative, "
                f"got {self.monitored_touches}"
            )

    @property
    def is_silent(self) -> bool:
        """True when the model can never produce an access."""
        return self.touch_probability == 0.0 or self.monitored_touches == 0

    def sample(self, monitored_addresses: Sequence[int],
               rng: random.Random) -> List[int]:
        """Addresses the noisy process touches during one probe window."""
        if self.is_silent or not monitored_addresses:
            return []
        if rng.random() >= self.touch_probability:
            return []
        return [
            rng.choice(monitored_addresses)
            for _ in range(self.monitored_touches)
        ]


#: Convenience instance: a quiet system (the paper's RTL "clean data").
NO_NOISE = NoiseModel()


@dataclass(frozen=True)
class ProbeJitter:
    """Distribution of the probe's landing round around its target.

    Table II shows the probe does not land where the attacker aims it:
    depending on clock frequency and platform it observes the state
    after anywhere from round 2 to round 7.  ``offsets[i]`` shifts the
    last visible round by that many rounds with probability
    ``weights[i]``; a negative draw can pull the probe *before* the
    target access, losing the entire observation.
    """

    offsets: Tuple[int, ...] = (0,)
    weights: Tuple[float, ...] = (1.0,)

    def __post_init__(self) -> None:
        if len(self.offsets) != len(self.weights) or not self.offsets:
            raise ValueError(
                "jitter needs matching, non-empty offsets and weights"
            )
        if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
            raise ValueError("jitter weights must be non-negative and "
                             "sum to a positive total")

    @property
    def is_still(self) -> bool:
        """True when the probe always lands exactly where aimed."""
        return all(o == 0 for o in self.offsets)

    @property
    def is_lossless(self) -> bool:
        """Degradation protocol: a still jitter loses nothing."""
        return self.is_still

    @property
    def shifts_window(self) -> bool:
        """Degradation protocol: whether the probe window can move."""
        return not self.is_still

    def sample(self, rng: random.Random) -> int:
        """Draw one probe-round offset."""
        if self.is_still:
            return 0
        return rng.choices(self.offsets, weights=self.weights, k=1)[0]

    def sample_jitter(self, rng: random.Random) -> int:
        """Degradation protocol alias of :meth:`sample`."""
        return self.sample(rng)

    def drop_lines(self, observed: "FrozenSet[int]",
                   monitored_lines: Sequence[int],
                   rng: random.Random) -> "FrozenSet[int]":
        """Degradation protocol: jitter drops nothing after the fact
        (its loss happens by moving the window before the victim runs)."""
        return observed

    def target_visibility(self, probing_round: int) -> float:
        """Probability the jittered probe still covers the target round.

        The target access happens in round ``t + 1``; a draw ``d`` moves
        the last visible round to ``t + probing_round + d``, so the
        target stays visible iff ``d >= 1 - probing_round``.
        """
        total = sum(self.weights)
        visible = sum(
            w for o, w in zip(self.offsets, self.weights)
            if o >= 1 - probing_round
        )
        return visible / total


#: Convenience instance: a perfectly timed probe.
NO_JITTER = ProbeJitter()


@dataclass(frozen=True)
class LossyChannel:
    """False-negative model of the attacker's observation channel.

    Parameters
    ----------
    miss_probability:
        Chance that the probe's per-line hit/miss signal reads a
        genuinely present line as absent (Flush+Flush-style unreliable
        signal, coarse timers).  Applied independently per observed
        line per probe window.
    eviction_rate:
        Chance per probe window that a co-running process evicts one
        uniformly chosen monitored line before the probe runs; if that
        line was touched, its footprint is gone.
    jitter:
        Probe-round jitter (see :class:`ProbeJitter`).  A draw that
        pulls the probe before the target round loses every visible
        access of the window at once.
    """

    miss_probability: float = 0.0
    eviction_rate: float = 0.0
    jitter: ProbeJitter = field(default_factory=ProbeJitter)

    def __post_init__(self) -> None:
        for name in ("miss_probability", "eviction_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    @property
    def is_lossless(self) -> bool:
        """True when every genuine access is guaranteed to be observed."""
        return (self.miss_probability == 0.0
                and self.eviction_rate == 0.0
                and self.jitter.is_still)

    @property
    def shifts_window(self) -> bool:
        """Degradation protocol: whether the probe window can move."""
        return not self.jitter.is_still

    def sample_jitter(self, rng: random.Random) -> int:
        """Probe-round offset for one window (0 when still)."""
        return self.jitter.sample(rng)

    def drop_lines(self, observed: FrozenSet[int],
                   monitored_lines: Sequence[int],
                   rng: random.Random) -> FrozenSet[int]:
        """Apply eviction and per-line signal misses to one observation.

        Jitter is *not* applied here — it changes which rounds are
        visible and therefore must shift the window before the victim
        runs (see :class:`~repro.channel.observer.ObservationChannel`).
        """
        if not observed:
            return observed
        surviving = set(observed)
        if self.eviction_rate > 0.0 and monitored_lines:
            if rng.random() < self.eviction_rate:
                surviving.discard(rng.choice(list(monitored_lines)))
        if self.miss_probability > 0.0:
            surviving = {
                line for line in surviving
                if rng.random() >= self.miss_probability
            }
        return frozenset(surviving)

    def batch_draws_per_window(self, monitored_lines: int) -> int:
        """Uniform draws :meth:`drop_lines_batch` consumes per window.

        Fixed per window regardless of content: one eviction-occurrence
        draw, one eviction-choice draw, and one miss draw per monitored
        line — the invariant that makes the batch stream independent of
        batch boundaries (see :meth:`drop_lines_batch`).
        """
        return 2 + monitored_lines

    def drop_lines_batch(self, observations: Sequence[FrozenSet[int]],
                         monitored_lines: Sequence[int],
                         generator: Any) -> List[FrozenSet[int]]:
        """Vectorized :meth:`drop_lines` over a whole window batch.

        ``generator`` is a dedicated ``numpy.random.Generator`` stream
        (never the scalar loss ``random.Random`` — scalar runs must
        keep their exact pre-batch draw sequence).  All randomness for
        the batch is drawn as ONE C-order ``(count, draws_per_window)``
        matrix, so row ``k`` is always window ``k``'s draws: splitting
        the same window sequence into different batch sizes consumes
        the stream identically and reproduces identical degradations.

        Per window the draw layout is ``[eviction-occurs,
        eviction-choice, miss(line_0), ..., miss(line_L-1)]`` with
        lines in ``monitored_lines`` order; the surviving-line
        semantics match :meth:`drop_lines` draw-for-distribution
        (eviction with chance ``eviction_rate`` of one uniformly
        chosen monitored line, then an independent per-line signal
        miss).
        """
        lines = list(monitored_lines)
        index_of = {line: column for column, line in enumerate(lines)}
        draws = generator.random(
            (len(observations), self.batch_draws_per_window(len(lines)))
        )
        degraded: List[FrozenSet[int]] = []
        for row, observed in zip(draws, observations):
            surviving = set(observed)
            if surviving:
                if (self.eviction_rate > 0.0 and lines
                        and row[0] < self.eviction_rate):
                    chosen = min(int(row[1] * len(lines)), len(lines) - 1)
                    surviving.discard(lines[chosen])
                if self.miss_probability > 0.0:
                    surviving = {
                        line for line in surviving
                        if line not in index_of
                        or row[2 + index_of[line]] >= self.miss_probability
                    }
            degraded.append(frozenset(surviving))
        return degraded

    def expected_target_presence(self, monitored_lines: int,
                                 probing_round: int) -> float:
        """Per-observation probability that the constant target line
        survives the channel.

        The target access is in the window unless jitter pulls the
        probe too early; it then survives the co-runner eviction (which
        picks it with chance ``eviction_rate / monitored_lines``) and
        the per-line signal miss.  This is the presence rate the voting
        recovery calibrates its statistics against.
        """
        if monitored_lines < 1:
            raise ValueError("monitored_lines must be positive")
        visible = self.jitter.target_visibility(probing_round)
        evicted = self.eviction_rate / monitored_lines
        return visible * (1.0 - evicted) * (1.0 - self.miss_probability)


#: Convenience instance: the seed reproduction's implicit assumption.
LOSSLESS = LossyChannel()


def jitter_from_platform(probed_round: int, aimed_round: int) -> ProbeJitter:
    """Jitter pinned to where a SoC platform actually lands its probe.

    Table II's platform study reports, per SoC and clock domain, the
    round whose state the probe ends up observing
    (:attr:`repro.soc.platform.ProbeReport.probed_round`-style
    measurements).  This helper turns that measurement into the
    equivalent degradation decorator: a deterministic offset of
    ``probed_round - aimed_round``, so the timing behaviour of a
    platform composes with loss and noise through the same stack.
    """
    return ProbeJitter(offsets=(probed_round - aimed_round,),
                       weights=(1.0,))
