"""The layered observation-channel stack.

Every way this reproduction *observes* the victim — same-core
Flush+Reload/Prime+Probe/Flush+Flush, the cross-core shared-L2 path,
lossy/jittered channels, and the trace-/time-driven signals — is built
from four layers:

* **L1 primitive** (:mod:`repro.channel.primitive`) — how residency is
  read out: :class:`FlushReload`, :class:`PrimeProbe`,
  :class:`FlushFlush`;
* **L2 transport** (:mod:`repro.channel.transport`) — which substrate
  the probe and the victim meet on: :class:`SingleLevelTransport`,
  :class:`SharedL2Transport`;
* **L3 degradation** (:mod:`repro.channel.degradation`) — composable
  loss/jitter/noise decorators: :class:`LossyChannel`,
  :class:`ProbeJitter`, :class:`NoiseModel`;
* **L4 observer** (:mod:`repro.channel.observer`) — the single API the
  attack, the variants and the engine consume:
  :class:`ObservationChannel`;
* **L4 defender** (:mod:`repro.channel.defender`) — the *other*
  first-class consumer of the stack: a performance-counter-style
  :class:`DefenderObserver` fed per-operation counter deltas through
  an :class:`ObservedTransport` tap (it sits just below the observer
  in the import order, since the observer composes it in).

Lower layers never import higher ones, and nothing in this package
imports :mod:`repro.core` or :mod:`repro.engine` — enforced by
``python -m repro.staticcheck.layering`` in CI.  See
``docs/architecture.md`` for the diagram and migration map.
"""

from .defender import (
    CounterDelta,
    DefenderObserver,
    DefenderReport,
    DetectionPolicy,
    ObservedTransport,
    WindowCounters,
    read_counters,
)
from .degradation import (
    LOSSLESS,
    NO_JITTER,
    NO_NOISE,
    LossyChannel,
    NoiseModel,
    ProbeJitter,
    jitter_from_platform,
)
from .monitor import SboxMonitor
from .observer import (
    ObservationChannel,
    WindowBatch,
    WindowObservation,
    encryption_latency,
    hit_miss_trace,
    observe_window,
)
from .primitive import (
    PRIMITIVE_NAMES,
    FlushFlush,
    FlushReload,
    PrimeProbe,
    ProbePrimitive,
    ProbeSurface,
    make_primitive,
)
from .transport import (
    ATTACKER_CORE,
    VICTIM_CORE,
    CacheTransport,
    SharedL2Transport,
    SingleLevelTransport,
)

__all__ = [
    "CounterDelta",
    "DefenderObserver",
    "DefenderReport",
    "DetectionPolicy",
    "ObservedTransport",
    "WindowCounters",
    "read_counters",
    "LOSSLESS",
    "NO_JITTER",
    "NO_NOISE",
    "LossyChannel",
    "NoiseModel",
    "ProbeJitter",
    "jitter_from_platform",
    "SboxMonitor",
    "ObservationChannel",
    "WindowBatch",
    "WindowObservation",
    "encryption_latency",
    "hit_miss_trace",
    "observe_window",
    "PRIMITIVE_NAMES",
    "FlushFlush",
    "FlushReload",
    "PrimeProbe",
    "ProbePrimitive",
    "ProbeSurface",
    "make_primitive",
    "ATTACKER_CORE",
    "VICTIM_CORE",
    "CacheTransport",
    "SharedL2Transport",
    "SingleLevelTransport",
]
