"""L1 — cache probing primitives (Step 2 of the GRINCH methodology).

The bottom layer of the observation-channel stack: a
:class:`ProbePrimitive` knows how to *prepare*, *reset mid-run* and
*read out* the monitored lines on any substrate that exposes per-line
``access``/``flush_line`` operations (the :class:`ProbeSurface`
protocol — satisfied natively by
:class:`~repro.cache.setassoc.SetAssociativeCache` and by every
:class:`~repro.channel.transport.CacheTransport`).

Three classical access-driven primitives are provided:

* **Flush+Reload** — the paper's choice: the attacker flushes the
  monitored lines, lets the victim run, and reloads each line, timing
  the reload (hit = victim touched it).  Because a flush is a single
  fast operation it can also be issued *mid-encryption* (the paper's
  "Grinch with Flush" series), discarding earlier rounds' noise.

* **Prime+Probe** — the attacker fills the monitored cache *sets* with
  its own lines, lets the victim run, then re-accesses its lines; a miss
  means the victim displaced something in that set.  Observation is
  set-granular, so unrelated victim tables (PermBits) that collide in
  the same sets produce false positives — one reason Flush+Reload is the
  better choice for GRINCH (Section III-C).

* **Flush+Flush** — Gruss et al.'s stealthier flush-latency channel:
  the probe is ``clflush`` itself, whose latency reveals whether the
  line was cached, and the flush *is* the reset for the next window.
  The latency margin is small and varies with the cache slice/set the
  line maps to, so the per-line hit/miss signal is unreliable: the
  primitive carries a set-granular false-negative profile
  (``signal_miss_probability`` scaled by a per-set weight) instead of
  the perfect readout of Flush+Reload.

Primitives translate raw hit/miss results into "monitored line was
touched" observations; they never read the victim's metadata.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, FrozenSet, List, Optional

try:  # Python 3.8+: typing.Protocol
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

from .monitor import SboxMonitor

#: Probe primitive names, in presentation order.
PRIMITIVE_NAMES = ("flush_reload", "prime_probe", "flush_flush")


class ProbeSurface(Protocol):
    """What a primitive needs from the substrate it probes.

    ``access`` performs one attacker load and reports whether it hit;
    ``flush_line`` models ``clflush`` and reports whether the line was
    present anywhere the flush could see it.  A bare
    :class:`~repro.cache.setassoc.SetAssociativeCache` satisfies this
    protocol directly; cross-core substrates adapt it through a
    :class:`~repro.channel.transport.CacheTransport`.
    """

    def access(self, address: int) -> bool:  # pragma: no cover - protocol
        ...

    def flush_line(self, address: int) -> bool:  # pragma: no cover
        ...


class ProbePrimitive(ABC):
    """One probing primitive bound to a monitor (what to watch)."""

    #: Config name of the primitive (matches ``AttackConfig.probe_strategy``).
    name: str = "abstract"

    #: Whether the primitive can clear the monitored state mid-encryption.
    supports_mid_flush: bool = False

    #: Whether the primitive's reset/observe are built on ``clflush``
    #: (such primitives work through any flush-capable transport,
    #: including the cross-core shared-L2 one).
    flush_based: bool = False

    #: Whether observations resolve individual lines (exact fast path);
    #: set-granular primitives must run on the full simulation.
    line_granular: bool = False

    def __init__(self, monitor: SboxMonitor) -> None:
        self.monitor = monitor

    @abstractmethod
    def reset(self, surface: ProbeSurface) -> None:
        """Prepare the substrate before the victim runs."""

    def mid_flush(self, surface: ProbeSurface) -> None:
        """Clear monitored state mid-encryption (if supported)."""
        raise NotImplementedError(
            f"{type(self).__name__} cannot flush mid-encryption"
        )

    @abstractmethod
    def observe(self, surface: ProbeSurface) -> FrozenSet[int]:
        """Return the monitored lines the victim (apparently) touched."""

    def filter_observation(self, observed: FrozenSet[int]
                           ) -> FrozenSet[int]:
        """Apply the primitive's own signal degradation to a raw readout.

        The observer applies this to *both* execution paths (analytic
        fast path and full simulation), so a noisy primitive keeps the
        two observation-for-observation identical.  The default readout
        is perfect.
        """
        return observed

    @property
    def signal_reliability(self) -> float:
        """Mean probability that a genuinely present line is read as hit.

        The voting recovery calibrates its expected target presence
        against this (1.0 for primitives with a perfect readout).
        """
        return 1.0


class FlushReload(ProbePrimitive):
    """Flush+Reload over the S-box table lines."""

    name = "flush_reload"
    supports_mid_flush = True
    flush_based = True
    line_granular = True

    def reset(self, surface: ProbeSurface) -> None:
        for address in self.monitor.line_addresses():
            surface.flush_line(address)

    def mid_flush(self, surface: ProbeSurface) -> None:
        self.reset(surface)

    def observe(self, surface: ProbeSurface) -> FrozenSet[int]:
        observed = set()
        for line, address in zip(self.monitor.lines,
                                 self.monitor.line_addresses()):
            if surface.access(address):  # the "reload": hit == was resident
                observed.add(line)
        return frozenset(observed)


class PrimeProbe(ProbePrimitive):
    """Prime+Probe over the cache sets holding the S-box table.

    The attacker owns ``ways`` lines per monitored set, placed at a
    disjoint tag range (modelling its own arrays).  Observation marks
    *every* monitored line whose set shows evictions — the set-granular
    over-approximation inherent to the primitive.
    """

    name = "prime_probe"
    supports_mid_flush = False
    flush_based = False
    line_granular = False

    #: Tag offset of the attacker's eviction arrays (far from the victim).
    ATTACKER_TAG_BASE = 1 << 20

    def __init__(self, monitor: SboxMonitor) -> None:
        super().__init__(monitor)
        geometry = monitor.geometry
        self._lines_by_set: Dict[int, List[int]] = {}
        for line, address in zip(monitor.lines, monitor.line_addresses()):
            self._lines_by_set.setdefault(
                geometry.set_of(address), []
            ).append(line)
        self._prime_addresses: Dict[int, List[int]] = {
            set_index: [
                (self.ATTACKER_TAG_BASE + way) * geometry.num_sets
                * geometry.line_bytes
                + set_index * geometry.line_bytes
                for way in range(geometry.ways)
            ]
            for set_index in self._lines_by_set
        }

    def reset(self, surface: ProbeSurface) -> None:
        for addresses in self._prime_addresses.values():
            for address in addresses:
                surface.access(address)

    def observe(self, surface: ProbeSurface) -> FrozenSet[int]:
        observed = set()
        for set_index, addresses in self._prime_addresses.items():
            evictions = sum(
                0 if surface.access(address) else 1 for address in addresses
            )
            if evictions:
                observed.update(self._lines_by_set[set_index])
        return frozenset(observed)


class FlushFlush(ProbePrimitive):
    """Flush+Flush: probe the monitored lines with ``clflush`` itself.

    A ``clflush`` of a cached line takes measurably longer than one of
    an uncached line, so the flush both *reads* residency and *resets*
    the line for the next window — no reload ever touches the cache,
    which is what makes the primitive stealthy.  The price is signal
    quality: the latency margin is a handful of cycles and shifts with
    the slice/set the address maps to, so a genuinely present line is
    sometimes read as absent.  ``signal_miss_probability`` is that
    per-readout false-negative rate; it is scaled per cache set by
    :data:`SET_WEIGHT_PROFILE` (deterministic in the line's set index)
    to model the set-dependent margins Gruss et al. measured.

    With ``signal_miss_probability == 0`` the primitive is an exact,
    reload-free Flush+Reload — the equivalence tests exploit this.
    """

    name = "flush_flush"
    supports_mid_flush = True
    flush_based = True
    line_granular = True

    #: Per-set multipliers of the base miss probability (mean 1.0): the
    #: flush-latency threshold is tighter in some sets than others.
    SET_WEIGHT_PROFILE = (0.5, 1.25, 1.5, 0.75)

    def __init__(self, monitor: SboxMonitor,
                 signal_miss_probability: float = 0.0,
                 rng: Optional[random.Random] = None) -> None:
        super().__init__(monitor)
        if not 0.0 <= signal_miss_probability < 1.0:
            raise ValueError(
                f"signal_miss_probability must be in [0, 1), "
                f"got {signal_miss_probability}"
            )
        if signal_miss_probability > 0.0 and rng is None:
            raise ValueError(
                "a noisy Flush+Flush readout needs an RNG stream"
            )
        self.signal_miss_probability = signal_miss_probability
        self._rng = rng
        geometry = monitor.geometry
        profile = self.SET_WEIGHT_PROFILE
        self._miss_by_line: Dict[int, float] = {
            line: min(
                1.0,
                signal_miss_probability
                * profile[geometry.set_of(address) % len(profile)],
            )
            for line, address in zip(monitor.lines,
                                     monitor.line_addresses())
        }

    def reset(self, surface: ProbeSurface) -> None:
        for address in self.monitor.line_addresses():
            surface.flush_line(address)

    def mid_flush(self, surface: ProbeSurface) -> None:
        self.reset(surface)

    def observe(self, surface: ProbeSurface) -> FrozenSet[int]:
        observed = set()
        for line, address in zip(self.monitor.lines,
                                 self.monitor.line_addresses()):
            # The flush is the probe: a long (== hit) flush reveals the
            # victim's touch and leaves the line reset in one step.
            if surface.flush_line(address):
                observed.add(line)
        return frozenset(observed)

    def filter_observation(self, observed: FrozenSet[int]
                           ) -> FrozenSet[int]:
        if self.signal_miss_probability == 0.0 or not observed:
            return observed
        assert self._rng is not None  # enforced at construction
        return frozenset(
            line for line in sorted(observed)
            if self._rng.random() >= self._miss_by_line[line]
        )

    @property
    def signal_reliability(self) -> float:
        if not self._miss_by_line:
            return 1.0
        mean_miss = (sum(self._miss_by_line.values())
                     / len(self._miss_by_line))
        return 1.0 - mean_miss


def make_primitive(name: str, monitor: SboxMonitor, *,
                   signal_miss_probability: float = 0.0,
                   rng: Optional[random.Random] = None) -> ProbePrimitive:
    """Instantiate a probe primitive by config name.

    ``signal_miss_probability``/``rng`` configure the Flush+Flush
    readout noise and are ignored by the noise-free primitives.
    """
    if name == "flush_reload":
        return FlushReload(monitor)
    if name == "prime_probe":
        return PrimeProbe(monitor)
    if name == "flush_flush":
        return FlushFlush(monitor,
                          signal_miss_probability=signal_miss_probability,
                          rng=rng)
    raise ValueError(f"unknown probe strategy {name!r}")
