"""Mapping between S-box indices and the cache lines the attacker watches.

With a line of ``L`` words (1 byte each on the paper's platforms) the
16-byte S-box spans ``16 / L`` cache lines, each covering ``L``
consecutive indices.  The attacker's observations are *line*-granular;
this module owns the index-to-line arithmetic, including the paper's
Section III-D point that growing lines obfuscate the low index bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from ..cache.geometry import CacheGeometry
from ..targets.layout import SBOX_ENTRIES as SBOX_SIZE
from ..targets.layout import TableLayout


@dataclass(frozen=True)
class SboxMonitor:
    """Precomputed view of the S-box table through a cache geometry."""

    layout: TableLayout
    geometry: CacheGeometry
    lines: Tuple[int, ...]
    indices_by_line: Dict[int, Tuple[int, ...]]
    line_by_index: Tuple[int, ...]

    @classmethod
    def build(cls, layout: TableLayout, geometry: CacheGeometry
              ) -> "SboxMonitor":
        """Derive the monitored lines for a layout/geometry pair."""
        line_by_index = tuple(
            geometry.line_of(layout.sbox_address(index))
            for index in range(SBOX_SIZE)
        )
        indices_by_line: Dict[int, List[int]] = {}
        for index, line in enumerate(line_by_index):
            indices_by_line.setdefault(line, []).append(index)
        return cls(
            layout=layout,
            geometry=geometry,
            lines=tuple(sorted(indices_by_line)),
            indices_by_line={
                line: tuple(indices)
                for line, indices in indices_by_line.items()
            },
            line_by_index=line_by_index,
        )

    @property
    def universe(self) -> FrozenSet[int]:
        """All monitored line numbers (the candidate universe)."""
        return frozenset(self.lines)

    @property
    def indices_per_line(self) -> int:
        """How many S-box indices one cache line covers."""
        return max(len(v) for v in self.indices_by_line.values())

    def line_for_index(self, index: int) -> int:
        """Cache line number holding S-box entry ``index``."""
        if not 0 <= index < SBOX_SIZE:
            raise ValueError(f"S-box index must be a 4-bit value, got {index}")
        return self.line_by_index[index]

    def indices_for_line(self, line: int) -> Tuple[int, ...]:
        """S-box indices covered by a monitored ``line``."""
        if line not in self.indices_by_line:
            raise ValueError(f"line {line} does not hold S-box entries")
        return self.indices_by_line[line]

    def line_addresses(self) -> List[int]:
        """One representative byte address per monitored line.

        Flush+Reload flushes/reloads these; the first covered index's
        address suffices because residency is line-granular.
        """
        return [
            self.layout.sbox_address(self.indices_by_line[line][0])
            for line in self.lines
        ]
