"""L4 — the observer API: one entry point for every observation path.

:class:`ObservationChannel` is the stack's top layer and the *only*
observation interface the attack, the variants and the experiment
engine consume.  It composes

* a :class:`~repro.channel.primitive.ProbePrimitive` (L1 — how to read
  residency),
* a :class:`~repro.channel.transport.CacheTransport` (L2 — which
  substrate the probe and victim meet on),
* a tuple of degradations (L3 — loss/jitter decorators), and
* the victim + crafting-independent RNG streams,

and answers the access-driven question *which monitored lines did this
encryption (appear to) touch?* via :meth:`observe`, plus the
trace-/time-driven signals via :meth:`window`, :meth:`hit_miss` and
:meth:`timing`.

Two execution paths produce the access-driven answer:

* the **full path** replays the victim's complete address stream
  through the transport and runs the probe primitive on it — used for
  Prime+Probe, cross-core transports, ablations, and as ground truth
  in tests;
* the **fast path** computes the observation directly from the S-box
  accesses in the visible round window — exact for line-granular
  flush-based primitives on a single-level transport under the default
  layouts (monitored lines can never be evicted: the victim's visible
  working set per cache set is far below the paper's 16 ways), and
  ~40x faster, which the million-encryption sweeps of Table I need.
  An equivalence test in the suite proves the two paths agree
  observation-for-observation for every primitive.

RNG discipline: the noise stream (``"{scope}-noise"``), the loss
stream (``"{scope}-loss"``) and the primitive's own signal stream
(``"{scope}-primitive"``) are independently derived from the config
seed, so a lossless, noise-free run consumes exactly the randomness
the pre-stack runner did (seed-0 full-key recovery still takes exactly
464 encryptions).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, FrozenSet, List, Optional, Sequence, Tuple

from ..cache.hierarchy import MemoryLatencies
from ..targets.protocol import TracedVictim
from ..seeding import derive_rng
from ..staticcheck import secret_attributes
from .defender import DefenderObserver
from .monitor import SboxMonitor
from .primitive import ProbePrimitive, make_primitive
from .transport import CacheTransport, SingleLevelTransport


@dataclass(frozen=True)
class WindowObservation:
    """One encryption's observable signals in the attack window."""

    hit_miss: Tuple[bool, ...]
    latency_cycles: int
    accesses: int

    @property
    def misses(self) -> int:
        """Number of misses in the window (distinct lines touched)."""
        return sum(1 for hit in self.hit_miss if not hit)


@dataclass(frozen=True)
class WindowBatch:
    """A whole batch's window signals as one 2-D hit/miss array.

    ``hit_miss[n][k]`` is window ``n``'s ``k``-th monitored S-box load
    (rounds ascending, segments ascending within a round — the scalar
    trace order), ``True`` for a cache hit.  Rows are numpy arrays on
    the vectorized path and plain tuples on the scalar fallback; both
    index identically and :meth:`observation` converts either back to
    the scalar :class:`WindowObservation`.
    """

    hit_miss: Any  # (count, accesses) bool rows
    latency_cycles: Any  # (count,) ints
    accesses: int
    first_round: int
    last_round: int

    @property
    def count(self) -> int:
        """Number of windows in the batch."""
        return len(self.hit_miss)

    @property
    def misses(self) -> List[int]:
        """Per-window miss counts."""
        return [sum(1 for hit in row if not hit) for row in self.hit_miss]

    def observation(self, index: int) -> WindowObservation:
        """Window ``index`` as a scalar :class:`WindowObservation`."""
        return WindowObservation(
            hit_miss=tuple(bool(hit) for hit in self.hit_miss[index]),
            latency_cycles=int(self.latency_cycles[index]),
            accesses=self.accesses,
        )


@secret_attributes("victim")
class ObservationChannel:
    """Runs crafted encryptions and returns channel observations.

    The channel holds the victim instance (and therefore the secret
    key), but exposes only the side-channel signals: callers submit a
    plaintext and receive the set of monitored lines the probe reports
    (:meth:`observe`), the window's hit/miss sequence
    (:meth:`hit_miss`), or its latency (:meth:`timing`).

    Parameters
    ----------
    victim:
        The traced table-based cipher under attack.
    config:
        An :class:`~repro.core.config.AttackConfig` (duck-typed: any
        object with the same observation-relevant attributes works).
    rng:
        Optional override of the noise stream (legacy runner knob).
    transport:
        L2 override; defaults to a single shared cache of the config's
        geometry.
    primitive:
        L1 override; defaults to ``config.probe_strategy``.
    degradations:
        L3 decorator stack; defaults to ``(config.loss,)``.
    rng_scope:
        Label prefix of the derived RNG streams.  The default keeps
        bit-identical streams with the historic single-core runner;
        the cross-core subclass uses ``"crosscore"``.
    defender:
        Optional :class:`~repro.channel.defender.DefenderObserver`.
        When given, the transport is wrapped in a counter tap and a
        defender window opens around every :meth:`observe` — the
        full path runs (taps need real events), which is
        observation- and RNG-identical to the fast path, so watching
        never changes what the attacker sees or spends.
    """

    def __init__(self, victim: TracedVictim, config: Any,
                 rng: Optional[random.Random] = None, *,
                 transport: Optional[CacheTransport] = None,
                 primitive: Optional[ProbePrimitive] = None,
                 degradations: Optional[Sequence[Any]] = None,
                 rng_scope: str = "runner",
                 defender: Optional[DefenderObserver] = None) -> None:
        self.victim = victim
        self.config = config
        self.monitor = SboxMonitor.build(victim.layout, config.geometry)
        if transport is None:
            transport = SingleLevelTransport(config.geometry)
        else:
            transport.check_geometry(config.geometry)
        self.defender = defender
        if defender is not None:
            transport = defender.watch(transport)
        self.transport = transport
        if primitive is None:
            primitive = make_primitive(
                config.probe_strategy, self.monitor,
                signal_miss_probability=getattr(
                    config, "flush_flush_miss_probability", 0.0),
                rng=derive_rng(f"{rng_scope}-primitive", config.seed),
            )
        self.primitive = primitive
        if not primitive.flush_based and not transport.supports_prime_probe:
            raise ValueError(
                f"{type(primitive).__name__} needs same-cache contention, "
                f"which {type(transport).__name__} cannot provide "
                f"(a cross-core attacker is clflush-based)"
            )
        if degradations is None:
            degradations = (config.loss,)
        self.degradations: Tuple[Any, ...] = tuple(degradations)
        # Scope-derived so the noise stream is independent of the
        # attacker's crafting stream, and deterministic even when no
        # seed was configured (seed=None is a valid, reproducible seed).
        self._noise_rng = (rng if rng is not None
                           else derive_rng(f"{rng_scope}-noise",
                                           config.seed))
        # The loss stream is separate again so a lossless run consumes
        # exactly the randomness it did before the channel existed.
        self._loss_rng = derive_rng(f"{rng_scope}-loss", config.seed)
        self._monitored_addresses = self.monitor.line_addresses()
        self.encryptions_run = 0
        # Batch-path state, all lazy: the vectorized index source (from
        # the victim's target), the numpy loss stream (a NEW derived
        # stream — "{scope}-loss-batch" — so the scalar loss_rng above
        # keeps its exact pre-batch draw sequence), and the index->line
        # lookup array.
        self._rng_scope = rng_scope
        self._batch_view_resolved = False
        self._batch_view: Optional[Any] = None
        self._loss_batch_gen: Optional[Any] = None
        self._lines_by_index: Optional[Any] = None

    # ------------------------------------------------------------------
    # Capabilities
    # ------------------------------------------------------------------

    @property
    def fast_path_active(self) -> bool:
        """Whether observations take the accelerated exact path."""
        return (self.config.fast_path_applicable
                and self.primitive.line_granular
                and self.transport.supports_fast_path)

    @property
    def batch_path_active(self) -> bool:
        """Whether :meth:`observe_batch` runs vectorized.

        The batch path requires everything the fast path does, plus a
        perfectly reliable per-line readout (a noisy Flush+Flush signal
        consumes the primitive's RNG per window in scalar order), no
        window-shifting degradation (jitter draws from the scalar loss
        stream before each encryption), batch-aware lossy degradations
        (:meth:`~repro.channel.degradation.LossyChannel.drop_lines_batch`),
        and a vectorized index source for the victim.  Anything else
        falls back to looping :meth:`observe`, which stays bit-exact
        with the historic scalar runs.
        """
        if not self.fast_path_active:
            return False
        if self.primitive.signal_reliability != 1.0:
            return False
        for degradation in self.degradations:
            if degradation.shifts_window:
                return False
            if (not degradation.is_lossless
                    and not hasattr(degradation, "drop_lines_batch")):
                return False
        return self._resolve_batch_view() is not None

    def _resolve_batch_view(self) -> Optional[Any]:
        """The victim's vectorized index source, or ``None``.

        A batch-capable victim (:class:`~repro.targets.batch.BatchVictim`)
        is its own source; otherwise the victim's registered target is
        asked via ``batch_view`` — which answers ``None`` for wrapped
        victims it cannot see through (recording/replay) and for
        targets without a bitsliced backend.
        """
        if not self._batch_view_resolved:
            self._batch_view_resolved = True
            if hasattr(self.victim, "sbox_indices_batch"):
                self._batch_view = self.victim
            else:
                try:
                    from ..targets import resolve_target_for

                    target = resolve_target_for(self.victim)
                    self._batch_view = target.batch_view(self.victim)
                except (TypeError, KeyError, AttributeError):
                    self._batch_view = None
        return self._batch_view

    def _batch_loss_generator(self) -> Any:
        if self._loss_batch_gen is None:
            import numpy

            from ..seeding import derive_seed

            self._loss_batch_gen = numpy.random.default_rng(
                derive_seed(f"{self._rng_scope}-loss-batch",
                            self.config.seed)
            )
        return self._loss_batch_gen

    def _lines_by_index_array(self) -> Any:
        if self._lines_by_index is None:
            import numpy

            self._lines_by_index = numpy.asarray(
                self.monitor.line_by_index, dtype=numpy.int64
            )
        return self._lines_by_index

    @property
    def mid_flush_supported(self) -> bool:
        """Whether the primitive can clear state mid-encryption."""
        return self.primitive.supports_mid_flush

    @property
    def signal_reliability(self) -> float:
        """Mean per-line probability the primitive reads a genuine
        access as present (< 1.0 only for noisy readouts such as
        Flush+Flush)."""
        return self.primitive.signal_reliability

    @property
    def is_lossless(self) -> bool:
        """Whether the composed channel can never lose a genuine access."""
        return (self.primitive.signal_reliability == 1.0
                and all(d.is_lossless for d in self.degradations))

    # ------------------------------------------------------------------
    # Access-driven channel
    # ------------------------------------------------------------------

    def observe(self, plaintext: int, attacked_round: int
                ) -> FrozenSet[int]:
        """Encrypt ``plaintext`` and return the probe's line observation.

        ``attacked_round`` is the round whose key bits are targeted
        (``t``); the monitored accesses happen in round ``t +
        probe_round_offset`` (``t + 1`` for GIFT, whose key enters
        after round ``t``; ``t`` itself for PRESENT).  The probe lands
        after the monitored round plus ``probing_round - 1`` further
        rounds complete, and — when the flush is enabled and the
        primitive supports it — the monitored lines are flushed right
        before the monitored round so earlier rounds leave no residue.
        """
        if attacked_round < 1:
            raise ValueError(
                f"attacked_round must be >= 1, got {attacked_round}"
            )
        self.encryptions_run += 1
        if self.defender is not None:
            self.defender.begin_window(self.primitive.name)
        offset = getattr(self.victim, "probe_round_offset", 1)
        monitored_round = attacked_round + offset
        visible_through = monitored_round - 1 + self.config.probing_round
        for degradation in self.degradations:
            if degradation.shifts_window:
                # A jittered probe lands early or late: late draws add
                # later rounds' accesses, early draws can lose the
                # target round — or the whole window — outright.
                visible_through += degradation.sample_jitter(self._loss_rng)
                visible_through = min(visible_through, self.victim.rounds)
        flush_supported = (self.config.use_flush
                           and self.primitive.supports_mid_flush)
        first_visible = monitored_round if flush_supported else 1

        if visible_through < first_visible:
            observed = self._empty_window_observation()
            if not self.transport.noise_via_victim:
                observed |= self._noise_lines()
        elif self.fast_path_active:
            observed = self.primitive.filter_observation(
                self._fast_observation(
                    plaintext, first_visible, visible_through
                )
            )
            observed |= self._noise_lines()
        else:
            observed = self.primitive.filter_observation(
                self._full_observation(
                    plaintext, monitored_round, visible_through,
                    flush_supported
                )
            )
            if not self.transport.noise_via_victim:
                observed |= self._noise_lines()
        for degradation in self.degradations:
            if not degradation.is_lossless:
                observed = degradation.drop_lines(
                    observed, self.monitor.lines, self._loss_rng
                )
        if self.defender is not None:
            self.defender.end_window()
        return observed

    #: Historic name of :meth:`observe` (the pre-stack runner API).
    def observe_encryption(self, plaintext: int, attacked_round: int
                           ) -> FrozenSet[int]:
        """Alias of :meth:`observe` (the pre-stack runner's name)."""
        return self.observe(plaintext, attacked_round)

    def observe_batch(self, plaintexts: Sequence[int],
                      attacked_round: int) -> List[FrozenSet[int]]:
        """One observation per plaintext, whole-batch at once.

        Capability-dispatched: when :attr:`batch_path_active` holds,
        all encryptions run through the victim's vectorized index
        source and lossy degradations apply as batch masks on the
        dedicated ``"-loss-batch"`` stream (deterministic at ANY batch
        split — see ``LossyChannel.drop_lines_batch``); otherwise this
        is exactly ``[self.observe(p, attacked_round) for p in
        plaintexts]``.  On a lossless channel the two paths are
        observation-for-observation identical (the noise stream is
        consumed per window in scalar order on both).
        """
        if attacked_round < 1:
            raise ValueError(
                f"attacked_round must be >= 1, got {attacked_round}"
            )
        plaintexts = list(plaintexts)
        if not plaintexts:
            return []
        if not self.batch_path_active:
            return [self.observe(plaintext, attacked_round)
                    for plaintext in plaintexts]
        import numpy

        view = self._resolve_batch_view()
        count = len(plaintexts)
        self.encryptions_run += count
        offset = getattr(self.victim, "probe_round_offset", 1)
        monitored_round = attacked_round + offset
        visible_through = monitored_round - 1 + self.config.probing_round
        flush_supported = (self.config.use_flush
                           and self.primitive.supports_mid_flush)
        first_visible = monitored_round if flush_supported else 1
        indices = numpy.asarray(
            view.sbox_indices_batch(plaintexts, max_rounds=visible_through),
            dtype=numpy.uint8,
        )
        # (rounds', segments, N) -> monitored lines -> per-line presence.
        window_lines = self._lines_by_index_array()[
            indices[first_visible - 1:]
        ].reshape(-1, count)
        present = {
            line: (window_lines == line).any(axis=0)
            for line in self.monitor.lines
        }
        observations: List[FrozenSet[int]] = []
        for n in range(count):
            observed = self.primitive.filter_observation(frozenset(
                line for line in self.monitor.lines if present[line][n]
            ))
            observed |= self._noise_lines()
            observations.append(observed)
        for degradation in self.degradations:
            if not degradation.is_lossless:
                observations = degradation.drop_lines_batch(
                    observations, self.monitor.lines,
                    self._batch_loss_generator(),
                )
        return observations

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def _fast_observation(self, plaintext: int, first_visible: int,
                          visible_through: int) -> FrozenSet[int]:
        indices_by_round = self.victim.sbox_indices_by_round(
            plaintext, max_rounds=visible_through
        )
        line_by_index = self.monitor.line_by_index
        return frozenset(
            line_by_index[index]
            for round_indices in indices_by_round[first_visible - 1:]
            for index in round_indices
        )

    def _full_observation(self, plaintext: int, monitored_round: int,
                          visible_through: int,
                          flush_supported: bool) -> FrozenSet[int]:
        trace = self.victim.encrypt_traced(
            plaintext, max_rounds=visible_through
        )
        self.primitive.reset(self.transport)
        flushed = False
        for access in trace.accesses:
            if (flush_supported and not flushed
                    and access.round_index >= monitored_round):
                self.primitive.mid_flush(self.transport)
                flushed = True
            self.transport.victim_access(access.address)
        if flush_supported and not flushed:
            # The visible window ended exactly at the flush point.
            self.primitive.mid_flush(self.transport)
        if self.transport.noise_via_victim:
            # Cross-core noise is other-tenant traffic on the victim's
            # side of the hierarchy: the probe then observes it
            # naturally instead of having it unioned in afterwards.
            for address in self.config.noise.sample(
                    self._monitored_addresses, self._noise_rng):
                self.transport.victim_access(address)
        return self.primitive.observe(self.transport)

    def _empty_window_observation(self) -> FrozenSet[int]:
        if not self.transport.probe_on_empty_window:
            return frozenset()
        # The cross-core attacker's loop still flushes and probes even
        # when jitter pulled the window empty — a perturbing no-op.
        self.primitive.reset(self.transport)
        return self.primitive.filter_observation(
            self.primitive.observe(self.transport)
        )

    def _noise_lines(self) -> FrozenSet[int]:
        addresses = self.config.noise.sample(
            self._monitored_addresses, self._noise_rng
        )
        if not addresses:
            return frozenset()
        if not self.fast_path_active:
            for address in addresses:
                self.transport.victim_access(address)
        return frozenset(
            self.monitor.geometry.line_of(address) for address in addresses
        )

    # ------------------------------------------------------------------
    # Trace-/time-driven channels
    # ------------------------------------------------------------------

    def window(self, plaintext: int, first_round: int, last_round: int,
               latencies: Optional[MemoryLatencies] = None
               ) -> WindowObservation:
        """Both weaker signals of one encryption's S-box window.

        Starts from a cold transport of the same shape (as after a
        preceding flush or context switch), which is what the
        trace-/time-driven variants assume.
        """
        self.encryptions_run += 1
        return observe_window(
            self.victim, plaintext, self.config.geometry,
            first_round, last_round,
            latencies=latencies if latencies is not None
            else MemoryLatencies(),
            surface=self.transport.cold(),
        )

    def window_batch(self, plaintexts: Sequence[int], first_round: int,
                     last_round: int,
                     latencies: Optional[MemoryLatencies] = None
                     ) -> WindowBatch:
        """Both weaker signals for a whole batch of encryptions.

        Vectorized when the victim has a batch index source and the
        transport supports the fast path (a cold single-level window
        can never evict a monitored line, so a load hits exactly when
        its line was touched earlier in the window); otherwise falls
        back to looping :meth:`window`.  Both paths are asserted
        equal window-for-window by the test suite.
        """
        if first_round > last_round:
            raise ValueError(
                f"empty round window [{first_round}, {last_round}]"
            )
        plaintexts = list(plaintexts)
        cycle_costs = (latencies if latencies is not None
                       else MemoryLatencies())
        view = self._resolve_batch_view()
        if view is None or not self.transport.supports_fast_path:
            scalar = [
                self.window(plaintext, first_round, last_round,
                            latencies=cycle_costs)
                for plaintext in plaintexts
            ]
            return WindowBatch(
                hit_miss=tuple(obs.hit_miss for obs in scalar),
                latency_cycles=tuple(obs.latency_cycles for obs in scalar),
                accesses=scalar[0].accesses if scalar else 0,
                first_round=first_round,
                last_round=last_round,
            )
        import numpy

        count = len(plaintexts)
        self.encryptions_run += count
        indices = numpy.asarray(
            view.sbox_indices_batch(plaintexts, max_rounds=last_round),
            dtype=numpy.uint8,
        )
        # Monitored loads in scalar trace order: rounds ascending,
        # segments ascending within a round.
        sequence = self._lines_by_index_array()[
            indices[first_round - 1:last_round]
        ].reshape(-1, max(count, 1))[:, :count]
        misses = numpy.zeros(sequence.shape, dtype=bool)
        for line in self.monitor.lines:
            mask = sequence == line
            misses |= mask & (numpy.cumsum(mask, axis=0) == 1)
        hits = ~misses
        return WindowBatch(
            hit_miss=hits.T.copy(),
            latency_cycles=(
                hits.sum(axis=0) * cycle_costs.l1_hit_cycles
                + misses.sum(axis=0) * cycle_costs.l1_miss_cycles
            ),
            accesses=int(sequence.shape[0]),
            first_round=first_round,
            last_round=last_round,
        )

    def hit_miss(self, plaintext: int, first_round: int, last_round: int
                 ) -> Tuple[bool, ...]:
        """Trace-driven channel: the window's hit/miss sequence."""
        return self.window(plaintext, first_round, last_round).hit_miss

    def timing(self, plaintext: int, first_round: int, last_round: int,
               latencies: Optional[MemoryLatencies] = None) -> int:
        """Time-driven channel: the window's total access latency."""
        return self.window(
            plaintext, first_round, last_round, latencies
        ).latency_cycles

    # ------------------------------------------------------------------
    # Verification channel
    # ------------------------------------------------------------------

    def known_pair(self, plaintext: int) -> int:
        """Return the victim's ciphertext for ``plaintext``.

        The threat model lets the attacker submit data for encryption and
        see the result; GRINCH uses a single such pair to verify the
        assembled master key (and to disambiguate residual candidates
        with wide cache lines).
        """
        return self.victim.encrypt(plaintext)


def observe_window(victim: TracedVictim, plaintext: int,
                   geometry: Any, first_round: int, last_round: int,
                   latencies: MemoryLatencies = MemoryLatencies(),
                   surface: Optional[CacheTransport] = None
                   ) -> WindowObservation:
    """Run one encryption and collect both side-channel signals.

    Only the S-box loads of rounds ``first_round..last_round`` are
    observed (the PermBits table lives in its own region and, for the
    variants' purposes, contributes a constant offset).  The substrate
    starts cold, as after a flush.
    """
    if first_round > last_round:
        raise ValueError(
            f"empty round window [{first_round}, {last_round}]"
        )
    trace = victim.encrypt_traced(plaintext, max_rounds=last_round)
    if surface is None:
        surface = SingleLevelTransport(geometry)
    hit_miss: List[bool] = []
    latency = 0
    for access in trace.accesses:
        if access.table != "sbox":
            continue
        if not first_round <= access.round_index <= last_round:
            continue
        hit = surface.victim_access(access.address)
        hit_miss.append(hit)
        latency += (latencies.l1_hit_cycles if hit
                    else latencies.l1_miss_cycles)
    return WindowObservation(
        hit_miss=tuple(hit_miss),
        latency_cycles=latency,
        accesses=len(hit_miss),
    )


def hit_miss_trace(victim: TracedVictim, plaintext: int,
                   geometry: Any,
                   first_round: int, last_round: int) -> Tuple[bool, ...]:
    """Trace-driven channel: the window's hit/miss sequence."""
    return observe_window(
        victim, plaintext, geometry, first_round, last_round
    ).hit_miss


def encryption_latency(victim: TracedVictim, plaintext: int,
                       geometry: Any,
                       first_round: int, last_round: int,
                       latencies: MemoryLatencies = MemoryLatencies()
                       ) -> int:
    """Time-driven channel: the window's total data-access latency."""
    return observe_window(
        victim, plaintext, geometry, first_round, last_round, latencies
    ).latency_cycles
