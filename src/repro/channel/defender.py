"""L4 — the defender's side of the channel: counter-based detection.

Flush+Flush exists *because* defenders watch performance counters:
Gruss et al. built it to evade detectors that flag the cache-miss
storms of Flush+Reload and Prime+Probe (the HexPADS line of work).
This module gives the reproduction that defender, so "stealthy" is a
measured number instead of a citation:

* :class:`DefenderObserver` is a performance-counter-style monitor: it
  accumulates per-window **counter deltas** — victim/attacker hit and
  miss rates, flush counts with the resident/absent split, eviction
  and back-invalidate counts — sourced exclusively from
  :class:`~repro.cache.setassoc.CacheStats` /
  :class:`~repro.cache.multilevel.HierarchyStats` differences.  It
  never reads victim metadata, addresses, or cache content: everything
  it sees, a real PMU exposes.
* :class:`ObservedTransport` is the tap: a delegating
  :class:`~repro.channel.transport.CacheTransport` that attributes
  each operation's counter delta to the role that issued it (the
  per-core PMCs of a real system).  It advertises
  ``supports_fast_path = False`` so the observer runs the full
  simulation — the analytic fast path never touches the substrate, so
  there would be no events to count.  The two paths are
  observation-identical and draw identical RNG (test-pinned), which
  makes watching **transparent**: same observations, same encryption
  counts, seed-0 GIFT-64 recovery still takes exactly 464 encryptions
  under the defender's eye.
* :class:`DetectionPolicy` turns a window's counters into flags.  The
  default thresholds fire only on events commodity PMUs actually
  count — attacker-core cache misses and cache evictions.  Flush
  counts are *reported* but unflagged by default: no mainstream PMU
  has a ``clflush`` event, which is precisely Flush+Flush's stealth
  argument — its windows contain flushes and nothing else.

The per-primitive signatures this makes measurable (default GIFT-64
geometry, 16 monitored lines):

=============  =======================================================
Flush+Reload   the reload step *is* a miss storm: every monitored line
               the victim did not touch misses on reload.
Flush+Flush    flush-only windows — zero attacker accesses, zero
               attacker misses, zero evictions; only the (un-counted)
               flush events and their resident/absent split remain.
Prime+Probe    mass eviction traffic: priming walks every way of every
               monitored set and the probe step repeats it, so both
               miss and eviction counters light up.
=============  =======================================================

E20 (``repro.engine.stealth``) sweeps this into the stealth-vs-effort
frontier; ``docs/stealth.md`` defines the detectability metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Optional, Tuple

from .transport import CacheTransport

__all__ = [
    "CounterDelta",
    "DefenderObserver",
    "DefenderReport",
    "DetectionPolicy",
    "ObservedTransport",
    "WindowCounters",
    "read_counters",
]


@dataclass(frozen=True)
class CounterDelta:
    """A snapshot (or difference) of the substrate's event counters.

    The fields are the union of what :class:`CacheStats` and
    :class:`HierarchyStats` expose, normalised to one shape so the
    defender is transport-agnostic: ``accesses``/``hits``/``misses``
    are demand loads (a hierarchy's "miss" is a memory fetch),
    ``evictions`` are capacity victims at any level,
    ``back_invalidates`` are inclusive-L2 kills of L1 copies, and the
    flush triple carries the per-line resident/absent split.
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    flushes: int = 0
    flush_hits: int = 0
    flush_misses: int = 0
    back_invalidates: int = 0

    def __add__(self, other: "CounterDelta") -> "CounterDelta":
        return CounterDelta(*(
            getattr(self, f.name) + getattr(other, f.name)
            for f in fields(CounterDelta)
        ))

    def __sub__(self, other: "CounterDelta") -> "CounterDelta":
        return CounterDelta(*(
            getattr(self, f.name) - getattr(other, f.name)
            for f in fields(CounterDelta)
        ))

    @property
    def hit_rate(self) -> float:
        """Fraction of demand loads that hit (0.0 when idle)."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        """Fraction of demand loads that missed (0.0 when idle)."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def pmc_visible(self) -> int:
        """Events a commodity performance counter can see.

        Demand misses, capacity evictions, and back-invalidates all
        have PMU events on real hardware; ``clflush`` does not (the
        Flush+Flush stealth argument), so flushes are excluded.
        """
        return self.misses + self.evictions + self.back_invalidates


#: The all-zero delta (also the "cold counters" snapshot).
_ZERO = CounterDelta()


def read_counters(transport: Any) -> CounterDelta:
    """Normalised counter snapshot of a transport's substrate.

    Duck-typed on the substrate attribute, never on concrete classes,
    so recording/replay wrappers and future transports participate by
    exposing either a ``cache`` (:class:`CacheStats`) or a
    ``hierarchy`` (:class:`HierarchyStats`); a wrapper that holds an
    ``inner`` transport is unwrapped.  Only aggregate counters are
    read — no addresses, tags, or victim state.
    """
    inner = getattr(transport, "inner", None)
    if inner is not None:
        return read_counters(inner)
    cache = getattr(transport, "cache", None)
    if cache is not None:
        stats = cache.stats
        return CounterDelta(
            accesses=stats.accesses, hits=stats.hits, misses=stats.misses,
            evictions=stats.evictions, flushes=stats.flushes,
            flush_hits=stats.flush_hits, flush_misses=stats.flush_misses,
        )
    hierarchy = getattr(transport, "hierarchy", None)
    if hierarchy is not None:
        stats = hierarchy.stats
        hits = stats.l1_hits + stats.l2_hits
        return CounterDelta(
            accesses=hits + stats.memory_fetches, hits=hits,
            misses=stats.memory_fetches, evictions=stats.evictions,
            flushes=stats.flushes, flush_hits=stats.flush_hits,
            flush_misses=stats.flush_misses,
            back_invalidates=stats.back_invalidates,
        )
    raise TypeError(
        f"{type(transport).__name__} exposes neither a 'cache' nor a "
        f"'hierarchy' substrate — nothing for a defender to count"
    )


@dataclass
class WindowCounters:
    """One probe window's per-role counter deltas.

    ``attacker`` accumulates deltas of the attacker's operations
    (probe accesses and flushes), ``victim`` those of victim-side
    traffic (the encryption itself plus co-runner noise, which a real
    defender cannot tell apart).  ``flags`` holds the detection
    reasons the policy raised when the window closed.
    """

    index: int
    primitive: str = ""
    attacker: CounterDelta = _ZERO
    victim: CounterDelta = _ZERO
    flags: Tuple[str, ...] = ()

    @property
    def total(self) -> CounterDelta:
        """Role-blind view (a global, unattributed PMU)."""
        return self.attacker + self.victim

    @property
    def pmc_visible(self) -> int:
        """The window's detectability raw material.

        Attacker-attributed events only: the victim's own table
        traffic evicts its own lines all day (the GIFT PermBits
        working set alone keeps sets churning), so a detector
        thresholding global eviction counts would flag the *victim*.
        A deployed detector baselines the protected workload away;
        attributing each event to the core whose operation caused it
        — which is exactly what per-core PMCs do for misses — is that
        baseline, applied exactly.
        """
        return (self.attacker.misses
                + self.attacker.evictions
                + self.attacker.back_invalidates)

    @property
    def flagged(self) -> bool:
        """Whether the detection policy fired on this window."""
        return bool(self.flags)


@dataclass(frozen=True)
class DetectionPolicy:
    """Per-window thresholds over the defender's counters.

    A threshold of ``None`` disables that detector.  The defaults
    model a HexPADS-style PMU detector: they fire on attacker-core
    miss storms and on shared-cache eviction storms, and deliberately
    have **no flush detector** — commodity PMUs cannot count
    ``clflush``, which is the documented reason Flush+Flush windows
    sail through.  Set ``max_flushes`` to model hypothetical
    flush-counting hardware and watch Flush+Flush light up.
    """

    max_attacker_misses: Optional[int] = 4
    max_evictions: Optional[int] = 8
    max_flushes: Optional[int] = None
    max_victim_miss_rate: Optional[float] = None

    def flags(self, window: WindowCounters) -> Tuple[str, ...]:
        """Detection reasons for one closed window (empty = clean).

        Both storm detectors look at attacker-attributed counts only:
        the victim's own eviction/miss baseline belongs to the
        workload, not the attack (see
        :attr:`WindowCounters.pmc_visible`).
        """
        reasons: List[str] = []
        if (self.max_attacker_misses is not None
                and window.attacker.misses > self.max_attacker_misses):
            reasons.append("attacker-miss-storm")
        evictions = (window.attacker.evictions
                     + window.attacker.back_invalidates)
        if (self.max_evictions is not None
                and evictions > self.max_evictions):
            reasons.append("eviction-storm")
        if (self.max_flushes is not None
                and window.attacker.flushes > self.max_flushes):
            reasons.append("flush-storm")
        if (self.max_victim_miss_rate is not None
                and window.victim.accesses
                and window.victim.miss_rate > self.max_victim_miss_rate):
            reasons.append("victim-miss-rate")
        return tuple(reasons)


@dataclass(frozen=True)
class DefenderReport:
    """Aggregate verdict over every window the defender saw.

    ``detectability`` is the metric E20 plots: mean PMC-visible events
    per window (attacker misses + evictions + back-invalidates).  It
    is zero for a perfectly stealthy attacker and grows with exactly
    the traffic a real detector thresholds on; ``detection_rate`` is
    the thresholded view under the configured policy.
    """

    windows: int
    flagged_windows: int
    detection_rate: float
    detectability: float
    attacker_accesses_per_window: float
    attacker_misses_per_window: float
    evictions_per_window: float
    flushes_per_window: float
    flush_resident_per_window: float
    flush_absent_per_window: float
    attacker_hit_rate: float
    victim_hit_rate: float
    victim_miss_rate: float
    flag_reasons: Dict[str, int]
    primitives: Tuple[str, ...]

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form for engine artifacts."""
        return {
            "windows": self.windows,
            "flagged_windows": self.flagged_windows,
            "detection_rate": self.detection_rate,
            "detectability": self.detectability,
            "attacker_accesses_per_window":
                self.attacker_accesses_per_window,
            "attacker_misses_per_window":
                self.attacker_misses_per_window,
            "evictions_per_window": self.evictions_per_window,
            "flushes_per_window": self.flushes_per_window,
            "flush_resident_per_window": self.flush_resident_per_window,
            "flush_absent_per_window": self.flush_absent_per_window,
            "attacker_hit_rate": self.attacker_hit_rate,
            "victim_hit_rate": self.victim_hit_rate,
            "victim_miss_rate": self.victim_miss_rate,
            "flag_reasons": dict(self.flag_reasons),
            "primitives": list(self.primitives),
        }


class DefenderObserver:
    """Performance-counter-style monitor, fed by an observed transport.

    The observation channel opens a window around every probe
    (:meth:`begin_window` / :meth:`end_window`); traffic outside any
    window — e.g. the cold replays of the trace-/time-driven variants
    — accumulates in the :attr:`ambient` buckets instead, so nothing
    the tap sees is ever dropped.

    The defender consumes **no randomness** and perturbs **no state**:
    it only subtracts counter snapshots the substrate maintains
    anyway, which is what keeps a watched attack bit-identical to an
    unwatched one.
    """

    def __init__(self, policy: Optional[DetectionPolicy] = None) -> None:
        self.policy = policy if policy is not None else DetectionPolicy()
        self.windows: List[WindowCounters] = []
        self.ambient: Dict[str, CounterDelta] = {
            "attacker": _ZERO, "victim": _ZERO,
        }
        self._current: Optional[WindowCounters] = None

    # ------------------------------------------------------------------
    # Tap
    # ------------------------------------------------------------------

    def watch(self, transport: CacheTransport) -> "ObservedTransport":
        """Wrap ``transport`` so its events feed this defender."""
        return ObservedTransport(transport, self)

    def record(self, role: str, delta: CounterDelta) -> None:
        """One operation's counter delta, attributed to ``role``."""
        if role not in self.ambient:
            raise ValueError(f"unknown role {role!r}")
        window = self._current
        if window is None:
            self.ambient[role] = self.ambient[role] + delta
        elif role == "attacker":
            window.attacker = window.attacker + delta
        else:
            window.victim = window.victim + delta

    # ------------------------------------------------------------------
    # Windows
    # ------------------------------------------------------------------

    def begin_window(self, primitive: str = "") -> None:
        """Open a probe window (closing any window left open)."""
        if self._current is not None:
            self.end_window()
        self._current = WindowCounters(index=len(self.windows),
                                       primitive=primitive)

    def end_window(self) -> Optional[WindowCounters]:
        """Close the open window, run detection, and archive it."""
        window = self._current
        if window is None:
            return None
        self._current = None
        window.flags = self.policy.flags(window)
        self.windows.append(window)
        return window

    # ------------------------------------------------------------------
    # Verdict
    # ------------------------------------------------------------------

    def report(self) -> DefenderReport:
        """Aggregate everything seen so far into one report."""
        count = len(self.windows)
        flagged = sum(1 for w in self.windows if w.flagged)
        reasons: Dict[str, int] = {}
        for window in self.windows:
            for reason in window.flags:
                reasons[reason] = reasons.get(reason, 0) + 1
        attacker = sum((w.attacker for w in self.windows), _ZERO)
        victim = sum((w.victim for w in self.windows), _ZERO)
        per = float(count) if count else 1.0
        return DefenderReport(
            windows=count,
            flagged_windows=flagged,
            detection_rate=flagged / count if count else 0.0,
            detectability=(sum(w.pmc_visible for w in self.windows)
                           / per),
            attacker_accesses_per_window=attacker.accesses / per,
            attacker_misses_per_window=attacker.misses / per,
            evictions_per_window=((attacker.evictions
                                   + attacker.back_invalidates) / per),
            flushes_per_window=attacker.flushes / per,
            flush_resident_per_window=attacker.flush_hits / per,
            flush_absent_per_window=attacker.flush_misses / per,
            attacker_hit_rate=attacker.hit_rate,
            victim_hit_rate=victim.hit_rate,
            victim_miss_rate=victim.miss_rate,
            flag_reasons=reasons,
            primitives=tuple(sorted({w.primitive for w in self.windows
                                     if w.primitive})),
        )


class ObservedTransport(CacheTransport):
    """A transport with a defender's counter tap on every operation.

    Delegates every operation and capability to ``inner`` except
    ``supports_fast_path``, which is forced off: the analytic fast
    path computes observations without touching the substrate, so a
    watched channel must run the full simulation for the counters to
    mean anything.  The full path is observation-identical to the fast
    path and draws the same RNG streams (asserted by the equivalence
    suite), so forcing it changes *nothing* the attacker sees — only
    what the defender does.
    """

    def __init__(self, inner: CacheTransport,
                 defender: DefenderObserver) -> None:
        self.inner = inner
        self.defender = defender
        self.supports_prime_probe = inner.supports_prime_probe
        self.supports_fast_path = False
        self.noise_via_victim = inner.noise_via_victim
        self.probe_on_empty_window = inner.probe_on_empty_window

    def _recorded(self, role: str, operation: Any, address: int) -> Any:
        before = read_counters(self.inner)
        result = operation(address)
        self.defender.record(role, read_counters(self.inner) - before)
        return result

    def access(self, address: int) -> bool:
        return self._recorded("attacker", self.inner.access, address)

    def flush_line(self, address: int) -> bool:
        return self._recorded("attacker", self.inner.flush_line, address)

    def victim_access(self, address: int) -> bool:
        return self._recorded("victim", self.inner.victim_access, address)

    def cold(self) -> "ObservedTransport":
        """A cold inner substrate under the *same* defender's tap."""
        return ObservedTransport(self.inner.cold(), self.defender)

    def check_geometry(self, geometry: Any) -> None:
        self.inner.check_geometry(geometry)

    @property
    def line_bytes(self) -> int:
        return self.inner.line_bytes
