"""PRESENT cipher — GIFT's ancestor, used as a comparison baseline."""

from .bitsliced import BatchTrace, BitslicedPresent, numpy_available
from .cipher import (
    PLAYER,
    PLAYER_INV,
    PRESENT_ROUNDS,
    PRESENT_SBOX,
    PRESENT_SBOX_INV,
    Present,
)
from .vectors import PRESENT80_VECTORS

__all__ = [
    "BatchTrace",
    "BitslicedPresent",
    "numpy_available",
    "PLAYER",
    "PLAYER_INV",
    "PRESENT_ROUNDS",
    "PRESENT_SBOX",
    "PRESENT_SBOX_INV",
    "Present",
    "PRESENT80_VECTORS",
]
