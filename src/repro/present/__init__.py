"""PRESENT cipher — GIFT's ancestor, used as a comparison baseline."""

from .cipher import (
    PLAYER,
    PLAYER_INV,
    PRESENT_ROUNDS,
    PRESENT_SBOX,
    PRESENT_SBOX_INV,
    Present,
)
from .vectors import PRESENT80_VECTORS

__all__ = [
    "PLAYER",
    "PLAYER_INV",
    "PRESENT_ROUNDS",
    "PRESENT_SBOX",
    "PRESENT_SBOX_INV",
    "Present",
    "PRESENT80_VECTORS",
]
