"""Reference implementation of PRESENT (Bogdanov et al., CHES 2007).

GIFT was designed as "a small PRESENT" (the paper's Section II): PRESENT
is its direct ancestor and the natural baseline for the S-box-footprint
comparisons in the examples.  PRESENT's S-box must satisfy branch
number 3 — the cost GIFT's co-designed SubCells/PermBits avoids — and
PRESENT XORs the *full* 64-bit round key into the state before every
S-box layer, which changes where a cache attack can read key bits.
"""

from __future__ import annotations

from typing import List, Tuple

from ..staticcheck.equivalence import declare_table_layout
from ..staticcheck.secrets import secret_params

#: The PRESENT S-box (branch number 3).
PRESENT_SBOX: Tuple[int, ...] = (
    0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD,
    0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2,
)

#: Inverse of :data:`PRESENT_SBOX`.
PRESENT_SBOX_INV: Tuple[int, ...] = tuple(
    PRESENT_SBOX.index(value) for value in range(16)
)

# Layout metadata for the quantitative leakage analyzer (same shape as
# the GIFT S-box: one byte per 4-bit entry, directly indexed).
declare_table_layout("PRESENT_SBOX", module=__name__, domain=16,
                     entry_bytes=1)
declare_table_layout("PRESENT_SBOX_INV", module=__name__, domain=16,
                     entry_bytes=1)

#: PRESENT's bit permutation: bit ``i`` moves to ``PLAYER[i]``.
PLAYER: Tuple[int, ...] = tuple(
    63 if i == 63 else (16 * i) % 63 for i in range(64)
)

PLAYER_INV: Tuple[int, ...] = tuple(
    PLAYER.index(i) for i in range(64)
)

#: Number of S-box rounds (a 32nd round key is XORed at the end).
PRESENT_ROUNDS: int = 31


@secret_params("state")
def _sbox_layer(state: int, inverse: bool = False) -> int:
    # PRESENT XORs the round key in *before* SubCells, so every round's
    # S-box index — including round 1's — is key-dependent.
    table = PRESENT_SBOX_INV if inverse else PRESENT_SBOX
    result = 0
    for segment in range(16):
        nibble = (state >> (4 * segment)) & 0xF
        result |= table[nibble] << (4 * segment)
    return result


@secret_params("state")
def _p_layer(state: int, inverse: bool = False) -> int:
    table = PLAYER_INV if inverse else PLAYER
    result = 0
    for i in range(64):
        if (state >> i) & 1:
            result |= 1 << table[i]
    return result


def _key_schedule_80(key: int) -> List[int]:
    if not 0 <= key < (1 << 80):
        raise ValueError("PRESENT-80 keys are 80-bit integers")
    register = key
    round_keys = []
    for round_counter in range(1, PRESENT_ROUNDS + 2):
        round_keys.append(register >> 16)  # top 64 bits
        # Rotate left by 61.
        register = ((register << 61) | (register >> 19)) & ((1 << 80) - 1)
        # S-box on the top nibble.
        top = PRESENT_SBOX[(register >> 76) & 0xF]
        register = (register & ~(0xF << 76)) | (top << 76)
        # XOR the round counter into bits 19..15.
        register ^= round_counter << 15
    return round_keys


def _key_schedule_128(key: int) -> List[int]:
    if not 0 <= key < (1 << 128):
        raise ValueError("PRESENT-128 keys are 128-bit integers")
    register = key
    round_keys = []
    for round_counter in range(1, PRESENT_ROUNDS + 2):
        round_keys.append(register >> 64)
        register = ((register << 61) | (register >> 67)) & ((1 << 128) - 1)
        high = PRESENT_SBOX[(register >> 124) & 0xF]
        low = PRESENT_SBOX[(register >> 120) & 0xF]
        register = (register & ~(0xFF << 120)) | (high << 124) | (low << 120)
        register ^= round_counter << 62
    return round_keys


class Present:
    """PRESENT with an 80- or 128-bit key."""

    def __init__(self, key: int, key_bits: int = 80) -> None:
        if key_bits == 80:
            self.round_keys = _key_schedule_80(key)
        elif key_bits == 128:
            self.round_keys = _key_schedule_128(key)
        else:
            raise ValueError(
                f"PRESENT keys are 80 or 128 bits, got {key_bits}"
            )
        self.key_bits = key_bits
        self.key = key

    def encrypt(self, plaintext: int) -> int:
        """Encrypt one 64-bit block."""
        if not 0 <= plaintext < (1 << 64):
            raise ValueError("PRESENT blocks are 64-bit integers")
        state = plaintext
        for round_index in range(PRESENT_ROUNDS):
            state ^= self.round_keys[round_index]
            state = _sbox_layer(state)
            state = _p_layer(state)
        return state ^ self.round_keys[PRESENT_ROUNDS]

    def decrypt(self, ciphertext: int) -> int:
        """Decrypt one 64-bit block."""
        if not 0 <= ciphertext < (1 << 64):
            raise ValueError("PRESENT blocks are 64-bit integers")
        state = ciphertext ^ self.round_keys[PRESENT_ROUNDS]
        for round_index in range(PRESENT_ROUNDS - 1, -1, -1):
            state = _p_layer(state, inverse=True)
            state = _sbox_layer(state, inverse=True)
            state ^= self.round_keys[round_index]
        return state

    def sbox_indices_by_round(self, plaintext: int, max_rounds: int
                              ) -> List[List[int]]:
        """Per-round S-box inputs, for cache-footprint comparisons.

        Unlike GIFT (where round 1 is key-free), every PRESENT round's
        S-box inputs are key-dependent because AddRoundKey precedes the
        S-box layer.
        """
        if not 1 <= max_rounds <= PRESENT_ROUNDS:
            raise ValueError(
                f"max_rounds must be in [1, {PRESENT_ROUNDS}], got {max_rounds}"
            )
        state = plaintext
        indices_by_round = []
        for round_index in range(max_rounds):
            state ^= self.round_keys[round_index]
            indices_by_round.append(
                [(state >> (4 * segment)) & 0xF for segment in range(16)]
            )
            state = _sbox_layer(state)
            state = _p_layer(state)
        return indices_by_round
