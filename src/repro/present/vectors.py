"""Official PRESENT-80 test vectors (Bogdanov et al., CHES 2007, App. I)."""

from __future__ import annotations

from typing import Tuple

from ..gift.vectors import TestVector

PRESENT80_VECTORS: Tuple[TestVector, ...] = (
    TestVector(
        key=0x00000000000000000000,
        plaintext=0x0000000000000000,
        ciphertext=0x5579C1387B228445,
    ),
    TestVector(
        key=0x00000000000000000000,
        plaintext=0xFFFFFFFFFFFFFFFF,
        ciphertext=0xA112FFC72F68417B,
    ),
    TestVector(
        key=0xFFFFFFFFFFFFFFFFFFFF,
        plaintext=0x0000000000000000,
        ciphertext=0xE72C46C0F5945049,
    ),
    TestVector(
        key=0xFFFFFFFFFFFFFFFFFFFF,
        plaintext=0xFFFFFFFFFFFFFFFF,
        ciphertext=0x3333DCD3213210D2,
    ),
)
