"""Official PRESENT test vectors (Bogdanov et al., CHES 2007, App. I)."""

from __future__ import annotations

from typing import Tuple

from ..targets.trace import TestVector

PRESENT80_VECTORS: Tuple[TestVector, ...] = (
    TestVector(
        key=0x00000000000000000000,
        plaintext=0x0000000000000000,
        ciphertext=0x5579C1387B228445,
    ),
    TestVector(
        key=0x00000000000000000000,
        plaintext=0xFFFFFFFFFFFFFFFF,
        ciphertext=0xA112FFC72F68417B,
    ),
    TestVector(
        key=0xFFFFFFFFFFFFFFFFFFFF,
        plaintext=0x0000000000000000,
        ciphertext=0xE72C46C0F5945049,
    ),
    TestVector(
        key=0xFFFFFFFFFFFFFFFFFFFF,
        plaintext=0xFFFFFFFFFFFFFFFF,
        ciphertext=0x3333DCD3213210D2,
    ),
)

PRESENT128_VECTORS: Tuple[TestVector, ...] = (
    TestVector(
        key=0x00000000000000000000000000000000,
        plaintext=0x0000000000000000,
        ciphertext=0x96DB702A2E6900AF,
    ),
    TestVector(
        key=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF,
        plaintext=0x0000000000000000,
        ciphertext=0x13238C710272A5D8,
    ),
    TestVector(
        key=0x00000000000000000000000000000000,
        plaintext=0xFFFFFFFFFFFFFFFF,
        ciphertext=0x3C6019E5E5EDD563,
    ),
    TestVector(
        key=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF,
        plaintext=0xFFFFFFFFFFFFFFFF,
        ciphertext=0x628D9FBD4218E5B4,
    ),
)
