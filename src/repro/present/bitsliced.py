"""Bitsliced (batch-first) PRESENT backend.

The thin PRESENT counterpart of :mod:`repro.gift.bitsliced`: the state
of ``N`` blocks is a ``(64, N)`` 0/1 bit-matrix and every round is
AddRoundKey (broadcast XOR of a precomputed key row), SubCells, and
the P-layer as one public row gather — followed by the schedule's
final post-whitening key, exactly as the scalar paths apply it.

PRESENT's S-box is realised LUT-free from its algebraic normal form:
each output bit is the XOR of a fixed set of input-bit monomials (the
Moebius transform of the truth table, derived and re-verified against
``PRESENT_SBOX`` by the test suite).  As on the GIFT path, no lookup
table means no secret-indexed load for staticcheck to flag.

``sbox_indices_batch`` mirrors the scalar victim exactly: PRESENT XORs
the round key in *before* SubCells, so the recorded indices — round
1's included — are the key-XORed nibbles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from ..staticcheck.secrets import secret_params
from .cipher import (
    PLAYER_INV,
    PRESENT_ROUNDS,
    PRESENT_SBOX,
    _key_schedule_80,
    _key_schedule_128,
)

try:  # pragma: no cover - exercised only where numpy is absent
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


def numpy_available() -> bool:
    """Whether the bitsliced backend can run in this interpreter."""
    return _np is not None


def _require_numpy() -> Any:
    if _np is None:  # pragma: no cover - exercised only without numpy
        raise ImportError(
            "the bitsliced PRESENT backend requires numpy; install numpy "
            "or use the scalar repro.present paths"
        )
    return _np


def _anf_monomials(table: Sequence[int]) -> Tuple[Tuple[int, ...], ...]:
    """ANF monomial masks per output bit (Moebius transform).

    ``result[bit]`` lists the 4-bit monomial masks whose product terms
    XOR to output ``bit``; mask 0 is the constant-1 term.
    """
    per_bit = []
    for bit in range(4):
        coeffs = [(table[x] >> bit) & 1 for x in range(16)]
        step = 1
        while step < 16:
            for base in range(0, 16, 2 * step):
                for j in range(base, base + step):
                    coeffs[j + step] ^= coeffs[j]
            step *= 2
        per_bit.append(tuple(m for m in range(16) if coeffs[m]))
    return tuple(per_bit)


#: The PRESENT S-box as ANF monomial sets, one tuple per output bit.
PRESENT_SBOX_ANF: Tuple[Tuple[int, ...], ...] = _anf_monomials(PRESENT_SBOX)


def _pack_blocks(blocks: Sequence[int]) -> "_np.ndarray":
    np = _require_numpy()
    count = len(blocks)
    if count == 0:
        return np.zeros((64, 0), dtype=np.uint8)
    try:
        buf = b"".join(int(block).to_bytes(8, "little")
                       for block in blocks)
    except (OverflowError, TypeError):
        raise ValueError("PRESENT blocks are 64-bit integers") from None
    raw = np.frombuffer(buf, dtype=np.uint8).reshape(count, 8)
    return np.ascontiguousarray(
        np.unpackbits(raw, axis=1, bitorder="little").T
    )


def _unpack_blocks(state: "_np.ndarray") -> List[int]:
    np = _require_numpy()
    raw = np.packbits(
        np.ascontiguousarray(state.T), axis=1, bitorder="little"
    )
    return [int.from_bytes(row.tobytes(), "little") for row in raw]


def _key_row(round_key: int) -> "_np.ndarray":
    np = _require_numpy()
    raw = np.frombuffer(round_key.to_bytes(8, "little"), dtype=np.uint8)
    return np.unpackbits(raw, bitorder="little")


@dataclass(frozen=True)
class BatchTrace:
    """Vectorized index trace (see :class:`repro.gift.bitsliced.BatchTrace`)."""

    ciphertexts: Tuple[int, ...]
    sbox_indices: Any  # (rounds, 16, N) uint8 ndarray
    first_round: int = 1

    @property
    def rounds(self) -> int:
        return int(self.sbox_indices.shape[0])


class BitslicedPresent:
    """Batch PRESENT bound to an 80- or 128-bit key schedule."""

    def __init__(self, master_key: int, key_bits: int = 80,
                 rounds: int = PRESENT_ROUNDS) -> None:
        np = _require_numpy()
        if not 1 <= rounds <= PRESENT_ROUNDS:
            raise ValueError(
                f"round count must be in [1, {PRESENT_ROUNDS}], got {rounds}"
            )
        if key_bits == 80:
            round_keys = _key_schedule_80(master_key)
        elif key_bits == 128:
            round_keys = _key_schedule_128(master_key)
        else:
            raise ValueError(
                f"PRESENT keys are 80 or 128 bits, got {key_bits}"
            )
        self.width = 64
        self.key_bits = key_bits
        self.rounds = rounds
        self.master_key = master_key
        self._segments = 16
        self._gather = np.array(PLAYER_INV, dtype=np.intp)
        self._key_rows = np.stack([_key_row(k) for k in round_keys])

    @classmethod
    def from_victim(cls, victim: Any) -> "BitslicedPresent":
        """Bitslice a scalar :class:`~repro.present.lut.TracedPresent`."""
        return cls(victim.master_key, key_bits=victim.key_bits,
                   rounds=victim.rounds)

    def _check_rounds(self, max_rounds: Optional[int]) -> int:
        limit = self.rounds if max_rounds is None else max_rounds
        if not 1 <= limit <= self.rounds:
            raise ValueError(
                f"max_rounds must be in [1, {self.rounds}], got {max_rounds}"
            )
        return limit

    @staticmethod
    def _sub_cells(state: "_np.ndarray") -> "_np.ndarray":
        """PRESENT's S-box from its ANF, on every nibble's bit-rows."""
        np = _require_numpy()
        inputs = (state[0::4], state[1::4], state[2::4], state[3::4])
        # Shared monomial products across the four output bits.
        monomials = {}
        for masks in PRESENT_SBOX_ANF:
            for mask in masks:
                if mask in monomials:
                    continue
                if mask == 0:
                    term = np.ones_like(inputs[0])
                else:
                    term = None
                    for bit in range(4):
                        if (mask >> bit) & 1:
                            term = (inputs[bit] if term is None
                                    else term & inputs[bit])
                monomials[mask] = term
        out = np.empty_like(state)
        for bit, masks in enumerate(PRESENT_SBOX_ANF):
            acc = monomials[masks[0]].copy()
            for mask in masks[1:]:
                acc ^= monomials[mask]
            out[bit::4] = acc
        return out

    def _indices(self, state: "_np.ndarray") -> "_np.ndarray":
        return (state[0::4]
                | (state[1::4] << 1)
                | (state[2::4] << 2)
                | (state[3::4] << 3))

    @secret_params("plaintexts")
    def encrypt_batch(self, plaintexts: Sequence[int]) -> List[int]:
        """Encrypt a whole batch; ``result[n] == encrypt(plaintexts[n])``.

        Matches the scalar victim's semantics: ``rounds`` S-box rounds
        and then the schedule's next key as post-whitening.
        """
        state = _pack_blocks(plaintexts)
        for round_index in range(self.rounds):
            state ^= self._key_rows[round_index][:, None]
            state = self._sub_cells(state)
            state = state[self._gather]
        state ^= self._key_rows[self.rounds][:, None]
        return _unpack_blocks(state)

    @secret_params("plaintexts")
    def sbox_indices_batch(self, plaintexts: Sequence[int],
                           max_rounds: Optional[int] = None
                           ) -> "_np.ndarray":
        """Per-round key-XORed nibbles for a whole batch.

        ``result[r - 1, s, n]`` equals
        ``victim.sbox_indices_by_round(plaintexts[n], max_rounds)[r-1][s]``.
        """
        return self.encrypt_traced_batch(plaintexts,
                                         max_rounds).sbox_indices

    @secret_params("plaintexts")
    def encrypt_traced_batch(self, plaintexts: Sequence[int],
                             max_rounds: Optional[int] = None
                             ) -> BatchTrace:
        """Encrypt a batch and return the vectorized index trace.

        As in the scalar ``encrypt_traced``, post-whitening is applied
        only when the full ``rounds`` are run.
        """
        np = _require_numpy()
        limit = self._check_rounds(max_rounds)
        state = _pack_blocks(plaintexts)
        indices = np.empty((limit, self._segments, state.shape[1]),
                           dtype=np.uint8)
        for round_index in range(limit):
            state ^= self._key_rows[round_index][:, None]
            indices[round_index] = self._indices(state)
            state = self._sub_cells(state)
            state = state[self._gather]
        if limit == self.rounds:
            state ^= self._key_rows[self.rounds][:, None]
        return BatchTrace(
            ciphertexts=tuple(_unpack_blocks(state)),
            sbox_indices=indices,
        )


__all__ = [
    "BatchTrace",
    "BitslicedPresent",
    "PRESENT_SBOX_ANF",
    "numpy_available",
]
