"""Table-based (lookup-table) PRESENT victim with memory tracing.

Mirrors :mod:`repro.gift.lut` for GIFT's ancestor: the S-box layer is
one table load per segment per round and the P-layer is one load per
segment from a precomputed scatter table.  The structural difference
that matters for GRINCH is *where* the key enters: PRESENT XORs the
full 64-bit round key into the state *before* the S-box layer, so the
monitored S-box index of a round-``t`` target lives in round ``t``
itself (``probe_round_offset = 0``) and even round 1's indices are
key-dependent.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..staticcheck.secrets import secret_params
from ..targets.layout import TableLayout
from ..targets.trace import EncryptionTrace, MemoryAccess
from .cipher import (
    PLAYER,
    PRESENT_ROUNDS,
    PRESENT_SBOX,
    PRESENT_SBOX_INV,
    _key_schedule_80,
    _key_schedule_128,
)


def _build_scatter_table() -> Tuple[Tuple[int, ...], ...]:
    """Precompute the P-layer as ``table[segment][nibble] -> scattered
    bits`` (the LUT realisation of PRESENT's bit permutation)."""
    table = []
    for segment in range(16):
        row = []
        for nibble in range(16):
            scattered = 0
            for bit in range(4):
                if (nibble >> bit) & 1:
                    scattered |= 1 << PLAYER[4 * segment + bit]
            row.append(scattered)
        table.append(tuple(row))
    return tuple(table)


_SCATTER_TABLE = _build_scatter_table()

#: Fused S-box/scatter: ``fused[seg][x] = scatter[seg][SBOX[x]]`` where
#: ``x`` is the (already key-XORed) input nibble.
_FUSED_SBOX_SCATTER = tuple(
    tuple(row[PRESENT_SBOX[x]] for x in range(16)) for row in _SCATTER_TABLE
)


class TracedPresent:
    """LUT-based PRESENT that records every table load it performs.

    Functionally identical to :class:`repro.present.cipher.Present`
    (cross-checked against the official CHES 2007 vectors in the test
    suite).  When constructed with fewer than the full 31 rounds, the
    post-whitening key of the *next* schedule entry is still applied so
    partial-round victims stay invertible and reference-checkable.
    """

    #: Registry name consumed by ``repro.targets.resolve_target_for``.
    attack_target = "present80"
    #: The round key enters before the monitored S-box layer.
    probe_round_offset = 0

    def __init__(self, master_key: int, key_bits: int = 80,
                 rounds: int = PRESENT_ROUNDS,
                 layout: TableLayout = TableLayout()) -> None:
        if not 1 <= rounds <= PRESENT_ROUNDS:
            raise ValueError(
                f"round count must be in [1, {PRESENT_ROUNDS}], got {rounds}"
            )
        if key_bits == 80:
            self._round_keys = _key_schedule_80(master_key)
        elif key_bits == 128:
            self._round_keys = _key_schedule_128(master_key)
        else:
            raise ValueError(
                f"PRESENT keys are 80 or 128 bits, got {key_bits}"
            )
        if key_bits == 128:
            self.attack_target = "present128"
        self.width = 64
        self.key_bits = key_bits
        self.rounds = rounds
        self.master_key = master_key
        self.layout = layout
        self._segments = 16
        self._scatter = _SCATTER_TABLE
        self._fused_sbox_scatter = _FUSED_SBOX_SCATTER
        self._sbox_address_table: Tuple[int, ...] = tuple(
            layout.sbox_addresses()
        )
        self._perm_address_table: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(layout.perm_address(segment, nibble, self._segments)
                  for nibble in range(16))
            for segment in range(self._segments)
        )

    @property
    def round_keys(self) -> List[int]:
        """The full schedule (32 entries for 31 rounds)."""
        return self._round_keys

    def encrypt(self, plaintext: int) -> int:
        """Encrypt one block on the trace-free fast path."""
        if not 0 <= plaintext < (1 << 64):
            raise ValueError("PRESENT blocks are 64-bit integers")
        state = plaintext
        fused = self._fused_sbox_scatter
        keys = self._round_keys
        for round_index in range(self.rounds):
            state ^= keys[round_index]
            permuted = 0
            for segment in range(16):
                permuted |= fused[segment][(state >> (4 * segment)) & 0xF]
            state = permuted
        return state ^ keys[self.rounds]

    def decrypt(self, ciphertext: int) -> int:
        """Decrypt one block (not traced)."""
        if not 0 <= ciphertext < (1 << 64):
            raise ValueError("PRESENT blocks are 64-bit integers")
        from .cipher import _p_layer, _sbox_layer
        state = ciphertext ^ self._round_keys[self.rounds]
        for round_index in range(self.rounds - 1, -1, -1):
            state = _p_layer(state, inverse=True)
            state = _sbox_layer(state, inverse=True)
            state ^= self._round_keys[round_index]
        return state

    def encrypt_traced(self, plaintext: int,
                       max_rounds: Optional[int] = None) -> EncryptionTrace:
        """Encrypt one block, recording all table loads.

        As in the GIFT victim, a bounded ``max_rounds`` leaves the
        post-``max_rounds`` state in ``ciphertext`` (no final key XOR).
        """
        if not 0 <= plaintext < (1 << 64):
            raise ValueError("PRESENT blocks are 64-bit integers")
        limit = self.rounds if max_rounds is None else max_rounds
        if not 1 <= limit <= self.rounds:
            raise ValueError(f"max_rounds must be in [1, {self.rounds}]")
        trace = EncryptionTrace(plaintext=plaintext, ciphertext=0)
        state = plaintext
        for round_index in range(1, limit + 1):
            state ^= self._round_keys[round_index - 1]
            state = self._sbox_layer_traced(state, round_index, trace)
            state = self._p_layer_traced(state, round_index, trace)
        if limit == self.rounds:
            state ^= self._round_keys[self.rounds]
        trace.ciphertext = state
        return trace

    def sbox_indices_by_round(self, plaintext: int, max_rounds: int
                              ) -> List[List[int]]:
        """Per-round S-box indices (the key-XORed nibbles), without
        trace-object overhead — the fast observation path."""
        if not 0 <= plaintext < (1 << 64):
            raise ValueError("PRESENT blocks are 64-bit integers")
        if not 1 <= max_rounds <= self.rounds:
            raise ValueError(f"max_rounds must be in [1, {self.rounds}]")
        indices_by_round: List[List[int]] = []
        state = plaintext
        fused = self._fused_sbox_scatter
        for round_index in range(max_rounds):
            state ^= self._round_keys[round_index]
            indices = [(state >> (4 * segment)) & 0xF for segment in range(16)]
            indices_by_round.append(indices)
            permuted = 0
            for segment, index in enumerate(indices):
                permuted |= fused[segment][index]
            state = permuted
        return indices_by_round

    @secret_params("state")
    def _sbox_layer_traced(self, state: int, round_index: int,
                           trace: EncryptionTrace) -> int:
        # AddRoundKey has already happened: every index below is
        # key-dependent — round 1 included, unlike GIFT.
        result = 0
        addresses = self._sbox_address_table
        for segment in range(self._segments):
            index = (state >> (4 * segment)) & 0xF
            trace.append(
                MemoryAccess(
                    address=addresses[index],
                    round_index=round_index,
                    segment=segment,
                    table="sbox",
                    index=index,
                )
            )
            result |= PRESENT_SBOX[index] << (4 * segment)
        return result

    @secret_params("state")
    def _p_layer_traced(self, state: int, round_index: int,
                        trace: EncryptionTrace) -> int:
        result = 0
        addresses = self._perm_address_table
        for segment in range(self._segments):
            nibble = (state >> (4 * segment)) & 0xF
            trace.append(
                MemoryAccess(
                    address=addresses[segment][nibble],
                    round_index=round_index,
                    segment=segment,
                    table="perm",
                    index=segment * 16 + nibble,
                )
            )
            result |= self._scatter[segment][nibble]
        return result


__all__ = ["TracedPresent", "PRESENT_SBOX_INV"]
