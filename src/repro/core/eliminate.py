"""Step 3 of the GRINCH methodology: candidate elimination.

The crafted plaintexts guarantee the target segment touches the *same*
S-box line in every encryption; every other monitored line is touched
only with some probability per encryption.  Intersecting the observed
line sets therefore converges (monotonically) onto the target line.
An empty intersection is a *contradiction*: the premise "one line is
always present" was violated, which happens exactly when a hypothesis
about earlier-round key bits was wrong — the signal the multi-round
attack uses to prune hypotheses.

That premise also makes the intersection *unsound under false
negatives*: a single missed target observation (lossy channel,
co-runner eviction, probe jitter) empties the set and kills a correct
hypothesis.  :class:`~repro.core.voting.VotingEliminator` is the
lossy-channel replacement; at zero loss it reduces exactly to this
class's behaviour.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Set


class CandidateEliminator:
    """Monotone intersection of observed line sets over a fixed universe."""

    def __init__(self, universe: FrozenSet[int]) -> None:
        if not universe:
            raise ValueError("candidate universe must not be empty")
        self.universe = universe
        self._candidates: Set[int] = set(universe)
        self.updates = 0

    @property
    def candidates(self) -> FrozenSet[int]:
        """Current surviving candidate lines."""
        return frozenset(self._candidates)

    @property
    def converged(self) -> bool:
        """Exactly one candidate line remains."""
        return len(self._candidates) == 1

    @property
    def contradicted(self) -> bool:
        """No candidate survives — some assumption was wrong."""
        return not self._candidates

    @property
    def resolved_line(self) -> int:
        """The unique surviving line (only valid when converged)."""
        if not self.converged:
            raise RuntimeError(
                f"eliminator has {len(self._candidates)} candidates, not 1"
            )
        return next(iter(self._candidates))

    def update(self, observed: Iterable[int]) -> FrozenSet[int]:
        """Intersect with one observation; return the surviving set."""
        self.updates += 1
        self._candidates &= set(observed)
        return self.candidates

    def update_batch(self,
                     observations: Iterable[Iterable[int]]
                     ) -> FrozenSet[int]:
        """Intersect with a whole window batch, in batch order.

        Equivalent to calling :meth:`update` once per observation —
        intersection is order-insensitive, but the ``updates`` counter
        still advances by the batch size so effort accounting matches
        the sequential path.  Returns the surviving set after the whole
        batch.
        """
        for observed in observations:
            self.update(observed)
        return self.candidates

    def reset(self) -> None:
        """Start over with the full universe."""
        self._candidates = set(self.universe)
        self.updates = 0
