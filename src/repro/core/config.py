"""Attack configuration.

One :class:`AttackConfig` captures everything the GRINCH experiments
sweep: cache geometry (Table I), the probing round and the mid-run flush
(Fig. 3), the probing primitive (Section III-C, step 2), and the
simulation budgets that realise the paper's ">1M encryptions" drop-out
rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..cache.geometry import CacheGeometry
from ..channel.degradation import LOSSLESS, NO_NOISE, LossyChannel, NoiseModel
from ..targets.layout import TableLayout

#: Probe primitive names accepted by :class:`AttackConfig`.
PROBE_STRATEGIES = ("flush_reload", "prime_probe", "flush_flush")

#: Candidate-recovery modes accepted by :class:`AttackConfig`.
RECOVERY_MODES = ("auto", "strict", "voting")


@dataclass(frozen=True)
class AttackConfig:
    """Parameters of one GRINCH attack run.

    Attributes
    ----------
    geometry:
        Shared-L1 shape; ``geometry.line_words`` is Table I's sweep axis.
    layout:
        Victim table placement in memory.
    probing_round:
        How many rounds of victim activity accumulate in the cache before
        the attacker can probe (Fig. 3's x-axis).  Probing round ``r``
        while attacking round ``t`` means the observation happens after
        round ``t + r`` completes.
    use_flush:
        Whether the attacker flushes the monitored lines right after
        round ``t`` (the paper's "Grinch with Flush" series).  Without
        it, rounds ``1..t`` contribute "dirty" accesses.
    probe_strategy:
        ``"flush_reload"`` (paper's choice), ``"prime_probe"``, or
        ``"flush_flush"`` (Gruss et al.'s stealthy flush-latency
        channel; see ``flush_flush_miss_probability``).
    flush_flush_miss_probability:
        Per-readout false-negative rate of the Flush+Flush signal (the
        flush-latency margin is small, so a present line is sometimes
        read as absent; scaled per cache set — see
        :class:`~repro.channel.primitive.FlushFlush`).  Ignored by the
        other primitives.  A positive value makes ``recovery="auto"``
        vote, exactly like a lossy channel.
    max_encryptions_per_segment:
        Per-segment convergence budget; exceeding it raises
        :class:`~repro.core.errors.BudgetExceeded`.
    max_total_encryptions:
        Optional whole-attack budget (Table I's 1M drop-out).
    confirmation_margin:
        Extra encryptions run after an elimination reaches a single
        candidate *while testing ambiguous hypotheses*.  A wrong
        hypothesis makes the target access vary, so its intersection
        only passes through size one transiently; the margin lets it
        fall to empty before the hypothesis is accepted.  ``None``
        (default) sizes the margin from the analytic line-absence
        probability so the false-accept chance per hypothesis is about
        ``exp(-confirmation_factor)``.  Unambiguous runs (1-word lines,
        i.e. all of Fig. 3 / Table I row one) skip the margin, matching
        the paper's effort accounting.
    confirmation_factor:
        Safety factor for the automatic margin (see above).
    stall_window:
        When positive, an elimination whose candidate set has been
        *unchanged* for this many consecutive observations while still
        holding 2-4 lines is accepted as stalled: the surviving lines'
        key-pair candidates are carried forward like the wide-cache-line
        ambiguity of Section III-D.  Needed for Prime+Probe, whose
        set-granular view suffers persistent false positives from the
        PermBits table (the reason the paper prefers Flush+Reload);
        ``0`` (default) disables stall acceptance.
    seed:
        Seed for the attacker's RNG (plaintext crafting choices).
    noise:
        Co-running process noise injected into each probe window
        (false positives only; the channel stays sound).
    loss:
        False-negative channel model (per-line signal misses, co-runner
        eviction, probe-round jitter) — see
        :class:`~repro.channel.degradation.LossyChannel`.  The default is the
        lossless channel the strict intersection assumes.
    recovery:
        Candidate-recovery mode: ``"strict"`` (monotone intersection,
        contradicts on any false negative), ``"voting"`` (frequency
        scoring, see :mod:`repro.core.voting`), or ``"auto"`` (default:
        voting iff ``loss`` is lossy — the configurable fallback to
        strict intersection at zero loss).
    voting_confidence:
        Confidence the voting recovery must reach before accepting a
        segment's line.  The default is deliberately strict: acceptance
        is sequential (the voter stops the first time the posterior
        crosses the bar), and a full GIFT-64 recovery makes 64 segment
        decisions, so the per-decision error must stay well below
        ``1 / segments`` for the end-to-end success rate to hold.
    voting_min_observations:
        Minimum probe windows before voting may decide.  Calibrated so
        a hot background line cannot fake the target on a small-sample
        fluke: at fewer than ~16 windows a background line running hot
        while the true line runs cold can clear both the posterior and
        the separation guard, and those early wrong accepts are exactly
        the ones that poison later rounds.
    voting_stall_window:
        Re-craft the segment's plaintext stream after this many
        consecutive observations without a confidence improvement.
        Vote counts are kept across re-crafts — the target line is
        fixed by the hypothesis, not the crafter's randomness.
    max_segment_retries:
        Re-craft attempts per segment before giving up with
        :class:`~repro.core.errors.LowConfidenceError` instead of
        returning a low-confidence (probably wrong) key.
    use_fast_path:
        Allow the accelerated observation path when it is provably
        equivalent to the full cache simulation (Flush+Reload with
        non-colliding tables); automatically ignored otherwise.
    batch_size:
        How many crafted plaintexts the attack loop hands to the
        observation channel per call.  ``1`` (default) reproduces the
        historic one-encryption-at-a-time loop exactly — including its
        RNG draw order and encryption counts.  Larger batches route
        through :meth:`~repro.channel.ObservationChannel.observe_batch`
        (vectorized when a bitsliced backend is available), at the cost
        that a segment decision landing mid-batch leaves the rest of
        that batch's encryptions charged: throughput is bought with a
        bounded amount of over-observation, never with different
        decisions.
    """

    geometry: CacheGeometry = field(default_factory=CacheGeometry)
    layout: TableLayout = field(default_factory=TableLayout)
    probing_round: int = 1
    use_flush: bool = True
    probe_strategy: str = "flush_reload"
    flush_flush_miss_probability: float = 0.02
    max_encryptions_per_segment: int = 100_000
    max_total_encryptions: Optional[int] = 1_000_000
    confirmation_margin: Optional[int] = None
    confirmation_factor: float = 8.0
    stall_window: int = 0
    seed: Optional[int] = None
    noise: NoiseModel = NO_NOISE
    loss: LossyChannel = LOSSLESS
    recovery: str = "auto"
    voting_confidence: float = 0.9995
    voting_min_observations: int = 16
    voting_stall_window: int = 48
    max_segment_retries: int = 2
    use_fast_path: bool = True
    batch_size: int = 1

    def __post_init__(self) -> None:
        if self.probing_round < 1:
            raise ValueError(
                f"probing_round must be >= 1, got {self.probing_round}"
            )
        if self.probe_strategy not in PROBE_STRATEGIES:
            raise ValueError(
                f"probe_strategy must be one of {PROBE_STRATEGIES}, "
                f"got {self.probe_strategy!r}"
            )
        if not 0.0 <= self.flush_flush_miss_probability < 1.0:
            raise ValueError(
                f"flush_flush_miss_probability must be in [0, 1), "
                f"got {self.flush_flush_miss_probability}"
            )
        if self.max_encryptions_per_segment < 1:
            raise ValueError("max_encryptions_per_segment must be positive")
        if (self.max_total_encryptions is not None
                and self.max_total_encryptions < 1):
            raise ValueError("max_total_encryptions must be positive or None")
        if self.confirmation_margin is not None and self.confirmation_margin < 0:
            raise ValueError("confirmation_margin must be non-negative")
        if self.confirmation_factor <= 0:
            raise ValueError("confirmation_factor must be positive")
        if self.stall_window < 0:
            raise ValueError("stall_window must be non-negative")
        if self.recovery not in RECOVERY_MODES:
            raise ValueError(
                f"recovery must be one of {RECOVERY_MODES}, "
                f"got {self.recovery!r}"
            )
        if not 0.0 < self.voting_confidence < 1.0:
            raise ValueError("voting_confidence must be in (0, 1)")
        if self.voting_min_observations < 1:
            raise ValueError("voting_min_observations must be positive")
        if self.voting_stall_window < 1:
            raise ValueError("voting_stall_window must be positive")
        if self.max_segment_retries < 0:
            raise ValueError("max_segment_retries must be non-negative")
        if self.batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )

    @property
    def voting_active(self) -> bool:
        """Whether segments are recovered by voting instead of strict
        intersection (``"auto"`` votes exactly when the channel is
        lossy)."""
        if self.recovery == "voting":
            return True
        if self.recovery == "strict":
            return False
        if (self.probe_strategy == "flush_flush"
                and self.flush_flush_miss_probability > 0.0):
            # A noisy Flush+Flush readout loses genuine accesses just
            # like a lossy channel, so strict intersection would
            # contradict on it.
            return True
        return not self.loss.is_lossless

    @property
    def fast_path_applicable(self) -> bool:
        """Whether the accelerated observation path preserves semantics.

        The fast path skips the LRU machinery; that is exact only for
        the line-granular flush-based primitives (Flush+Reload and
        Flush+Flush: no set conflicts with other tables, and the
        readout noise applies identically on both paths) —
        Prime+Probe observes at set granularity where the PermBits
        table interferes, so it must run on the full simulator.
        """
        return (self.use_fast_path
                and self.probe_strategy in ("flush_reload", "flush_flush"))
