"""Frequency-scoring candidate recovery for lossy observation channels.

The strict :class:`~repro.core.eliminate.CandidateEliminator` is sound
only if the constant target line appears in *every* observation; a
single false negative empties its intersection and the attack dies with
a contradiction.  :class:`VotingEliminator` replaces set intersection
with per-line observation counts: the constant target is the line whose
presence rate tracks the channel's expected target presence, while
every other line's rate is strictly lower, so frequency separates them
given enough windows.

Decision rules (all binomial, no scipy — the container has none):

* a line is **viable** while its count is statistically consistent with
  the expected target presence rate ``e``: the lower binomial tail
  ``P[Bin(n, e) <= count]`` stays above ``viability_epsilon``.  At
  ``e = 1`` this degenerates to *perfect attendance*, making the voter
  update-for-update identical to the strict intersection (the
  zero-loss fallback the property tests pin down).
* the voter **accepts** the count leader once (a) the posterior
  probability that it is the constant target — uniform prior over the
  universe, each line scored by the likelihood ratio between "constant
  target present at rate ``e``" and "background line at the empirical
  rate ``b`` of the non-leaders" — exceeds ``confidence_threshold``,
  and (b) the leader *separates*: its count is not significantly below
  what a rate-``e`` target would show (lower tail above
  ``separation_epsilon``) while the runner-up's is.  The separation
  guard is what makes accepting a target-free stream (a wrong
  hypothesis) rare: there the top two counts are adjacent order
  statistics of the same background rate, so they can only straddle
  the bar on an unusual fluctuation — and the attack filters the
  residue through the hypothesis's line prediction and the
  verification rounds.
* the voter **rejects** (the wrong-hypothesis signal the multi-round
  attack needs) when *no* line is viable: even the leader is
  significantly below the presence a constant target would show.

A true target line is therefore never hard-eliminated by a run of bad
luck — it can only be deprioritised in the ranking until more windows
restore its lead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Tuple


def log_binom_pmf(n: int, k: int, p: float) -> float:
    """``log P[Bin(n, p) = k]`` via lgamma (exact enough for tails)."""
    if p <= 0.0:
        return 0.0 if k == 0 else -math.inf
    if p >= 1.0:
        return 0.0 if k == n else -math.inf
    log_comb = (math.lgamma(n + 1) - math.lgamma(k + 1)
                - math.lgamma(n - k + 1))
    return log_comb + k * math.log(p) + (n - k) * math.log1p(-p)


def binom_tail_ge(n: int, k: int, p: float) -> float:
    """``P[Bin(n, p) >= k]``."""
    if k <= 0:
        return 1.0
    if k > n:
        return 0.0
    total = 0.0
    for i in range(k, n + 1):
        total += math.exp(log_binom_pmf(n, i, p))
    return min(1.0, total)


def binom_tail_le(n: int, k: int, p: float) -> float:
    """``P[Bin(n, p) <= k]``."""
    if k >= n:
        return 1.0
    if k < 0:
        return 0.0
    total = 0.0
    for i in range(0, k + 1):
        total += math.exp(log_binom_pmf(n, i, p))
    return min(1.0, total)


@dataclass(frozen=True)
class VotingPolicy:
    """Calibration of one voting recovery run.

    Parameters
    ----------
    expected_presence:
        Per-observation probability that the true target line survives
        the channel (see
        :meth:`~repro.channel.degradation.LossyChannel.expected_target_presence`).
        ``1.0`` makes the voter behave exactly like the strict
        intersection.
    confidence_threshold:
        Required confidence (1 minus the chance the runner-up faked the
        leader's count) before the leader is accepted.
    min_observations:
        Observations before any acceptance decision is allowed; keeps
        tiny-sample binomial tails from deciding on noise.
    rejection_observations:
        Observations before an empty viable set may be declared a
        rejection (ignored at ``expected_presence == 1``, where
        viability is exact and rejection is immediate, like strict).
    viability_epsilon:
        Lower-tail probability below which a line is considered
        inconsistent with being the constant target.  Deliberately tiny
        so an unlucky true line is deprioritised, never excluded.
    separation_epsilon:
        Accept-time bar on the same lower tail: the leader must sit
        *above* it (it plausibly is a rate-``e`` target) and the
        runner-up *below* it (it plausibly is not).  Far looser than
        ``viability_epsilon`` — it gates acceptance, not survival.
    """

    expected_presence: float = 1.0
    confidence_threshold: float = 0.99
    min_observations: int = 8
    rejection_observations: int = 32
    viability_epsilon: float = 1e-6
    separation_epsilon: float = 0.03

    def __post_init__(self) -> None:
        if not 0.0 < self.expected_presence <= 1.0:
            raise ValueError(
                f"expected_presence must be in (0, 1], "
                f"got {self.expected_presence}"
            )
        if not 0.0 < self.confidence_threshold < 1.0:
            raise ValueError(
                f"confidence_threshold must be in (0, 1), "
                f"got {self.confidence_threshold}"
            )
        if self.min_observations < 1:
            raise ValueError("min_observations must be positive")
        if self.rejection_observations < 1:
            raise ValueError("rejection_observations must be positive")
        if not 0.0 < self.viability_epsilon < 1.0:
            raise ValueError("viability_epsilon must be in (0, 1)")
        if not self.viability_epsilon <= self.separation_epsilon < 1.0:
            raise ValueError(
                "separation_epsilon must be in [viability_epsilon, 1)"
            )

    @property
    def strict_equivalent(self) -> bool:
        """Whether this policy reduces to the monotone intersection."""
        return self.expected_presence >= 1.0


class VotingEliminator:
    """Per-line vote counts over a fixed universe of monitored lines.

    Drop-in decision core for the lossy-channel attack loop: feed each
    probe observation to :meth:`update`, then poll :attr:`decided` /
    :attr:`rejected`; :attr:`resolved_line` is the accepted target.
    """

    def __init__(self, universe: FrozenSet[int],
                 policy: VotingPolicy = VotingPolicy()) -> None:
        if not universe:
            raise ValueError("candidate universe must not be empty")
        self.universe = frozenset(universe)
        self.policy = policy
        self._counts: Dict[int, int] = {line: 0 for line in sorted(universe)}
        self.observations = 0

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------

    def update(self, observed: Iterable[int]) -> None:
        """Record one probe observation (lines outside the universe are
        ignored — a co-runner cannot vote)."""
        self.observations += 1
        for line in set(observed) & self.universe:
            self._counts[line] += 1

    def update_batch(self,
                     observations: Iterable[Iterable[int]]) -> None:
        """Record a whole window batch of probe observations.

        Vote counts are pure sums, so feeding a batch is exactly
        equivalent to calling :meth:`update` per window — this is the
        entry point the batched attack loop uses after
        :meth:`~repro.channel.ObservationChannel.observe_batch`.
        Decision properties (:attr:`decided`, :attr:`rejected`) reflect
        the state after the full batch.
        """
        for observed in observations:
            self.update(observed)

    @property
    def counts(self) -> Dict[int, int]:
        """Per-line observation counts (copy)."""
        return dict(self._counts)

    def presence_rate(self, line: int) -> float:
        """Empirical presence rate of ``line`` (0.0 before any update)."""
        if self.observations == 0:
            return 0.0
        return self._counts[line] / self.observations

    @property
    def ranking(self) -> List[Tuple[int, int]]:
        """Lines ranked by count (desc), ties broken by line number."""
        return sorted(self._counts.items(), key=lambda kv: (-kv[1], kv[0]))

    @property
    def leader(self) -> int:
        """The current count leader."""
        return self.ranking[0][0]

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def is_viable(self, line: int) -> bool:
        """Whether ``line``'s count is consistent with the target rate."""
        if self.observations == 0:
            return True
        if self.policy.strict_equivalent:
            return self._counts[line] == self.observations
        tail = binom_tail_le(self.observations, self._counts[line],
                             self.policy.expected_presence)
        return tail > self.policy.viability_epsilon

    @property
    def viable(self) -> FrozenSet[int]:
        """Lines still consistent with being the constant target.

        At zero loss this is exactly the strict intersection's
        surviving candidate set.
        """
        return frozenset(
            line for line in self._counts if self.is_viable(line)
        )

    @property
    def confidence(self) -> float:
        """Posterior probability that the leader is the constant target.

        Uniform prior over the universe; line ``i`` with count ``k_i``
        gets likelihood-ratio weight ``exp(k_i * w)`` where
        ``w = log(e/b) + log((1-b)/(1-e))`` compares "constant target
        at the expected presence ``e``" against "background line at the
        (smoothed) empirical non-leader rate ``b``".  When the leader
        does not outrun the background (``b >= e``) no separation is
        possible and the confidence is 0.  1.0 in strict-equivalent
        mode once the attendance set is a singleton.
        """
        n = self.observations
        if n == 0:
            return 0.0
        if self.policy.strict_equivalent:
            return 1.0 if len(self.viable) == 1 else 0.0
        ranked = self.ranking
        if len(ranked) == 1:
            return 1.0
        e = self.policy.expected_presence
        background = ((sum(count for _, count in ranked[1:]) + 1.0)
                      / (n * (len(ranked) - 1) + 2.0))
        if background >= e:
            return 0.0
        weight = (math.log(e / background)
                  + math.log((1.0 - background) / (1.0 - e)))
        top = ranked[0][1] * weight
        total = sum(math.exp(count * weight - top) for _, count in ranked)
        return 1.0 / total

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def _separation_tail(self, count: int) -> float:
        """Lower tail of ``count`` under the target-presence rate."""
        return binom_tail_le(self.observations, count,
                             self.policy.expected_presence)

    @property
    def separated(self) -> bool:
        """The leader looks like a rate-``e`` target and the runner-up
        does not (trivially true for a single-line universe)."""
        ranked = self.ranking
        epsilon = self.policy.separation_epsilon
        if self._separation_tail(ranked[0][1]) <= epsilon:
            return False
        if len(ranked) == 1:
            return True
        return self._separation_tail(ranked[1][1]) <= epsilon

    @property
    def decided(self) -> bool:
        """The leader may be accepted as the target line."""
        if self.observations == 0:
            return False
        if self.policy.strict_equivalent:
            return len(self.viable) == 1
        if self.observations < self.policy.min_observations:
            return False
        return (self.is_viable(self.leader)
                and self.separated
                and self.confidence >= self.policy.confidence_threshold)

    @property
    def rejected(self) -> bool:
        """No line behaves like a constant target — the lossy analogue
        of the strict intersection's contradiction."""
        if self.policy.strict_equivalent:
            return self.observations > 0 and not self.viable
        if self.observations < self.policy.rejection_observations:
            return False
        return not self.viable

    @property
    def resolved_line(self) -> int:
        """The accepted target line (only valid when :attr:`decided`)."""
        if not self.decided:
            raise RuntimeError(
                f"voter is undecided after {self.observations} "
                f"observations (confidence {self.confidence:.3f})"
            )
        if self.policy.strict_equivalent:
            return next(iter(self.viable))
        return self.leader
