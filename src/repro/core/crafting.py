"""Algorithm 2 of the GRINCH paper: crafted plaintext generation.

For a round-1 target, the crafted plaintext *is* the constrained
round-1 input: the four source segments are drawn from their valid-input
lists (forcing the four target bits after SubCells/PermBits), every
other segment is random — exactly Algorithm 2, extended to four pinned
segments per Section III-C.

For deeper targets (Step 5, "Update Plaintext Generation") the attacker
builds the desired constrained state the same way and then inverts the
earlier rounds using the round keys recovered so far; for GIFT:

    input_r = S⁻¹(P⁻¹(input_{r+1} XOR RK_r XOR C_r))

The inversion is the cipher target's
:meth:`~repro.targets.CipherTarget.invert_rounds` — each registered
cipher knows how its own rounds unwind (PRESENT, for instance, XORs
its key *before* the S-box layer and has no state-side constants).

A wrong guess for a round key shows up as a constant XOR error on the
achieved constrained state; errors outside the four pinned segments land
in positions that were random anyway, which is why hypothesis testing
only needs to enumerate the candidates of the four source segments.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from ..targets.registry import get_target
from .target_bits import TargetSpec


def build_target_round_input(spec: TargetSpec, rng: random.Random) -> int:
    """Draw one constrained target-round input for ``spec``.

    The pinned source segments take a random element of their
    valid-input list; the remaining segments take uniform random
    nibbles (Algorithm 2 lines 3-10).
    """
    segments = spec.width // 4
    state = 0
    for segment in range(segments):
        if segment in spec.valid_inputs:
            nibble = rng.choice(spec.valid_inputs[segment])
        else:
            nibble = rng.randrange(16)
        state |= nibble << (4 * segment)
    return state


def invert_rounds(state: int, round_keys: Sequence[Tuple[int, int]],
                  width: int) -> int:
    """Invert GIFT rounds ``len(round_keys) .. 1`` on a round-input state.

    ``round_keys[r - 1]`` is the ``(U, V)`` key of round ``r``.  Given the
    input of round ``len(round_keys) + 1``, returns the plaintext (the
    input of round 1) that produces it under those keys.

    Kept as the module-level GIFT entry point; the generic path is
    :meth:`repro.targets.CipherTarget.invert_rounds`.
    """
    return get_target(f"gift{width}").invert_rounds(state, round_keys)


class PlaintextCrafter:
    """Generates crafted plaintexts for one attack target.

    Parameters
    ----------
    spec:
        The target description from Algorithm 1.
    prior_round_keys:
        Keys of rounds ``1 .. t-1`` as known/hypothesised by the
        attacker (empty for a round-1 target), in the target's native
        round-key representation.
    rng:
        Attacker randomness for segment choices.
    """

    def __init__(self, spec: TargetSpec,
                 prior_round_keys: Sequence,
                 rng: random.Random) -> None:
        if len(prior_round_keys) != spec.round_index - 1:
            raise ValueError(
                f"round-{spec.round_index} target needs "
                f"{spec.round_index - 1} prior round keys, "
                f"got {len(prior_round_keys)}"
            )
        self.spec = spec
        self.prior_round_keys = list(prior_round_keys)
        self._rng = rng

    def craft(self) -> int:
        """Return one crafted plaintext."""
        target_input = build_target_round_input(self.spec, self._rng)
        if self.spec.target is not None:
            return self.spec.target.invert_rounds(
                target_input, self.prior_round_keys
            )
        return invert_rounds(target_input, self.prior_round_keys,
                             self.spec.width)

    def craft_many(self, count: int) -> List[int]:
        """Return ``count`` crafted plaintexts."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return [self.craft() for _ in range(count)]
