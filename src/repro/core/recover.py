"""Step 4 of the GRINCH methodology: reverse-engineering key bits.

Once elimination converges on a cache line, the attacker knows the
target S-box index up to the intra-line offset.  Because the crafted
state bits were forced to 1, each readable key-position index bit
inverts into a key bit (``Key[i] = NOT Index[a]`` in the paper).  The
key-free bits of the index are *predicted* by the attacker, which gives
a consistency check: indices in the line that contradict the prediction
are impossible — with wide lines this filter is what keeps the
candidate count at the paper's "maximum number of 4" (Section III-D),
and an empty filter result exposes a wrong earlier-round hypothesis.

The key bits sit at nibble offsets 0/1 for GIFT-64 and 1/2 for
GIFT-128; everything here reads the offsets from the
:class:`~repro.core.target_bits.TargetSpec`.
"""

from __future__ import annotations

from typing import Tuple

from ..channel.monitor import SboxMonitor
from .target_bits import TargetSpec

#: A candidate for one segment's two round-key bits: ``(v_bit, u_bit)``.
KeyBitPair = Tuple[int, int]


def indices_consistent_with_prediction(spec: TargetSpec,
                                       monitor: SboxMonitor,
                                       line: int) -> Tuple[int, ...]:
    """S-box indices in ``line`` matching the predicted key-free bits."""
    return tuple(
        index
        for index in monitor.indices_for_line(line)
        if all(
            (index >> offset) & 1 == value
            for offset, value in spec.free_bit_predictions
        )
    )


def key_pairs_from_line(spec: TargetSpec, monitor: SboxMonitor,
                        line: int) -> Tuple[KeyBitPair, ...]:
    """Candidate ``(v, u)`` key-bit pairs implied by a converged ``line``.

    Empty result means the observation is inconsistent with the
    attacker's predictions — the caller treats it like a contradiction.
    """
    v_offset, u_offset = spec.key_offsets
    pairs = {
        (
            ((index >> v_offset) & 1) ^ 1,
            ((index >> u_offset) & 1) ^ 1,
        )
        for index in indices_consistent_with_prediction(spec, monitor, line)
    }
    return tuple(sorted(pairs))


def expected_index(spec: TargetSpec, v_bit: int, u_bit: int) -> int:
    """The S-box index the target access *will* use, given the key bits.

    Used by the verification stage (where the target round's key bits
    are already determined by earlier recoveries) and by tests.
    """
    if v_bit not in (0, 1) or u_bit not in (0, 1):
        raise ValueError(f"key bits must be 0/1, got ({v_bit}, {u_bit})")
    v_offset, u_offset = spec.key_offsets
    index = ((1 ^ v_bit) << v_offset) | ((1 ^ u_bit) << u_offset)
    for offset, value in spec.free_bit_predictions:
        index |= value << offset
    return index
