"""Step 4 of the GRINCH methodology: reverse-engineering key bits.

Once elimination converges on a cache line, the attacker knows the
target S-box index up to the intra-line offset.  Because the crafted
state bits were forced to 1, each readable key-position index bit
inverts into a key bit (``Key[i] = NOT Index[a]`` in the paper).  The
key-free bits of the index are *predicted* by the attacker, which gives
a consistency check: indices in the line that contradict the prediction
are impossible — with wide lines this filter is what keeps the
candidate count at the paper's "maximum number of 4" (Section III-D),
and an empty filter result exposes a wrong earlier-round hypothesis.

The key bits sit at nibble offsets 0/1 for GIFT-64, 1/2 for GIFT-128
and 0..3 for PRESENT; everything here reads the offsets from the
:class:`~repro.core.target_bits.TargetSpec`, in whatever number the
target declares.
"""

from __future__ import annotations

from typing import Tuple

from ..channel.monitor import SboxMonitor
from .target_bits import TargetSpec

#: A candidate for one segment's round-key bits, in the target's
#: ``key_offsets`` order: ``(v_bit, u_bit)`` for GIFT, four bits for
#: PRESENT.  (The historical name is kept — GIFT's candidates are
#: pairs — but the tuple length follows the target.)
KeyBitPair = Tuple[int, ...]


def indices_consistent_with_prediction(spec: TargetSpec,
                                       monitor: SboxMonitor,
                                       line: int) -> Tuple[int, ...]:
    """S-box indices in ``line`` matching the predicted key-free bits."""
    return tuple(
        index
        for index in monitor.indices_for_line(line)
        if all(
            (index >> offset) & 1 == value
            for offset, value in spec.free_bit_predictions
        )
    )


def key_pairs_from_line(spec: TargetSpec, monitor: SboxMonitor,
                        line: int) -> Tuple[KeyBitPair, ...]:
    """Candidate key-bit tuples implied by a converged ``line``.

    Empty result means the observation is inconsistent with the
    attacker's predictions — the caller treats it like a contradiction.
    """
    offsets = spec.key_offsets
    pairs = {
        tuple(((index >> offset) & 1) ^ 1 for offset in offsets)
        for index in indices_consistent_with_prediction(spec, monitor, line)
    }
    return tuple(sorted(pairs))


def expected_index(spec: TargetSpec, *key_bits: int,
                   v_bit: int = None, u_bit: int = None) -> int:
    """The S-box index the target access *will* use, given the key bits.

    ``key_bits`` follow the spec's ``key_offsets`` order (``v, u`` for
    GIFT).  Used by the verification stage (where the target round's
    key bits are already determined by earlier recoveries) and by tests.
    The GIFT-era ``v_bit=``/``u_bit=`` keywords remain accepted for
    two-offset targets.
    """
    if v_bit is not None or u_bit is not None:
        if key_bits or v_bit is None or u_bit is None:
            raise ValueError(
                "pass key bits either positionally or as v_bit/u_bit"
            )
        key_bits = (v_bit, u_bit)
    if len(key_bits) != len(spec.key_offsets):
        raise ValueError(
            f"expected {len(spec.key_offsets)} key bits, got {len(key_bits)}"
        )
    if any(bit not in (0, 1) for bit in key_bits):
        raise ValueError(f"key bits must be 0/1, got {key_bits}")
    index = 0
    for offset, bit in zip(spec.key_offsets, key_bits):
        index |= (1 ^ bit) << offset
    for offset, value in spec.free_bit_predictions:
        index |= value << offset
    return index
