"""Cross-core attack runner: GRINCH through a shared L2.

Realises the paper's future-work question ("further explore the effect
of the memory hierarchy on the effectiveness of the attack"): the
victim runs on core 0 behind a private L1, the attacker on core 1 can
only sense the *shared L2* (its reloads hit there, never in the
victim's L1) but wields a ``clflush`` that purges the whole hierarchy.

Since the observation-channel refactor this is a thin specialisation
of :class:`~repro.channel.ObservationChannel`: all the cross-core
behaviour lives in :class:`~repro.channel.transport.SharedL2Transport`,
and :class:`~repro.core.attack.GrinchAttack` runs unchanged on top —
only the observability differs:

* **inclusive L2**: every victim miss fills L2 too, so after a flush
  the first touch of each line is visible — the attack goes through.
* **exclusive L2**: memory fills go to the victim's L1 only; a table
  that fits in L1 never appears in L2, and the attacker sees nothing —
  the hierarchy itself acts as a countermeasure.
"""

from __future__ import annotations

import random
from typing import Any, Optional

from ..cache.multilevel import (
    InclusionPolicy,
    TwoLevelHierarchy,
)
from ..channel.observer import ObservationChannel
from ..channel.transport import ATTACKER_CORE, VICTIM_CORE, SharedL2Transport
from ..targets.protocol import TracedVictim
from .config import AttackConfig

__all__ = [
    "ATTACKER_CORE",
    "VICTIM_CORE",
    "CrossCoreRunner",
    "make_cross_core_runner",
]


class CrossCoreRunner(ObservationChannel):
    """Drop-in observation channel whose probes go through a shared L2."""

    def __init__(self, victim: TracedVictim, config: AttackConfig,
                 hierarchy: Optional[TwoLevelHierarchy] = None,
                 rng: Optional[random.Random] = None,
                 defender: Optional[Any] = None) -> None:
        if config.probe_strategy == "prime_probe":
            raise ValueError(
                "the cross-core runner models a clflush-based attacker"
            )
        if hierarchy is None:
            hierarchy = TwoLevelHierarchy()
        if hierarchy.cores < 2:
            raise ValueError("cross-core attacks need at least two cores")
        if hierarchy.line_bytes != config.geometry.line_bytes:
            raise ValueError(
                "hierarchy line size must match the attack geometry"
            )
        super().__init__(
            victim, config, rng,
            transport=SharedL2Transport(hierarchy),
            rng_scope="crosscore",
            defender=defender,
        )
        self.hierarchy = hierarchy


def make_cross_core_runner(victim: TracedVictim, config: AttackConfig,
                           inclusion: InclusionPolicy,
                           policy: str = "lru",
                           defender: Optional[Any] = None
                           ) -> CrossCoreRunner:
    """Build a runner over a default two-core hierarchy.

    The hierarchy's line size follows the attack geometry so Table-I
    style sweeps stay meaningful cross-core.  ``policy`` selects the
    replacement policy of both levels (``"random"`` gives the
    ARMageddon-style mobile-SoC substrate, with independently derived
    per-set streams); ``defender`` optionally taps the transport.
    """
    from ..cache.geometry import CacheGeometry

    line_words = config.geometry.line_words
    hierarchy = TwoLevelHierarchy(
        cores=2,
        l1_geometry=CacheGeometry(total_lines=64, ways=4,
                                  line_words=line_words),
        l2_geometry=CacheGeometry(total_lines=1024, ways=16,
                                  line_words=line_words),
        inclusion=inclusion,
        policy=policy,
    )
    return CrossCoreRunner(victim, config, hierarchy, defender=defender)
