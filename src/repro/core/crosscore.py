"""Cross-core attack runner: GRINCH through a shared L2.

Realises the paper's future-work question ("further explore the effect
of the memory hierarchy on the effectiveness of the attack"): the
victim runs on core 0 behind a private L1, the attacker on core 1 can
only sense the *shared L2* (its reloads hit there, never in the
victim's L1) but wields a ``clflush`` that purges the whole hierarchy.

Exposes the same interface as
:class:`~repro.core.runner.CacheAttackRunner`, so
:class:`~repro.core.attack.GrinchAttack` runs unchanged on top — only
the observability differs:

* **inclusive L2**: every victim miss fills L2 too, so after a flush
  the first touch of each line is visible — the attack goes through.
* **exclusive L2**: memory fills go to the victim's L1 only; a table
  that fits in L1 never appears in L2, and the attacker sees nothing —
  the hierarchy itself acts as a countermeasure.
"""

from __future__ import annotations

import random
from typing import FrozenSet, Optional

from ..cache.multilevel import (
    InclusionPolicy,
    TwoLevelHierarchy,
)
from ..engine.seeding import derive_rng
from ..gift.lut import TracedGiftCipher
from .config import AttackConfig
from .monitor import SboxMonitor

#: Core indices of the two parties.
VICTIM_CORE = 0
ATTACKER_CORE = 1


class CrossCoreRunner:
    """Drop-in runner whose observations go through a shared L2."""

    def __init__(self, victim: TracedGiftCipher, config: AttackConfig,
                 hierarchy: Optional[TwoLevelHierarchy] = None,
                 rng: Optional[random.Random] = None) -> None:
        if config.probe_strategy != "flush_reload":
            raise ValueError(
                "the cross-core runner models a clflush-based attacker"
            )
        self.victim = victim
        self.config = config
        self.monitor = SboxMonitor.build(victim.layout, config.geometry)
        if hierarchy is None:
            hierarchy = TwoLevelHierarchy()
        if hierarchy.cores < 2:
            raise ValueError("cross-core attacks need at least two cores")
        if hierarchy.line_bytes != config.geometry.line_bytes:
            raise ValueError(
                "hierarchy line size must match the attack geometry"
            )
        self.hierarchy = hierarchy
        self._monitored_addresses = self.monitor.line_addresses()
        self._noise_rng = (rng if rng is not None
                           else derive_rng("crosscore-noise", config.seed))
        self._loss_rng = derive_rng("crosscore-loss", config.seed)
        self.encryptions_run = 0

    @property
    def fast_path_active(self) -> bool:
        """The hierarchy semantics require the full simulation."""
        return False

    #: clflush purges all levels, so mid-encryption flushing works.
    mid_flush_supported = True

    def observe_encryption(self, plaintext: int, attacked_round: int
                           ) -> FrozenSet[int]:
        """Same contract as the single-level runner, through L2."""
        if attacked_round < 1:
            raise ValueError(
                f"attacked_round must be >= 1, got {attacked_round}"
            )
        self.encryptions_run += 1
        loss = self.config.loss
        visible_through = attacked_round + self.config.probing_round
        if not loss.jitter.is_still:
            visible_through += loss.sample_jitter(self._loss_rng)
            visible_through = min(visible_through, self.victim.rounds)
        first_visible = (attacked_round + 1 if self.config.use_flush
                         else 1)
        if visible_through < first_visible:
            self._flush_monitored()
            observed: FrozenSet[int] = self._reload()
        else:
            trace = self.victim.encrypt_traced(
                plaintext, max_rounds=visible_through
            )
            self._flush_monitored()
            flushed = False
            for access in trace.accesses:
                if (self.config.use_flush and not flushed
                        and access.round_index > attacked_round):
                    self._flush_monitored()
                    flushed = True
                self.hierarchy.access(VICTIM_CORE, access.address)
            if self.config.use_flush and not flushed:
                self._flush_monitored()
            for address in self.config.noise.sample(
                    self._monitored_addresses, self._noise_rng):
                self.hierarchy.access(VICTIM_CORE, address)
            observed = self._reload()
        if loss.is_lossless:
            return observed
        return loss.drop_lines(observed, self.monitor.lines,
                               self._loss_rng)

    def _flush_monitored(self) -> None:
        for address in self._monitored_addresses:
            self.hierarchy.flush_line(address)

    def _reload(self) -> FrozenSet[int]:
        observed = set()
        for line, address in zip(self.monitor.lines,
                                 self._monitored_addresses):
            # The attacker's reload can only hit in its own (flushed)
            # L1 or the shared L2 — victim-L1 residency is invisible.
            if self.hierarchy.is_resident_l2(address):
                observed.add(line)
            # Touch it from the attacker core, as a real reload would.
            self.hierarchy.access(ATTACKER_CORE, address)
        return frozenset(observed)

    def known_pair(self, plaintext: int) -> int:
        """One plaintext/ciphertext pair for final verification."""
        return self.victim.encrypt(plaintext)


def make_cross_core_runner(victim: TracedGiftCipher, config: AttackConfig,
                           inclusion: InclusionPolicy
                           ) -> CrossCoreRunner:
    """Build a runner over a default two-core hierarchy.

    The hierarchy's line size follows the attack geometry so Table-I
    style sweeps stay meaningful cross-core.
    """
    from ..cache.geometry import CacheGeometry

    line_words = config.geometry.line_words
    hierarchy = TwoLevelHierarchy(
        cores=2,
        l1_geometry=CacheGeometry(total_lines=64, ways=4,
                                  line_words=line_words),
        l2_geometry=CacheGeometry(total_lines=1024, ways=16,
                                  line_words=line_words),
        inclusion=inclusion,
    )
    return CrossCoreRunner(victim, config, hierarchy)
