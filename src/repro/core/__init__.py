"""GRINCH: the paper's core contribution — an access-driven cache attack
on table-based GIFT implementations.

Typical use::

    from repro.core import AttackConfig, GrinchAttack
    from repro.targets.gift import TracedGift64

    victim = TracedGift64(master_key=secret)
    result = GrinchAttack(victim, AttackConfig(seed=1)).recover_master_key()
    assert result.master_key == secret
"""

from ..channel import (
    LOSSLESS,
    NO_JITTER,
    NO_NOISE,
    FlushFlush,
    FlushReload,
    LossyChannel,
    NoiseModel,
    ObservationChannel,
    PrimeProbe,
    ProbePrimitive,
    ProbeJitter,
    SboxMonitor,
    make_primitive,
)
from .attack import FULL_KEY_ROUNDS, GrinchAttack, recover_full_key
from .config import PROBE_STRATEGIES, RECOVERY_MODES, AttackConfig
from .crafting import PlaintextCrafter, build_target_round_input, invert_rounds
from .crosscore import CrossCoreRunner, make_cross_core_runner
from .eliminate import CandidateEliminator
from .errors import (
    AttackError,
    BudgetExceeded,
    InconsistentObservation,
    KeyVerificationFailed,
    LowConfidenceError,
)
from .profile import PROFILE_64, PROFILE_128, GiftAttackProfile, profile_for_width
from .recover import (
    KeyBitPair,
    expected_index,
    indices_consistent_with_prediction,
    key_pairs_from_line,
)
from .results import (
    AttackResult,
    FirstRoundResult,
    RoundAttackOutcome,
    RoundKeyEstimate,
    SegmentOutcome,
)
from .target_bits import SourceBit, TargetSpec, set_target_bits
from .voting import VotingEliminator, VotingPolicy

__all__ = [
    "FULL_KEY_ROUNDS",
    "GrinchAttack",
    "recover_full_key",
    "PROBE_STRATEGIES",
    "RECOVERY_MODES",
    "AttackConfig",
    "PlaintextCrafter",
    "build_target_round_input",
    "invert_rounds",
    "CrossCoreRunner",
    "make_cross_core_runner",
    "CandidateEliminator",
    "VotingEliminator",
    "VotingPolicy",
    "AttackError",
    "BudgetExceeded",
    "InconsistentObservation",
    "KeyVerificationFailed",
    "LowConfidenceError",
    "SboxMonitor",
    "LOSSLESS",
    "NO_JITTER",
    "NO_NOISE",
    "LossyChannel",
    "NoiseModel",
    "ProbeJitter",
    "FlushFlush",
    "FlushReload",
    "PrimeProbe",
    "ObservationChannel",
    "ProbePrimitive",
    "make_primitive",
    "PROFILE_64",
    "PROFILE_128",
    "GiftAttackProfile",
    "profile_for_width",
    "KeyBitPair",
    "expected_index",
    "indices_consistent_with_prediction",
    "key_pairs_from_line",
    "AttackResult",
    "FirstRoundResult",
    "RoundAttackOutcome",
    "RoundKeyEstimate",
    "SegmentOutcome",
    "SourceBit",
    "TargetSpec",
    "set_target_bits",
]
