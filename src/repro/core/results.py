"""Result records produced by the GRINCH attack stages."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..targets.protocol import CipherTarget
from .recover import KeyBitPair


@dataclass
class SegmentOutcome:
    """Outcome of attacking one (round, segment) target.

    ``resolved_hypothesis`` records which previous-round key-bit
    assignment survived the consistency test (empty for round 1 or when
    nothing was ambiguous).

    The telemetry trio ``confidence`` / ``observations`` / ``retries``
    describes the voting recovery when it ran (``recovery ==
    "voting"``): the acceptance confidence of the surviving line, how
    many probe windows it took, and how many re-crafts were needed.
    Strict-intersection segments keep the defaults (an accepted strict
    run is exact, hence confidence 1.0).
    """

    round_index: int
    segment: int
    encryptions: int
    hypotheses_tried: int
    line: int
    key_pairs: Tuple[KeyBitPair, ...]
    resolved_hypothesis: Dict[int, KeyBitPair] = field(default_factory=dict)
    confidence: float = 1.0
    observations: int = 0
    retries: int = 0
    recovery: str = "strict"

    @property
    def ambiguous(self) -> bool:
        """More than one key-bit pair remains for this segment."""
        return len(self.key_pairs) > 1


@dataclass
class RoundKeyEstimate:
    """Attacker's knowledge of one round key: per-segment candidates.

    ``pair_candidates[s]`` holds the surviving key-bit tuples for
    segment ``s`` (``(v, u)`` pairs for GIFT, 4-bit tuples for
    PRESENT), in the target's ``key_offsets`` order.  With 1-word cache
    lines every tuple is a singleton; wider lines leave several
    candidates until a later stage resolves them (Section III-D).

    ``target`` selects the round-key representation for
    :meth:`guess_round_key`; ``None`` keeps the historical GIFT
    ``(U, V)`` packing.
    """

    round_index: int
    pair_candidates: List[Tuple[KeyBitPair, ...]]
    target: Optional[CipherTarget] = field(default=None, compare=False,
                                           repr=False)

    def __post_init__(self) -> None:
        if len(self.pair_candidates) not in (16, 32):
            raise ValueError(
                f"round keys cover 16 (64-bit state) or 32 (128-bit "
                f"state) segments, got {len(self.pair_candidates)}"
            )
        for segment, candidates in enumerate(self.pair_candidates):
            if not candidates:
                raise ValueError(f"segment {segment} has no candidates")

    @property
    def segments(self) -> int:
        """Number of state segments this round key covers."""
        return len(self.pair_candidates)

    @property
    def resolved(self) -> bool:
        """Every segment is down to a single candidate pair."""
        return all(len(c) == 1 for c in self.pair_candidates)

    @property
    def ambiguity(self) -> int:
        """Number of joint candidate assignments still alive."""
        product = 1
        for candidates in self.pair_candidates:
            product *= len(candidates)
        return product

    def resolve_segment(self, segment: int, pair: KeyBitPair) -> None:
        """Pin one segment to a single candidate (consistency result)."""
        self.narrow_segment(segment, (pair,))

    def narrow_segment(self, segment: int,
                       pairs: Tuple[KeyBitPair, ...]) -> None:
        """Shrink one segment's candidates to a surviving subset."""
        if not pairs:
            raise ValueError(f"cannot narrow segment {segment} to nothing")
        current = self.pair_candidates[segment]
        missing = [pair for pair in pairs if pair not in current]
        if missing:
            raise ValueError(
                f"pairs {missing} are not among segment {segment}'s "
                f"candidates {current}"
            )
        self.pair_candidates[segment] = tuple(
            pair for pair in current if pair in pairs
        )

    def as_round_key(self) -> Any:
        """Return the resolved round key (``(U, V)`` for GIFT).

        Only valid when :attr:`resolved`.
        """
        if not self.resolved:
            raise RuntimeError(
                f"round-{self.round_index} estimate still has "
                f"{self.ambiguity} joint candidates"
            )
        return self.guess_round_key({})

    def guess_round_key(self, overrides: Dict[int, KeyBitPair]) -> Any:
        """Assemble a concrete round-key guess.

        Unresolved segments default to their first candidate unless
        ``overrides`` pins them; errors in segments outside a target's
        source cone are harmless (they only perturb already-random
        plaintext segments), which is what makes this default sound.
        """
        bits = [
            overrides.get(segment, self.pair_candidates[segment][0])
            for segment in range(self.segments)
        ]
        if self.target is not None:
            return self.target.round_key_from_segment_bits(bits)
        u = 0
        v = 0
        for segment, (v_bit, u_bit) in enumerate(bits):
            u |= u_bit << segment
            v |= v_bit << segment
        return u, v


@dataclass
class RoundAttackOutcome:
    """Aggregated outcome of one full round's 16 segment attacks."""

    round_index: int
    segments: List[SegmentOutcome]
    estimate: RoundKeyEstimate

    @property
    def encryptions(self) -> int:
        """Total victim encryptions spent on this round."""
        return sum(s.encryptions for s in self.segments)

    @property
    def min_confidence(self) -> float:
        """Weakest segment acceptance confidence in this round."""
        return min((s.confidence for s in self.segments), default=1.0)


@dataclass
class AttackResult:
    """Final result of a full GRINCH key recovery."""

    master_key: int
    total_encryptions: int
    rounds: List[RoundAttackOutcome]
    verified: bool
    verification_encryptions: int = 0

    @property
    def encryptions_by_round(self) -> Dict[int, int]:
        """Victim encryptions per attacked round."""
        return {r.round_index: r.encryptions for r in self.rounds}

    @property
    def min_confidence(self) -> float:
        """Weakest segment acceptance confidence across the attack."""
        return min((r.min_confidence for r in self.rounds), default=1.0)

    @property
    def mean_confidence(self) -> float:
        """Mean segment acceptance confidence across the attack."""
        confidences = [s.confidence for r in self.rounds
                       for s in r.segments]
        if not confidences:
            return 1.0
        return sum(confidences) / len(confidences)

    @property
    def total_retries(self) -> int:
        """Total voting re-crafts across all segments."""
        return sum(s.retries for r in self.rounds for s in r.segments)


@dataclass
class FirstRoundResult:
    """Result of the single-round experiments (Fig. 3 / Table I)."""

    outcome: RoundAttackOutcome
    encryptions: int
    recovered_bits: int
    dropped_out: bool = False
    dropout_reason: Optional[str] = None
