"""Deprecated: the runner became :class:`repro.channel.ObservationChannel`.

``CacheAttackRunner`` is the historic name of the observation stack's
L4 entry point; the class below is a direct alias (constructor
signature included — ``CacheAttackRunner(victim, config, rng)`` still
works).  This shim will be removed after one deprecation cycle (see
``docs/architecture.md``).
"""

from __future__ import annotations

import warnings

from ..channel.observer import ObservationChannel

warnings.warn(
    "repro.core.runner is deprecated; use "
    "repro.channel.ObservationChannel instead of CacheAttackRunner",
    DeprecationWarning,
    stacklevel=2,
)

#: Historic name of :class:`~repro.channel.observer.ObservationChannel`.
CacheAttackRunner = ObservationChannel

__all__ = ["CacheAttackRunner"]
