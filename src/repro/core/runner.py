"""Execution of one victim encryption under attacker observation.

:class:`CacheAttackRunner` wires together the traced victim, the shared
cache, the probe strategy and the noise model, and answers the only
question the attack ever asks: *which monitored lines did this
encryption (appear to) touch, given my probe landed after round N?*

Two execution paths produce that answer:

* the **full path** replays the victim's complete address stream through
  the set-associative simulator and runs the probe primitive on it —
  used for Prime+Probe, for ablations, and as ground truth in tests;
* the **fast path** computes the observation directly from the S-box
  accesses in the visible round window — exact for Flush+Reload under
  the default layouts (monitored lines can never be evicted: the
  victim's visible working set per cache set is far below the paper's
  16 ways), and ~40x faster, which the million-encryption sweeps of
  Table I need.  An equivalence test in the suite proves the two paths
  agree observation-for-observation.
"""

from __future__ import annotations

import random
from typing import FrozenSet, Optional

from ..cache.setassoc import SetAssociativeCache
from ..engine.seeding import derive_rng
from ..gift.lut import TracedGiftCipher
from .config import AttackConfig
from .monitor import SboxMonitor
from .probe import ProbeStrategy, make_probe


class CacheAttackRunner:
    """Runs crafted encryptions and returns probe observations.

    The runner holds the victim instance (and therefore the secret key),
    but exposes only the access-driven channel: callers submit a
    plaintext and receive the set of monitored lines the probe reports.
    """

    def __init__(self, victim: TracedGiftCipher, config: AttackConfig,
                 rng: Optional[random.Random] = None) -> None:
        self.victim = victim
        self.config = config
        self.monitor = SboxMonitor.build(victim.layout, config.geometry)
        self.cache = SetAssociativeCache(config.geometry)
        self.probe: ProbeStrategy = make_probe(
            config.probe_strategy, self.monitor
        )
        # Scope-derived so the noise stream is independent of the
        # attacker's crafting stream, and deterministic even when no
        # seed was configured (seed=None is a valid, reproducible seed).
        self._noise_rng = (rng if rng is not None
                           else derive_rng("runner-noise", config.seed))
        # The loss stream is separate again so a lossless run consumes
        # exactly the randomness it did before the channel existed.
        self._loss_rng = derive_rng("runner-loss", config.seed)
        self._monitored_addresses = self.monitor.line_addresses()
        self.encryptions_run = 0

    @property
    def fast_path_active(self) -> bool:
        """Whether observations take the accelerated exact path."""
        return self.config.fast_path_applicable

    def observe_encryption(self, plaintext: int, attacked_round: int
                           ) -> FrozenSet[int]:
        """Encrypt ``plaintext`` and return the probe's line observation.

        ``attacked_round`` is the round whose key bits are targeted
        (``t``); the probe lands after round ``t + probing_round``
        completes, and — when the flush is enabled and the primitive
        supports it — the monitored lines are flushed right after round
        ``t`` so earlier rounds leave no residue.
        """
        if attacked_round < 1:
            raise ValueError(
                f"attacked_round must be >= 1, got {attacked_round}"
            )
        self.encryptions_run += 1
        loss = self.config.loss
        visible_through = attacked_round + self.config.probing_round
        if not loss.jitter.is_still:
            # A jittered probe lands early or late: late draws add later
            # rounds' accesses, early draws can lose the target round —
            # or the whole window — outright.
            visible_through += loss.sample_jitter(self._loss_rng)
            visible_through = min(visible_through, self.victim.rounds)
        flush_supported = (self.config.use_flush
                           and self.probe.supports_mid_flush)
        first_visible = attacked_round + 1 if flush_supported else 1

        if visible_through < first_visible:
            observed: FrozenSet[int] = frozenset()
        elif self.fast_path_active:
            observed = self._fast_observation(
                plaintext, first_visible, visible_through
            )
        else:
            observed = self._full_observation(
                plaintext, attacked_round, visible_through, flush_supported
            )
        observed |= self._noise_lines()
        if loss.is_lossless:
            return observed
        return loss.drop_lines(observed, self.monitor.lines,
                               self._loss_rng)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def _fast_observation(self, plaintext: int, first_visible: int,
                          visible_through: int) -> FrozenSet[int]:
        indices_by_round = self.victim.sbox_indices_by_round(
            plaintext, max_rounds=visible_through
        )
        line_by_index = self.monitor.line_by_index
        return frozenset(
            line_by_index[index]
            for round_indices in indices_by_round[first_visible - 1:]
            for index in round_indices
        )

    def _full_observation(self, plaintext: int, attacked_round: int,
                          visible_through: int,
                          flush_supported: bool) -> FrozenSet[int]:
        trace = self.victim.encrypt_traced(
            plaintext, max_rounds=visible_through
        )
        self.probe.reset(self.cache)
        flushed = False
        for access in trace.accesses:
            if (flush_supported and not flushed
                    and access.round_index > attacked_round):
                self.probe.mid_flush(self.cache)
                flushed = True
            self.cache.access(access.address)
        if flush_supported and not flushed:
            # The visible window ended exactly at the flush point.
            self.probe.mid_flush(self.cache)
        return self.probe.observe(self.cache)

    def _noise_lines(self) -> FrozenSet[int]:
        addresses = self.config.noise.sample(
            self._monitored_addresses, self._noise_rng
        )
        if not addresses:
            return frozenset()
        if not self.fast_path_active:
            for address in addresses:
                self.cache.access(address)
        return frozenset(
            self.monitor.geometry.line_of(address) for address in addresses
        )

    # ------------------------------------------------------------------
    # Verification channel
    # ------------------------------------------------------------------

    def known_pair(self, plaintext: int) -> int:
        """Return the victim's ciphertext for ``plaintext``.

        The threat model lets the attacker submit data for encryption and
        see the result; GRINCH uses a single such pair to verify the
        assembled master key (and to disambiguate residual candidates
        with wide cache lines).
        """
        return self.victim.encrypt(plaintext)
