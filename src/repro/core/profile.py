"""Width-specific attack profiles for the GIFT family.

The GRINCH paper develops the attack against GIFT-64; GIFT-128 (the
variant inside GIFT-COFB and most NIST LWC candidates built on GIFT) is
structurally attackable the same way, but the bookkeeping differs:

================================  ==========  ===========
property                          GIFT-64     GIFT-128
================================  ==========  ===========
state segments                    16          32
nibble bit receiving ``V``        0           1
nibble bit receiving ``U``        1           2
round-key width                   32 bits     64 bits
rounds for the full 128-bit key   4           2
verification round (key known)    5           3
================================  ==========  ===========

The verification-round property comes from the shared key schedule:
GIFT-64's round-5 key is a rotation of round 1's, and GIFT-128's
round-3 key is ``U3 = rot(V1)``, ``V3 = U1`` — in both cases fully
predictable once the first attacked round is recovered.

A :class:`GiftAttackProfile` captures these facts so the rest of
:mod:`repro.core` stays width-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple


def _rotate_right_16(word: int, amount: int) -> int:
    amount %= 16
    return ((word >> amount) | (word << (16 - amount))) & 0xFFFF


@dataclass(frozen=True)
class GiftAttackProfile:
    """Structural facts GRINCH needs about one GIFT variant."""

    width: int
    v_offset: int
    u_offset: int
    full_key_rounds: int
    verification_round: int

    @property
    def segments(self) -> int:
        """Number of 4-bit state segments."""
        return self.width // 4

    @property
    def key_offsets(self) -> Tuple[int, int]:
        """Nibble bit offsets carrying ``(V, U)`` key bits."""
        return (self.v_offset, self.u_offset)

    @property
    def free_offsets(self) -> Tuple[int, ...]:
        """Nibble bit offsets not carrying key bits."""
        return tuple(
            offset for offset in range(4)
            if offset not in (self.v_offset, self.u_offset)
        )

    @property
    def bits_per_round(self) -> int:
        """Master-key bits recovered per attacked round."""
        return 2 * self.segments

    # ------------------------------------------------------------------
    # Master-key bookkeeping
    # ------------------------------------------------------------------

    def master_key_bits(self, round_index: int, segment: int
                        ) -> Tuple[int, int]:
        """Master-key bit indices ``(v_bit, u_bit)`` of one target.

        Only defined for the attacked rounds (``1..full_key_rounds``),
        where round keys are fresh master-key material.
        """
        if not 1 <= round_index <= self.full_key_rounds:
            raise ValueError(
                f"GIFT-{self.width} master-key quarters align with rounds "
                f"1-{self.full_key_rounds}, got round {round_index}"
            )
        if not 0 <= segment < self.segments:
            raise ValueError(
                f"GIFT-{self.width} has {self.segments} segments, "
                f"got {segment}"
            )
        if self.width == 64:
            base = 32 * (round_index - 1)
            return base + segment, base + 16 + segment
        # GIFT-128: RK1 = (U=k5||k4, V=k1||k0); RK2 = (U=k7||k6, V=k3||k2).
        if round_index == 1:
            return segment, 64 + segment
        return 32 + segment, 96 + segment

    def assemble_master_key(self, round_key_list: Sequence[Tuple[int, int]]
                            ) -> int:
        """Rebuild the 128-bit master key from the attacked round keys."""
        if len(round_key_list) != self.full_key_rounds:
            raise ValueError(
                f"GIFT-{self.width} needs {self.full_key_rounds} round "
                f"keys, got {len(round_key_list)}"
            )
        master = 0
        for round_index, (u, v) in enumerate(round_key_list, start=1):
            for bit in range(2 * self.segments // 2):
                v_pos, u_pos = self.master_key_bits(round_index, bit)
                master |= ((v >> bit) & 1) << v_pos
                master |= ((u >> bit) & 1) << u_pos
        return master

    # ------------------------------------------------------------------
    # Verification round
    # ------------------------------------------------------------------

    def verification_key(self, first_round_key: Tuple[int, int]
                         ) -> Tuple[int, int]:
        """The verification round's ``(U, V)``, from the round-1 key.

        GIFT-64: ``RK5 = (U1 >>> 2, V1 >>> 12)`` (16-bit rotations).
        GIFT-128: ``U3 = (v1_hi >>> 2) || (v1_lo >>> 12)``, ``V3 = U1``.
        """
        u1, v1 = first_round_key
        if self.width == 64:
            return (_rotate_right_16(u1, 2), _rotate_right_16(v1, 12))
        v1_high = (v1 >> 16) & 0xFFFF
        v1_low = v1 & 0xFFFF
        u3 = (_rotate_right_16(v1_high, 2) << 16) | _rotate_right_16(v1_low, 12)
        return (u3, u1)


PROFILE_64 = GiftAttackProfile(
    width=64, v_offset=0, u_offset=1,
    full_key_rounds=4, verification_round=5,
)

PROFILE_128 = GiftAttackProfile(
    width=128, v_offset=1, u_offset=2,
    full_key_rounds=2, verification_round=3,
)


def profile_for_width(width: int) -> GiftAttackProfile:
    """Return the attack profile for a GIFT state width."""
    if width == 64:
        return PROFILE_64
    if width == 128:
        return PROFILE_128
    raise ValueError(f"GIFT only defines 64- and 128-bit states, got {width}")
