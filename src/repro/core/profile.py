"""Width-specific GIFT attack profiles (compatibility re-export).

The profile implementation moved to :mod:`repro.targets.gift` when the
pipeline was generalised over :class:`~repro.targets.CipherTarget`: the
target layer may not import ``repro.core``, and the profile is GIFT
structural bookkeeping, so it lives with the GIFT target.  This module
keeps the historical import path alive for downstream code and tests.
"""

from __future__ import annotations

from ..targets.gift import (
    GiftAttackProfile,
    PROFILE_64,
    PROFILE_128,
    profile_for_width,
)

__all__ = [
    "GiftAttackProfile",
    "PROFILE_64",
    "PROFILE_128",
    "profile_for_width",
]
