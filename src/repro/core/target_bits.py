"""Algorithm 1 of the GRINCH paper: selecting and tracing target key bits.

For a target round ``t`` and state segment ``s``, AddRoundKey XORs
secret bits into fixed bit offsets of the monitored S-box index (bits
0/1 for GIFT-64, bits 1/2 for GIFT-128, all four for PRESENT).
Algorithm 1 walks the bits of that index backwards through the cipher's
bit permutation to find which source S-box output bits must be pinned,
and collects the S-box input lists that pin them (``List_A``/``List_B``
in the paper).

Section III-C requires controlling all *four* source segments ("the
attacker has to carefully select four segments"), because any key-free
bits of the target index must also stay constant for the intersection
to converge to a single entry.  :func:`set_target_bits` therefore
traces all four bits; the key positions are forced to 1 (as in the
paper) and the free positions to a configurable constant.

The walk is generic over any registered
:class:`~repro.targets.CipherTarget`: the target supplies the inverse
permutation, the S-box preimage lists, the key/free bit offsets, and
the round-constant mask.  Ciphers whose round-1 S-box indices are
already key-dependent (PRESENT, ``probe_round_offset = 0`` with
``first_round_direct``) skip the walk for ``t = 1`` — the crafted
plaintext nibble *is* the constrained value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..targets.protocol import CipherTarget
from ..targets.registry import get_target


@dataclass(frozen=True)
class SourceBit:
    """One monitored index bit of the target segment, traced to its source.

    Attributes
    ----------
    target_position:
        Bit position within the pre-key state feeding the monitored
        index (``4s + j``).
    pre_perm_position:
        The same bit before the permutation, i.e. within the source
        S-box output layer.
    source_segment:
        Segment whose S-box produces the bit (``pre_perm_position // 4``).
    output_bit:
        Bit offset within that S-box output (``pre_perm_position % 4``).
    forced_value:
        Constant the attacker forces this S-box output bit to.
    key_xored:
        Whether AddRoundKey XORs a secret key bit at ``target_position``.
    """

    target_position: int
    pre_perm_position: int
    source_segment: int
    output_bit: int
    forced_value: int
    key_xored: bool


@dataclass(frozen=True)
class TargetSpec:
    """Everything needed to craft plaintexts and interpret observations
    for one (round, segment) target.

    ``valid_inputs`` maps each source segment to the list of S-box inputs
    that force its constrained output bit(s) — the paper's
    ``List_A``/``List_B``, extended to all four sources.  (For a
    ``first_round_direct`` round-1 target it maps the target segment
    itself to the single fully pinned plaintext nibble.)
    ``free_bit_predictions`` gives, per key-free index bit offset, the
    value the attacker *predicts* for the monitored access (forced value
    XORed with the key-independent round constant).
    """

    round_index: int
    segment: int
    width: int
    sources: Tuple[SourceBit, ...]
    valid_inputs: Dict[int, Tuple[int, ...]]
    key_offsets: Tuple[int, ...]
    free_bit_predictions: Tuple[Tuple[int, int], ...]
    key_bit_positions: Tuple[int, ...]
    target: Optional[CipherTarget] = field(default=None, compare=False,
                                           repr=False)

    @property
    def source_segments(self) -> Tuple[int, ...]:
        """Distinct input segments that must be controlled."""
        return tuple(sorted(self.valid_inputs))

    @property
    def predicted_high_bits(self) -> int:
        """GIFT-64 compatibility view: predicted index bits 3..2.

        Only meaningful when the free offsets are exactly (2, 3), i.e.
        the GIFT-64 layout.
        """
        predictions = dict(self.free_bit_predictions)
        if set(predictions) != {2, 3}:
            raise ValueError(
                f"predicted_high_bits is a GIFT-64 view; free offsets "
                f"here are {sorted(predictions)}"
            )
        return (predictions[3] << 1) | predictions[2]

    def master_key_bits(self) -> Tuple[int, ...]:
        """Master-key bit indices recovered by this target.

        Only defined for the attacked rounds (where round keys are
        fresh master-key material).
        """
        return self._target().master_key_bit_positions(
            self.round_index, self.segment
        )

    def _target(self) -> CipherTarget:
        if self.target is not None:
            return self.target
        return get_target(f"gift{self.width}")


def set_target_bits(round_index: int, segment: int, width: int = 64,
                    forced_high_bits: Optional[Tuple[int, ...]] = None,
                    target: Optional[CipherTarget] = None) -> TargetSpec:
    """Algorithm 1 (extended per Section III-C): build a :class:`TargetSpec`.

    Parameters
    ----------
    round_index:
        The round whose AddRoundKey bits are attacked (``t``); the
        monitored S-box accesses happen in round
        ``t + target.probe_round_offset``.
    segment:
        Target state segment ``s``.
    width:
        Cipher state width; selects the GIFT profile when no ``target``
        is given (the historical call shape).
    forced_high_bits:
        Constants for the key-free bits of the target index, in
        ascending offset order (offsets 2 and 3 for GIFT-64, 0 and 3
        for GIFT-128; PRESENT has none).  Defaults to all ones.  The
        key positions are always forced to 1, following the paper ("In
        this attack we set these bits to 1").
    target:
        The cipher target to trace against; defaults to the registered
        GIFT target of ``width``.
    """
    if target is None:
        if width not in (64, 128):
            raise ValueError(
                f"GIFT only defines 64- and 128-bit states, got {width}"
            )
        target = get_target(f"gift{width}")
    width = target.width
    if not 0 <= segment < target.segments:
        raise ValueError(
            f"segment must be in [0, {target.segments}), got {segment}"
        )
    if forced_high_bits is None:
        forced_high_bits = (1,) * len(target.free_offsets)
    if len(forced_high_bits) != len(target.free_offsets) or any(
            bit not in (0, 1) for bit in forced_high_bits):
        raise ValueError(
            f"forced_high_bits must be {len(target.free_offsets)} bits, "
            f"got {forced_high_bits}"
        )
    forced_by_offset = {offset: 1 for offset in target.key_offsets}
    for offset, value in zip(target.free_offsets, forced_high_bits):
        forced_by_offset[offset] = value

    if 1 <= round_index <= target.full_key_rounds:
        key_positions = target.master_key_bit_positions(round_index, segment)
    else:
        # Rounds beyond the attacked window reuse (rotated/rescheduled)
        # key material; the positions are not fresh master-key bits.
        # Used only by the verification stage.
        key_positions = (-1,) * len(target.key_offsets)

    constant = target.round_constant_mask(round_index)
    free_bit_predictions = tuple(
        (
            offset,
            forced_by_offset[offset]
            ^ ((constant >> (4 * segment + offset)) & 1),
        )
        for offset in target.free_offsets
    )

    if target.first_round_direct and round_index == 1:
        # The monitored index is plaintext nibble XOR key nibble: pin
        # the plaintext nibble to the forced constants directly, no
        # source tracing needed (and no sources to hypothesise over).
        pinned = 0
        for offset in range(4):
            pinned |= forced_by_offset[offset] << offset
        return TargetSpec(
            round_index=round_index,
            segment=segment,
            width=width,
            sources=(),
            valid_inputs={segment: (pinned,)},
            key_offsets=target.key_offsets,
            free_bit_predictions=free_bit_predictions,
            key_bit_positions=key_positions,
            target=target,
        )

    inverse_perm = target.inverse_permutation()
    sources: List[SourceBit] = []
    constraints_by_segment: Dict[int, List[Tuple[int, int]]] = {}
    for offset in range(4):
        target_position = 4 * segment + offset
        pre_perm_position = inverse_perm[target_position]
        source_segment = pre_perm_position // 4
        output_bit = pre_perm_position % 4
        forced_value = forced_by_offset[offset]
        sources.append(
            SourceBit(
                target_position=target_position,
                pre_perm_position=pre_perm_position,
                source_segment=source_segment,
                output_bit=output_bit,
                forced_value=forced_value,
                key_xored=offset in target.key_offsets,
            )
        )
        constraints_by_segment.setdefault(source_segment, []).append(
            (output_bit, forced_value)
        )

    if len(constraints_by_segment) != 4:
        # GIFT's and PRESENT's permutations send the four bits of every
        # segment to four distinct segments, so the converse holds too;
        # anything else means the permutation tables are corrupted.
        raise RuntimeError(
            "expected 4 distinct source segments for segment "
            f"{segment}, got {sorted(constraints_by_segment)}"
        )

    valid_inputs = {
        source_segment: target.inputs_for_output_bits(constraints)
        for source_segment, constraints in constraints_by_segment.items()
    }
    for source_segment, inputs in valid_inputs.items():
        if not inputs:
            raise RuntimeError(
                f"no S-box input satisfies the constraints of source "
                f"segment {source_segment}"
            )

    return TargetSpec(
        round_index=round_index,
        segment=segment,
        width=width,
        sources=tuple(sources),
        valid_inputs=valid_inputs,
        key_offsets=target.key_offsets,
        free_bit_predictions=free_bit_predictions,
        key_bit_positions=key_positions,
        target=target,
    )
