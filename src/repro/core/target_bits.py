"""Algorithm 1 of the GRINCH paper: selecting and tracing target key bits.

For a target round ``t`` and state segment ``s``, AddRoundKey XORs two
secret bits into fixed bit offsets of the segment (bits 0/1 for
GIFT-64, bits 1/2 for GIFT-128) of round ``t``'s output — which is
exactly the S-box *input* of round ``t + 1``, segment ``s``.
Algorithm 1 walks the four bits of that segment backwards through
PermBits to find which round-``t`` S-box output bits must be pinned,
and collects the S-box input lists that pin them (``List_A``/``List_B``
in the paper).

Section III-C requires controlling all *four* source segments ("the
attacker has to carefully select four segments"), because the two
key-free bits of the target index must also stay constant for the
intersection to converge to a single entry.  :func:`set_target_bits`
therefore traces all four bits; the two key positions are forced to 1
(as in the paper) and the free positions to a configurable constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..gift.constants import constant_mask
from ..gift.permutation import inverse_permutation_for_width
from ..gift.sbox import inputs_for_output_bits
from .profile import profile_for_width


@dataclass(frozen=True)
class SourceBit:
    """One round-``t`` output bit of the target segment, traced to its source.

    Attributes
    ----------
    target_position:
        Bit position within the round-``t`` output state (``4s + j``).
    pre_perm_position:
        The same bit before PermBits, i.e. within the S-box output layer.
    source_segment:
        Segment whose S-box produces the bit (``pre_perm_position // 4``).
    output_bit:
        Bit offset within that S-box output (``pre_perm_position % 4``).
    forced_value:
        Constant the attacker forces this S-box output bit to.
    key_xored:
        Whether AddRoundKey XORs a secret key bit at ``target_position``.
    """

    target_position: int
    pre_perm_position: int
    source_segment: int
    output_bit: int
    forced_value: int
    key_xored: bool


@dataclass(frozen=True)
class TargetSpec:
    """Everything needed to craft plaintexts and interpret observations
    for one (round, segment) target.

    ``valid_inputs`` maps each source segment to the list of S-box inputs
    that force its constrained output bit(s) — the paper's
    ``List_A``/``List_B``, extended to all four sources.
    ``free_bit_predictions`` gives, per key-free index bit offset, the
    value the attacker *predicts* for the monitored round-``t + 1``
    access (forced value XORed with the key-independent round constant).
    """

    round_index: int
    segment: int
    width: int
    sources: Tuple[SourceBit, ...]
    valid_inputs: Dict[int, Tuple[int, ...]]
    key_offsets: Tuple[int, int]
    free_bit_predictions: Tuple[Tuple[int, int], ...]
    key_bit_positions: Tuple[int, int]

    @property
    def source_segments(self) -> Tuple[int, ...]:
        """Distinct segments of round ``t``'s input that must be controlled."""
        return tuple(sorted(self.valid_inputs))

    @property
    def predicted_high_bits(self) -> int:
        """GIFT-64 compatibility view: predicted index bits 3..2.

        Only meaningful when the free offsets are exactly (2, 3), i.e.
        the GIFT-64 layout.
        """
        predictions = dict(self.free_bit_predictions)
        if set(predictions) != {2, 3}:
            raise ValueError(
                f"predicted_high_bits is a GIFT-64 view; free offsets "
                f"here are {sorted(predictions)}"
            )
        return (predictions[3] << 1) | predictions[2]

    def master_key_bits(self) -> Tuple[int, int]:
        """Master-key bit indices recovered by this target.

        Returns ``(v_bit, u_bit)``; only defined for the attacked rounds
        (where round keys are fresh master-key material).
        """
        return profile_for_width(self.width).master_key_bits(
            self.round_index, self.segment
        )


def set_target_bits(round_index: int, segment: int, width: int = 64,
                    forced_high_bits: Tuple[int, ...] = (1, 1)) -> TargetSpec:
    """Algorithm 1 (extended per Section III-C): build a :class:`TargetSpec`.

    Parameters
    ----------
    round_index:
        The round whose AddRoundKey bits are attacked (``t``); the
        monitored S-box accesses happen in round ``t + 1``.
    segment:
        Target state segment ``s``.
    width:
        Cipher state width (64 or 128).
    forced_high_bits:
        Constants for the two key-free bits of the target index, in
        ascending offset order (offsets 2 and 3 for GIFT-64, 0 and 3
        for GIFT-128).  The key positions are always forced to 1,
        following the paper ("In this attack we set these bits to 1").
    """
    profile = profile_for_width(width)
    if not 0 <= segment < profile.segments:
        raise ValueError(
            f"segment must be in [0, {profile.segments}), got {segment}"
        )
    if len(forced_high_bits) != len(profile.free_offsets) or any(
            bit not in (0, 1) for bit in forced_high_bits):
        raise ValueError(
            f"forced_high_bits must be {len(profile.free_offsets)} bits, "
            f"got {forced_high_bits}"
        )
    forced_by_offset = {
        profile.v_offset: 1,
        profile.u_offset: 1,
    }
    for offset, value in zip(profile.free_offsets, forced_high_bits):
        forced_by_offset[offset] = value

    inverse_perm = inverse_permutation_for_width(width)
    sources: List[SourceBit] = []
    constraints_by_segment: Dict[int, List[Tuple[int, int]]] = {}
    for offset in range(4):
        target_position = 4 * segment + offset
        pre_perm_position = inverse_perm[target_position]
        source_segment = pre_perm_position // 4
        output_bit = pre_perm_position % 4
        forced_value = forced_by_offset[offset]
        sources.append(
            SourceBit(
                target_position=target_position,
                pre_perm_position=pre_perm_position,
                source_segment=source_segment,
                output_bit=output_bit,
                forced_value=forced_value,
                key_xored=offset in profile.key_offsets,
            )
        )
        constraints_by_segment.setdefault(source_segment, []).append(
            (output_bit, forced_value)
        )

    if len(constraints_by_segment) != 4:
        # GIFT's permutations send the four bits of every segment to
        # four distinct segments, so the converse holds too; anything
        # else means the permutation tables are corrupted.
        raise RuntimeError(
            "expected 4 distinct source segments for segment "
            f"{segment}, got {sorted(constraints_by_segment)}"
        )

    valid_inputs = {
        source_segment: tuple(inputs_for_output_bits(constraints))
        for source_segment, constraints in constraints_by_segment.items()
    }
    for source_segment, inputs in valid_inputs.items():
        if not inputs:
            raise RuntimeError(
                f"no S-box input satisfies the constraints of source "
                f"segment {source_segment}"
            )

    constant = constant_mask(round_index, width)
    free_bit_predictions = tuple(
        (
            offset,
            forced_by_offset[offset]
            ^ ((constant >> (4 * segment + offset)) & 1),
        )
        for offset in profile.free_offsets
    )

    if 1 <= round_index <= profile.full_key_rounds:
        key_positions = profile.master_key_bits(round_index, segment)
    else:
        # Rounds beyond the attacked window reuse (rotated) key material;
        # the positions are not fresh master-key bits.  Used only by the
        # verification stage.
        key_positions = (-1, -1)

    return TargetSpec(
        round_index=round_index,
        segment=segment,
        width=width,
        sources=tuple(sources),
        valid_inputs=valid_inputs,
        key_offsets=profile.key_offsets,
        free_bit_predictions=free_bit_predictions,
        key_bit_positions=key_positions,
    )
