"""Deprecated: :class:`SboxMonitor` moved to :mod:`repro.channel.monitor`.

This module is an import shim for pre-stack code and will be removed
after one deprecation cycle (see ``docs/architecture.md``).
"""

from __future__ import annotations

import warnings

from ..channel.monitor import SboxMonitor

warnings.warn(
    "repro.core.monitor is deprecated; import SboxMonitor from "
    "repro.channel instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["SboxMonitor"]
