"""Exception types raised by the GRINCH attack machinery."""

from __future__ import annotations


class AttackError(Exception):
    """Base class for attack failures."""


class BudgetExceeded(AttackError):
    """The configured encryption budget ran out before convergence.

    Carries how many encryptions were spent so experiment harnesses can
    report drop-outs the way the paper does (">1M" cells in Table I).
    """

    def __init__(self, message: str, encryptions: int) -> None:
        super().__init__(message)
        self.encryptions = encryptions


class InconsistentObservation(AttackError):
    """Every hypothesis was contradicted by the cache observations.

    Seen when the victim is protected (countermeasures) or when the
    attack is run against an implementation it does not model.
    """


class KeyVerificationFailed(AttackError):
    """The assembled master key failed the known-pair verification."""


class LowConfidenceError(AttackError):
    """Voting recovery could not reach the confidence threshold.

    Raised instead of returning a probably-wrong key when a segment's
    vote counts never separate within the retry and encryption budgets
    (e.g. under extreme channel loss).  Carries the best confidence
    reached so experiment harnesses can report *how* close the segment
    came.
    """

    def __init__(self, message: str, encryptions: int,
                 best_confidence: float) -> None:
        super().__init__(message)
        self.encryptions = encryptions
        self.best_confidence = best_confidence
