"""Exception types raised by the GRINCH attack machinery."""

from __future__ import annotations


class AttackError(Exception):
    """Base class for attack failures."""


class BudgetExceeded(AttackError):
    """The configured encryption budget ran out before convergence.

    Carries how many encryptions were spent so experiment harnesses can
    report drop-outs the way the paper does (">1M" cells in Table I).
    """

    def __init__(self, message: str, encryptions: int) -> None:
        super().__init__(message)
        self.encryptions = encryptions


class InconsistentObservation(AttackError):
    """Every hypothesis was contradicted by the cache observations.

    Seen when the victim is protected (countermeasures) or when the
    attack is run against an implementation it does not model.
    """


class KeyVerificationFailed(AttackError):
    """The assembled master key failed the known-pair verification."""
