"""Deprecated: noise/loss models moved to :mod:`repro.channel.degradation`.

This module is an import shim for pre-stack code and will be removed
after one deprecation cycle (see ``docs/architecture.md``).
"""

from __future__ import annotations

import warnings

from ..channel.degradation import (
    LOSSLESS,
    NO_JITTER,
    NO_NOISE,
    LossyChannel,
    NoiseModel,
    ProbeJitter,
    jitter_from_platform,
)

warnings.warn(
    "repro.core.noise is deprecated; import degradation models from "
    "repro.channel instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = [
    "LOSSLESS",
    "NO_JITTER",
    "NO_NOISE",
    "LossyChannel",
    "NoiseModel",
    "ProbeJitter",
    "jitter_from_platform",
]
