"""Noise models for the attacker's probe window.

The paper attributes extra attack effort to "the amount of noise (e.g.,
multiple processes disputing the processor)" (Section IV-B1).  In an
access-driven attack, a concurrent process can only *add* lines to the
cache between the victim's rounds and the probe — it never removes the
target's footprint — so noise slows candidate elimination without
corrupting it.  These models inject such spurious accesses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class NoiseModel:
    """Spurious accesses landing in the monitored region per probe window.

    Parameters
    ----------
    touch_probability:
        Chance that a noisy co-running process executes at all during one
        encryption's probe window.
    monitored_touches:
        How many loads that process issues into the monitored table range
        when it runs (addresses drawn uniformly over the table).
    """

    touch_probability: float = 0.0
    monitored_touches: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.touch_probability <= 1.0:
            raise ValueError(
                f"touch_probability must be in [0, 1], got {self.touch_probability}"
            )
        if self.monitored_touches < 0:
            raise ValueError(
                f"monitored_touches must be non-negative, "
                f"got {self.monitored_touches}"
            )

    @property
    def is_silent(self) -> bool:
        """True when the model can never produce an access."""
        return self.touch_probability == 0.0 or self.monitored_touches == 0

    def sample(self, monitored_addresses: Sequence[int],
               rng: random.Random) -> List[int]:
        """Addresses the noisy process touches during one probe window."""
        if self.is_silent or not monitored_addresses:
            return []
        if rng.random() >= self.touch_probability:
            return []
        return [
            rng.choice(monitored_addresses)
            for _ in range(self.monitored_touches)
        ]


#: Convenience instance: a quiet system (the paper's RTL "clean data").
NO_NOISE = NoiseModel()
