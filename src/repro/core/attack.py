"""The GRINCH attack orchestrator (Section III-C, Steps 1-5).

Per attacked round ``t`` and segment ``s`` the attack loop is:

1. *Generate Plaintext + Encrypt* — :class:`PlaintextCrafter` pins the
   round-``t + 1`` S-box input of segment ``s`` (Algorithms 1 & 2, plus
   the Step-5 inversion through already-broken rounds).
2. *Probe the Cache* — the
   :class:`~repro.channel.ObservationChannel` returns the monitored
   lines the probe saw.
3. *Eliminate Candidates* — :class:`CandidateEliminator` intersects
   observations until one line survives.
4. *Reverse Engineer Key-Bits* — :func:`key_pairs_from_line` inverts the
   forced bits into round-key bit candidates.
5. *Update Plaintext Generation* — the recovered bits feed the next
   round's crafting; after four rounds (two for GIFT-128) the 128-bit
   master key is assembled and verified against one known
   plaintext/ciphertext pair.

With cache lines wider than one S-box entry the low index bits are
unobservable, leaving up to four candidates per segment (Section III-D).
The orchestrator carries those candidates forward as *hypotheses*: a
wrong hypothesis makes the forced bits vary, so its elimination run ends
in a contradiction (empty intersection) or an index inconsistent with
the predicted key-free bits, and the next hypothesis is tried.
Last-round ambiguities are resolved by an extra *verification stage*
(round 5 for GIFT-64, round 3 for GIFT-128) whose own key bits are
already determined by the recovered round-1 key through the GIFT key
schedule.
"""

from __future__ import annotations

import itertools
import math
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..seeding import derive_rng
from ..targets.protocol import TracedVictim
from ..targets.registry import resolve_target_for
from .config import AttackConfig
from .crafting import PlaintextCrafter
from .eliminate import CandidateEliminator
from .errors import (
    BudgetExceeded,
    InconsistentObservation,
    KeyVerificationFailed,
    LowConfidenceError,
)
from .recover import (
    KeyBitPair,
    expected_index,
    key_pairs_from_line,
)
from .results import (
    AttackResult,
    FirstRoundResult,
    RoundAttackOutcome,
    RoundKeyEstimate,
    SegmentOutcome,
)
from ..channel.observer import ObservationChannel
from .target_bits import TargetSpec, set_target_bits
from .voting import VotingEliminator, VotingPolicy

#: Number of attacked rounds needed for the full GIFT-64 key
#: (GIFT-128 needs only 2; see :mod:`repro.targets.gift`).
FULL_KEY_ROUNDS = 4

#: The verification stage's expected line: a constant for ciphers whose
#: verification key is fully determined (GIFT), or a function of the
#: prior-round hypothesis when the schedule couples them (PRESENT).
ExpectedLine = Union[int, Callable[[Dict[int, KeyBitPair]], int]]


class _VotingVerdict:
    """Outcome of one voting run under one hypothesis."""

    __slots__ = ("status", "line", "pairs", "confidence", "observations",
                 "retries")

    def __init__(self, status: str, line: Optional[int],
                 pairs: Tuple[KeyBitPair, ...], confidence: float,
                 observations: int, retries: int) -> None:
        self.status = status  # "accepted" | "rejected" | "low_confidence"
        self.line = line
        self.pairs = pairs
        self.confidence = confidence
        self.observations = observations
        self.retries = retries


class GrinchAttack:
    """A GRINCH attack bound to one victim instance and configuration.

    The attacker's interface to the victim is strictly the observation
    channel (:class:`~repro.channel.ObservationChannel`) plus one known
    pair for final verification; the victim's key is never read by the
    attack logic (the test suite plants random keys and checks exact
    recovery).
    """

    def __init__(self, victim: TracedVictim,
                 config: Optional[AttackConfig] = None,
                 runner=None) -> None:
        self.config = config if config is not None else AttackConfig()
        if victim.layout != self.config.layout:
            raise ValueError(
                "victim table layout differs from the attack configuration"
            )
        # The victim's registered cipher target supplies the structural
        # bookkeeping the profile used to hold (and is a superset of it:
        # crafting inversion, key algebra, reference encryption).
        self.target = resolve_target_for(victim)
        self.profile = self.target
        # ``runner`` lets alternative observation substrates plug in —
        # e.g. the cross-core shared-L2 channel of repro.core.crosscore,
        # or an ObservationChannel with a custom primitive/transport/
        # degradation stack.
        self.runner = (runner if runner is not None
                       else ObservationChannel(victim, self.config))
        self.monitor = self.runner.monitor
        # Plaintext-crafting stream; derived (not raw-seeded) so it is
        # independent of the channel's noise stream and reproducible
        # even for seed=None — see repro.seeding.
        self.rng = derive_rng("attack-crafting", self.config.seed)
        self.total_encryptions = 0

    @property
    def channel(self) -> ObservationChannel:
        """The observation channel (alias of ``runner``, the historic
        parameter name kept for drop-in compatibility)."""
        return self.runner

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------

    def attack_first_round(self) -> FirstRoundResult:
        """Recover (up to line ambiguity) the round-1 key bits.

        This is the experiment unit of Fig. 3 and Table I ("required
        encryptions to attack the first round"): 32 bits for GIFT-64,
        64 bits for GIFT-128.
        """
        start = self.total_encryptions
        outcome = self.attack_round(1, [], None)
        encryptions = self.total_encryptions - start
        ambiguity = outcome.estimate.ambiguity
        recovered = self.profile.bits_per_round - _log2(ambiguity)
        return FirstRoundResult(
            outcome=outcome,
            encryptions=encryptions,
            recovered_bits=recovered,
        )

    def recover_master_key(self) -> AttackResult:
        """Run the full multi-round GRINCH attack and verify the key."""
        resolved: List[Any] = []
        previous: Optional[RoundKeyEstimate] = None
        rounds: List[RoundAttackOutcome] = []

        for round_index in range(1, self.profile.full_key_rounds + 1):
            outcome = self.attack_round(round_index, resolved, previous)
            if previous is not None:
                # The source cones of this round's targets cover every
                # segment, so the consistency tests pinned the previous
                # round.
                resolved.append(previous.as_round_key())
            previous = outcome.estimate
            rounds.append(outcome)

        verification_start = self.total_encryptions
        if not previous.resolved:
            self._verification_stage(resolved, previous)
        resolved.append(previous.as_round_key())
        verification_encryptions = self.total_encryptions - verification_start

        master_key = self.profile.assemble_master_key(resolved)
        verified = self._verify_master_key(master_key)
        if not verified:
            raise KeyVerificationFailed(
                "assembled master key failed the known-pair check; "
                "an accepted hypothesis was a false positive"
            )
        return AttackResult(
            master_key=master_key,
            total_encryptions=self.total_encryptions,
            rounds=rounds,
            verified=True,
            verification_encryptions=verification_encryptions,
        )

    # ------------------------------------------------------------------
    # Stage machinery
    # ------------------------------------------------------------------

    def attack_round(self, round_index: int,
                     prior_keys: List[Any],
                     prior_estimate: Optional[RoundKeyEstimate]
                     ) -> RoundAttackOutcome:
        """Attack every segment of one round's AddRoundKey.

        ``prior_keys`` are the fully resolved keys of rounds
        ``1 .. round_index - 2``; ``prior_estimate`` is the (possibly
        ambiguous) estimate of round ``round_index - 1`` and is resolved
        in place by the consistency tests.
        """
        self._check_prior(round_index, prior_keys, prior_estimate)
        segments: List[SegmentOutcome] = []
        candidates: List[Tuple[KeyBitPair, ...]] = []
        for segment in range(self.profile.segments):
            spec = set_target_bits(round_index, segment,
                                   width=self.profile.width,
                                   target=self.target)
            outcome = self._attack_segment(spec, prior_keys, prior_estimate)
            segments.append(outcome)
            candidates.append(outcome.key_pairs)
        return RoundAttackOutcome(
            round_index=round_index,
            segments=segments,
            estimate=RoundKeyEstimate(
                round_index=round_index, pair_candidates=candidates,
                target=self.target,
            ),
        )

    def _attack_segment(self, spec: TargetSpec,
                        prior_keys: List[Any],
                        prior_estimate: Optional[RoundKeyEstimate],
                        expected_line: Optional[ExpectedLine] = None
                        ) -> SegmentOutcome:
        """Steps 1-4 for one target, with hypothesis enumeration.

        Hypotheses about previous-round key bits are enumerated only for
        the *visible* source segments — those whose forced bit lands on
        a target index bit the line observation can resolve.  (GIFT's
        permutation preserves bit offsets modulo 4, so a source's output
        bit ``b`` always feeds target index bit ``b``; with ``L``-entry
        cache lines bits below ``log2(L)`` are unobservable and a wrong
        guess there cannot be detected — nor can it disturb anything the
        attacker sees.)  All surviving hypotheses are collected, and a
        previous-round segment is only pinned when every survivor agrees
        on it; disagreement narrows its candidate set instead.

        ``expected_line`` switches the acceptance test to an exact match
        (used by the verification stage, where the target's own key bits
        are already known).  It may be a callable of the hypothesis for
        ciphers whose verification key depends on the still-ambiguous
        previous round (PRESENT); for GIFT it is a plain constant.
        """
        hypotheses = self._hypotheses_for(spec, prior_estimate)
        # With a unique hypothesis the target access is constant by
        # construction, so first convergence is final; with several, a
        # wrong one can pass through a single candidate transiently and
        # must survive a confirmation margin before it may be kept.
        confirmation = (self._confirmation_margin(spec.round_index)
                        if len(hypotheses) > 1 else 0)
        voting = self.config.voting_active
        start = self.total_encryptions
        survivors: List[Tuple[Dict[int, KeyBitPair], int,
                              Tuple[KeyBitPair, ...]]] = []
        confidence = 1.0
        observations = 0
        retries = 0
        undecided: List[float] = []
        for hypothesis in hypotheses:
            # Resolving the expected line consumes no attacker
            # randomness, so per-hypothesis resolution cannot perturb
            # the crafting stream.
            line_for_hypothesis = (
                expected_line(hypothesis) if callable(expected_line)
                else expected_line
            )
            if voting:
                verdict = self._run_voting(
                    spec, prior_keys, prior_estimate, hypothesis,
                    line_for_hypothesis, confirmation
                )
                observations += verdict.observations
                retries = max(retries, verdict.retries)
                if verdict.status == "accepted":
                    survivors.append(
                        (hypothesis, verdict.line, verdict.pairs)
                    )
                    confidence = min(confidence, verdict.confidence)
                elif verdict.status == "low_confidence":
                    undecided.append(verdict.confidence)
            else:
                accepted = self._run_elimination(
                    spec, prior_keys, prior_estimate, hypothesis,
                    line_for_hypothesis, confirmation
                )
                if accepted is not None:
                    survivors.append((hypothesis, accepted[0], accepted[1]))

        if not survivors:
            if undecided:
                best = max(undecided)
                raise LowConfidenceError(
                    f"round {spec.round_index} segment {spec.segment}: "
                    f"voting confidence stalled at {best:.3f}, below the "
                    f"{self.config.voting_confidence} threshold",
                    encryptions=self.total_encryptions,
                    best_confidence=best,
                )
            raise InconsistentObservation(
                f"round {spec.round_index} segment {spec.segment}: every "
                f"hypothesis was contradicted by the cache observations"
            )

        resolved_hypothesis = self._narrow_prior(prior_estimate, survivors)
        key_pairs = tuple(sorted({
            pair for _, _, pairs in survivors for pair in pairs
        }))
        return SegmentOutcome(
            round_index=spec.round_index,
            segment=spec.segment,
            encryptions=self.total_encryptions - start,
            hypotheses_tried=len(hypotheses),
            line=survivors[0][1],
            key_pairs=key_pairs,
            resolved_hypothesis=resolved_hypothesis,
            confidence=confidence,
            observations=observations,
            retries=retries,
            recovery="voting" if voting else "strict",
        )

    @staticmethod
    def _narrow_prior(prior_estimate: Optional[RoundKeyEstimate],
                      survivors: List[Tuple[Dict[int, KeyBitPair], int,
                                            Tuple[KeyBitPair, ...]]]
                      ) -> Dict[int, KeyBitPair]:
        """Narrow previous-round candidates to the surviving hypotheses."""
        resolved: Dict[int, KeyBitPair] = {}
        if prior_estimate is None:
            return resolved
        for segment in survivors[0][0]:
            surviving_pairs = tuple(sorted({
                hypothesis[segment] for hypothesis, _, _ in survivors
            }))
            prior_estimate.narrow_segment(segment, surviving_pairs)
            if len(surviving_pairs) == 1:
                resolved[segment] = surviving_pairs[0]
        return resolved

    def _run_elimination(self, spec: TargetSpec,
                         prior_keys: List[Any],
                         prior_estimate: Optional[RoundKeyEstimate],
                         hypothesis: Dict[int, KeyBitPair],
                         expected_line: Optional[int],
                         confirmation: int = 0
                         ) -> Optional[Tuple[int, Tuple[KeyBitPair, ...]]]:
        """One elimination run under one hypothesis.

        Returns ``(line, key_pairs)`` on acceptance, ``None`` on
        contradiction/rejection; raises on exhausted budgets.
        """
        full_prior = list(prior_keys)
        if prior_estimate is not None:
            full_prior.append(prior_estimate.guess_round_key(hypothesis))
        crafter = PlaintextCrafter(spec, full_prior, self.rng)
        eliminator = CandidateEliminator(self.monitor.universe)

        confirmations_left = confirmation
        stall_window = self.config.stall_window
        previous_candidates = eliminator.candidates
        stalled_for = 0
        remaining = self.config.max_encryptions_per_segment
        while remaining > 0:
            observations = self._observe_many(
                crafter, spec.round_index,
                min(self.config.batch_size, remaining)
            )
            remaining -= len(observations)
            for observed in observations:
                eliminator.update(observed)
                if eliminator.contradicted:
                    return None
                if eliminator.candidates == previous_candidates:
                    stalled_for += 1
                else:
                    stalled_for = 0
                    previous_candidates = eliminator.candidates
                if eliminator.converged:
                    if confirmations_left > 0:
                        confirmations_left -= 1
                        continue
                    return self._accept_lines(
                        spec, eliminator.candidates, expected_line
                    )
                if (stall_window and stalled_for >= stall_window
                        and len(eliminator.candidates) <= 4):
                    # Persistent interference (e.g. Prime+Probe set
                    # conflicts with the PermBits table) keeps some lines
                    # hot forever; accept the stalled set and carry its
                    # ambiguity forward like the wide-line case of
                    # Section III-D.
                    return self._accept_lines(
                        spec, eliminator.candidates, expected_line
                    )
        raise BudgetExceeded(
            f"round {spec.round_index} segment {spec.segment} did not "
            f"converge within {self.config.max_encryptions_per_segment} "
            f"encryptions",
            encryptions=self.total_encryptions,
        )

    def _voting_policy(self) -> VotingPolicy:
        """Calibrate the voter against the composed channel's losses."""
        presence = self.config.loss.expected_target_presence(
            len(self.monitor.lines), self.config.probing_round
        )
        # A noisy primitive readout (Flush+Flush) loses genuine target
        # sightings on top of the channel-level loss model.
        presence *= getattr(self.runner, "signal_reliability", 1.0)
        return VotingPolicy(
            expected_presence=presence,
            confidence_threshold=self.config.voting_confidence,
            min_observations=self.config.voting_min_observations,
        )

    def _run_voting(self, spec: TargetSpec,
                    prior_keys: List[Any],
                    prior_estimate: Optional[RoundKeyEstimate],
                    hypothesis: Dict[int, KeyBitPair],
                    expected_line: Optional[int],
                    confirmation: int = 0) -> _VotingVerdict:
        """One voting recovery run under one hypothesis.

        Replaces :meth:`_run_elimination` when the channel is lossy:
        instead of demanding the target in *every* window, per-line
        vote counts are accumulated until either the leader separates
        with the configured confidence (acceptance), the stream stops
        behaving like it contains a constant target (rejection — the
        wrong-hypothesis signal), or the confidence stalls.  A stall
        triggers a re-craft — a fresh plaintext stream — up to
        ``max_segment_retries`` times before the run gives up as
        low-confidence.  The vote counts survive re-crafts: the target
        line is fixed by the hypothesis, not by the crafter's random
        choices, so discarding observations would only burn budget.

        Two rejection triggers, both sound and the second much earlier:
        the voter's own "no line is viable", and — in verification mode
        — the death of the *predicted* line's viability (the hypothesis
        stands or falls with that one line, so there is no need to wait
        for the whole universe to die).
        """
        full_prior = list(prior_keys)
        if prior_estimate is not None:
            full_prior.append(prior_estimate.guess_round_key(hypothesis))
        policy = self._voting_policy()
        # The predicted key-free index bits already rule out most lines
        # (strict mode applies the same filter post hoc in
        # ``_accept_lines``); voting applies it up front so impossible
        # lines never compete for the lead — fewer competitors means
        # fewer windows to separate and no false leaders.
        universe = self.monitor.universe
        if expected_line is None:
            consistent = frozenset(
                line for line in universe
                if key_pairs_from_line(spec, self.monitor, line)
            )
            if consistent:
                universe = consistent
        budget = self.config.max_encryptions_per_segment
        stall_window = self.config.voting_stall_window
        spent = 0
        crafter = PlaintextCrafter(spec, full_prior, self.rng)
        voter = VotingEliminator(universe, policy)
        # In strict-equivalent mode the voter converges exactly like
        # the intersection, so the same transient-singleton guard
        # applies when several hypotheses compete.
        confirmations_left = (confirmation
                              if policy.strict_equivalent else 0)
        best_confidence = 0.0
        stalled_for = 0
        recrafts = 0
        while spent < budget:
            observations = self._observe_many(
                crafter, spec.round_index,
                min(self.config.batch_size, budget - spent)
            )
            spent += len(observations)
            for observed in observations:
                voter.update(observed)
                if voter.rejected or (
                        expected_line is not None
                        and not voter.is_viable(expected_line)):
                    return _VotingVerdict("rejected", None, (),
                                          voter.confidence, spent,
                                          recrafts)
                if voter.decided:
                    if confirmations_left > 0:
                        confirmations_left -= 1
                        continue
                    accepted = self._accept_lines(
                        spec, frozenset({voter.resolved_line}),
                        expected_line
                    )
                    if accepted is None:
                        # Verification mode: the leader separated but is
                        # not the predicted line — the hypothesis that
                        # predicted it is wrong.
                        return _VotingVerdict("rejected", None, (),
                                              voter.confidence, spent,
                                              recrafts)
                    return _VotingVerdict("accepted", accepted[0],
                                          accepted[1], voter.confidence,
                                          spent, recrafts)
                current = voter.confidence
                if current > best_confidence:
                    best_confidence = current
                    stalled_for = 0
                else:
                    stalled_for += 1
                if (voter.observations >= policy.min_observations
                        and stalled_for >= stall_window):
                    if recrafts >= self.config.max_segment_retries:
                        # Stalled out of retries: give up gracefully.
                        return _VotingVerdict("low_confidence", None, (),
                                              best_confidence, spent,
                                              recrafts)
                    recrafts += 1
                    stalled_for = 0
                    # A mid-batch re-craft only affects *future* batches;
                    # the rest of this batch was crafted by the stalled
                    # stream, which is still sound — the target line is
                    # fixed by the hypothesis, not the crafter.
                    crafter = PlaintextCrafter(spec, full_prior, self.rng)
        return _VotingVerdict("low_confidence", None, (), best_confidence,
                              spent, recrafts)

    def _accept_lines(self, spec: TargetSpec, lines,
                      expected_line: Optional[int]
                      ) -> Optional[Tuple[int, Tuple[KeyBitPair, ...]]]:
        """Turn a converged (or stalled) line set into an acceptance.

        In verification mode the known expected line must be among the
        survivors; otherwise the key-pair candidates of all surviving
        lines are pooled after the predicted-high-bits filter.
        """
        ordered = sorted(lines)
        if expected_line is not None:
            if expected_line not in lines:
                return None
            return expected_line, ()
        pairs = tuple(sorted({
            pair
            for line in ordered
            for pair in key_pairs_from_line(spec, self.monitor, line)
        }))
        if not pairs:
            return None  # inconsistent with predicted high bits
        return ordered[0], pairs

    def _verification_stage(self, resolved: List[Any],
                            estimate: RoundKeyEstimate) -> None:
        """Resolve last-round ambiguities using the verification round.

        The verification round's key bits are derived from the
        recovered rounds by the key schedule (round 5 for GIFT-64,
        round 3 for GIFT-128 and PRESENT), so the attacker can predict
        the exact target index — converged lines either match the
        prediction or kill the hypothesis.  For GIFT the prediction
        depends only on the fully resolved round-1 key and is one
        constant line; for PRESENT it runs through the still-ambiguous
        last-round estimate, so the line is recomputed per hypothesis.
        """
        verification_round = self.profile.verification_round
        for segment in range(self.profile.segments):
            if estimate.resolved:
                return
            spec = set_target_bits(verification_round, segment,
                                   width=self.profile.width,
                                   target=self.target)
            if len(self._hypotheses_for(spec, estimate)) <= 1:
                continue  # nothing left to learn from this target

            def line_for(hypothesis: Dict[int, KeyBitPair],
                         spec: TargetSpec = spec) -> int:
                keys = list(resolved)
                keys.append(estimate.guess_round_key(hypothesis))
                verification_key = self.target.verification_round_key(keys)
                bits = self.target.segment_key_bits(
                    verification_key, spec.segment
                )
                return self.monitor.line_for_index(
                    expected_index(spec, *bits)
                )

            self._attack_segment(
                spec, resolved, estimate, expected_line=line_for
            )
        if not estimate.resolved:
            raise InconsistentObservation(
                "verification stage left last-round candidates unresolved"
            )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _hypotheses_for(self, spec: TargetSpec,
                        prior_estimate: Optional[RoundKeyEstimate]
                        ) -> List[Dict[int, KeyBitPair]]:
        if prior_estimate is None:
            return [{}]
        shift = _log2(self.monitor.indices_per_line)
        cone = tuple(sorted({
            source.source_segment
            for source in spec.sources
            if source.target_position % 4 >= shift
        }))
        choice_lists = [prior_estimate.pair_candidates[s] for s in cone]
        return [
            dict(zip(cone, combination))
            for combination in itertools.product(*choice_lists)
        ]

    def _confirmation_margin(self, attacked_round: int) -> int:
        """Post-convergence encryptions required before accepting a
        hypothesis.

        A wrong hypothesis leaves one spuriously "stable" line whose
        per-encryption absence probability is roughly
        ``(1 - 1/lines) * ((lines - 1) / lines) ** accesses`` — the
        varying target must miss it and so must every other S-box access
        in the visible window (``segments`` per visible round; without
        the flush, the rounds before the monitored one stay visible
        too).  Sizing the margin to ``confirmation_factor`` expected
        absence events drives the false-accept probability to about
        ``exp(-factor)``.
        """
        if self.config.confirmation_margin is not None:
            return self.config.confirmation_margin
        lines = len(self.monitor.lines)
        if lines <= 1:
            return 0
        visible_rounds = self.config.probing_round
        mid_flush = getattr(self.runner, "mid_flush_supported", False)
        if not (self.config.use_flush and mid_flush):
            # Rounds 1 .. attacked_round + offset - 1 precede the
            # monitored round; with probe_round_offset = 1 (GIFT) this
            # is the historical ``+ attacked_round`` term.
            visible_rounds += attacked_round + self._probe_round_offset - 1
        other = (lines - 1) / lines
        accesses = self.profile.segments * visible_rounds - 1
        p_absent = other * other ** accesses
        return math.ceil(self.config.confirmation_factor / p_absent)

    @property
    def _probe_round_offset(self) -> int:
        """Rounds between an attacked round ``t`` and its monitored
        S-box accesses (1 for GIFT, 0 for PRESENT)."""
        return self.target.probe_round_offset

    def _verification_round_key(self, resolved: List[Any],
                                estimate: RoundKeyEstimate) -> Any:
        # Best-guess verification key: resolved rounds plus the
        # estimate's leading candidates for the rest.  (The verification
        # stage itself recomputes per hypothesis; this helper serves
        # callers that want the post-resolution value.)
        keys = list(resolved)
        while len(keys) < self.target.full_key_rounds:
            keys.append(estimate.guess_round_key({}))
        return self.target.verification_round_key(keys)

    def _charge_encryption(self) -> None:
        budget = self.config.max_total_encryptions
        if budget is not None and self.total_encryptions >= budget:
            raise BudgetExceeded(
                f"total encryption budget of {budget} exhausted",
                encryptions=self.total_encryptions,
            )
        self.total_encryptions += 1

    def _charge_batch(self, requested: int) -> int:
        """Charge up to ``requested`` encryptions against the budget.

        Returns the count actually charged — clamped to the remaining
        whole-attack budget so a batch never overruns the Table I
        drop-out rule; raises :class:`BudgetExceeded` exactly where the
        scalar loop's per-encryption charge would (budget already
        spent).  ``requested == 1`` is charge-for-charge identical to
        :meth:`_charge_encryption`.
        """
        budget = self.config.max_total_encryptions
        count = requested
        if budget is not None:
            left = budget - self.total_encryptions
            if left <= 0:
                raise BudgetExceeded(
                    f"total encryption budget of {budget} exhausted",
                    encryptions=self.total_encryptions,
                )
            count = min(count, left)
        self.total_encryptions += count
        return count

    def _observe_many(self, crafter: PlaintextCrafter,
                      attacked_round: int, requested: int
                      ) -> List[Any]:
        """Craft, charge and observe up to ``requested`` encryptions.

        The single chokepoint of the batched attack loop.  Crafting
        draws from the attacker RNG in exactly the order the scalar
        loop would, and a ``requested`` of 1 (the ``batch_size=1``
        default) reproduces the historic ``observe(craft(), round)``
        call byte for byte — so scalar effort pins (seed-0 GIFT-64's
        464 encryptions) are untouched by construction.  Larger batches
        go through the runner's ``observe_batch`` when it has one
        (vectorized bitsliced path where active), else fall back to a
        scalar loop over the same plaintexts.
        """
        count = self._charge_batch(requested)
        if count == 1:
            return [self.runner.observe(crafter.craft(), attacked_round)]
        plaintexts = [crafter.craft() for _ in range(count)]
        observe_batch = getattr(self.runner, "observe_batch", None)
        if observe_batch is not None:
            return list(observe_batch(plaintexts, attacked_round))
        return [
            self.runner.observe(plaintext, attacked_round)
            for plaintext in plaintexts
        ]

    def _verify_master_key(self, master_key: int) -> bool:
        victim = self.runner.victim
        plaintext = self.rng.getrandbits(self.profile.width)
        expected = self.runner.known_pair(plaintext)
        reference = self.target.reference_encrypt(
            master_key, plaintext, rounds=victim.rounds
        )
        return reference == expected

    @staticmethod
    def _check_prior(round_index: int,
                     prior_keys: List[Any],
                     prior_estimate: Optional[RoundKeyEstimate]) -> None:
        expected_resolved = max(0, round_index - 2)
        if len(prior_keys) != expected_resolved:
            raise ValueError(
                f"round {round_index} needs {expected_resolved} resolved "
                f"prior keys, got {len(prior_keys)}"
            )
        if round_index >= 2 and prior_estimate is None:
            raise ValueError(
                f"round {round_index} needs the round-{round_index - 1} "
                f"estimate"
            )
        if round_index == 1 and prior_estimate is not None:
            raise ValueError("round 1 takes no prior estimate")


def _log2(value: int) -> int:
    bits = 0
    while value > 1:
        value >>= 1
        bits += 1
    return bits


def recover_full_key(victim: TracedVictim,
                     config: Optional[AttackConfig] = None) -> AttackResult:
    """Convenience wrapper: run a complete GRINCH key recovery."""
    return GrinchAttack(victim, config).recover_master_key()
