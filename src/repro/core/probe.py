"""Deprecated: probing primitives moved to :mod:`repro.channel.primitive`.

This module is an import shim for pre-stack code.  ``ProbeStrategy``
is the historic name of
:class:`~repro.channel.primitive.ProbePrimitive` and ``make_probe`` of
:func:`~repro.channel.primitive.make_primitive`; both will be removed
after one deprecation cycle (see ``docs/architecture.md``).
"""

from __future__ import annotations

import warnings

from ..channel.primitive import (
    FlushFlush,
    FlushReload,
    PrimeProbe,
    ProbePrimitive,
    make_primitive,
)

warnings.warn(
    "repro.core.probe is deprecated; import probing primitives from "
    "repro.channel instead",
    DeprecationWarning,
    stacklevel=2,
)

#: Historic name of :class:`~repro.channel.primitive.ProbePrimitive`.
ProbeStrategy = ProbePrimitive

#: Historic name of :func:`~repro.channel.primitive.make_primitive`.
make_probe = make_primitive

__all__ = [
    "FlushFlush",
    "FlushReload",
    "PrimeProbe",
    "ProbePrimitive",
    "ProbeStrategy",
    "make_primitive",
    "make_probe",
]
