"""Cache probing primitives (Step 2 of the GRINCH methodology).

Two classical access-driven primitives are provided:

* **Flush+Reload** — the paper's choice: the attacker flushes the
  monitored lines, lets the victim run, and reloads each line, timing
  the reload (hit = victim touched it).  Because a flush is a single
  fast operation it can also be issued *mid-encryption* (the paper's
  "Grinch with Flush" series), discarding earlier rounds' noise.

* **Prime+Probe** — the attacker fills the monitored cache *sets* with
  its own lines, lets the victim run, then re-accesses its lines; a miss
  means the victim displaced something in that set.  Observation is
  set-granular, so unrelated victim tables (PermBits) that collide in
  the same sets produce false positives — one reason Flush+Reload is the
  better choice for GRINCH (Section III-C).

Both strategies translate raw hit/miss results into "monitored line was
touched" observations; they never read the victim's metadata.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, FrozenSet, List

from ..cache.setassoc import SetAssociativeCache
from .monitor import SboxMonitor


class ProbeStrategy(ABC):
    """One probing primitive bound to a monitor (what to watch)."""

    #: Whether the primitive can clear the monitored state mid-encryption.
    supports_mid_flush: bool = False

    def __init__(self, monitor: SboxMonitor) -> None:
        self.monitor = monitor

    @abstractmethod
    def reset(self, cache: SetAssociativeCache) -> None:
        """Prepare the cache before the victim runs."""

    def mid_flush(self, cache: SetAssociativeCache) -> None:
        """Clear monitored state mid-encryption (if supported)."""
        raise NotImplementedError(
            f"{type(self).__name__} cannot flush mid-encryption"
        )

    @abstractmethod
    def observe(self, cache: SetAssociativeCache) -> FrozenSet[int]:
        """Return the monitored lines the victim (apparently) touched."""


class FlushReload(ProbeStrategy):
    """Flush+Reload over the S-box table lines."""

    supports_mid_flush = True

    def reset(self, cache: SetAssociativeCache) -> None:
        for address in self.monitor.line_addresses():
            cache.flush_line(address)

    def mid_flush(self, cache: SetAssociativeCache) -> None:
        self.reset(cache)

    def observe(self, cache: SetAssociativeCache) -> FrozenSet[int]:
        observed = set()
        for line, address in zip(self.monitor.lines,
                                 self.monitor.line_addresses()):
            if cache.access(address):  # the "reload": hit == was resident
                observed.add(line)
        return frozenset(observed)


class PrimeProbe(ProbeStrategy):
    """Prime+Probe over the cache sets holding the S-box table.

    The attacker owns ``ways`` lines per monitored set, placed at a
    disjoint tag range (modelling its own arrays).  Observation marks
    *every* monitored line whose set shows evictions — the set-granular
    over-approximation inherent to the primitive.
    """

    supports_mid_flush = False

    #: Tag offset of the attacker's eviction arrays (far from the victim).
    ATTACKER_TAG_BASE = 1 << 20

    def __init__(self, monitor: SboxMonitor) -> None:
        super().__init__(monitor)
        geometry = monitor.geometry
        self._lines_by_set: Dict[int, List[int]] = {}
        for line, address in zip(monitor.lines, monitor.line_addresses()):
            self._lines_by_set.setdefault(
                geometry.set_of(address), []
            ).append(line)
        self._prime_addresses: Dict[int, List[int]] = {
            set_index: [
                (self.ATTACKER_TAG_BASE + way) * geometry.num_sets
                * geometry.line_bytes
                + set_index * geometry.line_bytes
                for way in range(geometry.ways)
            ]
            for set_index in self._lines_by_set
        }

    def reset(self, cache: SetAssociativeCache) -> None:
        for addresses in self._prime_addresses.values():
            for address in addresses:
                cache.access(address)

    def observe(self, cache: SetAssociativeCache) -> FrozenSet[int]:
        observed = set()
        for set_index, addresses in self._prime_addresses.items():
            evictions = sum(
                0 if cache.access(address) else 1 for address in addresses
            )
            if evictions:
                observed.update(self._lines_by_set[set_index])
        return frozenset(observed)


def make_probe(name: str, monitor: SboxMonitor) -> ProbeStrategy:
    """Instantiate a probe strategy by config name."""
    if name == "flush_reload":
        return FlushReload(monitor)
    if name == "prime_probe":
        return PrimeProbe(monitor)
    raise ValueError(f"unknown probe strategy {name!r}")
