"""The ``BENCH_perf.json`` artifact and the perf trajectory file.

Follows the :mod:`repro.engine.artifact` conventions: a hand-rolled,
dependency-free validator over a documented schema, and artifacts under
the engine's results directory (``benchmarks/results``, redirected by
``REPRO_RESULTS_DIR``).

Record shape (``repro.perf/bench/v1``)::

    {
      "schema": "repro.perf/bench/v1",
      "quick": true,
      "seed": 0,
      "benchmarks": [
        {"name": "gift64_encrypt_untraced",
         "ops": 12345, "seconds": 0.41, "ops_per_s": 30110.0},
        ...
      ],
      "ratios": {"gift64_untraced_over_traced": 25.1,
                 "gift64_batch_over_untraced": 50.3, ...},
      "gates": {
        "min_untraced_over_traced": 5.0,
        "min_batch_over_untraced": 20.0,
        "regression_headroom": 2.0,
        "baseline_untraced_over_traced": 24.0 | null,
        "failures": [],
        "passed": true
      },
      "environment": {"python": "3.11.7", "platform": "Linux-..."}
    }

The **trajectory file** (``perf_trajectory.jsonl``) appends one compact
line per run — timestamp, ratios, per-bench ops/s — so the ratio
history survives across PRs; its most recent entry anchors the
traced-path regression gate (see :func:`repro.perf.suite.check_gates`).
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

from .suite import (
    MIN_BATCH_OVER_UNTRACED,
    MIN_UNTRACED_OVER_TRACED,
    REGRESSION_HEADROOM,
    PerfReport,
    check_gates,
)

#: Schema identifier embedded in every record.
SCHEMA_ID = "repro.perf/bench/v1"

#: Canonical artifact file name (uploaded by the CI perf-smoke job).
ARTIFACT_NAME = "BENCH_perf.json"

#: Appending run-over-run ratio history.
TRAJECTORY_NAME = "perf_trajectory.jsonl"


class PerfSchemaError(ValueError):
    """A record does not conform to :data:`SCHEMA_ID`."""


def _require(record: Mapping[str, Any], field: str, kinds,
             where: str) -> Any:
    if field not in record:
        raise PerfSchemaError(f"{where}: missing field {field!r}")
    value = record[field]
    if not isinstance(value, kinds):
        raise PerfSchemaError(
            f"{where}: field {field!r} has type {type(value).__name__}"
        )
    return value


def validate_record(record: Mapping[str, Any]) -> None:
    """Validate one perf record; raises :class:`PerfSchemaError`."""
    if not isinstance(record, Mapping):
        raise PerfSchemaError("record must be an object")
    schema = _require(record, "schema", str, "record")
    if schema != SCHEMA_ID:
        raise PerfSchemaError(f"record: schema {schema!r} != {SCHEMA_ID!r}")
    _require(record, "quick", bool, "record")
    _require(record, "seed", int, "record")
    benchmarks = _require(record, "benchmarks", list, "record")
    if not benchmarks:
        raise PerfSchemaError("record: benchmarks must not be empty")
    for index, bench in enumerate(benchmarks):
        where = f"benchmarks[{index}]"
        if not isinstance(bench, Mapping):
            raise PerfSchemaError(f"{where}: must be an object")
        _require(bench, "name", str, where)
        ops = _require(bench, "ops", int, where)
        if ops < 1:
            raise PerfSchemaError(f"{where}: ops must be positive")
        _require(bench, "seconds", (int, float), where)
        _require(bench, "ops_per_s", (int, float), where)
    ratios = _require(record, "ratios", Mapping, "record")
    for name, value in ratios.items():
        if not isinstance(value, (int, float)):
            raise PerfSchemaError(
                f"ratios[{name!r}] has type {type(value).__name__}"
            )
    gates = _require(record, "gates", Mapping, "record")
    _require(gates, "min_untraced_over_traced", (int, float), "gates")
    _require(gates, "min_batch_over_untraced", (int, float), "gates")
    _require(gates, "regression_headroom", (int, float), "gates")
    if "baseline_untraced_over_traced" not in gates:
        raise PerfSchemaError(
            "gates: missing field 'baseline_untraced_over_traced'"
        )
    baseline = gates["baseline_untraced_over_traced"]
    if baseline is not None and not isinstance(baseline, (int, float)):
        raise PerfSchemaError(
            "gates: baseline_untraced_over_traced must be a number or null"
        )
    _require(gates, "failures", list, "gates")
    _require(gates, "passed", bool, "gates")
    environment = _require(record, "environment", Mapping, "record")
    _require(environment, "python", str, "environment")
    _require(environment, "platform", str, "environment")


def build_record(report: PerfReport,
                 baseline_ratio: Optional[float] = None
                 ) -> Dict[str, Any]:
    """Fold a suite report into a schema-valid artifact record."""
    ratios = report.ratios
    failures = check_gates(ratios, baseline_ratio)
    record = {
        "schema": SCHEMA_ID,
        "quick": report.quick,
        "seed": report.seed,
        "benchmarks": [result.as_record() for result in report.results],
        "ratios": ratios,
        "gates": {
            "min_untraced_over_traced": MIN_UNTRACED_OVER_TRACED,
            "min_batch_over_untraced": MIN_BATCH_OVER_UNTRACED,
            "regression_headroom": REGRESSION_HEADROOM,
            "baseline_untraced_over_traced": baseline_ratio,
            "failures": failures,
            "passed": not failures,
        },
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
    }
    validate_record(record)
    return record


def results_dir() -> Path:
    """The artifact directory (the engine's, for one results tree)."""
    from ..engine.cache import results_dir as engine_results_dir

    return engine_results_dir()


def write_artifact(record: Mapping[str, Any],
                   directory: Optional[Path] = None) -> Path:
    """Write the canonical :data:`ARTIFACT_NAME` for a run."""
    validate_record(record)
    directory = directory if directory is not None else results_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / ARTIFACT_NAME
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def append_trajectory(record: Mapping[str, Any],
                      directory: Optional[Path] = None,
                      timestamp: Optional[str] = None) -> Path:
    """Append one compact trajectory line for ``record``."""
    validate_record(record)
    directory = directory if directory is not None else results_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / TRAJECTORY_NAME
    entry = {
        "timestamp": (timestamp if timestamp is not None
                      else time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                         time.gmtime())),
        "quick": record["quick"],
        "ratios": dict(record["ratios"]),
        "ops_per_s": {
            bench["name"]: bench["ops_per_s"]
            for bench in record["benchmarks"]
        },
    }
    with path.open("a") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return path


def last_trajectory_ratio(directory: Optional[Path] = None,
                          key: str = "gift64_untraced_over_traced"
                          ) -> Optional[float]:
    """The most recent trajectory entry's ``key`` ratio, if any.

    Malformed lines are skipped (a truncated append must not wedge
    every future perf run), and a missing file simply means no
    baseline yet.
    """
    directory = directory if directory is not None else results_dir()
    path = directory / TRAJECTORY_NAME
    if not path.exists():
        return None
    ratio: Optional[float] = None
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError:
            continue
        if not isinstance(entry, dict):
            continue
        entry_ratios = entry.get("ratios")
        value = (entry_ratios.get(key)
                 if isinstance(entry_ratios, dict) else None)
        if isinstance(value, (int, float)):
            ratio = float(value)
    return ratio
