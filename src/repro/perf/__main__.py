"""Module entry point: ``python -m repro.perf``."""

import sys

from .cli import main

sys.exit(main())
