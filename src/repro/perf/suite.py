"""The benchmark suite: what ``python -m repro perf`` measures.

Every Monte-Carlo trial the engine runs bottoms out in four hot paths,
each benchmarked here:

* the **cipher** — trace-free ``encrypt()`` vs. the traced LUT path
  that backs the observer's full path (``gift64_encrypt_untraced`` /
  ``gift64_encrypt_traced``, plus the GIFT-128 pair outside ``--quick``),
  and the bitsliced **batch path** (``gift64_encrypt_batch``, one op =
  :data:`_BATCH_BLOCKS` blocks through ``encrypt_batch``);
* the **observer fast path** — crafted-encryption line observations
  (``observer_fast_observations``);
* the **voting decision core** — per-window count updates
  (``voting_updates``);
* the **engine trial body** — one complete first-round attack, the
  unit Fig. 3 / Table I fan out (``engine_first_round_trial``).

The regression gates are *ratios* between benches on the same machine,
so they hold on any hardware: the untraced cipher must stay at least
:data:`MIN_UNTRACED_OVER_TRACED` times faster than the traced path, the
bitsliced batch path must deliver at least
:data:`MIN_BATCH_OVER_UNTRACED` times the scalar untraced blocks/s
(``gift64_batch_over_untraced`` — the whole point of the batch-first
fabric), and the traced path must not silently rot — the
untraced/traced ratio may not grow past :data:`REGRESSION_HEADROOM`
times the ratio recorded in the trajectory file (a growing ratio means
traced got slower relative to the untraced anchor).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional

from ..channel.observer import ObservationChannel
from ..core.attack import GrinchAttack
from ..core.config import AttackConfig
from ..core.voting import VotingEliminator, VotingPolicy
from ..targets.gift import TracedGift64, TracedGift128
from ..seeding import derive_key, derive_rng
from .bench import BenchResult, measure

#: Hard gate: the trace-free cipher path must beat the traced path by
#: at least this factor (the traced path allocates ~900 MemoryAccess
#: records per GIFT-64 block; anything under 5x means the fast path
#: regressed into tracing work).
MIN_UNTRACED_OVER_TRACED: float = 5.0

#: Hard gate: the bitsliced batch path must encrypt blocks at least
#: this many times faster than the scalar untraced loop (measured as
#: ``encrypt_batch`` calls/s x :data:`_BATCH_BLOCKS` over untraced
#: ops/s; below 20x the vectorized fabric has regressed into
#: per-block work).
MIN_BATCH_OVER_UNTRACED: float = 20.0

#: Soft anchor: the untraced/traced ratio may not exceed the recorded
#: trajectory baseline by more than this factor (a growing ratio means
#: the traced path — which backs the observer's full path — got slower
#: relative to the untraced anchor).
REGRESSION_HEADROOM: float = 2.0

#: Plaintexts cycled through the cipher/observer benches.
_PLAINTEXT_POOL: int = 256

#: Synthetic probe windows cycled through the voting bench.
_OBSERVATION_POOL: int = 512

#: Blocks per ``encrypt_batch`` call in the batch cipher bench (one
#: bench op encrypts this many blocks; large enough to amortise the
#: pack/unpack ends of the bitsliced pipeline).
_BATCH_BLOCKS: int = 4096


@dataclass(frozen=True)
class PerfReport:
    """Everything one suite run produced, pre-artifact."""

    quick: bool
    seed: int
    results: List[BenchResult] = field(default_factory=list)

    def result(self, name: str) -> BenchResult:
        """Look one benchmark up by name."""
        for result in self.results:
            if result.name == name:
                return result
        raise KeyError(f"no benchmark named {name!r}")

    @property
    def ratios(self) -> Dict[str, float]:
        """The hardware-independent ratios the gates run on."""
        ratios: Dict[str, float] = {}
        for width in (64, 128):
            untraced = f"gift{width}_encrypt_untraced"
            traced = f"gift{width}_encrypt_traced"
            try:
                fast, slow = self.result(untraced), self.result(traced)
            except KeyError:
                continue
            if slow.ops_per_s > 0.0:
                ratios[f"gift{width}_untraced_over_traced"] = (
                    fast.ops_per_s / slow.ops_per_s
                )
            try:
                batch = self.result(f"gift{width}_encrypt_batch")
            except KeyError:
                continue
            if fast.ops_per_s > 0.0:
                # One batch op encrypts _BATCH_BLOCKS blocks, one
                # untraced op encrypts one — the ratio is blocks/s
                # over blocks/s.
                ratios[f"gift{width}_batch_over_untraced"] = (
                    batch.ops_per_s * _BATCH_BLOCKS / fast.ops_per_s
                )
        return ratios


def check_gates(ratios: Dict[str, float],
                baseline_ratio: Optional[float] = None,
                *,
                min_ratio: float = MIN_UNTRACED_OVER_TRACED,
                min_batch_ratio: float = MIN_BATCH_OVER_UNTRACED,
                headroom: float = REGRESSION_HEADROOM) -> List[str]:
    """Evaluate the ratio gates; returns human-readable failures.

    ``baseline_ratio`` is the GIFT-64 untraced/traced ratio of the
    trajectory's most recent entry (``None`` on a first run): the new
    ratio must stay within ``headroom`` times it, bounding how much the
    traced path may regress relative to the untraced anchor.
    Batch-over-untraced ratios are gated against ``min_batch_ratio``
    instead of ``min_ratio``.
    """
    failures: List[str] = []
    for name, ratio in sorted(ratios.items()):
        floor = (min_batch_ratio if name.endswith("_batch_over_untraced")
                 else min_ratio)
        if ratio < floor:
            failures.append(
                f"{name} = {ratio:.2f}x, below the {floor:.1f}x gate"
            )
    key = "gift64_untraced_over_traced"
    if baseline_ratio is not None and key in ratios:
        bound = baseline_ratio * headroom
        if ratios[key] > bound:
            failures.append(
                f"{key} = {ratios[key]:.2f}x exceeds {bound:.2f}x "
                f"({headroom:.1f}x the {baseline_ratio:.2f}x trajectory "
                f"baseline) — the traced path regressed"
            )
    return failures


# ----------------------------------------------------------------------
# Benchmark bodies
# ----------------------------------------------------------------------

def _cycled(values: List[int]) -> Callable[[], int]:
    cycle = itertools.cycle(values)
    return lambda: next(cycle)


def _cipher_benches(seed: int, quick: bool) -> List[Dict[str, object]]:
    from ..targets.gift import (
        BitslicedGift64,
        BitslicedGift128,
        numpy_available,
    )

    benches: List[Dict[str, object]] = []
    widths = (64,) if quick else (64, 128)
    for width in widths:
        victim_cls = TracedGift64 if width == 64 else TracedGift128
        key = derive_key(128, "perf-cipher", seed, width)
        victim = victim_cls(key)
        rng = derive_rng("perf-plaintexts", seed, width)
        pool = [rng.getrandbits(width) for _ in range(_PLAINTEXT_POOL)]
        draw = _cycled(pool)
        benches.append({
            "name": f"gift{width}_encrypt_untraced",
            "fn": (lambda victim=victim, draw=draw:
                   victim.encrypt(draw())),
        })
        benches.append({
            "name": f"gift{width}_encrypt_traced",
            "fn": (lambda victim=victim, draw=draw:
                   victim.encrypt_traced(draw())),
        })
        if numpy_available():
            backend_cls = (BitslicedGift64 if width == 64
                           else BitslicedGift128)
            backend = backend_cls(key)
            batch_rng = derive_rng("perf-batch-plaintexts", seed, width)
            batch_pool = [batch_rng.getrandbits(width)
                          for _ in range(_BATCH_BLOCKS)]
            benches.append({
                "name": f"gift{width}_encrypt_batch",
                "fn": (lambda backend=backend, batch_pool=batch_pool:
                       backend.encrypt_batch(batch_pool)),
            })
    return benches


def _observer_bench(seed: int) -> Dict[str, object]:
    config = AttackConfig(seed=seed)
    victim = TracedGift64(derive_key(128, "perf-observer", seed))
    channel = ObservationChannel(victim, config)
    assert channel.fast_path_active, "observer bench expects the fast path"
    rng = derive_rng("perf-observer-plaintexts", seed)
    draw = _cycled([rng.getrandbits(64) for _ in range(_PLAINTEXT_POOL)])
    return {
        "name": "observer_fast_observations",
        "fn": lambda: channel.observe(draw(), 1),
    }


def _voting_bench(seed: int) -> Dict[str, object]:
    # A 16-line universe (the paper's 1-byte-entry S-box under 1-word
    # lines) fed synthetic lossy windows: the target present at 80%,
    # three background lines drawn uniformly.
    universe = frozenset(range(16))
    rng = derive_rng("perf-voting", seed)
    windows: List[FrozenSet[int]] = []
    for _ in range(_OBSERVATION_POOL):
        lines = {0} if rng.random() < 0.8 else set()
        lines.update(rng.randrange(16) for _ in range(3))
        windows.append(frozenset(lines))
    voter = VotingEliminator(universe, VotingPolicy(expected_presence=0.8))
    draw = _cycled(windows)  # type: ignore[arg-type]
    return {
        "name": "voting_updates",
        "fn": lambda: voter.update(draw()),
    }


def _engine_trial_bench(seed: int) -> Dict[str, object]:
    # The trial body of the E1/E2 sweeps: a fresh first-round attack
    # per call (victim construction included, exactly as the engine
    # fans it out).
    config = AttackConfig(seed=seed)
    key = derive_key(128, "perf-trial", seed)

    def trial() -> None:
        GrinchAttack(TracedGift64(key), config).attack_first_round()

    return {"name": "engine_first_round_trial", "fn": trial}


def run_suite(*, quick: bool = False, seed: int = 0,
              min_seconds: Optional[float] = None,
              clock: Callable[[], float] = time.perf_counter
              ) -> PerfReport:
    """Run the full microbenchmark suite and return its report.

    ``--quick`` shrinks the per-bench timing floor and drops the
    GIFT-128 cipher pair; the gates are ratio-based, so the quick run
    is still authoritative for CI.
    """
    if min_seconds is None:
        min_seconds = 0.05 if quick else 0.4
    benches = _cipher_benches(seed, quick)
    benches.append(_observer_bench(seed))
    benches.append(_voting_bench(seed))
    benches.append(_engine_trial_bench(seed))
    results = [
        measure(bench["name"], bench["fn"],  # type: ignore[arg-type]
                min_seconds=min_seconds, clock=clock)
        for bench in benches
    ]
    return PerfReport(quick=quick, seed=seed, results=results)
