"""Performance subsystem: microbenchmarks, artifacts, regression gates.

``repro.perf`` keeps the hot paths fast the same way the engine keeps
results reproducible — by measuring them on every change and gating on
*hardware-independent ratios* rather than absolute throughput (the
attacker-effort-vs-throughput framing Flush+Flush and ARMageddon use to
compare probe channels).  Three layers:

* :mod:`repro.perf.bench` — the calibrated timing core
  (:func:`measure` runs a callable in geometrically growing batches
  until the sample is long enough to trust).
* :mod:`repro.perf.suite` — the benchmark suite: cipher enc/s (traced
  vs. untraced), observer fast-path observations/s, voting updates/s,
  and engine first-round trials/s, plus the ratio gates
  (:data:`MIN_UNTRACED_OVER_TRACED`).
* :mod:`repro.perf.artifact` — the schema-validated ``BENCH_perf.json``
  record (``repro.perf/bench/v1``) and the appending trajectory file
  that anchors the regression policy.

Run it with ``python -m repro perf [--quick] [--json] [--profile P]``;
see ``docs/performance.md`` for how to read the output.
"""

from .artifact import (
    ARTIFACT_NAME,
    SCHEMA_ID,
    TRAJECTORY_NAME,
    append_trajectory,
    build_record,
    last_trajectory_ratio,
    validate_record,
    write_artifact,
)
from .bench import BenchResult, measure
from .suite import (
    MIN_UNTRACED_OVER_TRACED,
    REGRESSION_HEADROOM,
    PerfReport,
    check_gates,
    run_suite,
)

__all__ = [
    "ARTIFACT_NAME",
    "SCHEMA_ID",
    "TRAJECTORY_NAME",
    "append_trajectory",
    "build_record",
    "last_trajectory_ratio",
    "validate_record",
    "write_artifact",
    "BenchResult",
    "measure",
    "MIN_UNTRACED_OVER_TRACED",
    "REGRESSION_HEADROOM",
    "PerfReport",
    "check_gates",
    "run_suite",
]
