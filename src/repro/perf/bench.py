"""Calibrated microbenchmark timing core.

No external dependencies (the container has no ``pyperf``): a callable
is run in geometrically growing batches until the accumulated runtime
crosses a floor, so per-call clock overhead is amortised for fast
operations while slow operations (a whole engine trial) still finish
after a single batch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Union

#: Largest batch one timing slice may run; bounds the overshoot past
#: ``min_seconds`` for very fast callables.
MAX_BATCH: int = 1 << 20


@dataclass(frozen=True)
class BenchResult:
    """One benchmark's measurement: ``ops`` calls in ``seconds``."""

    name: str
    ops: int
    seconds: float

    @property
    def ops_per_s(self) -> float:
        """Throughput; the number every ratio gate is built from."""
        if self.seconds <= 0.0:
            # Degenerate clock resolution; report the ops as if they
            # took one tick so ratios stay finite.
            return float(self.ops)
        return self.ops / self.seconds

    def as_record(self) -> Dict[str, Union[str, int, float]]:
        """JSON-ready form used by the ``BENCH_perf.json`` artifact."""
        return {
            "name": self.name,
            "ops": self.ops,
            "seconds": self.seconds,
            "ops_per_s": self.ops_per_s,
        }


def measure(name: str, fn: Callable[[], object], *,
            min_seconds: float = 0.25,
            clock: Callable[[], float] = time.perf_counter) -> BenchResult:
    """Time ``fn`` until at least ``min_seconds`` have accumulated.

    One untimed warm-up call precedes measurement (first-call effects:
    lazy imports, cache fills, bytecode specialisation).  Batches grow
    geometrically so the loop's own bookkeeping stays negligible.
    """
    if min_seconds <= 0.0:
        raise ValueError(f"min_seconds must be positive, got {min_seconds}")
    fn()  # warm-up, untimed
    ops = 0
    elapsed = 0.0
    batch = 1
    while elapsed < min_seconds:
        start = clock()
        for _ in range(batch):
            fn()
        elapsed += clock() - start
        ops += batch
        batch = min(batch * 2, MAX_BATCH)
    return BenchResult(name=name, ops=ops, seconds=elapsed)
