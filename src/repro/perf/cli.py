"""``python -m repro perf`` — run the suite, gate, emit artifacts.

.. code-block:: console

   $ python -m repro perf                  # full suite, ASCII table
   $ python -m repro perf --quick --json   # CI perf-smoke invocation
   $ python -m repro perf --profile prof.out   # cProfile the suite

Exit status is non-zero when any ratio gate fails, so CI can consume
the command directly.  The trajectory baseline is read *before* this
run's entry is appended — each run is judged against its predecessor.
"""

from __future__ import annotations

import argparse
import cProfile
import json
from pathlib import Path
from typing import List, Optional

from .artifact import (
    append_trajectory,
    build_record,
    last_trajectory_ratio,
    results_dir,
    write_artifact,
)
from .suite import PerfReport, run_suite


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro perf",
        description="microbenchmark the GRINCH hot paths and gate on "
                    "hardware-independent ratios",
    )
    parser.add_argument("--quick", action="store_true",
                        help="short timing floor, GIFT-64 only "
                             "(the CI perf-smoke configuration)")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for the benchmark inputs")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="print the BENCH_perf.json record instead "
                             "of the ASCII table")
    parser.add_argument("--output", type=Path, default=None, metavar="DIR",
                        help="artifact/trajectory directory (default: "
                             "the engine results directory)")
    parser.add_argument("--profile", type=Path, default=None, metavar="PATH",
                        help="run the suite under cProfile and dump "
                             "stats to PATH")
    parser.add_argument("--no-artifact", action="store_true",
                        help="measure and gate only; write nothing")
    return parser


def _render(report: PerfReport, record: dict) -> str:
    lines = [
        f"perf suite (seed {report.seed}"
        f"{', quick' if report.quick else ''})",
    ]
    for result in report.results:
        lines.append(
            f"  {result.name:<28} {result.ops_per_s:>12,.1f} ops/s "
            f"({result.ops} ops / {result.seconds:.3f} s)"
        )
    for name, ratio in sorted(record["ratios"].items()):
        lines.append(f"  {name:<28} {ratio:>11.2f}x")
    gates = record["gates"]
    baseline = gates["baseline_untraced_over_traced"]
    lines.append(
        f"  gates: min ratio {gates['min_untraced_over_traced']:.1f}x, "
        f"min batch ratio {gates['min_batch_over_untraced']:.1f}x, "
        f"baseline "
        f"{'none' if baseline is None else format(baseline, '.2f') + 'x'}"
    )
    if gates["passed"]:
        lines.append("  PASS")
    else:
        for failure in gates["failures"]:
            lines.append(f"  FAIL: {failure}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)

    if args.profile is not None:
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            report = run_suite(quick=args.quick, seed=args.seed)
        finally:
            profiler.disable()
        profiler.dump_stats(str(args.profile))
    else:
        report = run_suite(quick=args.quick, seed=args.seed)

    directory = args.output if args.output is not None else results_dir()
    baseline = last_trajectory_ratio(directory)
    record = build_record(report, baseline)

    if not args.no_artifact:
        write_artifact(record, directory)
        append_trajectory(record, directory)

    if args.as_json:
        print(json.dumps(record, indent=2, sort_keys=True))
    else:
        print(_render(report, record))
        if args.profile is not None:
            print(f"  profile: {args.profile}")
    return 0 if record["gates"]["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
