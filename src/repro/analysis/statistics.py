"""Small statistics helpers for the experiment harnesses."""

from __future__ import annotations

import math
import statistics as _statistics
from dataclasses import dataclass
from typing import Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (raises on empty input).

    Delegates to :func:`statistics.mean`, which computes the exact
    rational mean before rounding once — so the result always lies in
    ``[min(values), max(values)]``.  The naive ``sum(values) / len(values)``
    violates that for e.g. three copies of the same float, whose sum
    rounds upward before the division.
    """
    if not values:
        raise ValueError("mean of empty sequence")
    return float(_statistics.mean(values))


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def median(values: Sequence[float]) -> float:
    """Median (average of the middle pair for even lengths)."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2


def sample_stdev(values: Sequence[float]) -> float:
    """Sample standard deviation (0 for fewer than two values)."""
    if len(values) < 2:
        return 0.0
    centre = mean(values)
    return math.sqrt(
        sum((v - centre) ** 2 for v in values) / (len(values) - 1)
    )


def mean_confidence_interval(values: Sequence[float], z: float = 1.96
                             ) -> Tuple[float, float]:
    """Normal-approximation confidence interval for the mean."""
    centre = mean(values)
    if len(values) < 2:
        return (centre, centre)
    half_width = z * sample_stdev(values) / math.sqrt(len(values))
    return (centre - half_width, centre + half_width)


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of repeated measurements."""

    count: int
    mean: float
    median: float
    stdev: float
    minimum: float
    maximum: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "Summary":
        """Summarise a non-empty sequence."""
        if not values:
            raise ValueError("cannot summarise an empty sequence")
        return cls(
            count=len(values),
            mean=mean(values),
            median=median(values),
            stdev=sample_stdev(values),
            minimum=min(values),
            maximum=max(values),
        )
