"""ASCII rendering of the reproduced tables and figures.

The harnesses print the same rows/series the paper reports; these
helpers keep the formatting in one place so benchmarks, examples and
EXPERIMENTS.md all show identical layouts.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from .experiments import (
    Figure3Result,
    Table1Result,
    Table2Result,
)


def format_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[str]]) -> str:
    """Render an ASCII table with padded columns."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {columns}"
            )
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        if rows else len(str(headers[i]))
        for i in range(columns)
    ]
    divider = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * len(title)]
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(divider)
    for row in rows:
        lines.append(
            " | ".join(str(c).ljust(w) for c, w in zip(row, widths))
        )
    return "\n".join(lines)


def format_count(value: float) -> str:
    """Format an encryption count the way the paper prints them."""
    if value >= 1_000_000:
        return ">1M"
    return f"{value:,.0f}"


def render_figure3(result: Figure3Result) -> str:
    """Fig. 3 as a log-scale ASCII bar chart plus the raw series."""
    rows = []
    flush = {p.probing_round: p for p in result.series(True)}
    no_flush = {p.probing_round: p for p in result.series(False)}
    rounds = sorted(set(flush) | set(no_flush))
    max_log = max(
        math.log10(max(p.encryptions, 1.0))
        for p in result.points
    )
    scale = 40 / max(max_log, 1.0)
    for probing_round in rounds:
        for label, series in (("flush", flush), ("no-flush", no_flush)):
            point = series.get(probing_round)
            if point is None:
                continue
            bar = "#" * max(
                1, int(math.log10(max(point.encryptions, 1.0)) * scale)
            )
            marker = "" if point.simulated else " (analytic)"
            rows.append(
                f"round {probing_round:>2} {label:>8} "
                f"{format_count(point.encryptions):>10} |{bar}{marker}"
            )
    header = ("Fig. 3 — Required encryptions to break the 1st GIFT round\n"
              "(log-scale bars; 'analytic' = beyond the Monte-Carlo budget)")
    return header + "\n" + "\n".join(rows)


def render_table1(result: Table1Result) -> str:
    """Table I in the paper's layout."""
    rounds = sorted({c.probing_round for c in result.cells})
    headers = ["Cache Line Size"] + [str(r) for r in rounds]
    return format_table(
        "Table I — Required encryptions to attack the first round",
        headers,
        result.rows(),
    )


def render_table2(result: Table2Result) -> str:
    """Table II in the paper's layout."""
    frequencies = sorted({r.frequency_hz for r in result.reports})
    headers = ["Platform"] + [f"{f / 1e6:g} MHz" for f in frequencies]
    return format_table(
        "Table II — Attack efficiency (probed round) of performed attacks",
        headers,
        result.rows(),
    )


def render_series(title: str, labels: Sequence[str],
                  values: Sequence[float]) -> str:
    """Simple labelled numeric series (used by ablation reports)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    width = max((len(l) for l in labels), default=0)
    lines: List[str] = [title]
    for label, value in zip(labels, values):
        lines.append(f"  {label.ljust(width)} : {format_count(value)}")
    return "\n".join(lines)
