"""Analytic model of GRINCH's candidate-elimination effort.

The elimination is a coupon-collector process: each crafted encryption
pins the target line but touches every other monitored line with some
probability, and a non-target line is eliminated the first time an
observation misses it.  Modelling the other accesses in the visible
window as uniform over the monitored lines gives closed forms that
track the Monte-Carlo simulation closely (validated by the ablation
benchmark E7) and explain the paper's two headline trends:

* Fig. 3's exponential growth in the probing round — the absence
  probability decays geometrically with the number of visible accesses;
* Table I's explosion with the cache line size — fewer, busier lines
  make absences rare.
"""

from __future__ import annotations

from math import comb, expm1, log, log1p
from typing import Optional

#: GIFT-64 S-box accesses per round.
ACCESSES_PER_ROUND: int = 16

#: Segments attacked per round (= 16 for GIFT-64).
SEGMENTS_PER_ROUND: int = 16


def monitored_lines(line_words: int, sbox_entries: int = 16,
                    entry_words: int = 1) -> int:
    """Number of cache lines the S-box table spans."""
    if line_words < 1 or sbox_entries < 1 or entry_words < 1:
        raise ValueError("table/line parameters must be positive")
    table_words = sbox_entries * entry_words
    return max(1, -(-table_words // line_words))


def visible_noise_accesses(probing_round: int, attacked_round: int = 1,
                           use_flush: bool = True) -> int:
    """Non-target S-box accesses in the attacker's visible window.

    With the mid-run flush the window spans rounds
    ``attacked_round + 1 .. attacked_round + probing_round``; without
    it, rounds ``1 ..`` the same end.  One access is the pinned target.
    """
    if probing_round < 1 or attacked_round < 1:
        raise ValueError("rounds are 1-based")
    visible_rounds = (probing_round if use_flush
                      else attacked_round + probing_round)
    return ACCESSES_PER_ROUND * visible_rounds - 1


def absence_probability(lines: int, noise_accesses: int) -> float:
    """Probability one specific non-target line escapes a whole window."""
    if lines < 1:
        raise ValueError(f"lines must be positive, got {lines}")
    if noise_accesses < 0:
        raise ValueError("noise_accesses must be non-negative")
    if lines == 1:
        return 0.0
    return ((lines - 1) / lines) ** noise_accesses


def expected_max_geometric(count: int, p: float) -> float:
    """Expected maximum of ``count`` i.i.d. geometric(p) variables.

    This is the expected number of encryptions until *every* non-target
    line has been absent at least once (treating absences as
    independent, an excellent approximation here).  Uses the
    inclusion-exclusion closed form.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if count == 0:
        return 0.0
    if not 0.0 < p <= 1.0:
        return float("inf")
    # 1 - (1-p)^j computed stably for tiny p via expm1/log1p.
    log_q = log1p(-p) if p < 1.0 else float("-inf")
    return sum(
        ((-1) ** (j + 1)) * comb(count, j)
        / (1.0 if log_q == float("-inf") else -expm1(j * log_q))
        for j in range(1, count + 1)
    )


def expected_encryptions_per_segment(line_words: int, probing_round: int,
                                     use_flush: bool = True,
                                     attacked_round: int = 1) -> float:
    """Expected encryptions to converge one segment's elimination."""
    lines = monitored_lines(line_words)
    p = absence_probability(
        lines, visible_noise_accesses(probing_round, attacked_round, use_flush)
    )
    return expected_max_geometric(lines - 1, p)


def expected_first_round_effort(line_words: int, probing_round: int,
                                use_flush: bool = True) -> float:
    """Expected encryptions to attack all 16 segments of round 1.

    This is the quantity reported per cell of Table I and per bar of
    Fig. 3.
    """
    return SEGMENTS_PER_ROUND * expected_encryptions_per_segment(
        line_words, probing_round, use_flush
    )


def growth_factor_per_round(line_words: int) -> float:
    """Multiplicative effort growth per extra probing round.

    ``effort(r + 1) / effort(r)`` tends to
    ``(lines / (lines - 1)) ** 16`` — the exponential slope visible in
    Fig. 3's log-scale bars.
    """
    lines = monitored_lines(line_words)
    if lines == 1:
        return float("inf")
    return (lines / (lines - 1)) ** ACCESSES_PER_ROUND


def practical_probing_round_limit(line_words: int, use_flush: bool = True,
                                  budget: float = 1_000_000.0
                                  ) -> Optional[int]:
    """Last probing round whose expected effort stays within ``budget``.

    Mirrors the paper's ">1M encryptions" drop-out rule; returns ``None``
    when even probing round 1 exceeds the budget.
    """
    if budget <= 0:
        raise ValueError(f"budget must be positive, got {budget}")
    last = None
    for probing_round in range(1, 64):
        effort = expected_first_round_effort(
            line_words, probing_round, use_flush
        )
        if effort > budget:
            break
        last = probing_round
    return last


def flush_advantage(probing_round: int, line_words: int = 1) -> float:
    """Effort ratio of "without flush" to "with flush" at equal probing round.

    The flush removes the first round's 16 "dirty" accesses, so the
    ratio is about ``((lines-1)/lines) ** -16``.
    """
    with_flush = expected_first_round_effort(line_words, probing_round, True)
    without = expected_first_round_effort(line_words, probing_round, False)
    if with_flush == 0:
        return float("inf")
    return without / with_flush


def log_effort_slope(line_words: int, use_flush: bool = True,
                     first: int = 1, last: int = 8) -> float:
    """Average slope of ``ln(effort)`` per probing round over a range."""
    if last <= first:
        raise ValueError("need at least two probing rounds for a slope")
    efforts = [
        expected_first_round_effort(line_words, r, use_flush)
        for r in (first, last)
    ]
    return (log(efforts[1]) - log(efforts[0])) / (last - first)
