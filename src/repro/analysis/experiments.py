"""Experiment runners regenerating every table and figure of the paper.

Since the unified engine refactor these are *thin callers* of
:mod:`repro.engine`: each ``run_*`` function resolves its experiment
from the declarative registry, hands the sweep to the engine's
parallel trial executor, and converts the JSON record back into the
typed result objects the reporting layer and the test-suite use.

* :func:`run_figure3`  — Fig. 3 (engine experiment ``figure3`` / E1).
* :func:`run_table1`   — Table I (``table1`` / E2).
* :func:`run_table2`   — Table II (``table2`` / E3).
* :func:`run_full_key` — the <400-encryption headline (``full_key`` / E4).
* :func:`run_probe_strategy_ablation`, :func:`run_noise_sweep`,
  :func:`validate_theory` — the E6/E9/E7 ablations.

All of them accept ``workers=N`` to fan the Monte-Carlo trials out over
worker processes; results are bit-identical at any worker count.  The
wrappers always recompute (``use_cache=False``), matching their
historical semantics; callers who want the content-addressed result
cache use :func:`repro.engine.run_experiment` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.config import AttackConfig
from ..engine import run_experiment
from ..engine.experiments import DROPOUT_THRESHOLD
from ..targets.layout import TableLayout
from ..soc.clock import PAPER_FREQUENCIES_HZ
from ..soc.platform import ProbeReport
from .statistics import Summary

__all__ = [
    "DROPOUT_THRESHOLD",
    "Figure3Point",
    "Figure3Result",
    "FullKeyResultSummary",
    "NoiseSweepRow",
    "ProbeAblationRow",
    "Table1Cell",
    "Table1Result",
    "Table2Result",
    "TheoryValidationRow",
    "figure3_result_from_record",
    "run_figure3",
    "run_full_key",
    "run_noise_sweep",
    "run_probe_strategy_ablation",
    "run_table1",
    "run_table2",
    "table1_result_from_record",
    "table2_result_from_record",
    "validate_theory",
]


def _summary_from_trials(trials: Sequence[float]) -> Optional[Summary]:
    samples = [float(value) for value in trials if value is not None]
    return Summary.of(samples) if samples else None


# ----------------------------------------------------------------------
# Figure 3
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Figure3Point:
    """One bar of Fig. 3."""

    probing_round: int
    use_flush: bool
    encryptions: float
    simulated: bool
    summary: Optional[Summary] = None


@dataclass
class Figure3Result:
    """Both series of Fig. 3."""

    points: List[Figure3Point] = field(default_factory=list)

    def series(self, use_flush: bool) -> List[Figure3Point]:
        """One series, ordered by probing round."""
        return sorted(
            (p for p in self.points if p.use_flush == use_flush),
            key=lambda p: p.probing_round,
        )


def figure3_result_from_record(record: Dict[str, Any]) -> Figure3Result:
    """Typed view of an engine ``figure3`` record."""
    result = Figure3Result()
    for cell in record["cells"]:
        result.points.append(Figure3Point(
            probing_round=cell["cell"]["probing_round"],
            use_flush=cell["cell"]["use_flush"],
            encryptions=cell["encryptions"],
            simulated=cell["simulated"],
            summary=_summary_from_trials(cell["trials"]),
        ))
    return result


def run_figure3(probing_rounds: Sequence[int] = tuple(range(1, 11)),
                runs: int = 3,
                seed: int = 0,
                max_simulated_effort: float = 30_000.0,
                workers: int = 1) -> Figure3Result:
    """Regenerate Fig. 3 (line size fixed at the default 1 word)."""
    record = run_experiment(
        "figure3",
        {
            "probing_rounds": list(probing_rounds),
            "runs": runs,
            "seed": seed,
            "max_simulated_effort": max_simulated_effort,
        },
        workers=workers,
        use_cache=False,
    )
    return figure3_result_from_record(record)


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Table1Cell:
    """One cell of Table I."""

    line_words: int
    probing_round: int
    encryptions: Optional[float]
    dropped_out: bool
    simulated: bool

    def render(self) -> str:
        """Paper-style cell text (``>1M`` for drop-outs)."""
        if self.dropped_out:
            return ">1M"
        value = f"{self.encryptions:,.0f}"
        return value if self.simulated else f"~{value}"


@dataclass
class Table1Result:
    """All cells of Table I."""

    cells: List[Table1Cell] = field(default_factory=list)

    def cell(self, line_words: int, probing_round: int) -> Table1Cell:
        """Look up one cell."""
        for candidate in self.cells:
            if (candidate.line_words == line_words
                    and candidate.probing_round == probing_round):
                return candidate
        raise KeyError((line_words, probing_round))

    def rows(self) -> List[List[str]]:
        """Render as the paper lays it out (line sizes x probing rounds)."""
        line_sizes = sorted({c.line_words for c in self.cells})
        rounds = sorted({c.probing_round for c in self.cells})
        rendered = []
        for line_words in line_sizes:
            label = f"{line_words} Word" + ("s" if line_words > 1 else "")
            rendered.append(
                [label] + [self.cell(line_words, r).render() for r in rounds]
            )
        return rendered


def table1_result_from_record(record: Dict[str, Any]) -> Table1Result:
    """Typed view of an engine ``table1`` record."""
    result = Table1Result()
    for cell in record["cells"]:
        result.cells.append(Table1Cell(
            line_words=cell["cell"]["line_words"],
            probing_round=cell["cell"]["probing_round"],
            encryptions=cell["encryptions"],
            dropped_out=cell["dropped_out"],
            simulated=cell["simulated"],
        ))
    return result


def run_table1(line_sizes: Sequence[int] = (1, 2, 4, 8),
               probing_rounds: Sequence[int] = tuple(range(1, 6)),
               runs: int = 2,
               seed: int = 1,
               max_simulated_effort: float = 30_000.0,
               dropout_threshold: int = DROPOUT_THRESHOLD,
               workers: int = 1) -> Table1Result:
    """Regenerate Table I."""
    record = run_experiment(
        "table1",
        {
            "line_sizes": list(line_sizes),
            "probing_rounds": list(probing_rounds),
            "runs": runs,
            "seed": seed,
            "max_simulated_effort": max_simulated_effort,
            "dropout_threshold": dropout_threshold,
        },
        workers=workers,
        use_cache=False,
    )
    return table1_result_from_record(record)


# ----------------------------------------------------------------------
# Table II
# ----------------------------------------------------------------------

@dataclass
class Table2Result:
    """Both rows of Table II."""

    reports: List[ProbeReport] = field(default_factory=list)

    def probed_round(self, platform: str, frequency_hz: float) -> int:
        """Look up one cell."""
        for report in self.reports:
            if (report.platform == platform
                    and report.frequency_hz == frequency_hz):
                return report.probed_round
        raise KeyError((platform, frequency_hz))

    def rows(self) -> List[List[str]]:
        """Render as the paper lays it out."""
        platforms = []
        for report in self.reports:
            if report.platform not in platforms:
                platforms.append(report.platform)
        frequencies = sorted({r.frequency_hz for r in self.reports})
        return [
            [platform] + [
                str(self.probed_round(platform, f)) for f in frequencies
            ]
            for platform in platforms
        ]


def table2_result_from_record(record: Dict[str, Any]) -> Table2Result:
    """Typed view of an engine ``table2`` record."""
    result = Table2Result()
    for cell in record["cells"]:
        result.reports.append(ProbeReport(
            platform=cell["cell"]["platform"],
            frequency_hz=cell["cell"]["frequency_mhz"] * 1e6,
            probed_round=cell["probed_round"],
            probe_time_s=cell["probe_time_s"],
            round_duration_s=cell["round_duration_s"],
            probe_latency_s=cell["probe_latency_s"],
        ))
    return result


def run_table2(frequencies: Sequence[float] = PAPER_FREQUENCIES_HZ,
               workers: int = 1) -> Table2Result:
    """Regenerate Table II on the simulated platforms."""
    record = run_experiment(
        "table2",
        {"frequencies_mhz": [int(f / 1e6) for f in frequencies]},
        workers=workers,
        use_cache=False,
    )
    return table2_result_from_record(record)


# ----------------------------------------------------------------------
# Full key recovery (headline result)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FullKeyResultSummary:
    """Aggregated full-key recovery statistics."""

    runs: int
    all_recovered: bool
    encryptions: Summary


def run_full_key(runs: int = 3, seed: int = 0,
                 config: Optional[AttackConfig] = None,
                 workers: int = 1) -> FullKeyResultSummary:
    """Run complete 128-bit recoveries and summarise the effort."""
    base = config if config is not None else AttackConfig()
    if base.layout != TableLayout():
        raise ValueError(
            "the engine's full_key experiment uses the default table "
            "layout; run GrinchAttack directly for custom layouts"
        )
    record = run_experiment(
        "full_key",
        {
            "runs": runs,
            "seed": seed,
            "line_words": base.geometry.line_words,
            "probing_round": base.probing_round,
            "use_flush": base.use_flush,
            "probe_strategy": base.probe_strategy,
            "max_encryptions_per_segment": base.max_encryptions_per_segment,
            "max_total_encryptions": base.max_total_encryptions or 0,
        },
        workers=workers,
        use_cache=False,
    )
    cell = record["cells"][0]
    return FullKeyResultSummary(
        runs=runs,
        all_recovered=cell["all_recovered"],
        encryptions=Summary.of(
            [float(t["encryptions"]) for t in cell["trials"]]
        ),
    )


# ----------------------------------------------------------------------
# Ablations
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ProbeAblationRow:
    """Effort of one probing primitive."""

    strategy: str
    encryptions: float
    recovered: bool


def run_probe_strategy_ablation(seed: int = 0, runs: int = 2,
                                workers: int = 1
                                ) -> List[ProbeAblationRow]:
    """Compare Flush+Reload and Prime+Probe on the round-1 attack (E6).

    Prime+Probe cannot flush mid-encryption (it observes rounds 1..N)
    and reports at set granularity where the PermBits table interferes,
    so it needs more encryptions — the paper's reasoning for choosing
    Flush+Reload.
    """
    record = run_experiment(
        "probe_ablation", {"seed": seed, "runs": runs},
        workers=workers, use_cache=False,
    )
    return [
        ProbeAblationRow(
            strategy=cell["cell"]["strategy"],
            encryptions=cell["encryptions"],
            recovered=cell["recovered"],
        )
        for cell in record["cells"]
    ]


@dataclass(frozen=True)
class NoiseSweepRow:
    """Attack effort under one co-runner noise level."""

    touch_probability: float
    monitored_touches: int
    encryptions: float
    recovered: bool


def run_noise_sweep(levels: Sequence[Tuple[float, int]] = (
        (0.0, 0), (0.2, 1), (0.5, 2), (0.8, 4)),
        runs: int = 2, seed: int = 5,
        workers: int = 1) -> List[NoiseSweepRow]:
    """Effort of the first-round attack vs. co-runner noise (E9).

    Quantifies Section IV-B1's qualitative statement that "the
    efficiency of the attack depends on the amount of noise (e.g.,
    multiple processes disputing the processor)".  Noise only *adds*
    lines to each observation, so recovery stays exact — the cost is
    slower elimination.
    """
    record = run_experiment(
        "noise_sweep",
        {"levels": [list(level) for level in levels],
         "runs": runs, "seed": seed},
        workers=workers, use_cache=False,
    )
    return [
        NoiseSweepRow(
            touch_probability=cell["cell"]["touch_probability"],
            monitored_touches=cell["cell"]["monitored_touches"],
            encryptions=cell["encryptions"],
            recovered=cell["recovered"],
        )
        for cell in record["cells"]
    ]


@dataclass(frozen=True)
class TheoryValidationRow:
    """Analytic prediction vs. Monte-Carlo measurement (E7)."""

    line_words: int
    probing_round: int
    predicted: float
    measured: float

    @property
    def relative_error(self) -> float:
        """``|predicted - measured| / measured``."""
        return abs(self.predicted - self.measured) / self.measured


def validate_theory(cases: Sequence[Tuple[int, int]] = ((1, 1), (1, 2),
                                                        (1, 3), (2, 1)),
                    runs: int = 5, seed: int = 3,
                    workers: int = 1) -> List[TheoryValidationRow]:
    """Check the analytic effort model against simulation (E7)."""
    record = run_experiment(
        "theory_validation",
        {"cases": [list(case) for case in cases],
         "runs": runs, "seed": seed},
        workers=workers, use_cache=False,
    )
    return [
        TheoryValidationRow(
            line_words=cell["cell"]["line_words"],
            probing_round=cell["cell"]["probing_round"],
            predicted=cell["predicted"],
            measured=cell["measured"],
        )
        for cell in record["cells"]
    ]
