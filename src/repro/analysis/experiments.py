"""Experiment runners regenerating every table and figure of the paper.

* :func:`run_figure3`  — Fig. 3: encryptions to break the first GIFT
  round vs. cache probing round, with and without flush.
* :func:`run_table1`   — Table I: the same effort across cache line
  sizes of 1/2/4/8 words, with the paper's >1M drop-out rule.
* :func:`run_table2`   — Table II: the round each platform actually
  probes at 10/25/50 MHz.
* :func:`run_full_key` — the headline "full 128-bit key in under ~400
  encryptions" experiment.
* :func:`run_probe_strategy_ablation` / :func:`validate_theory` — the
  two ablations registered in DESIGN.md (E6, E7).

Monte-Carlo cells whose *expected* effort exceeds ``max_simulated_effort``
are filled from the analytic model instead (the model is validated
against simulation by E7), so the default harness stays fast; passing a
large ``max_simulated_effort`` reproduces everything by brute force.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..cache.geometry import CacheGeometry
from ..core.attack import GrinchAttack
from ..core.config import AttackConfig
from ..core.errors import BudgetExceeded
from ..gift.lut import TracedGift64
from ..soc.clock import PAPER_FREQUENCIES_HZ, ClockDomain
from ..soc.platform import MPSoC, ProbeReport, SingleCoreSoC
from .statistics import Summary
from .theory import expected_first_round_effort

#: Paper's drop-out threshold for Table I.
DROPOUT_THRESHOLD: int = 1_000_000


def _first_round_encryptions(seed: int, config: AttackConfig) -> int:
    """One Monte-Carlo sample: encryptions to attack round 1."""
    rng = random.Random(seed)
    victim = TracedGift64(rng.getrandbits(128), layout=config.layout)
    attack = GrinchAttack(victim, config)
    return attack.attack_first_round().encryptions


# ----------------------------------------------------------------------
# Figure 3
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Figure3Point:
    """One bar of Fig. 3."""

    probing_round: int
    use_flush: bool
    encryptions: float
    simulated: bool
    summary: Optional[Summary] = None


@dataclass
class Figure3Result:
    """Both series of Fig. 3."""

    points: List[Figure3Point] = field(default_factory=list)

    def series(self, use_flush: bool) -> List[Figure3Point]:
        """One series, ordered by probing round."""
        return sorted(
            (p for p in self.points if p.use_flush == use_flush),
            key=lambda p: p.probing_round,
        )


def run_figure3(probing_rounds: Sequence[int] = tuple(range(1, 11)),
                runs: int = 3,
                seed: int = 0,
                max_simulated_effort: float = 30_000.0) -> Figure3Result:
    """Regenerate Fig. 3 (line size fixed at the default 1 word)."""
    if runs < 1:
        raise ValueError(f"runs must be positive, got {runs}")
    result = Figure3Result()
    for use_flush in (True, False):
        for probing_round in probing_rounds:
            expected = expected_first_round_effort(
                line_words=1, probing_round=probing_round,
                use_flush=use_flush,
            )
            if expected <= max_simulated_effort:
                config = AttackConfig(
                    probing_round=probing_round,
                    use_flush=use_flush,
                    seed=seed,
                    max_total_encryptions=None,
                )
                samples = [
                    float(_first_round_encryptions(
                        seed * 1000 + probing_round * 10 + run, config
                    ))
                    for run in range(runs)
                ]
                summary = Summary.of(samples)
                result.points.append(
                    Figure3Point(
                        probing_round=probing_round,
                        use_flush=use_flush,
                        encryptions=summary.mean,
                        simulated=True,
                        summary=summary,
                    )
                )
            else:
                result.points.append(
                    Figure3Point(
                        probing_round=probing_round,
                        use_flush=use_flush,
                        encryptions=expected,
                        simulated=False,
                    )
                )
    return result


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Table1Cell:
    """One cell of Table I."""

    line_words: int
    probing_round: int
    encryptions: Optional[float]
    dropped_out: bool
    simulated: bool

    def render(self) -> str:
        """Paper-style cell text (``>1M`` for drop-outs)."""
        if self.dropped_out:
            return ">1M"
        value = f"{self.encryptions:,.0f}"
        return value if self.simulated else f"~{value}"


@dataclass
class Table1Result:
    """All cells of Table I."""

    cells: List[Table1Cell] = field(default_factory=list)

    def cell(self, line_words: int, probing_round: int) -> Table1Cell:
        """Look up one cell."""
        for candidate in self.cells:
            if (candidate.line_words == line_words
                    and candidate.probing_round == probing_round):
                return candidate
        raise KeyError((line_words, probing_round))

    def rows(self) -> List[List[str]]:
        """Render as the paper lays it out (line sizes x probing rounds)."""
        line_sizes = sorted({c.line_words for c in self.cells})
        rounds = sorted({c.probing_round for c in self.cells})
        rendered = []
        for line_words in line_sizes:
            label = f"{line_words} Word" + ("s" if line_words > 1 else "")
            rendered.append(
                [label] + [self.cell(line_words, r).render() for r in rounds]
            )
        return rendered


def run_table1(line_sizes: Sequence[int] = (1, 2, 4, 8),
               probing_rounds: Sequence[int] = tuple(range(1, 6)),
               runs: int = 2,
               seed: int = 1,
               max_simulated_effort: float = 30_000.0,
               dropout_threshold: int = DROPOUT_THRESHOLD) -> Table1Result:
    """Regenerate Table I."""
    if runs < 1:
        raise ValueError(f"runs must be positive, got {runs}")
    result = Table1Result()
    for line_words in line_sizes:
        for probing_round in probing_rounds:
            expected = expected_first_round_effort(
                line_words=line_words, probing_round=probing_round,
                use_flush=True,
            )
            if expected > dropout_threshold:
                cell = Table1Cell(
                    line_words=line_words, probing_round=probing_round,
                    encryptions=None, dropped_out=True, simulated=False,
                )
            elif expected <= max_simulated_effort:
                config = AttackConfig(
                    geometry=CacheGeometry(line_words=line_words),
                    probing_round=probing_round,
                    use_flush=True,
                    seed=seed,
                    max_total_encryptions=dropout_threshold,
                )
                try:
                    samples = [
                        float(_first_round_encryptions(
                            seed * 7919 + line_words * 101
                            + probing_round * 13 + run,
                            config,
                        ))
                        for run in range(runs)
                    ]
                except BudgetExceeded:
                    samples = []
                if samples:
                    cell = Table1Cell(
                        line_words=line_words, probing_round=probing_round,
                        encryptions=Summary.of(samples).mean,
                        dropped_out=False, simulated=True,
                    )
                else:
                    cell = Table1Cell(
                        line_words=line_words, probing_round=probing_round,
                        encryptions=None, dropped_out=True, simulated=True,
                    )
            else:
                cell = Table1Cell(
                    line_words=line_words, probing_round=probing_round,
                    encryptions=expected, dropped_out=False, simulated=False,
                )
            result.cells.append(cell)
    return result


# ----------------------------------------------------------------------
# Table II
# ----------------------------------------------------------------------

@dataclass
class Table2Result:
    """Both rows of Table II."""

    reports: List[ProbeReport] = field(default_factory=list)

    def probed_round(self, platform: str, frequency_hz: float) -> int:
        """Look up one cell."""
        for report in self.reports:
            if (report.platform == platform
                    and report.frequency_hz == frequency_hz):
                return report.probed_round
        raise KeyError((platform, frequency_hz))

    def rows(self) -> List[List[str]]:
        """Render as the paper lays it out."""
        platforms = []
        for report in self.reports:
            if report.platform not in platforms:
                platforms.append(report.platform)
        frequencies = sorted({r.frequency_hz for r in self.reports})
        return [
            [platform] + [
                str(self.probed_round(platform, f)) for f in frequencies
            ]
            for platform in platforms
        ]


def run_table2(frequencies: Sequence[float] = PAPER_FREQUENCIES_HZ
               ) -> Table2Result:
    """Regenerate Table II on the simulated platforms."""
    result = Table2Result()
    for frequency in frequencies:
        clock = ClockDomain(frequency)
        result.reports.append(SingleCoreSoC(clock).run_attack_window())
    for frequency in frequencies:
        clock = ClockDomain(frequency)
        result.reports.append(MPSoC(clock).run_attack_window())
    return result


# ----------------------------------------------------------------------
# Full key recovery (headline result)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FullKeyResultSummary:
    """Aggregated full-key recovery statistics."""

    runs: int
    all_recovered: bool
    encryptions: Summary


def run_full_key(runs: int = 3, seed: int = 0,
                 config: Optional[AttackConfig] = None
                 ) -> FullKeyResultSummary:
    """Run complete 128-bit recoveries and summarise the effort."""
    if runs < 1:
        raise ValueError(f"runs must be positive, got {runs}")
    base = config if config is not None else AttackConfig()
    totals = []
    all_ok = True
    for run in range(runs):
        rng = random.Random(seed * 31 + run)
        key = rng.getrandbits(128)
        victim = TracedGift64(key, layout=base.layout)
        attack_config = AttackConfig(
            geometry=base.geometry, layout=base.layout,
            probing_round=base.probing_round, use_flush=base.use_flush,
            probe_strategy=base.probe_strategy,
            max_encryptions_per_segment=base.max_encryptions_per_segment,
            max_total_encryptions=base.max_total_encryptions,
            seed=seed * 101 + run,
        )
        result = GrinchAttack(victim, attack_config).recover_master_key()
        all_ok = all_ok and result.master_key == key
        totals.append(float(result.total_encryptions))
    return FullKeyResultSummary(
        runs=runs,
        all_recovered=all_ok,
        encryptions=Summary.of(totals),
    )


# ----------------------------------------------------------------------
# Ablations
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ProbeAblationRow:
    """Effort of one probing primitive."""

    strategy: str
    encryptions: float
    recovered: bool


def run_probe_strategy_ablation(seed: int = 0, runs: int = 2
                                ) -> List[ProbeAblationRow]:
    """Compare Flush+Reload and Prime+Probe on the round-1 attack (E6).

    Prime+Probe cannot flush mid-encryption (it observes rounds 1..N)
    and reports at set granularity where the PermBits table interferes,
    so it needs more encryptions — the paper's reasoning for choosing
    Flush+Reload.
    """
    rows = []
    for strategy in ("flush_reload", "prime_probe"):
        samples = []
        recovered = True
        for run in range(runs):
            config = AttackConfig(
                probe_strategy=strategy,
                stall_window=200 if strategy == "prime_probe" else 0,
                seed=seed + run,
                max_total_encryptions=None,
            )
            rng = random.Random(seed * 17 + run)
            victim = TracedGift64(rng.getrandbits(128))
            attack = GrinchAttack(victim, config)
            outcome = attack.attack_first_round()
            samples.append(float(outcome.encryptions))
            recovered = recovered and outcome.recovered_bits >= 16
        rows.append(
            ProbeAblationRow(
                strategy=strategy,
                encryptions=Summary.of(samples).mean,
                recovered=recovered,
            )
        )
    return rows


@dataclass(frozen=True)
class NoiseSweepRow:
    """Attack effort under one co-runner noise level."""

    touch_probability: float
    monitored_touches: int
    encryptions: float
    recovered: bool


def run_noise_sweep(levels: Sequence[Tuple[float, int]] = (
        (0.0, 0), (0.2, 1), (0.5, 2), (0.8, 4)),
        runs: int = 2, seed: int = 5) -> List[NoiseSweepRow]:
    """Effort of the first-round attack vs. co-runner noise.

    Quantifies Section IV-B1's qualitative statement that "the
    efficiency of the attack depends on the amount of noise (e.g.,
    multiple processes disputing the processor)".  Noise only *adds*
    lines to each observation, so recovery stays exact — the cost is
    slower elimination.
    """
    from ..core.noise import NoiseModel

    rows = []
    for touch_probability, monitored_touches in levels:
        samples = []
        recovered = True
        for run in range(runs):
            config = AttackConfig(
                seed=seed + run,
                noise=NoiseModel(
                    touch_probability=touch_probability,
                    monitored_touches=monitored_touches,
                ),
                max_total_encryptions=None,
            )
            rng = random.Random(seed * 23 + run)
            victim = TracedGift64(rng.getrandbits(128))
            attack = GrinchAttack(victim, config)
            outcome = attack.attack_first_round()
            samples.append(float(outcome.encryptions))
            recovered = recovered and outcome.recovered_bits == 32
        rows.append(
            NoiseSweepRow(
                touch_probability=touch_probability,
                monitored_touches=monitored_touches,
                encryptions=Summary.of(samples).mean,
                recovered=recovered,
            )
        )
    return rows


@dataclass(frozen=True)
class TheoryValidationRow:
    """Analytic prediction vs. Monte-Carlo measurement (E7)."""

    line_words: int
    probing_round: int
    predicted: float
    measured: float

    @property
    def relative_error(self) -> float:
        """``|predicted - measured| / measured``."""
        return abs(self.predicted - self.measured) / self.measured


def validate_theory(cases: Sequence[Tuple[int, int]] = ((1, 1), (1, 2),
                                                        (1, 3), (2, 1)),
                    runs: int = 5, seed: int = 3
                    ) -> List[TheoryValidationRow]:
    """Check the analytic effort model against simulation."""
    rows = []
    for line_words, probing_round in cases:
        config = AttackConfig(
            geometry=CacheGeometry(line_words=line_words),
            probing_round=probing_round,
            seed=seed,
            max_total_encryptions=None,
        )
        samples = [
            float(_first_round_encryptions(seed * 97 + run, config))
            for run in range(runs)
        ]
        rows.append(
            TheoryValidationRow(
                line_words=line_words,
                probing_round=probing_round,
                predicted=expected_first_round_effort(
                    line_words, probing_round, use_flush=True
                ),
                measured=Summary.of(samples).mean,
            )
        )
    return rows
