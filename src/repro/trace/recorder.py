"""Recording: capture a live run as a trace, without perturbing it.

Two capture points cover the observer's two execution paths:

* :class:`RecordingVictim` wraps the victim itself and records every
  protocol call — ``sbox_indices_by_round`` (the fast path's signal,
  stored packed), ``encrypt_traced`` (the full path's tagged address
  stream), and ``encrypt`` (the known-pair verification channel).
  This is the richest capture and the one the recording CLI uses.
* :class:`RecordingTransport` wraps any L2 ``CacheTransport`` (by
  duck-typing its surface — L0 never imports the channel package) and
  records the substrate-level victim address stream, classified
  against the header's :class:`~repro.targets.layout.TableLayout`.
  This is what a hardware probe would see: untagged addresses, window
  boundaries at ``cold()`` resets.

Both wrappers are pure pass-throughs: they consume **no randomness**
and change **no return values**, so a recorded run is bit-identical to
an unrecorded one (the seed-0 GIFT-64 full-key recovery still takes
exactly 464 encryptions while being recorded — a pinned test).

One :class:`TraceRecorder` accepts either capture point but not both
at once: a victim-level and a transport-level recorder observing the
same run would write every access twice.
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..staticcheck.secrets import secret_attributes
from ..targets.trace import EncryptionTrace, MemoryAccess
from .errors import TraceError
from .format import (
    KIND_ACCESSES,
    KIND_INDICES,
    KIND_PAIR,
    EncryptionRecord,
    TraceFile,
    TraceHeader,
    classify_address,
)


@secret_attributes("records")
class TraceRecorder:
    """Accumulates :class:`EncryptionRecord` objects during a live run.

    The records carry key-dependent S-box indices/addresses, hence the
    secret-attribute declaration: a trace file is as sensitive as the
    observations it stores.
    """

    def __init__(self, header: TraceHeader) -> None:
        self.header = header
        self.records: List[EncryptionRecord] = []
        self._sources: set = set()
        self._open_accesses: Optional[List[MemoryAccess]] = None

    # -- capture-point bookkeeping ------------------------------------

    def attach(self, source: str) -> None:
        """Claim a capture point (``"victim"`` or ``"transport"``)."""
        if source not in ("victim", "transport"):
            raise TraceError(f"unknown capture source {source!r}")
        other = "transport" if source == "victim" else "victim"
        if other in self._sources:
            raise TraceError(
                "one recorder cannot capture at both the victim and the "
                "transport level: the same accesses would be recorded "
                "twice (use two recorders if you really want both views)"
            )
        self._sources.add(source)

    # -- record intake -------------------------------------------------

    def record(self, record: EncryptionRecord) -> None:
        """Append one finished record (closing any open raw window)."""
        self.close_window()
        self.records.append(record)

    def append_raw_access(self, access: MemoryAccess) -> None:
        """Append one substrate-level access to the open raw window
        (opening one if needed) — used by :class:`RecordingTransport`."""
        if self._open_accesses is None:
            self._open_accesses = []
        self._open_accesses.append(access)

    def close_window(self, rounds_visible: int = 0) -> None:
        """Close the open raw-access window into an ``accesses`` record."""
        if self._open_accesses is None:
            return
        accesses = tuple(self._open_accesses)
        self._open_accesses = None
        self.records.append(EncryptionRecord(
            kind=KIND_ACCESSES, plaintext=None, ciphertext=None,
            rounds_visible=rounds_visible, accesses=accesses,
        ))

    # -- results -------------------------------------------------------

    @property
    def windows(self) -> int:
        """Observation windows recorded so far."""
        open_window = 1 if self._open_accesses is not None else 0
        return open_window + sum(
            1 for record in self.records if record.is_window
        )

    def to_trace_file(self) -> TraceFile:
        """Snapshot the recording as an immutable :class:`TraceFile`."""
        self.close_window()
        return TraceFile(header=self.header, records=tuple(self.records))


@secret_attributes("inner")
class RecordingVictim:
    """A TracedVictim wrapper that records every protocol call.

    Implements the same duck-typed surface as the victim it wraps
    (width/rounds/layout plus the three observation methods); every
    other attribute (``attack_target``, ``probe_round_offset``,
    countermeasure knobs, ...) is delegated untouched, so target
    resolution and the observer's capability probing see the wrapped
    victim exactly.
    """

    def __init__(self, victim: Any, recorder: TraceRecorder) -> None:
        recorder.attach("victim")
        # object.__setattr__ not needed (plain class), but keep the
        # underscore name out of __getattr__'s delegation loop.
        self.inner = victim
        self.recorder = recorder

    def __getattr__(self, name: str) -> Any:
        if name in ("inner", "recorder"):
            raise AttributeError(name)
        return getattr(self.inner, name)

    @property
    def width(self) -> int:
        return self.inner.width

    @property
    def rounds(self) -> int:
        return self.inner.rounds

    @property
    def layout(self) -> Any:
        return self.inner.layout

    def encrypt(self, plaintext: int) -> int:
        ciphertext = self.inner.encrypt(plaintext)
        self.recorder.record(EncryptionRecord(
            kind=KIND_PAIR, plaintext=plaintext, ciphertext=ciphertext,
        ))
        return ciphertext

    def encrypt_traced(self, plaintext: int,
                       max_rounds: Optional[int] = None
                       ) -> EncryptionTrace:
        trace = self.inner.encrypt_traced(plaintext,
                                          max_rounds=max_rounds)
        rounds_visible = (self.inner.rounds if max_rounds is None
                          else min(max_rounds, self.inner.rounds))
        self.recorder.record(EncryptionRecord(
            kind=KIND_ACCESSES, plaintext=plaintext,
            ciphertext=trace.ciphertext, rounds_visible=rounds_visible,
            accesses=tuple(trace.accesses),
        ))
        return trace

    def sbox_indices_by_round(self, plaintext: int,
                              max_rounds: int) -> Any:
        rows = self.inner.sbox_indices_by_round(plaintext, max_rounds)
        self.recorder.record(EncryptionRecord(
            kind=KIND_INDICES, plaintext=plaintext, ciphertext=None,
            rounds_visible=len(rows),
            indices=tuple(tuple(row) for row in rows),
        ))
        return rows


@secret_attributes("recorder")
class RecordingTransport:
    """Wraps any L2 ``CacheTransport``; records victim-side addresses.

    Duck-types the transport surface (``access`` / ``flush_line`` /
    ``victim_access`` / ``cold`` / ``check_geometry`` / ``line_bytes``
    plus the capability flags) so it composes into the observer like
    the transport it wraps — the channel package is never imported.
    Attacker-side traffic (``access``/``flush_line``) is *not*
    recorded: the trace captures what the victim leaked, not how the
    probe went looking for it.

    Window boundaries at the substrate level are inferred from the
    probe cycle: a victim access that follows an attacker *reload*
    (``access``) starts a new window — flushes do not count, so a
    mid-encryption flush never splits its window.  That matches every
    reload-style probe loop (Flush+Reload, Prime+Probe); for pure
    flush-latency probing (Flush+Flush's full path) call
    :meth:`mark_window` explicitly, or record at the victim level.
    """

    def __init__(self, inner: Any, recorder: TraceRecorder,
                 *, _attached: bool = False) -> None:
        if not _attached:
            recorder.attach("transport")
        self.inner = inner
        self.recorder = recorder
        self._probe_seen = False

    # -- capability flags (delegated, not copied) ----------------------

    @property
    def supports_prime_probe(self) -> bool:
        return self.inner.supports_prime_probe

    @property
    def supports_fast_path(self) -> bool:
        return self.inner.supports_fast_path

    @property
    def noise_via_victim(self) -> bool:
        return self.inner.noise_via_victim

    @property
    def probe_on_empty_window(self) -> bool:
        return self.inner.probe_on_empty_window

    @property
    def line_bytes(self) -> int:
        return self.inner.line_bytes

    # -- transport surface ---------------------------------------------

    def access(self, address: int) -> bool:
        self._probe_seen = True
        return self.inner.access(address)

    def flush_line(self, address: int) -> bool:
        return self.inner.flush_line(address)

    def victim_access(self, address: int) -> bool:
        if self._probe_seen:
            self.mark_window()
        header = self.recorder.header
        table, segment, index = classify_address(
            header.layout, address, header.segments
        )
        self.recorder.append_raw_access(MemoryAccess(
            address=address, round_index=0, segment=segment,
            table=table, index=index,
        ))
        return self.inner.victim_access(address)

    def mark_window(self) -> None:
        """Explicit window boundary: close the open raw window."""
        self.recorder.close_window()
        self._probe_seen = False

    def cold(self) -> "RecordingTransport":
        # A cold restart is a window boundary: close the raw window so
        # per-window records line up with the observer's resets.
        self.recorder.close_window()
        return RecordingTransport(self.inner.cold(), self.recorder,
                                  _attached=True)

    def check_geometry(self, geometry: Any) -> None:
        self.inner.check_geometry(geometry)
