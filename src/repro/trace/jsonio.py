"""The JSONL twin of the binary trace encoding.

One JSON object per line: the first line is the header (tagged with
``"format": "grinch-trace"`` and the format version), every following
line is one :class:`~repro.trace.format.EncryptionRecord` in execution
order.  The encoding is canonical (sorted keys, no whitespace), so
``binary -> JSONL -> binary`` is byte-for-byte lossless and
``JSONL -> binary -> JSONL`` reproduces the exact text — the CI
round-trip job asserts both directions.

Plaintext/ciphertext are fixed-width hex strings (human-greppable, and
width-exact so the round trip is lossless for any state width).  The
access rows are compact arrays ``[address, round_index, segment,
table_index, index]`` against the header's table-name table, exactly
like the binary encoding.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..cache.geometry import CacheGeometry
from ..targets.layout import TableLayout
from ..targets.trace import MemoryAccess
from .errors import TraceFormatError, TraceVersionError
from .format import (
    FORMAT_NAME,
    FORMAT_VERSION,
    KIND_ACCESSES,
    KIND_INDICES,
    EncryptionRecord,
    TraceFile,
    TraceHeader,
)

#: Preferred file suffix of the JSONL encoding.
JSONL_SUFFIX = ".jsonl"


def _canonical(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _hex(value: Optional[int], width: int) -> Optional[str]:
    if value is None:
        return None
    return f"{value:0{(width + 3) // 4}x}"


def _unhex(text: Optional[Any], what: str) -> Optional[int]:
    if text is None:
        return None
    if not isinstance(text, str):
        raise TraceFormatError(f"{what} must be a hex string or null")
    try:
        return int(text, 16)
    except ValueError:
        raise TraceFormatError(
            f"{what} is not valid hexadecimal: {text!r}"
        ) from None


def _header_object(header: TraceHeader) -> Dict[str, Any]:
    geometry = header.geometry
    layout = header.layout
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "target": header.target,
        "width": header.width,
        "rounds": header.rounds,
        "seed": header.seed,
        "scope": header.scope,
        "probe_round_offset": header.probe_round_offset,
        "geometry": {
            "total_lines": geometry.total_lines,
            "ways": geometry.ways,
            "line_words": geometry.line_words,
            "word_bytes": geometry.word_bytes,
        },
        "geometry_preset": header.geometry_preset,
        "layout": {
            "sbox_base": layout.sbox_base,
            "sbox_entry_bytes": layout.sbox_entry_bytes,
            "perm_base": layout.perm_base,
            "perm_entry_bytes": layout.perm_entry_bytes,
        },
        "probing_round": header.probing_round,
        "use_flush": header.use_flush,
        "probe_strategy": header.probe_strategy,
        "tables": list(header.tables),
        "meta": header.meta,
    }


def _record_object(record: EncryptionRecord, header: TraceHeader
                   ) -> Dict[str, Any]:
    obj: Dict[str, Any] = {
        "kind": record.kind,
        "plaintext": _hex(record.plaintext, header.width),
        "ciphertext": _hex(record.ciphertext, header.width),
        "rounds_visible": record.rounds_visible,
    }
    if record.kind == KIND_ACCESSES:
        obj["accesses"] = [
            [access.address, access.round_index, access.segment,
             header.table_index(access.table), access.index]
            for access in record.accesses
        ]
    elif record.kind == KIND_INDICES:
        obj["indices"] = [list(row) for row in record.indices]
    return obj


def dump_jsonl(trace: TraceFile) -> str:
    """Serialize ``trace`` as canonical JSON lines (trailing newline)."""
    lines = [_canonical(_header_object(trace.header))]
    lines.extend(
        _canonical(_record_object(record, trace.header))
        for record in trace.records
    )
    return "\n".join(lines) + "\n"


def write_jsonl(trace: TraceFile, path: Union[str, Path]) -> int:
    """Write the JSONL encoding to ``path``; returns the byte count."""
    data = dump_jsonl(trace).encode("utf-8")
    Path(path).write_bytes(data)
    return len(data)


def _require(obj: Dict[str, Any], key: str, what: str) -> Any:
    if key not in obj:
        raise TraceFormatError(f"{what} is missing the {key!r} field")
    return obj[key]


def _parse_header(obj: Dict[str, Any]) -> TraceHeader:
    if not isinstance(obj, dict):
        raise TraceFormatError("header line is not a JSON object")
    if obj.get("format") != FORMAT_NAME:
        raise TraceFormatError(
            f"header does not declare format {FORMAT_NAME!r} "
            f"(got {obj.get('format')!r})"
        )
    version = obj.get("version")
    if version != FORMAT_VERSION:
        raise TraceVersionError(
            f"trace format version {version} is not supported "
            f"(this reader speaks version {FORMAT_VERSION})"
        )
    geometry = _require(obj, "geometry", "header")
    layout = _require(obj, "layout", "header")
    try:
        return TraceHeader(
            target=_require(obj, "target", "header"),
            width=_require(obj, "width", "header"),
            rounds=_require(obj, "rounds", "header"),
            seed=obj.get("seed"),
            scope=_require(obj, "scope", "header"),
            probe_round_offset=_require(obj, "probe_round_offset",
                                        "header"),
            geometry=CacheGeometry(**geometry),
            layout=TableLayout(**layout),
            probing_round=_require(obj, "probing_round", "header"),
            use_flush=_require(obj, "use_flush", "header"),
            probe_strategy=_require(obj, "probe_strategy", "header"),
            tables=tuple(_require(obj, "tables", "header")),
            meta=obj.get("meta", {}),
        )
    except (TypeError, ValueError) as error:
        raise TraceFormatError(f"corrupt header: {error}") from None


def _parse_record(obj: Dict[str, Any], header: TraceHeader,
                  lineno: int) -> EncryptionRecord:
    what = f"record on line {lineno}"
    if not isinstance(obj, dict):
        raise TraceFormatError(f"{what} is not a JSON object")
    kind = _require(obj, "kind", what)
    accesses: Tuple[MemoryAccess, ...] = ()
    indices: Tuple[Tuple[int, ...], ...] = ()
    if kind == KIND_ACCESSES:
        rows = _require(obj, "accesses", what)
        items: List[MemoryAccess] = []
        for row in rows:
            if not isinstance(row, list) or len(row) != 5:
                raise TraceFormatError(
                    f"{what}: access rows must be 5-element arrays"
                )
            address, round_index, segment, table_idx, index = row
            if not isinstance(table_idx, int) \
                    or not 0 <= table_idx < len(header.tables):
                raise TraceFormatError(
                    f"{what}: table index {table_idx!r} out of range"
                )
            items.append(MemoryAccess(
                address=address, round_index=round_index,
                segment=segment, table=header.tables[table_idx],
                index=index,
            ))
        accesses = tuple(items)
    elif kind == KIND_INDICES:
        indices = tuple(
            tuple(row) for row in _require(obj, "indices", what)
        )
    try:
        return EncryptionRecord(
            kind=kind,
            plaintext=_unhex(obj.get("plaintext"), f"{what} plaintext"),
            ciphertext=_unhex(obj.get("ciphertext"),
                              f"{what} ciphertext"),
            rounds_visible=_require(obj, "rounds_visible", what),
            accesses=accesses,
            indices=indices,
        )
    except (TypeError, ValueError) as error:
        raise TraceFormatError(f"{what}: {error}") from None


def load_jsonl(text: str) -> TraceFile:
    """Decode JSONL text; raises typed errors on any malformation."""
    lines = text.splitlines()
    if not lines or not lines[0].strip():
        raise TraceFormatError("empty JSONL trace (no header line)")
    parsed: List[Tuple[int, Any]] = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            parsed.append((lineno, json.loads(line)))
        except json.JSONDecodeError as error:
            raise TraceFormatError(
                f"line {lineno} is not valid JSON: {error}"
            ) from None
    header = _parse_header(parsed[0][1])
    records = tuple(
        _parse_record(obj, header, lineno) for lineno, obj in parsed[1:]
    )
    try:
        return TraceFile(header=header, records=records)
    except ValueError as error:
        raise TraceFormatError(str(error)) from None


def read_jsonl(path: Union[str, Path]) -> TraceFile:
    """Read and decode a JSONL trace file."""
    return load_jsonl(Path(path).read_text(encoding="utf-8"))
