"""Typed errors of the L0 trace layer.

Every failure mode of the trace subsystem raises a subclass of
:class:`TraceError`, so callers can distinguish *format* problems (a
truncated or corrupt file, a version we cannot read) from *replay*
problems (the attack asked for something the recording does not
contain) and from *ingestion* problems (a malformed external log).
A short stream is never silently returned: decoding stops with a
:class:`TraceFormatError` the moment the byte stream ends early.
"""

from __future__ import annotations


class TraceError(ValueError):
    """Base class of every trace-layer error.

    Subclasses :class:`ValueError`: every trace failure is ultimately
    a value that cannot be used (a corrupt byte stream, an impossible
    header, a record the replay cannot serve), and the data-model
    validations raise through the same hierarchy.
    """


class TraceFormatError(TraceError):
    """The serialized trace is unreadable: bad magic, corrupt header,
    truncated records, checksum mismatch, or trailing garbage."""


class TraceVersionError(TraceFormatError):
    """The trace declares a format version this reader cannot decode."""


class TraceMismatchError(TraceError):
    """Replay drifted from the recording: the consumer asked for a
    plaintext, kind, or round window the next record does not carry
    (usually a config/seed mismatch between record and replay time)."""


class TraceExhaustedError(TraceError):
    """The replay consumer asked for more records than were recorded."""


class ExternalTraceError(TraceError):
    """An external memory-trace log could not be parsed in strict mode.

    Carries the 1-based line number of the offending input line.
    """

    def __init__(self, message: str, lineno: int = 0) -> None:
        if lineno:
            message = f"line {lineno}: {message}"
        super().__init__(message)
        self.lineno = lineno
