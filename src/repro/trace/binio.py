"""The compact binary trace encoding (``.grtr``).

Little-endian, struct-packed, fully deterministic: encoding the same
:class:`~repro.trace.format.TraceFile` twice yields identical bytes
(the CI corpus job depends on this to detect format or RNG drift by a
plain byte comparison).  Overall layout::

    magic      4s   "GRTR"
    version    u16  FORMAT_VERSION
    flags      u16  reserved (0)
    header     (see _encode_header below)
    count      u32  number of records
    records    count x record
    checksum   u32  CRC-32 of every preceding byte

Strings are ``u16`` length + UTF-8 bytes.  Plaintext/ciphertext are
big-endian integers of ``ceil(width / 8)`` bytes behind a presence
flag.  The two window payloads:

* ``indices`` — ``rounds_visible * segments`` S-box nibbles packed two
  per byte (low nibble first); addresses are reconstructed from the
  header layout on read.
* ``accesses`` — ``u32`` count, then per access ``u64 address``,
  ``u16 round_index`` (0 = untagged), ``i16 segment`` (-1 = untagged),
  ``u8`` table index into the header's table-name table, and
  ``i32 index`` (-1 = unknown).

Every decode failure raises a typed error from
:mod:`repro.trace.errors`: a short buffer can never silently yield a
short stream — truncation anywhere breaks the trailing CRC-32 (or the
in-band length fields) and decoding stops with
:class:`~repro.trace.errors.TraceFormatError`.
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path
from typing import Any, List, Tuple, Union

from ..cache.geometry import CacheGeometry
from ..targets.layout import TableLayout
from ..targets.trace import MemoryAccess
from .errors import TraceFormatError, TraceVersionError
from .format import (
    FORMAT_VERSION,
    KIND_ACCESSES,
    KIND_INDICES,
    KIND_PAIR,
    EncryptionRecord,
    TraceFile,
    TraceHeader,
)

#: File magic of the binary encoding.
MAGIC = b"GRTR"

#: Preferred file suffix of the binary encoding.
BINARY_SUFFIX = ".grtr"

_KIND_CODES = {KIND_PAIR: 0, KIND_ACCESSES: 1, KIND_INDICES: 2}
_KIND_NAMES = {code: kind for kind, code in _KIND_CODES.items()}

_ACCESS = struct.Struct("<QHhBi")


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------

def _pack_str(out: List[bytes], text: str) -> None:
    data = text.encode("utf-8")
    if len(data) > 0xFFFF:
        raise TraceFormatError(f"string field too long ({len(data)} bytes)")
    out.append(struct.pack("<H", len(data)))
    out.append(data)


def _pack_uint(value: int, fmt: str, what: str) -> bytes:
    try:
        return struct.pack(fmt, value)
    except struct.error:
        raise TraceFormatError(
            f"{what} {value} does not fit the binary encoding"
        ) from None


def _pack_block(value: Union[int, None], nbytes: int, what: str
                ) -> List[bytes]:
    if value is None:
        return [b"\x00"]
    if value >= 1 << (8 * nbytes):
        raise TraceFormatError(
            f"{what} 0x{value:x} exceeds the header width"
        )
    return [b"\x01", value.to_bytes(nbytes, "big")]


def _encode_header(header: TraceHeader) -> bytes:
    out: List[bytes] = []
    _pack_str(out, header.target)
    out.append(_pack_uint(header.width, "<H", "width"))
    out.append(_pack_uint(header.rounds, "<H", "rounds"))
    if header.seed is None:
        out.append(struct.pack("<Bq", 0, 0))
    else:
        out.append(b"\x01")
        out.append(_pack_uint(header.seed, "<q", "seed"))
    _pack_str(out, header.scope)
    out.append(_pack_uint(header.probe_round_offset, "<B",
                          "probe_round_offset"))
    geometry = header.geometry
    out.append(_pack_uint(geometry.total_lines, "<I", "total_lines"))
    out.append(_pack_uint(geometry.ways, "<H", "ways"))
    out.append(_pack_uint(geometry.line_words, "<H", "line_words"))
    out.append(_pack_uint(geometry.word_bytes, "<H", "word_bytes"))
    layout = header.layout
    out.append(_pack_uint(layout.sbox_base, "<Q", "sbox_base"))
    out.append(_pack_uint(layout.sbox_entry_bytes, "<I",
                          "sbox_entry_bytes"))
    out.append(_pack_uint(layout.perm_base, "<Q", "perm_base"))
    out.append(_pack_uint(layout.perm_entry_bytes, "<I",
                          "perm_entry_bytes"))
    out.append(_pack_uint(header.probing_round, "<H", "probing_round"))
    out.append(struct.pack("<B", 1 if header.use_flush else 0))
    _pack_str(out, header.probe_strategy)
    if len(header.tables) > 0xFF:
        raise TraceFormatError("too many table names")
    out.append(struct.pack("<B", len(header.tables)))
    for table in header.tables:
        _pack_str(out, table)
    meta = json.dumps(header.meta, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    out.append(struct.pack("<I", len(meta)))
    out.append(meta)
    return b"".join(out)


def _encode_record(record: EncryptionRecord, header: TraceHeader,
                   nbytes: int) -> bytes:
    out: List[bytes] = [struct.pack("<B", _KIND_CODES[record.kind])]
    out.extend(_pack_block(record.plaintext, nbytes, "plaintext"))
    out.extend(_pack_block(record.ciphertext, nbytes, "ciphertext"))
    out.append(_pack_uint(record.rounds_visible, "<H", "rounds_visible"))
    if record.kind == KIND_ACCESSES:
        out.append(struct.pack("<I", len(record.accesses)))
        for access in record.accesses:
            try:
                out.append(_ACCESS.pack(
                    access.address, access.round_index, access.segment,
                    header.table_index(access.table), access.index,
                ))
            except struct.error:
                raise TraceFormatError(
                    f"access {access!r} does not fit the binary encoding"
                ) from None
    elif record.kind == KIND_INDICES:
        nibbles: List[int] = [
            index for row in record.indices for index in row
        ]
        packed = bytearray((len(nibbles) + 1) // 2)
        for position, nibble in enumerate(nibbles):
            if position % 2:
                packed[position // 2] |= nibble << 4
            else:
                packed[position // 2] = nibble
        out.append(bytes(packed))
    return b"".join(out)


def dumps(trace: TraceFile) -> bytes:
    """Serialize ``trace`` to the deterministic binary encoding."""
    nbytes = (trace.header.width + 7) // 8
    out: List[bytes] = [
        MAGIC,
        struct.pack("<HH", FORMAT_VERSION, 0),
        _encode_header(trace.header),
        struct.pack("<I", len(trace.records)),
    ]
    for record in trace.records:
        out.append(_encode_record(record, trace.header, nbytes))
    body = b"".join(out)
    return body + struct.pack("<I", zlib.crc32(body) & 0xFFFFFFFF)


def write_binary(trace: TraceFile, path: Union[str, Path]) -> int:
    """Write the binary encoding to ``path``; returns the byte count."""
    data = dumps(trace)
    Path(path).write_bytes(data)
    return len(data)


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------

class _Reader:
    """Bounds-checked cursor over the raw bytes."""

    __slots__ = ("data", "offset")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.offset = 0

    def take(self, count: int, what: str) -> bytes:
        end = self.offset + count
        if count < 0 or end > len(self.data):
            raise TraceFormatError(
                f"truncated trace: needed {count} bytes for {what} at "
                f"offset {self.offset}, only "
                f"{len(self.data) - self.offset} left"
            )
        chunk = self.data[self.offset:end]
        self.offset = end
        return chunk

    def unpack(self, fmt: str, what: str) -> Tuple[Any, ...]:
        size = struct.calcsize(fmt)
        return struct.unpack(fmt, self.take(size, what))

    def take_str(self, what: str) -> str:
        (length,) = self.unpack("<H", f"{what} length")
        try:
            return self.take(length, what).decode("utf-8")
        except UnicodeDecodeError:
            raise TraceFormatError(f"{what} is not valid UTF-8") from None


def _decode_header(reader: _Reader) -> TraceHeader:
    target = reader.take_str("target name")
    width, rounds = reader.unpack("<HH", "width/rounds")
    seed_flag, seed = reader.unpack("<Bq", "seed")
    scope = reader.take_str("rng scope")
    (probe_round_offset,) = reader.unpack("<B", "probe_round_offset")
    total_lines, ways, line_words, word_bytes = reader.unpack(
        "<IHHH", "geometry")
    sbox_base, sbox_entry, perm_base, perm_entry = reader.unpack(
        "<QIQI", "layout")
    probing_round, use_flush = reader.unpack("<HB", "config")
    probe_strategy = reader.take_str("probe strategy")
    (ntables,) = reader.unpack("<B", "table count")
    tables = tuple(reader.take_str("table name") for _ in range(ntables))
    (meta_len,) = reader.unpack("<I", "meta length")
    meta_raw = reader.take(meta_len, "meta")
    try:
        meta = json.loads(meta_raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise TraceFormatError(f"corrupt header meta: {error}") from None
    try:
        return TraceHeader(
            target=target, width=width, rounds=rounds,
            seed=seed if seed_flag else None, scope=scope,
            probe_round_offset=probe_round_offset,
            geometry=CacheGeometry(total_lines=total_lines, ways=ways,
                                   line_words=line_words,
                                   word_bytes=word_bytes),
            layout=TableLayout(sbox_base=sbox_base,
                               sbox_entry_bytes=sbox_entry,
                               perm_base=perm_base,
                               perm_entry_bytes=perm_entry),
            probing_round=probing_round, use_flush=bool(use_flush),
            probe_strategy=probe_strategy, tables=tables, meta=meta,
        )
    except ValueError as error:
        raise TraceFormatError(f"corrupt header: {error}") from None


def _take_block(reader: _Reader, nbytes: int, what: str
                ) -> Union[int, None]:
    (flag,) = reader.unpack("<B", f"{what} flag")
    if not flag:
        return None
    return int.from_bytes(reader.take(nbytes, what), "big")


def _decode_record(reader: _Reader, header: TraceHeader, nbytes: int,
                   position: int) -> EncryptionRecord:
    what = f"record {position}"
    (code,) = reader.unpack("<B", f"{what} kind")
    kind = _KIND_NAMES.get(code)
    if kind is None:
        raise TraceFormatError(f"{what}: unknown record kind {code}")
    plaintext = _take_block(reader, nbytes, f"{what} plaintext")
    ciphertext = _take_block(reader, nbytes, f"{what} ciphertext")
    (rounds_visible,) = reader.unpack("<H", f"{what} rounds_visible")
    accesses: Tuple[MemoryAccess, ...] = ()
    indices: Tuple[Tuple[int, ...], ...] = ()
    if kind == KIND_ACCESSES:
        (count,) = reader.unpack("<I", f"{what} access count")
        items = []
        for _ in range(count):
            address, round_index, segment, table_idx, index = (
                reader.unpack("<QHhBi", f"{what} access"))
            if table_idx >= len(header.tables):
                raise TraceFormatError(
                    f"{what}: table index {table_idx} out of range "
                    f"({len(header.tables)} tables declared)"
                )
            items.append(MemoryAccess(
                address=address, round_index=round_index,
                segment=segment, table=header.tables[table_idx],
                index=index,
            ))
        accesses = tuple(items)
    elif kind == KIND_INDICES:
        total = rounds_visible * header.segments
        packed = reader.take((total + 1) // 2, f"{what} packed indices")
        nibbles = []
        for position_ in range(total):
            byte = packed[position_ // 2]
            nibbles.append((byte >> 4) if position_ % 2 else (byte & 0xF))
        segments = header.segments
        indices = tuple(
            tuple(nibbles[row * segments:(row + 1) * segments])
            for row in range(rounds_visible)
        )
        if total % 2 and packed and packed[-1] >> 4:
            raise TraceFormatError(
                f"{what}: non-zero padding nibble in packed indices"
            )
    try:
        return EncryptionRecord(
            kind=kind, plaintext=plaintext, ciphertext=ciphertext,
            rounds_visible=rounds_visible, accesses=accesses,
            indices=indices,
        )
    except ValueError as error:  # pragma: no cover - defensive
        raise TraceFormatError(f"{what}: {error}") from None


def loads(data: bytes) -> TraceFile:
    """Decode a binary trace; raises typed errors on any malformation."""
    if len(data) < len(MAGIC) + 4 + 4:
        raise TraceFormatError(
            f"truncated trace: {len(data)} bytes is shorter than the "
            f"fixed preamble"
        )
    if data[:len(MAGIC)] != MAGIC:
        raise TraceFormatError(
            f"bad magic {data[:len(MAGIC)]!r}; not a {MAGIC.decode()} "
            f"binary trace"
        )
    version, _flags = struct.unpack_from("<HH", data, len(MAGIC))
    if version != FORMAT_VERSION:
        raise TraceVersionError(
            f"trace format version {version} is not supported "
            f"(this reader speaks version {FORMAT_VERSION})"
        )
    (stored_crc,) = struct.unpack_from("<I", data, len(data) - 4)
    actual_crc = zlib.crc32(data[:-4]) & 0xFFFFFFFF
    if stored_crc != actual_crc:
        raise TraceFormatError(
            f"checksum mismatch (stored 0x{stored_crc:08x}, computed "
            f"0x{actual_crc:08x}): the trace is corrupt or truncated"
        )
    reader = _Reader(data[:-4])
    reader.take(len(MAGIC) + 4, "preamble")
    header = _decode_header(reader)
    nbytes = (header.width + 7) // 8
    (count,) = reader.unpack("<I", "record count")
    records = tuple(
        _decode_record(reader, header, nbytes, position)
        for position in range(count)
    )
    if reader.offset != len(reader.data):
        raise TraceFormatError(
            f"{len(reader.data) - reader.offset} trailing bytes after "
            f"the last record"
        )
    return TraceFile(header=header, records=records)


def read_binary(path: Union[str, Path]) -> TraceFile:
    """Read and decode a binary trace file."""
    return loads(Path(path).read_bytes())
