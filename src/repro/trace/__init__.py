"""L0: trace record/replay — below the whole channel stack.

This package defines the on-disk trace formats (binary + JSONL), the
recording wrappers that capture a live run without perturbing it, the
replay objects that feed a recording back through the unchanged L1–L4
observer stack, and a parser for foreign malloc/free + access logs.

Layering: L0 sits *below* the four channel layers and the attack core.
It may import only ``repro.targets`` (the victim-facing data model),
``repro.cache`` (geometry), ``repro.seeding``, and
``repro.staticcheck.secrets`` (annotations).  Importing
``repro.channel``, ``repro.core``, or ``repro.engine`` from here is a
layering violation and is rejected by the static layering checker.
"""

from .binio import (
    BINARY_SUFFIX,
    MAGIC,
    dumps,
    loads,
    read_binary,
    write_binary,
)
from .errors import (
    ExternalTraceError,
    TraceError,
    TraceExhaustedError,
    TraceFormatError,
    TraceMismatchError,
    TraceVersionError,
)
from .external import ExternalTraceParser, ParseStats, parse_external_log
from .format import (
    FORMAT_NAME,
    FORMAT_VERSION,
    KIND_ACCESSES,
    KIND_INDICES,
    KIND_PAIR,
    EncryptionRecord,
    TraceFile,
    TraceHeader,
    classify_address,
)
from .jsonio import (
    JSONL_SUFFIX,
    dump_jsonl,
    load_jsonl,
    read_jsonl,
    write_jsonl,
)
from .recorder import RecordingTransport, RecordingVictim, TraceRecorder
from .replay import ReplayTransport, ReplayVictim

__all__ = [
    "BINARY_SUFFIX",
    "MAGIC",
    "JSONL_SUFFIX",
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "KIND_PAIR",
    "KIND_ACCESSES",
    "KIND_INDICES",
    "TraceError",
    "TraceFormatError",
    "TraceVersionError",
    "TraceMismatchError",
    "TraceExhaustedError",
    "ExternalTraceError",
    "TraceHeader",
    "EncryptionRecord",
    "TraceFile",
    "classify_address",
    "dumps",
    "loads",
    "read_binary",
    "write_binary",
    "dump_jsonl",
    "load_jsonl",
    "read_jsonl",
    "write_jsonl",
    "TraceRecorder",
    "RecordingVictim",
    "RecordingTransport",
    "ReplayVictim",
    "ReplayTransport",
    "ExternalTraceParser",
    "ParseStats",
    "parse_external_log",
]
