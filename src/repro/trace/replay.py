"""Replay: serve a recorded (or foreign) trace to the L1–L4 stack.

:class:`ReplayVictim` implements the duck-typed ``TracedVictim``
surface from a :class:`~repro.trace.format.TraceFile` instead of a
cipher: ``sbox_indices_by_round`` / ``encrypt_traced`` pop the next
recorded observation window and ``encrypt`` pops the next known pair.
Plugged into the unchanged observer + attack, a deterministic
recording replays bit-identically — the full-key attack re-derives the
same crafting stream from the header's seed, asks for the same
plaintexts in the same order, and receives the recorded answers, so
the whole 128-bit key falls **with no cipher in the loop**.

In ``strict`` mode (the default) any drift — a plaintext the recording
did not answer, a wrong record kind, a shorter visible window — raises
:class:`~repro.trace.errors.TraceMismatchError` immediately; running
past the end raises
:class:`~repro.trace.errors.TraceExhaustedError`.  ``strict=False``
skips plaintext comparison and tolerates interleaving drift (for
foreign traces that carry no plaintexts at all).

:class:`ReplayTransport` is the substrate-level counterpart: a
transport-shaped object over a private set-associative cache whose
:meth:`~ReplayTransport.play` feeds a record's raw address stream in
as victim traffic — the way to push *foreign* traces through an L1
probe primitive without any victim object at all.
"""

from __future__ import annotations

from typing import Any, FrozenSet, List, Optional

from ..cache.geometry import CacheGeometry
from ..cache.setassoc import SetAssociativeCache
from ..staticcheck.secrets import secret_attributes
from ..targets.trace import EncryptionTrace
from .errors import TraceExhaustedError, TraceMismatchError
from .format import (
    KIND_ACCESSES,
    KIND_INDICES,
    KIND_PAIR,
    EncryptionRecord,
    TraceFile,
)

#: Kinds an observation-window request may consume.
_WINDOW_KINDS: FrozenSet[str] = frozenset({KIND_ACCESSES, KIND_INDICES})


@secret_attributes("trace")
class ReplayVictim:
    """A victim whose "encryptions" are answered from a recording.

    The attack-facing attributes (``attack_target``, ``width``,
    ``rounds``, ``layout``, ``probe_round_offset``) come from the
    trace header, so target resolution, monitor construction and the
    observer's offset arithmetic behave exactly as they did against
    the live victim.  The recorded index stream is key-dependent —
    the trace attribute is declared secret accordingly.
    """

    def __init__(self, trace: TraceFile, *, strict: bool = True) -> None:
        self.trace = trace
        self.strict = strict
        header = trace.header
        self.attack_target = header.target
        self.width = header.width
        self.rounds = header.rounds
        self.layout = header.layout
        self.probe_round_offset = header.probe_round_offset
        self._cursor = 0
        self.windows_served = 0
        self.pairs_served = 0

    @property
    def header(self):
        """The recording's header (config, geometry, seed scope)."""
        return self.trace.header

    @property
    def remaining(self) -> int:
        """Records not yet consumed."""
        return len(self.trace.records) - self._cursor

    # -- record stream -------------------------------------------------

    def _next(self, kinds: FrozenSet[str], what: str) -> EncryptionRecord:
        records = self.trace.records
        while self._cursor < len(records):
            record = records[self._cursor]
            self._cursor += 1
            if record.kind in kinds:
                return record
            if self.strict:
                raise TraceMismatchError(
                    f"replay drift: expected a {what} record at position "
                    f"{self._cursor - 1}, found kind {record.kind!r} "
                    f"(config or seed differs from record time?)"
                )
            # Loose mode: skip interleaved records of other kinds.
        raise TraceExhaustedError(
            f"trace exhausted after {self.windows_served} windows and "
            f"{self.pairs_served} pairs: no {what} record left "
            f"(recorded scope too small for this replay?)"
        )

    def _check_plaintext(self, record: EncryptionRecord,
                         plaintext: int) -> None:
        if not self.strict or record.plaintext is None:
            return
        if record.plaintext != plaintext:
            raise TraceMismatchError(
                f"replay drift at record {self._cursor - 1}: the attack "
                f"asked for plaintext 0x{plaintext:x} but the recording "
                f"answered 0x{record.plaintext:x} (crafting streams "
                f"diverged — replay with the header's seed and config)"
            )

    # -- TracedVictim surface ------------------------------------------

    def encrypt(self, plaintext: int) -> int:
        record = self._next(frozenset({KIND_PAIR}), "known-pair")
        self._check_plaintext(record, plaintext)
        self.pairs_served += 1
        return record.ciphertext

    def encrypt_traced(self, plaintext: int,
                       max_rounds: Optional[int] = None
                       ) -> EncryptionTrace:
        record = self._next(_WINDOW_KINDS, "observation-window")
        self._check_plaintext(record, plaintext)
        limit = self.rounds if max_rounds is None else max_rounds
        if record.rounds_visible < limit:
            raise TraceMismatchError(
                f"record {self._cursor - 1} recorded "
                f"{record.rounds_visible} visible rounds but the replay "
                f"asked for {limit}"
            )
        self.windows_served += 1
        trace = record.to_trace(self.trace.header)
        return EncryptionTrace(
            plaintext=plaintext,
            ciphertext=trace.ciphertext,
            accesses=trace.accesses_through_round(limit),
        )

    def sbox_indices_by_round(self, plaintext: int,
                              max_rounds: int) -> List[List[int]]:
        record = self._next(_WINDOW_KINDS, "observation-window")
        self._check_plaintext(record, plaintext)
        rows = record.sbox_indices_by_round(self.trace.header.segments)
        if len(rows) < max_rounds:
            raise TraceMismatchError(
                f"record {self._cursor - 1} recorded {len(rows)} visible "
                f"rounds but the replay asked for {max_rounds}"
            )
        self.windows_served += 1
        return rows[:max_rounds]


class ReplayTransport:
    """A transport-shaped substrate for feeding traces to a probe.

    Duck-types the L2 ``CacheTransport`` surface over its own
    set-associative cache (the single-level shape of the paper's threat
    model) and adds :meth:`play`: replay one record's raw address
    stream as victim traffic.  An L1 primitive can then ``reset`` /
    ``play`` / ``observe`` against foreign traces with no victim
    object anywhere.
    """

    supports_prime_probe = True
    supports_fast_path = True
    noise_via_victim = False
    probe_on_empty_window = False

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self.cache = SetAssociativeCache(geometry)

    @classmethod
    def for_trace(cls, trace: TraceFile) -> "ReplayTransport":
        """A transport of the trace's recorded geometry."""
        return cls(trace.header.geometry)

    # -- transport surface ---------------------------------------------

    def access(self, address: int) -> bool:
        return self.cache.access(address)

    def flush_line(self, address: int) -> bool:
        return self.cache.flush_line(address)

    def victim_access(self, address: int) -> bool:
        return self.cache.access(address)

    def cold(self) -> "ReplayTransport":
        return ReplayTransport(self.geometry)

    def check_geometry(self, geometry: Any) -> None:
        if self.line_bytes != geometry.line_bytes:
            raise ValueError(
                "hierarchy line size must match the attack geometry"
            )

    @property
    def line_bytes(self) -> int:
        return self.geometry.line_bytes

    # -- trace feeding -------------------------------------------------

    def play(self, record: EncryptionRecord,
             header: Optional[Any] = None,
             through_round: Optional[int] = None) -> int:
        """Feed one record's address stream in as victim traffic.

        ``header`` is required for ``indices`` records (their addresses
        are reconstructed from the header's layout).  ``through_round``
        truncates the stream after that round (untagged accesses, round
        0, always play).  Returns the number of accesses played.
        """
        if record.kind == KIND_PAIR:
            return 0
        if header is None and record.kind == KIND_INDICES:
            raise TraceMismatchError(
                "playing an indices record needs the trace header "
                "(addresses are a function of its layout)"
            )
        accesses = (record.accesses if record.kind == KIND_ACCESSES
                    else tuple(record.to_trace(header).accesses))
        played = 0
        for access in accesses:
            if (through_round is not None
                    and access.round_index > through_round):
                continue
            self.victim_access(access.address)
            played += 1
        return played
