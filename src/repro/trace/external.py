"""Ingest external memory-trace logs (malloc/free + access streams).

The accepted format follows the WOOT'21-style heap-trace tooling this
repo's roadmap names as the exemplar: a line-oriented log of allocator
events and data accesses, with optional encryption-boundary markers::

    # comment
    alloc 0x55a0 16          # malloc(16): base address, size
    alloc 0x7000 2048        # malloc(16 * segments * 8)
    enc 0123456789abcdef     # encryption begins (plaintext, hex)
    read 0x55a3              # a data access (aliases: write/access/
    read 0x7008              #   load/store/r/w)
    end                      # encryption ends (optional before enc/EOF)
    free 0x55a0

Table regions are identified by their allocation *size* against the
canonical :class:`~repro.targets.layout.TableLayout`: the first live
allocation of exactly ``16 * sbox_entry_bytes`` bytes is the S-box,
the first of ``16 * segments * perm_entry_bytes`` bytes the PermBits
scatter table.  Accesses are rebased into the canonical layout (the
address the attack's monitor watches), tagged with their table index,
and assigned a round by counting S-box accesses — ``segments`` S-box
loads per round, exactly how the table-based victims behave.

``strict=True`` (default) raises
:class:`~repro.trace.errors.ExternalTraceError` with the offending
line number on any malformed line, unknown ``free``, access to an
unmapped address, or access outside an encryption block.
``strict=False`` skips each offender and counts it per category in the
returned :class:`ParseStats` — skipped-with-count, never silent.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..cache.geometry import CacheGeometry
from ..targets.layout import SBOX_ENTRIES, TableLayout
from ..targets.trace import MemoryAccess
from .errors import ExternalTraceError
from .format import (
    KIND_ACCESSES,
    EncryptionRecord,
    TraceFile,
    TraceHeader,
)

#: Access verbs the log may use (all equivalent: one data load).
_ACCESS_VERBS = frozenset(
    {"read", "write", "access", "load", "store", "r", "w"}
)

#: Allocation verbs (``malloc`` is the classic spelling).
_ALLOC_VERBS = frozenset({"alloc", "malloc"})


@dataclass
class ParseStats:
    """What the parser saw — including everything lenient mode skipped."""

    lines: int = 0
    allocations: int = 0
    frees: int = 0
    accesses: int = 0
    encryptions: int = 0
    skipped_malformed: int = 0
    skipped_unmapped: int = 0
    skipped_unknown_free: int = 0
    skipped_stray: int = 0

    @property
    def skipped(self) -> int:
        """Total skipped lines across all categories."""
        return (self.skipped_malformed + self.skipped_unmapped
                + self.skipped_unknown_free + self.skipped_stray)

    def as_dict(self) -> Dict[str, int]:
        return {
            "lines": self.lines,
            "allocations": self.allocations,
            "frees": self.frees,
            "accesses": self.accesses,
            "encryptions": self.encryptions,
            "skipped_malformed": self.skipped_malformed,
            "skipped_unmapped": self.skipped_unmapped,
            "skipped_unknown_free": self.skipped_unknown_free,
            "skipped_stray": self.skipped_stray,
        }


def _parse_int(token: str) -> int:
    return int(token, 16 if token.lower().startswith("0x") else 10)


class _Region:
    """One live allocation, possibly bound to a canonical table."""

    __slots__ = ("base", "size", "table")

    def __init__(self, base: int, size: int,
                 table: Optional[str]) -> None:
        self.base = base
        self.size = size
        self.table = table


class ExternalTraceParser:
    """Parses malloc/free + access logs into a :class:`TraceFile`."""

    def __init__(self, *, layout: Optional[TableLayout] = None,
                 segments: int = 16, target: str = "external",
                 strict: bool = True,
                 geometry: Optional[CacheGeometry] = None,
                 probe_round_offset: int = 1) -> None:
        if segments < 1:
            raise ValueError(f"segments must be >= 1, got {segments}")
        self.layout = layout if layout is not None else TableLayout()
        self.segments = segments
        self.target = target
        self.strict = strict
        self.geometry = (geometry if geometry is not None
                         else CacheGeometry())
        self.probe_round_offset = probe_round_offset

    # -- entry points --------------------------------------------------

    def parse(self, lines: Union[str, Iterable[str]]
              ) -> Tuple[TraceFile, ParseStats]:
        """Parse log text (or an iterable of lines)."""
        if isinstance(lines, str):
            lines = lines.splitlines()
        state = _ParseState(self)
        for lineno, raw in enumerate(lines, start=1):
            state.feed(lineno, raw)
        return state.finish()

    def parse_file(self, path: Union[str, Path]
                   ) -> Tuple[TraceFile, ParseStats]:
        """Parse a log file from disk."""
        return self.parse(
            Path(path).read_text(encoding="utf-8").splitlines()
        )


class _ParseState:
    """Mutable walk state of one parse run."""

    def __init__(self, parser: ExternalTraceParser) -> None:
        self.parser = parser
        self.stats = ParseStats()
        self.regions: List[_Region] = []
        self.records: List[EncryptionRecord] = []
        self.saw_marker = False
        self.in_block = False
        self.plaintext: Optional[int] = None
        self.ciphertext: Optional[int] = None
        self.accesses: List[MemoryAccess] = []
        self.sbox_seen = 0
        self.max_round = 0

    # -- helpers -------------------------------------------------------

    def _fail(self, lineno: int, message: str, category: str) -> None:
        if self.parser.strict:
            raise ExternalTraceError(message, lineno)
        setattr(self.stats, category,
                getattr(self.stats, category) + 1)

    def _region_at(self, address: int) -> Optional[_Region]:
        for region in self.regions:
            if region.base <= address < region.base + region.size:
                return region
        return None

    def _bind_table(self, size: int) -> Optional[str]:
        layout = self.parser.layout
        bound = {region.table for region in self.regions}
        if (size == SBOX_ENTRIES * layout.sbox_entry_bytes
                and "sbox" not in bound):
            return "sbox"
        perm_size = (SBOX_ENTRIES * self.parser.segments
                     * layout.perm_entry_bytes)
        if size == perm_size and "perm" not in bound:
            return "perm"
        return None

    def _close_block(self) -> None:
        if not self.in_block and not self.accesses:
            return
        self.records.append(EncryptionRecord(
            kind=KIND_ACCESSES,
            plaintext=self.plaintext,
            ciphertext=self.ciphertext,
            rounds_visible=self.max_round,
            accesses=tuple(self.accesses),
        ))
        self.stats.encryptions += 1
        self.in_block = False
        self.plaintext = None
        self.ciphertext = None
        self.accesses = []
        self.sbox_seen = 0
        self.max_round = 0

    # -- line dispatch -------------------------------------------------

    def feed(self, lineno: int, raw: str) -> None:
        self.stats.lines += 1
        line = raw.split("#", 1)[0].strip()
        if not line:
            return
        tokens = line.split()
        verb = tokens[0].lower()
        try:
            if verb in _ALLOC_VERBS:
                self._feed_alloc(lineno, tokens)
            elif verb == "free":
                self._feed_free(lineno, tokens)
            elif verb in _ACCESS_VERBS:
                self._feed_access(lineno, tokens)
            elif verb == "enc":
                self._feed_enc(lineno, tokens)
            elif verb == "end":
                self._feed_end(lineno, tokens)
            else:
                self._fail(lineno, f"unknown verb {verb!r}",
                           "skipped_malformed")
        except ValueError:
            self._fail(lineno, f"malformed operand in {line!r}",
                       "skipped_malformed")

    def _feed_alloc(self, lineno: int, tokens: List[str]) -> None:
        if len(tokens) != 3:
            self._fail(lineno, "alloc takes <address> <size>",
                       "skipped_malformed")
            return
        base, size = _parse_int(tokens[1]), _parse_int(tokens[2])
        if size <= 0:
            self._fail(lineno, f"allocation size must be positive, "
                               f"got {size}", "skipped_malformed")
            return
        overlapping = self._region_at(base)
        if overlapping is not None:
            self._fail(lineno,
                       f"allocation at 0x{base:x} overlaps the live "
                       f"region at 0x{overlapping.base:x}",
                       "skipped_malformed")
            return
        self.regions.append(_Region(base, size, self._bind_table(size)))
        self.stats.allocations += 1

    def _feed_free(self, lineno: int, tokens: List[str]) -> None:
        if len(tokens) != 2:
            self._fail(lineno, "free takes <address>",
                       "skipped_malformed")
            return
        base = _parse_int(tokens[1])
        for position, region in enumerate(self.regions):
            if region.base == base:
                del self.regions[position]
                self.stats.frees += 1
                return
        self._fail(lineno, f"free of unallocated address 0x{base:x}",
                   "skipped_unknown_free")

    def _feed_access(self, lineno: int, tokens: List[str]) -> None:
        if len(tokens) != 2:
            self._fail(lineno, "an access takes <address>",
                       "skipped_malformed")
            return
        address = _parse_int(tokens[1])
        if self.saw_marker and not self.in_block:
            self._fail(lineno,
                       f"access at 0x{address:x} outside an enc block",
                       "skipped_stray")
            return
        region = self._region_at(address)
        if region is None or region.table is None:
            self._fail(lineno,
                       f"access to unmapped address 0x{address:x}",
                       "skipped_unmapped")
            return
        layout = self.parser.layout
        offset = address - region.base
        if region.table == "sbox":
            index = offset // layout.sbox_entry_bytes
            segment = self.sbox_seen % self.parser.segments
            round_index = 1 + self.sbox_seen // self.parser.segments
            self.sbox_seen += 1
            canonical = layout.sbox_address(index)
        else:
            index = offset // layout.perm_entry_bytes
            segment = index // SBOX_ENTRIES
            round_index = max(
                1, 1 + (self.sbox_seen - 1) // self.parser.segments
            )
            canonical = layout.perm_base + layout.perm_entry_bytes * index
        self.accesses.append(MemoryAccess(
            address=canonical, round_index=round_index,
            segment=segment, table=region.table, index=index,
        ))
        self.max_round = max(self.max_round, round_index)
        self.stats.accesses += 1

    def _feed_enc(self, lineno: int, tokens: List[str]) -> None:
        if len(tokens) not in (2, 3):
            self._fail(lineno, "enc takes <plaintext-hex> "
                               "[<ciphertext-hex>]", "skipped_malformed")
            return
        plaintext = int(tokens[1], 16)
        ciphertext = int(tokens[2], 16) if len(tokens) == 3 else None
        # A new marker implicitly closes the previous block.
        self._close_block()
        self.saw_marker = True
        self.in_block = True
        self.plaintext = plaintext
        self.ciphertext = ciphertext

    def _feed_end(self, lineno: int, tokens: List[str]) -> None:
        if not self.in_block:
            self._fail(lineno, "end without a matching enc",
                       "skipped_stray")
            return
        self._close_block()

    # -- result --------------------------------------------------------

    def finish(self) -> Tuple[TraceFile, ParseStats]:
        self._close_block()
        parser = self.parser
        rounds = max(
            (record.rounds_visible for record in self.records), default=0
        )
        header = TraceHeader(
            target=parser.target,
            width=4 * parser.segments,
            rounds=max(1, rounds),
            seed=None,
            scope="external",
            probe_round_offset=parser.probe_round_offset,
            geometry=parser.geometry,
            layout=parser.layout,
            meta={"source": "external-log",
                  "stats": self.stats.as_dict()},
        )
        return TraceFile(header=header,
                         records=tuple(self.records)), self.stats


def parse_external_log(lines: Union[str, Iterable[str]],
                       **options: object
                       ) -> Tuple[TraceFile, ParseStats]:
    """One-shot convenience wrapper around
    :class:`ExternalTraceParser`."""
    return ExternalTraceParser(**options).parse(lines)  # type: ignore[arg-type]
