"""The in-memory trace model: header, per-encryption records, file.

A trace is a :class:`TraceFile`: one :class:`TraceHeader` (who was
recorded, under which geometry/layout/config, with which seed scope)
followed by an ordered sequence of :class:`EncryptionRecord` — one per
encryption the victim ran, in execution order.  Three record kinds
cover every observation path of the L1–L4 stack:

``"indices"``
    The fast-path signal: the S-box indices of every visible round
    (exactly ``segments`` nibbles per round, in segment order).  The
    addresses are not stored — they are a pure function of the header's
    :class:`~repro.targets.layout.TableLayout`, so replay reconstructs
    them losslessly and the packed encoding stays tiny (two nibbles per
    byte).
``"accesses"``
    The full-path signal: the complete tagged
    :class:`~repro.targets.trace.MemoryAccess` stream of the visible
    window (S-box *and* PermBits loads, or whatever a foreign trace
    contains).  ``round_index == 0`` / ``segment == -1`` mark accesses
    whose provenance the producer could not tag (substrate-level
    recordings, external logs).
``"pair"``
    One known plaintext/ciphertext pair — the verification channel the
    attack consumes through ``known_pair``.

Records with kind ``"indices"`` or ``"accesses"`` are *observation
windows*; ``rounds_visible`` bounds the window (the recorded victim ran
``max_rounds=rounds_visible``).  Per-encryption boundaries are the
record boundaries themselves.

This module is pure data + validation; serialization lives in
:mod:`repro.trace.binio` (compact binary) and
:mod:`repro.trace.jsonio` (the JSONL twin).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from ..cache.geometry import CacheGeometry, preset_name_of
from ..targets.layout import SBOX_ENTRIES, TableLayout
from ..targets.trace import EncryptionTrace, MemoryAccess
from .errors import TraceError

#: Format identity, shared by the binary and JSONL encodings.
FORMAT_NAME = "grinch-trace"
FORMAT_VERSION = 1

#: Record kinds (see module docstring).
KIND_PAIR = "pair"
KIND_ACCESSES = "accesses"
KIND_INDICES = "indices"
RECORD_KINDS = (KIND_PAIR, KIND_ACCESSES, KIND_INDICES)

#: Default table-name table of a recording.  Access records name their
#: table by index into this tuple; ``"other"`` absorbs substrate-level
#: addresses that fall outside both canonical table regions.
DEFAULT_TABLES: Tuple[str, ...] = ("sbox", "perm", "other")


@dataclass(frozen=True)
class TraceHeader:
    """Everything needed to re-create the recording context.

    The header pins the attacked target's name and shape, the cache
    geometry (plus, derived, its preset name when one matches), the
    table layout addresses the access stream is expressed against, the
    observation-relevant attack config knobs, and the seed + RNG scope
    so a replayed attack derives bit-identical crafting/noise streams.
    ``meta`` is a free-form JSON-able mapping (the recording CLI stores
    the expected outcome there, which is what the corpus tests pin).
    """

    target: str
    width: int
    rounds: int
    seed: Optional[int] = None
    scope: str = "runner"
    probe_round_offset: int = 1
    geometry: CacheGeometry = field(default_factory=CacheGeometry)
    layout: TableLayout = field(default_factory=TableLayout)
    probing_round: int = 1
    use_flush: bool = True
    probe_strategy: str = "flush_reload"
    tables: Tuple[str, ...] = DEFAULT_TABLES
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.target:
            raise TraceError("header needs a non-empty target name")
        if self.width < 4 or self.width % 4:
            raise TraceError(
                f"width must be a positive multiple of 4, got {self.width}"
            )
        if self.rounds < 1:
            raise TraceError(f"rounds must be >= 1, got {self.rounds}")
        if self.probing_round < 1:
            raise TraceError(
                f"probing_round must be >= 1, got {self.probing_round}"
            )
        if self.probe_round_offset < 0:
            raise TraceError("probe_round_offset must be non-negative")
        if not self.tables or len(set(self.tables)) != len(self.tables):
            raise TraceError("tables must be non-empty and unique")

    @property
    def segments(self) -> int:
        """State segments (nibbles) of the recorded target."""
        return self.width // 4

    @property
    def geometry_preset(self) -> Optional[str]:
        """Name of the matching geometry preset, if any (recorded in
        both encodings so reports can say "paper geometry")."""
        return preset_name_of(self.geometry)

    def table_index(self, table: str) -> int:
        """Index of ``table`` in the header's table-name table."""
        try:
            return self.tables.index(table)
        except ValueError:
            raise TraceError(
                f"table {table!r} is not declared in the header "
                f"(tables: {', '.join(self.tables)})"
            ) from None

    def with_meta(self, **entries: Any) -> "TraceHeader":
        """A copy of the header with ``entries`` merged into ``meta``."""
        merged = dict(self.meta)
        merged.update(entries)
        return replace(self, meta=merged)

    @classmethod
    def for_victim(cls, target: str, victim: Any, config: Any,
                   scope: str = "runner",
                   meta: Optional[Dict[str, Any]] = None) -> "TraceHeader":
        """Build a header from a live victim + attack config.

        Duck-typed: ``victim`` needs ``width``/``rounds``/``layout``
        (the :class:`~repro.targets.protocol.TracedVictim` surface) and
        ``config`` the observation-relevant ``AttackConfig`` attributes.
        """
        return cls(
            target=target,
            width=victim.width,
            rounds=victim.rounds,
            seed=getattr(config, "seed", None),
            scope=scope,
            probe_round_offset=getattr(victim, "probe_round_offset", 1),
            geometry=config.geometry,
            layout=victim.layout,
            probing_round=getattr(config, "probing_round", 1),
            use_flush=getattr(config, "use_flush", True),
            probe_strategy=getattr(config, "probe_strategy",
                                   "flush_reload"),
            meta=dict(meta) if meta else {},
        )


@dataclass(frozen=True)
class EncryptionRecord:
    """One encryption's serialized observation (see module docstring)."""

    kind: str
    plaintext: Optional[int] = None
    ciphertext: Optional[int] = None
    rounds_visible: int = 0
    accesses: Tuple[MemoryAccess, ...] = ()
    indices: Tuple[Tuple[int, ...], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in RECORD_KINDS:
            raise TraceError(
                f"record kind must be one of {RECORD_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.rounds_visible < 0:
            raise TraceError("rounds_visible must be non-negative")
        for value, name in ((self.plaintext, "plaintext"),
                            (self.ciphertext, "ciphertext")):
            if value is not None and value < 0:
                raise TraceError(f"{name} must be non-negative")
        if self.kind == KIND_PAIR:
            if self.plaintext is None or self.ciphertext is None:
                raise TraceError(
                    "a pair record needs both plaintext and ciphertext"
                )
            if self.accesses or self.indices:
                raise TraceError("a pair record carries no access stream")
        elif self.kind == KIND_INDICES:
            if self.accesses:
                raise TraceError(
                    "an indices record must not also carry raw accesses"
                )
            if len(self.indices) != self.rounds_visible:
                raise TraceError(
                    f"indices record claims {self.rounds_visible} visible "
                    f"rounds but stores {len(self.indices)} rows"
                )
            for row in self.indices:
                for index in row:
                    if not 0 <= index < SBOX_ENTRIES:
                        raise TraceError(
                            f"S-box index must be a 4-bit value, "
                            f"got {index}"
                        )
        else:  # KIND_ACCESSES
            if self.indices:
                raise TraceError(
                    "an accesses record must not also carry packed indices"
                )

    @property
    def is_window(self) -> bool:
        """Whether the record is an observation window (not a pair)."""
        return self.kind != KIND_PAIR

    def sbox_indices_by_round(self, segments: int) -> List[List[int]]:
        """The fast-path view: per visible round, the S-box indices in
        segment order (rows of exactly ``segments`` entries)."""
        if self.kind == KIND_INDICES:
            return [list(row) for row in self.indices]
        if self.kind != KIND_ACCESSES:
            raise TraceError("a pair record has no access stream")
        rows: List[List[int]] = [[] for _ in range(self.rounds_visible)]
        for access in self.accesses:
            if access.table != "sbox":
                continue
            if not 1 <= access.round_index <= self.rounds_visible:
                continue
            rows[access.round_index - 1].append(access.index)
        for round_index, row in enumerate(rows, start=1):
            if len(row) != segments:
                raise TraceError(
                    f"round {round_index} has {len(row)} tagged S-box "
                    f"accesses, expected {segments}; the stream cannot "
                    f"serve the fast path (replay it through the full "
                    f"path instead)"
                )
        return rows

    def to_trace(self, header: TraceHeader) -> EncryptionTrace:
        """Materialise the record as a live :class:`EncryptionTrace`.

        Indices records reconstruct their addresses from the header's
        layout (the encoding dropped them precisely because they are
        this function of it); accesses records replay verbatim.
        """
        if self.kind == KIND_PAIR:
            raise TraceError("a pair record has no access stream")
        if self.kind == KIND_ACCESSES:
            accesses = list(self.accesses)
        else:
            layout = header.layout
            accesses = [
                MemoryAccess(
                    address=layout.sbox_address(index),
                    round_index=round_index,
                    segment=segment,
                    table="sbox",
                    index=index,
                )
                for round_index, row in enumerate(self.indices, start=1)
                for segment, index in enumerate(row)
            ]
        return EncryptionTrace(
            plaintext=self.plaintext if self.plaintext is not None else 0,
            ciphertext=(self.ciphertext
                        if self.ciphertext is not None else 0),
            accesses=accesses,
        )


@dataclass(frozen=True)
class TraceFile:
    """One header plus its ordered per-encryption records."""

    header: TraceHeader
    records: Tuple[EncryptionRecord, ...] = ()

    def __post_init__(self) -> None:
        segments = self.header.segments
        for position, record in enumerate(self.records):
            if record.kind == KIND_INDICES:
                for row in record.indices:
                    if len(row) != segments:
                        raise TraceError(
                            f"record {position}: indices rows must have "
                            f"exactly {segments} entries (the header's "
                            f"segment count), got {len(row)}"
                        )

    @property
    def windows(self) -> int:
        """Observation windows in the file (non-pair records) — one per
        encryption the recorded attack charged."""
        return sum(1 for record in self.records if record.is_window)

    @property
    def pairs(self) -> int:
        """Known plaintext/ciphertext pairs in the file."""
        return sum(1 for record in self.records if not record.is_window)


def classify_address(layout: TableLayout, address: int,
                     segments: int) -> Tuple[str, int, int]:
    """Map a raw byte address onto ``(table, segment, index)``.

    The inverse of the layout's address arithmetic, used by
    substrate-level recorders and the external-log parser: addresses in
    the S-box region resolve to their entry index (segment unknown,
    ``-1``), addresses in the PermBits region to their
    ``(segment, nibble)`` slot, and anything else to ``("other", -1,
    -1)``.
    """
    sbox_offset = address - layout.sbox_base
    if 0 <= sbox_offset < SBOX_ENTRIES * layout.sbox_entry_bytes:
        return "sbox", -1, sbox_offset // layout.sbox_entry_bytes
    perm_offset = address - layout.perm_base
    perm_extent = SBOX_ENTRIES * segments * layout.perm_entry_bytes
    if 0 <= perm_offset < perm_extent:
        slot = perm_offset // layout.perm_entry_bytes
        return "perm", slot // SBOX_ENTRIES, slot
    return "other", -1, -1
