"""Command-line interface: ``python -m repro <command>``.

Exposes the headline attack and every experiment harness:

.. code-block:: console

   $ python -m repro attack --seed 7
   $ python -m repro attack --width 128 --line-words 2
   $ python -m repro figure3
   $ python -m repro table1 --full
   $ python -m repro table2
   $ python -m repro countermeasures
   $ python -m repro theory --line-words 4
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from .analysis import (
    expected_first_round_effort,
    flush_advantage,
    growth_factor_per_round,
    practical_probing_round_limit,
    render_figure3,
    render_table1,
    render_table2,
    run_figure3,
    run_table1,
    run_table2,
)
from .cache.geometry import CacheGeometry
from .core import AttackConfig, GrinchAttack
from .countermeasures import (
    evaluate_hardened_schedule,
    evaluate_reshaped_sbox,
)
from .gift.lut import TracedGift64, TracedGift128

#: Monte-Carlo budget per cell in quick (default) mode.
QUICK_EFFORT = 20_000.0
#: Monte-Carlo budget with ``--full`` (the paper's drop-out threshold).
FULL_EFFORT = 1_500_000.0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GRINCH cache attack against GIFT — reproduction CLI",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    attack = commands.add_parser(
        "attack", help="run a full GRINCH key recovery"
    )
    attack.add_argument("--key", type=lambda v: int(v, 16), default=None,
                        help="victim master key (hex; default: random)")
    attack.add_argument("--width", type=int, choices=(64, 128), default=64,
                        help="GIFT variant (default: 64)")
    attack.add_argument("--seed", type=int, default=0,
                        help="attacker RNG seed")
    attack.add_argument("--line-words", type=int, choices=(1, 2, 4, 8),
                        default=1, help="cache line size in words")
    attack.add_argument("--probing-round", type=int, default=1,
                        help="round at which the probe lands (>= 1)")
    attack.add_argument("--no-flush", action="store_true",
                        help="disable the mid-encryption flush")
    attack.add_argument("--probe", choices=("flush_reload", "prime_probe"),
                        default="flush_reload", help="probing primitive")

    for name, help_text in (
        ("figure3", "regenerate Fig. 3 (effort vs. probing round)"),
        ("table1", "regenerate Table I (effort vs. cache line size)"),
    ):
        sub = commands.add_parser(name, help=help_text)
        sub.add_argument("--full", action="store_true",
                         help="simulate every cell (slow)")
        sub.add_argument("--runs", type=int, default=2,
                         help="Monte-Carlo repetitions per cell")

    commands.add_parser(
        "table2", help="regenerate Table II (platform probing rounds)"
    )
    cm = commands.add_parser(
        "countermeasures", help="evaluate the Section IV-C protections"
    )
    cm.add_argument("--seed", type=int, default=0)

    theory = commands.add_parser(
        "theory", help="analytic effort model for one configuration"
    )
    theory.add_argument("--line-words", type=int, choices=(1, 2, 4, 8),
                        default=1)
    theory.add_argument("--no-flush", action="store_true")

    staticcheck = commands.add_parser(
        "staticcheck",
        help="static leakage analysis (secret-dependent lookups/branches)",
    )
    staticcheck.add_argument(
        "staticcheck_args", nargs=argparse.REMAINDER,
        help="arguments forwarded to python -m repro.staticcheck",
    )
    return parser


def _cmd_attack(args: argparse.Namespace) -> int:
    key = args.key
    if key is None:
        key = random.Random(args.seed ^ 0xA77AC4).getrandbits(128)
    victim_cls = TracedGift64 if args.width == 64 else TracedGift128
    victim = victim_cls(key)
    config = AttackConfig(
        geometry=CacheGeometry(line_words=args.line_words),
        probing_round=args.probing_round,
        use_flush=not args.no_flush,
        probe_strategy=args.probe,
        stall_window=200 if args.probe == "prime_probe" else 0,
        seed=args.seed,
        max_total_encryptions=None,
    )
    print(f"victim: GIFT-{args.width}, key {key:032x}")
    result = GrinchAttack(victim, config).recover_master_key()
    print(f"recovered: {result.master_key:032x} "
          f"({'MATCH' if result.master_key == key else 'MISMATCH'})")
    print(f"victim encryptions: {result.total_encryptions}")
    for round_index, count in result.encryptions_by_round.items():
        print(f"  round {round_index}: {count}")
    return 0 if result.master_key == key else 1


def _cmd_figure3(args: argparse.Namespace) -> int:
    budget = FULL_EFFORT if args.full else QUICK_EFFORT
    print(render_figure3(run_figure3(runs=args.runs,
                                     max_simulated_effort=budget)))
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    budget = FULL_EFFORT if args.full else QUICK_EFFORT
    print(render_table1(run_table1(runs=args.runs,
                                   max_simulated_effort=budget)))
    return 0


def _cmd_table2(_: argparse.Namespace) -> int:
    print(render_table2(run_table2()))
    return 0


def _cmd_countermeasures(args: argparse.Namespace) -> int:
    key = random.Random(args.seed ^ 0xC0DE).getrandbits(128)
    for report in (evaluate_reshaped_sbox(key, seed=args.seed),
                   evaluate_hardened_schedule(key, seed=args.seed)):
        verdict = "defeated" if report.attack_defeated else "NOT defeated"
        leak = ("channel closed" if not report.protected_leakage.leaks
                else "channel still open")
        print(f"{report.name}: GRINCH {verdict} "
              f"({report.failure_mode or 'key recovered'}), {leak}")
    return 0


def _cmd_theory(args: argparse.Namespace) -> int:
    use_flush = not args.no_flush
    print(f"analytic model, {args.line_words}-word lines, "
          f"{'with' if use_flush else 'without'} flush")
    for probing_round in range(1, 9):
        effort = expected_first_round_effort(
            args.line_words, probing_round, use_flush
        )
        marker = "" if effort <= 1_000_000 else "   <- drop-out (>1M)"
        print(f"  probing round {probing_round}: {effort:>14,.0f}{marker}")
    print(f"growth per round: x{growth_factor_per_round(args.line_words):.2f}")
    print(f"no-flush penalty: x{flush_advantage(2, args.line_words):.2f}")
    limit = practical_probing_round_limit(args.line_words, use_flush)
    print(f"practical limit : probing round {limit if limit else 'none'}")
    return 0


def _cmd_staticcheck(args: argparse.Namespace) -> int:
    from .staticcheck.cli import main as staticcheck_main

    return staticcheck_main(args.staticcheck_args)


_HANDLERS = {
    "attack": _cmd_attack,
    "figure3": _cmd_figure3,
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "countermeasures": _cmd_countermeasures,
    "theory": _cmd_theory,
    "staticcheck": _cmd_staticcheck,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
