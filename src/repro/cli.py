"""Command-line interface: ``python -m repro <command>``.

Exposes the headline attack and the unified experiment engine:

.. code-block:: console

   $ python -m repro attack --seed 7
   $ python -m repro attack --width 128 --line-words 2
   $ python -m repro run --list
   $ python -m repro run table1 --workers 4 --seed 7 --json
   $ python -m repro run E9 --set levels=0.0:0,0.5:2 --no-cache
   $ python -m repro figure3            # legacy alias of `run figure3`
   $ python -m repro theory --line-words 4
   $ python -m repro perf --quick --json
   $ python -m repro staticcheck leakage --check-budget
   $ python -m repro trace record --target gift64 --out run.grtr
   $ python -m repro trace replay run.grtr --check

``run`` executes any registered experiment (E1–E14) through
:mod:`repro.engine`: Monte-Carlo trials fan out over ``--workers``
processes (bit-identical results at any worker count), finished records
are served from the content-addressed result cache, and ``--json``
emits the schema-validated artifact record.  The historical
``figure3``/``table1``/``table2``/``countermeasures`` subcommands
delegate to the same registry.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from .analysis import (
    expected_first_round_effort,
    flush_advantage,
    growth_factor_per_round,
    practical_probing_round_limit,
)
from .cache.geometry import CacheGeometry
from .core import AttackConfig, GrinchAttack
from .engine import (
    FULL_EFFORT,
    ProgressPrinter,
    derive_key,
    get as get_experiment,
    names as experiment_names,
    render_record,
    results_dir,
    run_experiment,
)
from .targets.gift import TracedGift64, TracedGift128


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GRINCH cache attack against GIFT — reproduction CLI",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    attack = commands.add_parser(
        "attack", help="run a full GRINCH key recovery"
    )
    attack.add_argument("--key", type=lambda v: int(v, 16), default=None,
                        help="victim master key (hex; default: derived "
                             "from --seed)")
    attack.add_argument("--width", type=int, choices=(64, 128), default=64,
                        help="GIFT variant (default: 64)")
    attack.add_argument("--seed", type=int, default=0,
                        help="attacker RNG seed")
    attack.add_argument("--line-words", type=int, choices=(1, 2, 4, 8),
                        default=1, help="cache line size in words")
    attack.add_argument("--probing-round", type=int, default=1,
                        help="round at which the probe lands (>= 1)")
    attack.add_argument("--no-flush", action="store_true",
                        help="disable the mid-encryption flush")
    attack.add_argument("--probe", choices=("flush_reload", "prime_probe"),
                        default="flush_reload", help="probing primitive")

    run = commands.add_parser(
        "run",
        help="run a registered experiment through the engine (E1-E14)",
    )
    run.add_argument("experiment", nargs="?", default=None,
                     help="experiment name or DESIGN.md ID (see --list)")
    run.add_argument("--list", action="store_true", dest="list_experiments",
                     help="list the registered experiments and exit")
    run.add_argument("--workers", type=int, default=1,
                     help="worker processes for the Monte-Carlo fan-out")
    run.add_argument("--seed", type=int, default=None,
                     help="override the experiment's seed parameter")
    run.add_argument("--json", action="store_true", dest="as_json",
                     help="print the JSON artifact record instead of "
                          "the ASCII rendering")
    run.add_argument("--no-cache", action="store_true",
                     help="bypass the content-addressed result cache")
    run.add_argument("--full", action="store_true",
                     help="raise the Monte-Carlo budget past the 1M "
                          "drop-out (equivalent to REPRO_FULL=1)")
    run.add_argument("--set", dest="assignments", action="append",
                     default=[], metavar="NAME=VALUE",
                     help="override an experiment parameter "
                          "(repeatable; see --list for the specs)")

    for name, help_text in (
        ("figure3", "regenerate Fig. 3 (effort vs. probing round)"),
        ("table1", "regenerate Table I (effort vs. cache line size)"),
    ):
        sub = commands.add_parser(name, help=help_text)
        sub.add_argument("--full", action="store_true",
                         help="simulate every cell (slow)")
        sub.add_argument("--runs", type=int, default=2,
                         help="Monte-Carlo repetitions per cell")

    commands.add_parser(
        "table2", help="regenerate Table II (platform probing rounds)"
    )
    cm = commands.add_parser(
        "countermeasures", help="evaluate the Section IV-C protections"
    )
    cm.add_argument("--seed", type=int, default=0)

    theory = commands.add_parser(
        "theory", help="analytic effort model for one configuration"
    )
    theory.add_argument("--line-words", type=int, choices=(1, 2, 4, 8),
                        default=1)
    theory.add_argument("--no-flush", action="store_true")

    staticcheck = commands.add_parser(
        "staticcheck",
        help="static leakage analysis (secret-dependent lookups/branches)",
    )
    staticcheck.add_argument(
        "staticcheck_args", nargs=argparse.REMAINDER,
        help="arguments forwarded to python -m repro.staticcheck",
    )

    perf = commands.add_parser(
        "perf",
        help="microbenchmark the hot paths and gate on perf ratios",
    )
    perf.add_argument(
        "perf_args", nargs=argparse.REMAINDER,
        help="arguments forwarded to python -m repro.perf",
    )

    trace = commands.add_parser(
        "trace",
        help="record, replay, convert and inspect attack traces (L0)",
    )
    trace.add_argument(
        "trace_args", nargs=argparse.REMAINDER,
        help="arguments forwarded to the trace front-end",
    )
    return parser


def _cmd_attack(args: argparse.Namespace) -> int:
    key = args.key
    if key is None:
        key = derive_key(128, "cli-attack", args.seed)
    victim_cls = TracedGift64 if args.width == 64 else TracedGift128
    victim = victim_cls(key)
    config = AttackConfig(
        geometry=CacheGeometry(line_words=args.line_words),
        probing_round=args.probing_round,
        use_flush=not args.no_flush,
        probe_strategy=args.probe,
        stall_window=200 if args.probe == "prime_probe" else 0,
        seed=args.seed,
        max_total_encryptions=None,
    )
    print(f"victim: GIFT-{args.width}, key {key:032x}")
    result = GrinchAttack(victim, config).recover_master_key()
    print(f"recovered: {result.master_key:032x} "
          f"({'MATCH' if result.master_key == key else 'MISMATCH'})")
    print(f"victim encryptions: {result.total_encryptions}")
    for round_index, count in result.encryptions_by_round.items():
        print(f"  round {round_index}: {count}")
    return 0 if result.master_key == key else 1


# ----------------------------------------------------------------------
# The engine front-end
# ----------------------------------------------------------------------

def _parse_assignments(experiment_name: str,
                       assignments: List[str]) -> Dict[str, Any]:
    spec = get_experiment(experiment_name).spec
    overrides: Dict[str, Any] = {}
    for assignment in assignments:
        name, separator, text = assignment.partition("=")
        if not separator:
            raise SystemExit(
                f"--set expects NAME=VALUE, got {assignment!r}"
            )
        try:
            overrides[name] = spec.get(name).parse(text)
        except KeyError:
            known = ", ".join(p.name for p in spec) or "(none)"
            raise SystemExit(
                f"unknown parameter {name!r} for {experiment_name}; "
                f"known: {known}"
            ) from None
        except ValueError as error:
            raise SystemExit(f"--set {assignment!r}: {error}") from None
    return overrides


def _engine_run(name: str, overrides: Optional[Dict[str, Any]] = None,
                *, workers: int = 1, use_cache: bool = True,
                as_json: bool = False, progress: bool = False) -> int:
    record = run_experiment(
        name,
        overrides,
        workers=workers,
        use_cache=use_cache,
        artifact_dir=results_dir(),
        progress=ProgressPrinter() if progress else None,
    )
    if as_json:
        print(json.dumps(record, indent=2, sort_keys=True))
    else:
        print(render_record(record))
        telemetry = record["telemetry"]
        print(f"[{record['experiment_id']} {record['experiment']}: "
              f"{telemetry['trials_total']} trials, "
              f"{telemetry['wall_time_s']:.2f} s, "
              f"{telemetry['trials_per_s']:.1f} trials/s, "
              f"cache {telemetry['cache']}]")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.list_experiments or args.experiment is None:
        if args.experiment is None and not args.list_experiments:
            print("usage: python -m repro run <experiment> [options]\n")
        for name in experiment_names():
            experiment = get_experiment(name)
            print(f"{experiment.experiment_id:>4}  {name:<20} "
                  f"{experiment.title}")
            for param in experiment.spec:
                print(f"      --set {param.name}=... "
                      f"[{param.kind}, default {param.default!r}] "
                      f"{param.help}")
        return 0
    try:
        experiment = get_experiment(args.experiment)
    except KeyError as error:
        raise SystemExit(str(error)) from None
    overrides = _parse_assignments(experiment.name, args.assignments)
    param_names = {param.name for param in experiment.spec}
    if args.seed is not None:
        if "seed" not in param_names:
            raise SystemExit(
                f"{experiment.name} has no seed parameter"
            )
        overrides.setdefault("seed", args.seed)
    if args.full and "max_simulated_effort" in param_names:
        overrides.setdefault("max_simulated_effort", FULL_EFFORT)
    return _engine_run(
        experiment.name,
        overrides,
        workers=args.workers,
        use_cache=not args.no_cache,
        as_json=args.as_json,
        progress=not args.as_json,
    )


def _cmd_figure3(args: argparse.Namespace) -> int:
    overrides = {"runs": args.runs}
    if args.full:
        overrides["max_simulated_effort"] = FULL_EFFORT
    return _engine_run("figure3", overrides)


def _cmd_table1(args: argparse.Namespace) -> int:
    overrides = {"runs": args.runs}
    if args.full:
        overrides["max_simulated_effort"] = FULL_EFFORT
    return _engine_run("table1", overrides)


def _cmd_table2(_: argparse.Namespace) -> int:
    return _engine_run("table2")


def _cmd_countermeasures(args: argparse.Namespace) -> int:
    record = run_experiment(
        "countermeasures", {"seed": args.seed},
        artifact_dir=results_dir(),
    )
    for cell in record["cells"]:
        verdict = "defeated" if cell["attack_defeated"] else "NOT defeated"
        leak = ("channel closed" if not cell["protected_leaks"]
                else "channel still open")
        print(f"{cell['name']}: GRINCH {verdict} "
              f"({cell['failure_mode'] or 'key recovered'}), {leak}")
    return 0


def _cmd_theory(args: argparse.Namespace) -> int:
    use_flush = not args.no_flush
    print(f"analytic model, {args.line_words}-word lines, "
          f"{'with' if use_flush else 'without'} flush")
    for probing_round in range(1, 9):
        effort = expected_first_round_effort(
            args.line_words, probing_round, use_flush
        )
        marker = "" if effort <= 1_000_000 else "   <- drop-out (>1M)"
        print(f"  probing round {probing_round}: {effort:>14,.0f}{marker}")
    print(f"growth per round: x{growth_factor_per_round(args.line_words):.2f}")
    print(f"no-flush penalty: x{flush_advantage(2, args.line_words):.2f}")
    limit = practical_probing_round_limit(args.line_words, use_flush)
    print(f"practical limit : probing round {limit if limit else 'none'}")
    return 0


def _cmd_staticcheck(args: argparse.Namespace) -> int:
    from .staticcheck.cli import main as staticcheck_main

    return staticcheck_main(args.staticcheck_args)


def _cmd_perf(args: argparse.Namespace) -> int:
    from .perf.cli import main as perf_main

    return perf_main(args.perf_args)


def _cmd_trace(args: argparse.Namespace) -> int:
    from .tracecli import main as trace_main

    return trace_main(args.trace_args)


_HANDLERS = {
    "attack": _cmd_attack,
    "run": _cmd_run,
    "figure3": _cmd_figure3,
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "countermeasures": _cmd_countermeasures,
    "theory": _cmd_theory,
    "staticcheck": _cmd_staticcheck,
    "perf": _cmd_perf,
    "trace": _cmd_trace,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:1] == ["perf"]:
        # argparse.REMAINDER refuses leading optionals (``perf --quick``),
        # so hand the tail straight to the perf front-end.
        return _cmd_perf(argparse.Namespace(perf_args=argv[1:]))
    if argv[:1] == ["staticcheck"]:
        # Same REMAINDER limitation for ``staticcheck --json`` and the
        # ``staticcheck leakage ...`` quantitative front-end.
        return _cmd_staticcheck(
            argparse.Namespace(staticcheck_args=argv[1:])
        )
    if argv[:1] == ["trace"]:
        # Same REMAINDER limitation for ``trace record --target ...``.
        return _cmd_trace(argparse.Namespace(trace_args=argv[1:]))
    args = _build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
