"""Countermeasure 1 (Section IV-C): reshaping the S-box table.

"For the S-Box, the proposed method is to set the cache line to 8 bytes
and reshape the S-Box from 16 rows of 4 bits to 8 rows of 8 bits.  As an
overhead, you have to select the right 4 bits at the output."

Two S-box entries are packed per byte, so the table shrinks to 8 bytes
and — with an 8-byte cache line — occupies a *single* line.  Every
lookup touches that one line regardless of the index: the access-driven
channel carries zero information.  The low index bit (which selects the
nibble within the byte) never reaches the address bus at all.
"""

from __future__ import annotations

from typing import List, Tuple

from ..cache.geometry import CacheGeometry
from ..targets.gift import GIFT_SBOX, TracedGiftCipher
from ..targets.layout import TableLayout
from ..targets.trace import EncryptionTrace, MemoryAccess
from ..staticcheck.equivalence import declare_table_layout
from ..staticcheck.secrets import secret_params

#: The reshaped table: row ``r`` packs entries ``2r`` (low nibble) and
#: ``2r + 1`` (high nibble) into one byte.
RESHAPED_SBOX_ROWS: Tuple[int, ...] = tuple(
    GIFT_SBOX[2 * row] | (GIFT_SBOX[2 * row + 1] << 4)
    for row in range(8)
)

# Layout metadata for the quantitative leakage analyzer: the secret
# domain is still the 16 S-box inputs, but two values pack per byte
# (``index >> 1`` addressing), so the 16-value domain maps onto 8 bytes
# — under an 8-byte line the equivalence enumeration collapses to one
# class (0 bits), which the byte-footprint heuristic cannot establish.
declare_table_layout("RESHAPED_SBOX_ROWS", module=__name__, domain=16,
                     entry_bytes=1, values_per_entry=2)

#: Number of rows (bytes) in the reshaped table.
RESHAPED_ROWS: int = 8

#: Cache geometry the countermeasure prescribes: 8-byte lines, so the
#: reshaped table fits one line (other parameters as the paper default).
RECOMMENDED_GEOMETRY = CacheGeometry(line_words=8)


@secret_params("index")
def reshaped_lookup(index: int) -> int:
    """Perform the protected lookup: row load + nibble select."""
    if not 0 <= index < 16:
        raise ValueError(f"S-box index must be a 4-bit value, got {index}")
    row = RESHAPED_SBOX_ROWS[index >> 1]
    return (row >> 4) & 0xF if index & 1 else row & 0xF


class ReshapedSboxGift64(TracedGiftCipher):
    """GIFT-64 whose SubCells reads the packed 8-row table.

    Functionally identical to the unprotected implementation (the packed
    rows decode to the same S-box); only the *address stream* changes:
    the accessed address is ``sbox_base + (index >> 1)``, and with the
    recommended 8-byte cache line all eight addresses share one line.
    """

    def __init__(self, master_key: int, rounds: int = 28,
                 layout: TableLayout = TableLayout()) -> None:
        super().__init__(master_key, width=64, rounds=rounds, layout=layout)

    @secret_params("index")
    def sbox_row_address(self, index: int) -> int:
        """Byte address actually loaded for S-box ``index``."""
        if not 0 <= index < 16:
            raise ValueError(f"S-box index must be a 4-bit value, got {index}")
        return self.layout.sbox_base + (index >> 1)

    def table_addresses(self) -> List[int]:
        """Addresses of the 8 packed rows."""
        return [self.layout.sbox_base + row for row in range(RESHAPED_ROWS)]

    @secret_params("state")
    def _sub_cells_traced(self, state: int, round_index: int,
                          trace: EncryptionTrace) -> int:
        result = 0
        for segment in range(self._segments):
            index = (state >> (4 * segment)) & 0xF
            trace.append(
                MemoryAccess(
                    address=self.sbox_row_address(index),
                    round_index=round_index,
                    segment=segment,
                    table="sbox",
                    index=index >> 1,
                )
            )
            result |= reshaped_lookup(index) << (4 * segment)
        return result
