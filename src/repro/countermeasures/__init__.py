"""The paper's two proposed GRINCH countermeasures and their evaluation."""

from .evaluation import (
    CountermeasureReport,
    LeakageSummary,
    evaluate_hardened_schedule,
    evaluate_reshaped_sbox,
    profile_leakage,
)
from .hardened_schedule import (
    HardenedKeyScheduleGift64,
    hardened_round_keys,
    whiten_word,
)
from .reshaped_sbox import (
    RECOMMENDED_GEOMETRY,
    RESHAPED_ROWS,
    RESHAPED_SBOX_ROWS,
    ReshapedSboxGift64,
    reshaped_lookup,
)

__all__ = [
    "CountermeasureReport",
    "LeakageSummary",
    "evaluate_hardened_schedule",
    "evaluate_reshaped_sbox",
    "profile_leakage",
    "HardenedKeyScheduleGift64",
    "hardened_round_keys",
    "whiten_word",
    "RECOMMENDED_GEOMETRY",
    "RESHAPED_ROWS",
    "RESHAPED_SBOX_ROWS",
    "ReshapedSboxGift64",
    "reshaped_lookup",
]
