"""Countermeasure 2 (Section IV-C): hardening the key schedule.

"The second countermeasure is to modify the UpdateKey operation ...
If the UpdateKey of the first round prepares the sub-key to be used in
the next round by applying some computation with bits that were not
used yet, the key retrieval would not be possible."

The paper leaves the concrete computation open (and defers its
cryptanalysis); this module implements one instantiation of the recipe:
before a round key is used, it is whitened with an S-box mix of key
words that GRINCH has not yet observed at that point of the attack.
The crucial property is *not* secrecy of the whitening function (it is
public) but that each effective round key now depends on bits from the
opposite half of the master key, so recovering the effective round keys
of rounds 1-4 yields 128 equations in 128 unknowns that GRINCH's simple
"concatenate the quarters" reconstruction cannot solve — and, in
particular, the attacker can no longer predict round 5's key from round
1's, which breaks the verification stage too.

The leak itself (S-box accesses through the cache) is *not* removed,
and the evaluation shows that: elimination still converges, but the
assembled master key fails verification.
"""

from __future__ import annotations

from typing import List, Tuple

from ..targets.gift import GIFT_SBOX, TracedGiftCipher, standard_round_keys
from ..targets.layout import TableLayout
from ..staticcheck.secrets import secret_params


@secret_params("word", "tweak")
def whiten_word(word: int, tweak: int) -> int:
    """Mix a 16-bit round-key word with a 16-bit tweak, nibble-wise.

    Each nibble of ``word`` is XORed with the S-box image of the
    corresponding ``tweak`` nibble — cheap (four table lookups, which a
    hardware UpdateKey would do with the existing S-box circuit) and
    nonlinear in the tweak.
    """
    if not 0 <= word < (1 << 16) or not 0 <= tweak < (1 << 16):
        raise ValueError("whitening operates on 16-bit words")
    result = 0
    for nibble in range(4):
        w = (word >> (4 * nibble)) & 0xF
        t = (tweak >> (4 * nibble)) & 0xF
        result |= (w ^ GIFT_SBOX[t]) << (4 * nibble)
    return result


def hardened_round_keys(master_key: int, rounds: int
                        ) -> List[Tuple[int, int]]:
    """Round keys with the hardened UpdateKey for GIFT-64.

    Round ``r`` (1-based, ``r <= 4``) whitens its ``(U, V)`` with the
    two master-key words *diagonally opposite* in the key state — words
    the standard schedule would only consume two rounds later, i.e.
    "bits that were not used yet" at attack time.  Later rounds keep the
    standard schedule (their key material is already mixed).
    """
    keys = standard_round_keys(master_key, rounds, width=64)
    words = [(master_key >> (16 * i)) & 0xFFFF for i in range(8)]
    hardened = []
    for round_index, (u, v) in enumerate(keys, start=1):
        if round_index <= 4:
            u_tweak = words[(2 * round_index + 3) % 8]
            v_tweak = words[(2 * round_index + 2) % 8]
            hardened.append(
                (whiten_word(u, u_tweak), whiten_word(v, v_tweak))
            )
        else:
            hardened.append((u, v))
    return hardened


class HardenedKeyScheduleGift64(TracedGiftCipher):
    """GIFT-64 with the hardened UpdateKey of countermeasure 2.

    Note this is *not* standard GIFT (ciphertexts differ); it models the
    paper's proposed modification so the attack's failure mode can be
    demonstrated.  Encrypt/decrypt remain mutually inverse.
    """

    def __init__(self, master_key: int, rounds: int = 28,
                 layout: TableLayout = TableLayout()) -> None:
        super().__init__(master_key, width=64, rounds=rounds, layout=layout)

    def compute_round_keys(self) -> List[Tuple[int, int]]:
        return hardened_round_keys(self.master_key, self.rounds)
