"""Evaluation harness for the paper's two countermeasures.

For each protection the harness answers two questions, mirroring how the
paper argues (Section IV-C):

1. *Is the access-driven channel still there?*
   :func:`profile_leakage` measures, over many random encryptions,
   whether the victim's S-box-table cache-line footprint varies at all.
   No variation = a zero-capacity channel.

2. *Does GRINCH still recover the key?*
   The full attack is launched against the protected victim and its
   failure mode recorded (contradicted observations, failed key
   verification, or exhausted budget).

Countermeasure 1 (reshaped S-box + 8-byte line) kills the channel
itself; countermeasure 2 (hardened UpdateKey) leaves the channel intact
but makes the recovered round keys useless for master-key
reconstruction — exactly the paper's two distinct protection arguments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cache.geometry import CacheGeometry
from ..core.attack import GrinchAttack
from ..core.config import AttackConfig
from ..core.errors import AttackError
from ..targets.gift import TracedGift64, TracedGiftCipher
from ..seeding import derive_rng
from .hardened_schedule import HardenedKeyScheduleGift64
from .reshaped_sbox import RECOMMENDED_GEOMETRY, ReshapedSboxGift64


@dataclass(frozen=True)
class LeakageSummary:
    """Observed variability of the victim's S-box-line footprint."""

    encryptions: int
    monitored_lines: int
    varying_lines: int
    always_present_lines: int
    distinct_observations: int

    @property
    def leaks(self) -> bool:
        """Whether the footprint carries any information at all."""
        return self.varying_lines > 0


@dataclass(frozen=True)
class CountermeasureReport:
    """Outcome of evaluating one countermeasure."""

    name: str
    baseline_leakage: LeakageSummary
    protected_leakage: LeakageSummary
    attack_defeated: bool
    failure_mode: Optional[str]
    recovered_key_matches: bool


def profile_leakage(victim: TracedGiftCipher,
                    geometry: CacheGeometry,
                    probing_round: int = 1,
                    use_flush: bool = True,
                    encryptions: int = 200,
                    seed: int = 0) -> LeakageSummary:
    """Measure the cache-line footprint variability of random encryptions.

    The footprint is taken directly from the victim's address trace (the
    simulator's ground truth — equivalent to a noiseless Flush+Reload):
    the set of distinct cache lines its S-box accesses touch within the
    visible round window.
    """
    if encryptions < 1:
        raise ValueError(f"encryptions must be positive, got {encryptions}")
    rng = derive_rng("leakage-profile", seed)
    first_round = 2 if use_flush else 1
    last_round = 1 + probing_round

    observations = []
    all_lines = set()
    for _ in range(encryptions):
        trace = victim.encrypt_traced(
            rng.getrandbits(victim.width), max_rounds=last_round
        )
        lines = frozenset(
            geometry.line_of(access.address)
            for access in trace.accesses
            if access.table == "sbox"
            and first_round <= access.round_index <= last_round
        )
        observations.append(lines)
        all_lines |= lines

    always_present = set(all_lines)
    for lines in observations:
        always_present &= lines
    varying = len(all_lines) - len(always_present)
    return LeakageSummary(
        encryptions=encryptions,
        monitored_lines=len(all_lines),
        varying_lines=varying,
        always_present_lines=len(always_present),
        distinct_observations=len(set(observations)),
    )


def _attack_and_classify(victim: TracedGiftCipher, config: AttackConfig
                         ) -> "tuple[bool, Optional[str], bool]":
    """Run GRINCH against a (possibly protected) victim.

    Returns ``(defeated, failure_mode, key_matches)``.
    """
    try:
        result = GrinchAttack(victim, config).recover_master_key()
    except AttackError as error:
        return True, type(error).__name__, False
    matches = result.master_key == victim.master_key
    return (not matches), None, matches


def evaluate_reshaped_sbox(master_key: int, seed: int = 0,
                           encryptions: int = 200) -> CountermeasureReport:
    """Evaluate countermeasure 1 against the unprotected baseline."""
    geometry = RECOMMENDED_GEOMETRY
    # Baseline at the paper's default geometry (1-word lines), where the
    # unprotected implementation leaks plainly; the protected profile
    # uses the countermeasure's prescribed 8-byte line.
    baseline = profile_leakage(
        TracedGift64(master_key), CacheGeometry(),
        encryptions=encryptions, seed=seed,
    )
    protected_victim = ReshapedSboxGift64(master_key)
    protected = profile_leakage(
        protected_victim, geometry, encryptions=encryptions, seed=seed
    )
    config = AttackConfig(
        geometry=geometry, seed=seed,
        max_encryptions_per_segment=5_000,
        max_total_encryptions=200_000,
    )
    defeated, mode, matches = _attack_and_classify(protected_victim, config)
    return CountermeasureReport(
        name="reshaped S-box (8 rows x 8 bits, 8-byte line)",
        baseline_leakage=baseline,
        protected_leakage=protected,
        attack_defeated=defeated,
        failure_mode=mode,
        recovered_key_matches=matches,
    )


def evaluate_hardened_schedule(master_key: int, seed: int = 0,
                               encryptions: int = 200
                               ) -> CountermeasureReport:
    """Evaluate countermeasure 2: the channel persists, retrieval fails."""
    geometry = CacheGeometry()  # paper default, 1-word lines
    baseline = profile_leakage(
        TracedGift64(master_key), geometry,
        encryptions=encryptions, seed=seed,
    )
    protected_victim = HardenedKeyScheduleGift64(master_key)
    protected = profile_leakage(
        protected_victim, geometry, encryptions=encryptions, seed=seed
    )
    config = AttackConfig(geometry=geometry, seed=seed)
    defeated, mode, matches = _attack_and_classify(protected_victim, config)
    return CountermeasureReport(
        name="hardened UpdateKey (whitening with unused key bits)",
        baseline_leakage=baseline,
        protected_leakage=protected,
        attack_defeated=defeated,
        failure_mode=mode,
        recovered_key_matches=matches,
    )
